//! Edge-case and failure-injection tests across the workspace.

use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};
use tscclock_repro::netsim::Scenario;
use tscclock_repro::osc::{Environment, Oscillator, TscCounter};

const P_TRUE: f64 = 1.0000524e-9;

fn ex(t: f64, q: f64) -> RawExchange {
    let d = 450e-6;
    RawExchange {
        ta_tsc: (t / P_TRUE).round() as u64,
        tb: t + d + q,
        te: t + d + q + 20e-6,
        tf_tsc: ((t + 2.0 * d + 20e-6 + q) / P_TRUE).round() as u64,
    }
}

#[test]
fn clock_reads_are_none_before_alignment() {
    let clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    assert!(clock.absolute_time(123).is_none());
    assert!(clock.uncorrected_time(123).is_none());
    assert!(clock.difference_seconds(0, 1).is_none());
    assert!(clock.status().theta_hat.is_none());
}

#[test]
fn duplicate_exchanges_do_not_poison_the_clock() {
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    let e = ex(16.0, 0.0);
    clock.process(e);
    clock.process(ex(32.0, 0.0));
    // replay the same packet several times (e.g. a buggy feeder)
    for _ in 0..5 {
        clock.process(ex(48.0, 0.0));
    }
    for k in 4..200 {
        clock.process(ex(k as f64 * 16.0, 10e-6));
    }
    let p = clock.status().p_hat.unwrap();
    assert!(
        ((p - P_TRUE) / P_TRUE).abs() < 1e-6,
        "duplicates must not derail the rate"
    );
}

#[test]
fn non_monotone_counter_exchange_is_rejected() {
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    clock.process(ex(16.0, 0.0));
    clock.process(ex(32.0, 0.0));
    let before = clock.status().packets;
    // tf before ta: impossible packet
    let bad = RawExchange {
        ta_tsc: 1_000_000,
        tb: 50.0,
        te: 50.1,
        tf_tsc: 999_999,
    };
    assert!(clock.process(bad).is_none());
    assert_eq!(clock.status().packets, before);
}

#[test]
fn extreme_polling_periods_work() {
    for poll in [1.0, 4096.0] {
        let cfg = ClockConfig::paper_defaults(poll);
        assert!(cfg.validate().is_ok(), "poll {poll}");
        let mut clock = TscNtpClock::new(cfg);
        for k in 1..200u64 {
            clock.process(ex(k as f64 * poll, 5e-6));
        }
        let p = clock.status().p_hat.expect("estimates exist");
        assert!(((p - P_TRUE) / P_TRUE).abs() < 1e-5, "poll {poll}");
    }
}

#[test]
fn scenario_shorter_than_poll_yields_nothing() {
    let sc = Scenario::baseline(7)
        .with_poll_period(64.0)
        .with_duration(32.0);
    assert!(sc.run().is_empty());
}

#[test]
fn oscillator_counter_is_monotone_across_environment_presets() {
    for env in [
        Environment::Laboratory,
        Environment::MachineRoom,
        Environment::Airconditioned,
    ] {
        let mut counter = TscCounter::new(1e9, 0, env.build(3));
        let mut last = 0u64;
        for i in 1..2000 {
            let v = counter.read(i as f64 * 7.3);
            assert!(v > last, "{}: counter not monotone", env.name());
            last = v;
        }
    }
}

#[test]
fn perfect_oscillator_means_perfect_difference_clock() {
    // all-zero noise components: the clock should nail intervals exactly
    let mut osc = Oscillator::new(vec![], 0);
    assert_eq!(osc.advance_to(1e5), 0.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    let mk = |t: f64| RawExchange {
        ta_tsc: (t * 1e9) as u64,
        tb: t + 450e-6,
        te: t + 470e-6,
        tf_tsc: ((t + 940e-6) * 1e9) as u64,
    };
    for k in 1..100 {
        clock.process(mk(k as f64 * 16.0));
    }
    let dt = clock.difference_seconds(0, 1_000_000_000).unwrap();
    assert!((dt - 1.0).abs() < 1e-9, "perfect counter interval: {dt}");
}

#[test]
fn all_lost_after_warmup_keeps_last_estimates() {
    // total connectivity loss: "the current value of p̂ remains valid"
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    for k in 1..300u64 {
        clock.process(ex(k as f64 * 16.0, 10e-6));
    }
    let before = clock.status();
    // nothing arrives for a long time; reading the clock must still work
    let far_future_tsc = (1e6 / P_TRUE) as u64;
    let ca = clock.absolute_time(far_future_tsc).unwrap();
    assert!(ca.is_finite());
    assert_eq!(clock.status().p_hat, before.p_hat);
}

#[test]
fn negative_server_residence_rejected() {
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    clock.process(ex(16.0, 0.0));
    clock.process(ex(32.0, 0.0));
    let n = clock.status().packets;
    let mut bad = ex(48.0, 0.0);
    bad.te = bad.tb - 1.0; // server "transmitted before receiving"
    assert!(clock.process(bad).is_none());
    assert_eq!(clock.status().packets, n);
}

#[test]
fn asymmetry_estimator_tracks_configured_delta() {
    use tscclock_repro::clock::asym::{estimate_asymmetry, RefExchange};
    use tscclock_repro::netsim::ServerKind;
    // cross-validate the §4.2 estimator against all three presets
    for kind in [ServerKind::Loc, ServerKind::Ext] {
        let sc = Scenario::baseline(99)
            .with_server(kind)
            .with_duration(86_400.0);
        let refs: Vec<RefExchange> = sc
            .run()
            .iter()
            .filter(|e| !e.lost)
            .map(|e| RefExchange {
                ex: RawExchange {
                    ta_tsc: e.ta_tsc,
                    tb: e.tb,
                    te: e.te,
                    tf_tsc: e.tf_tsc,
                },
                tg: e.tg,
            })
            .collect();
        let d = estimate_asymmetry(&refs, 1e-9, 0.01).unwrap();
        let expect = kind.facts().asymmetry;
        assert!(
            (d - expect).abs() < 0.5 * expect + 30e-6,
            "{}: estimated {d}, expected {expect}",
            kind.name()
        );
    }
}

#[test]
fn histogram_and_percentiles_agree_on_simulated_errors() {
    use tscclock_repro::stats::{Histogram, Percentiles};
    let sc = Scenario::baseline(123).with_duration(86_400.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    let mut errs = Vec::new();
    for e in sc.build() {
        if e.lost {
            continue;
        }
        if clock
            .process(RawExchange {
                ta_tsc: e.ta_tsc,
                tb: e.tb,
                te: e.te,
                tf_tsc: e.tf_tsc,
            })
            .is_some()
        {
            if let Some(ca) = clock.absolute_time(e.tf_tsc) {
                errs.push(ca - e.tg);
            }
        }
    }
    let p = Percentiles::from_data(&errs).unwrap();
    let h = Histogram::auto(&errs, 50).unwrap();
    // the histogram's modal bin must sit inside the inter-quartile range
    let mode_centre = h.bin_center(h.mode_bin().unwrap());
    assert!(
        mode_centre >= p.p01 && mode_centre <= p.p99,
        "mode {mode_centre} outside [{}, {}]",
        p.p01,
        p.p99
    );
}
