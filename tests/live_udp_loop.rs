//! End-to-end test over real UDP loopback: simulated stratum-1 server,
//! SNTP client, and the TSC-NTP clock acquiring absolute time.

use std::time::{Duration, Instant};
use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};
use tscclock_repro::ntp::{self, ServerClock, SntpClient};

/// Server clock: system time plus a known offset we expect to acquire.
struct Shifted(f64);
impl ServerClock for Shifted {
    fn now_unix(&mut self) -> f64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
            + self.0
    }
}

#[test]
fn acquire_absolute_time_over_loopback() {
    let server = ntp::server::spawn("127.0.0.1:0", Shifted(2.0)).expect("bind server");
    let mut client = SntpClient::connect(server.addr()).expect("client");
    client.set_timeout(Duration::from_secs(1)).unwrap();

    let t0 = Instant::now();
    let read_tsc = move || t0.elapsed().as_nanos() as u64;

    let mut cfg = ClockConfig::paper_defaults(0.02);
    cfg.warmup_packets = 6;
    let mut clock = TscNtpClock::new(cfg);

    let mut ok = 0;
    for _ in 0..30 {
        let mut ta = 0u64;
        let mut tf = 0u64;
        let res = client.query(|| {
            let c = read_tsc();
            if ta == 0 {
                ta = c;
            } else {
                tf = c;
            }
            c as f64 * 1e-9
        });
        if let Ok(ft) = res {
            if clock
                .process(RawExchange {
                    ta_tsc: ta,
                    tb: ft.tb,
                    te: ft.te,
                    tf_tsc: tf,
                })
                .is_some()
            {
                ok += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(ok >= 20, "most exchanges should succeed, got {ok}");

    let now_tsc = read_tsc();
    let ca = clock.absolute_time(now_tsc).expect("clock aligned");
    let server_now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs_f64()
        + 2.0;
    let err = (ca - server_now).abs();
    // Loopback RTTs are ~50-500 µs; scheduling noise in CI can be worse.
    // Acquiring the 2-second offset to within 5 ms demonstrates the loop.
    assert!(
        err < 5e-3,
        "absolute time error {err} s after loopback sync (offset was 2 s)"
    );
}

#[test]
fn client_rejects_kiss_of_death() {
    use tscclock_repro::ntp::NtpPacket;
    use tscclock_repro::ntp::packet::PACKET_LEN;
    use std::net::UdpSocket;

    // A rogue "server" that always answers with stratum 0 (KoD).
    let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
    let addr = sock.local_addr().unwrap();
    let t = std::thread::spawn(move || {
        let mut buf = [0u8; 512];
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        if let Ok((len, from)) = sock.recv_from(&mut buf) {
            if len >= PACKET_LEN {
                let req = NtpPacket::decode(&buf[..len]).unwrap();
                let mut resp = NtpPacket::server_response(
                    &req,
                    tscclock_repro::ntp::NtpTimestamp::from_unix_seconds(1e9),
                    tscclock_repro::ntp::NtpTimestamp::from_unix_seconds(1e9),
                    *b"RATE",
                );
                resp.stratum = 0;
                let _ = sock.send_to(&resp.encode(), from);
            }
        }
    });
    let mut client = SntpClient::connect(addr).unwrap();
    client.set_timeout(Duration::from_millis(500)).unwrap();
    let res = client.query(|| 1.0);
    assert!(res.is_err(), "KoD must abort the exchange");
    t.join().unwrap();
}
