//! Resume ≡ uninterrupted: the snapshot codec's whole contract.
//!
//! Each differential test replays a component straight through, then
//! replays it again with a snapshot/restore round trip through bytes at a
//! chosen split point — including the awkward ones: mid-warmup (pending
//! first packet, unwarmed windows), mid-rebuild (between the offset
//! estimator's incremental rebuild anchors), mid-outage, right after a
//! level shift. Every per-packet output after the split must match the
//! uninterrupted run **bit for bit**, and the final sealed snapshots must
//! be byte-identical.
//!
//! The proptest half fuzzes the restore path: arbitrary truncations and
//! single-bit flips of real envelopes must always yield a typed
//! [`SnapshotError`] — never a panic, never an `Ok` clock built from
//! corrupt bytes.

use proptest::prelude::*;
use std::sync::OnceLock;
use tsc_fleet::{LifecycleClient, LifecycleConfig};
use tsc_netsim::{
    LevelShift, MultiServerScenario, OnDemandSim, RoundSample, Scenario, ServerKind, ServerPath,
};
use tsc_quorum::{QuorumClock, QuorumConfig, QuorumOutput};
use tscclock::{ClockConfig, ProcessOutput, RawExchange, SnapshotError, TscNtpClock};

/// Every field of a per-packet output as raw bits — `f64` equality would
/// conflate `-0.0` with `0.0` and miss NaN payloads.
fn output_bits(o: &ProcessOutput) -> [u64; 8] {
    [
        o.idx,
        o.rtt.to_bits(),
        o.point_error.to_bits(),
        o.theta_naive.to_bits(),
        o.theta_hat.to_bits(),
        o.p_hat.to_bits(),
        o.p_local.map_or(u64::MAX, f64::to_bits),
        o.events.iter().map(|e| 1u64 << (e as u16)).sum(),
    ]
}

/// An eventful single-server scenario scaled to the poll period: loss,
/// a server outage, and a forward level shift mid-run.
fn eventful_scenario(poll: f64) -> Scenario {
    Scenario::baseline(0)
        .with_poll_period(poll)
        .with_duration(poll * 500.0)
        .with_outage(poll * 150.0, poll * 170.0)
        .with_shift(LevelShift::forward_only(poll * 300.0, None, 0.9e-3))
}

/// Materializes the scenario's delivered exchanges.
fn exchanges(scenario: &Scenario, seed: u64) -> Vec<RawExchange> {
    let mut stream = scenario.stream_with_seed(seed).raw();
    let mut buf = Vec::new();
    let mut all = Vec::new();
    loop {
        buf.clear();
        if stream.fill_batch(&mut buf, 256) == 0 {
            break;
        }
        all.extend_from_slice(&buf);
    }
    all
}

/// Replays `exs` with an optional snapshot/restore round trip before
/// packet `split`; returns every per-packet output (bit patterns) plus
/// the final sealed snapshot.
fn run_clock(
    cfg: &ClockConfig,
    rebuild_cadence: Option<u32>,
    exs: &[RawExchange],
    split: Option<usize>,
) -> (Vec<Option<[u64; 8]>>, Vec<u8>) {
    let mut clock = TscNtpClock::new(*cfg);
    if let Some(every) = rebuild_cadence {
        clock.set_offset_rebuild_cadence(every);
    }
    let mut outs = Vec::with_capacity(exs.len());
    for (i, &ex) in exs.iter().enumerate() {
        if split == Some(i) {
            let blob = clock.snapshot();
            clock = TscNtpClock::restore(&blob).expect("snapshot of a live clock must restore");
        }
        outs.push(clock.process(ex).map(|o| output_bits(&o)));
    }
    (outs, clock.snapshot())
}

#[test]
fn clock_resume_equals_uninterrupted_across_poll_rates_and_split_points() {
    for poll in [16.0, 64.0, 1024.0] {
        let scenario = eventful_scenario(poll);
        let exs = exchanges(&scenario, 3);
        assert!(exs.len() >= 400, "poll {poll}: only {} exchanges", exs.len());
        let cfg = ClockConfig::paper_defaults(poll);
        let (want, want_blob) = run_clock(&cfg, None, &exs, None);
        // splits: mid-warmup (1, 2, 5), steady state, inside the outage
        // gap, right after the level shift, and at the very end
        for split in [1usize, 2, 5, 60, 137, 155, 310, exs.len() - 1] {
            let (got, got_blob) = run_clock(&cfg, None, &exs, Some(split));
            assert_eq!(got, want, "poll {poll}, split {split}");
            assert_eq!(got_blob, want_blob, "poll {poll}, split {split}: final state drifted");
        }
    }
}

/// The offset estimator rebuilds its factored-weight sums incrementally
/// every `cadence` packets; with the cadence forced down to 7, most split
/// points land *between* rebuild anchors — the restored sums must carry
/// the partially-accumulated cycle exactly (the cadence override itself
/// rides inside the snapshot).
#[test]
fn clock_resume_is_exact_mid_rebuild_cycle() {
    let poll = 64.0;
    let scenario = eventful_scenario(poll);
    let exs = exchanges(&scenario, 9);
    let cfg = ClockConfig::paper_defaults(poll);
    let (want, want_blob) = run_clock(&cfg, Some(7), &exs, None);
    for split in [3usize, 8, 13, 100, 153, 305, 400] {
        assert_ne!(split % 7, 0, "pick splits that fall mid-cycle");
        let (got, got_blob) = run_clock(&cfg, Some(7), &exs, Some(split));
        assert_eq!(got, want, "split {split}");
        assert_eq!(got_blob, want_blob, "split {split}: final state drifted");
    }
}

/// QuorumOutput as raw bits.
fn quorum_bits(o: &QuorumOutput) -> [u64; 7] {
    [
        o.round,
        (o.delivered_mask as u64) | ((o.candidate_mask as u64) << 32),
        (o.excluded_mask as u64) | ((o.demoted_mask as u64) << 32),
        o.tsc_ref,
        o.utc_ref.to_bits(),
        o.p_hat.to_bits(),
        u64::from(o.combined),
    ]
}

/// An eventful three-server template: one server goes dark mid-run, one
/// develops a silent asymmetry — demotion and readmission both fire.
fn quorum_rounds() -> Vec<Vec<Option<RawExchange>>> {
    let scenario = MultiServerScenario::baseline(3, 0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 450.0)
        .with_server_path(
            1,
            ServerPath::new(ServerKind::Int).with_outage(64.0 * 150.0, 64.0 * 250.0),
        )
        .with_server_path(
            2,
            ServerPath::new(ServerKind::Ext)
                .with_shift(LevelShift::asymmetric(64.0 * 300.0, None, 2e-3)),
        );
    let mut stream = scenario.stream_with_seed(5);
    let mut samples: Vec<RoundSample> = Vec::new();
    let mut rounds = Vec::new();
    while stream.next_round(&mut samples) {
        rounds.push(samples.iter().map(|s| s.delivered.then_some(s.raw)).collect());
    }
    rounds
}

fn run_quorum(
    rounds: &[Vec<Option<RawExchange>>],
    split: Option<usize>,
) -> (Vec<[u64; 7]>, Vec<u8>) {
    let mut q = QuorumClock::new(3, QuorumConfig::paper_defaults(64.0));
    let mut outs = Vec::with_capacity(rounds.len());
    for (i, round) in rounds.iter().enumerate() {
        if split == Some(i) {
            let blob = q.snapshot();
            q = QuorumClock::restore(&blob).expect("snapshot of a live quorum must restore");
        }
        outs.push(quorum_bits(&q.process_round(round)));
    }
    (outs, q.snapshot())
}

#[test]
fn quorum_resume_equals_uninterrupted() {
    let rounds = quorum_rounds();
    assert!(rounds.len() >= 440, "{} rounds", rounds.len());
    let (want, want_blob) = run_quorum(&rounds, None);
    // mid-warmup, steady, mid-outage (server 1 dark), post-asymmetry
    for split in [1usize, 80, 200, 320, rounds.len() - 1] {
        let (got, got_blob) = run_quorum(&rounds, Some(split));
        assert_eq!(got, want, "split {split}");
        assert_eq!(got_blob, want_blob, "split {split}: final state drifted");
    }
}

/// The lifecycle wrapper, driven on its own request timeline against an
/// on-demand sim with an outage (backoff ladder + cooldown in play). The
/// sim is the *network* — it survives the client's crash — so only the
/// client round-trips through bytes.
fn run_lifecycle(split: Option<u64>) -> (Vec<[u64; 3]>, Vec<u8>) {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(2.0 * 3600.0)
        .with_outage(3600.0, 3600.0 + 600.0);
    let lc = LifecycleConfig::defaults(16.0);
    let mut client = LifecycleClient::new(lc, ClockConfig::paper_defaults(16.0), 7, 0.0);
    let mut sim = OnDemandSim::new(&scenario);
    let nominal_period = 1.0 / sim.tsc_freq_hz();
    let mut steps = Vec::new();
    let mut n = 0u64;
    loop {
        let t = client.next_send().max(sim.earliest_next());
        if t >= scenario.duration {
            break;
        }
        if split == Some(n) {
            let blob = client.snapshot();
            client =
                LifecycleClient::restore(&blob).expect("snapshot of a live client must restore");
        }
        client.end_cooldown(t);
        client.note_request();
        let e = sim.exchange_at(t);
        let code = if e.lost || e.truth.tf - t > lc.timeout {
            client.on_timeout(t + lc.timeout);
            0u64
        } else {
            let raw = RawExchange {
                ta_tsc: e.ta_tsc,
                tb: e.tb,
                te: e.te,
                tf_tsc: e.tf_tsc,
            };
            client.on_response(e.truth.tf, raw, nominal_period);
            1u64
        };
        steps.push([t.to_bits(), code | (client.state() as u64) << 8, client.next_send().to_bits()]);
        n += 1;
    }
    (steps, client.snapshot())
}

#[test]
fn lifecycle_resume_equals_uninterrupted() {
    let (want, want_blob) = run_lifecycle(None);
    assert!(want.len() > 300, "{} steps", want.len());
    // the outage starts at t = 3600 ⇒ request ≈ 3600/16 = 225: split
    // before it, inside the backoff/cooldown churn, and after recovery
    for split in [1u64, 100, 228, 240, 400] {
        let (got, got_blob) = run_lifecycle(Some(split));
        assert_eq!(got, want, "split {split}");
        assert_eq!(got_blob, want_blob, "split {split}: final state drifted");
    }
}

/// Real sealed envelopes of all three component kinds, built once.
fn sample_blobs() -> &'static Vec<Vec<u8>> {
    static BLOBS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    BLOBS.get_or_init(|| {
        let scenario = Scenario::baseline(0)
            .with_poll_period(1024.0)
            .with_duration(1024.0 * 60.0);
        let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(1024.0));
        for &ex in &exchanges(&scenario, 1) {
            clock.process(ex);
        }
        let mut q = QuorumClock::new(3, QuorumConfig::paper_defaults(64.0));
        for round in quorum_rounds().iter().take(60) {
            q.process_round(round);
        }
        let (_, lifecycle_blob) = run_lifecycle(None);
        vec![clock.snapshot(), q.snapshot(), lifecycle_blob]
    })
}

/// Restore of kind `which` (0 = clock, 1 = quorum, 2 = lifecycle): must
/// return a typed error, and must never panic.
fn try_restore(which: usize, bytes: &[u8]) -> Result<(), SnapshotError> {
    match which {
        0 => TscNtpClock::restore(bytes).map(|_| ()),
        1 => QuorumClock::restore(bytes).map(|_| ()),
        _ => LifecycleClient::restore(bytes).map(|_| ()),
    }
}

proptest! {
    /// Any truncation of a valid envelope fails with a typed error.
    #[test]
    fn truncated_snapshots_always_fail_cleanly(which in 0usize..3, cut in 0usize..1 << 20) {
        let blob = &sample_blobs()[which];
        let cut = cut % blob.len(); // strictly shorter than the envelope
        prop_assert!(try_restore(which, &blob[..cut]).is_err(), "kind {which}, cut {cut}");
    }

    /// Any single-bit flip anywhere in a valid envelope — header, payload,
    /// or checksum trailer — fails with a typed error.
    #[test]
    fn bit_flipped_snapshots_always_fail_cleanly(
        which in 0usize..3,
        idx in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let mut blob = sample_blobs()[which].clone();
        let idx = idx % blob.len();
        blob[idx] ^= 1 << bit;
        prop_assert!(try_restore(which, &blob).is_err(), "kind {which}, byte {idx}, bit {bit}");
    }
}

/// A valid envelope of the wrong component kind is rejected *as such* —
/// the checksum passes, so this is the kind check doing its job.
#[test]
fn cross_kind_restore_is_a_kind_mismatch() {
    let blobs = sample_blobs();
    match LifecycleClient::restore(&blobs[0]) {
        Err(SnapshotError::KindMismatch { .. }) => {}
        other => panic!("clock blob into lifecycle restore: {other:?}"),
    }
    match TscNtpClock::restore(&blobs[1]) {
        Err(SnapshotError::KindMismatch { .. }) => {}
        other => panic!("quorum blob into clock restore: {other:?}"),
    }
}
