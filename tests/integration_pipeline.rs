//! Cross-crate integration tests: the full simulator → clock pipeline.

use tscclock_repro::clock::{ClockConfig, ClockEvent, RawExchange, TscNtpClock};
use tscclock_repro::netsim::{LevelShift, Scenario, ServerFault, ServerKind};
use tscclock_repro::stats::{median, Percentiles};

fn to_raw(e: &tscclock_repro::netsim::SimExchange) -> RawExchange {
    RawExchange {
        ta_tsc: e.ta_tsc,
        tb: e.tb,
        te: e.te,
        tf_tsc: e.tf_tsc,
    }
}

/// Runs a scenario, returning (abs errors after warmup, clock, events).
fn run(scenario: &Scenario, cfg: ClockConfig) -> (Vec<f64>, TscNtpClock, Vec<(f64, ClockEvent)>) {
    let mut clock = TscNtpClock::new(cfg);
    let mut errs = Vec::new();
    let mut events = Vec::new();
    let mut n = 0;
    for e in scenario.build() {
        if e.lost {
            continue;
        }
        if let Some(out) = clock.process(to_raw(&e)) {
            n += 1;
            for ev in out.events.iter() {
                events.push((e.poll_time, ev));
            }
            if n > 1500 {
                if let Some(ca) = clock.absolute_time(e.tf_tsc) {
                    errs.push(ca - e.tg);
                }
            }
        }
    }
    (errs, clock, events)
}

#[test]
fn headline_result_median_error_tens_of_microseconds() {
    // The paper's headline: ~30 µs median absolute error with a nearby
    // stratum-1 server (§1, Figure 12).
    let sc = Scenario::baseline(1001).with_duration(7.0 * 86_400.0);
    let (errs, clock, _) = run(&sc, ClockConfig::paper_defaults(16.0));
    let p = Percentiles::from_data(&errs).unwrap();
    assert!(
        p.p50.abs() < 60e-6,
        "median error {:.1} µs should be tens of µs",
        p.p50 * 1e6
    );
    assert!(p.iqr() < 60e-6, "IQR {:.1} µs", p.iqr() * 1e6);
    // rate accuracy: ~0.02 PPM class (§7 claims 0.02 PPM achieved)
    assert!(clock.status().p_quality < 0.1e-6);
}

#[test]
fn difference_clock_sub_microsecond_on_short_intervals() {
    let sc = Scenario::baseline(1002).with_duration(2.0 * 86_400.0);
    let (_, clock, _) = run(&sc, ClockConfig::paper_defaults(16.0));
    // 1e9 counts ≈ 1 s: true duration with the +52.4 PPM machine-room skew
    let dt = clock.difference_seconds(0, 1_000_000_000).unwrap();
    let true_dt = 1.0 / (1.0 + 52.4e-6);
    assert!(
        (dt - true_dt).abs() < 1e-6,
        "1 s interval error {:.3} µs",
        (dt - true_dt).abs() * 1e6
    );
}

#[test]
fn works_with_all_three_servers() {
    for (kind, budget_us) in [
        (ServerKind::Loc, 60.0),
        (ServerKind::Int, 80.0),
        (ServerKind::Ext, 600.0), // Δ/2 = 250 µs dominates
    ] {
        let sc = Scenario::baseline(1003)
            .with_server(kind)
            .with_duration(4.0 * 86_400.0);
        let (errs, _, _) = run(&sc, ClockConfig::paper_defaults(16.0));
        let med = median(&errs).unwrap().abs() * 1e6;
        assert!(
            med < budget_us,
            "{}: median {med:.1} µs over budget {budget_us}",
            kind.name()
        );
    }
}

#[test]
fn heavy_loss_degrades_gracefully() {
    // 30% packet loss: the paper's count-based windows shrink but the
    // algorithms must keep working.
    let sc = Scenario {
        loss_prob: 0.30,
        ..Scenario::baseline(1004)
    }
    .with_duration(4.0 * 86_400.0);
    let (errs, _, _) = run(&sc, ClockConfig::paper_defaults(16.0));
    let p = Percentiles::from_data(&errs).unwrap();
    assert!(
        p.p50.abs() < 100e-6,
        "median under 30% loss: {:.1} µs",
        p.p50 * 1e6
    );
}

#[test]
fn server_fault_is_contained_and_recovered() {
    let sc = Scenario::baseline(1005)
        .with_duration(3.0 * 86_400.0)
        .with_server_fault(ServerFault {
            start: 1.5 * 86_400.0,
            end: 1.5 * 86_400.0 + 600.0,
            offset: 0.150,
        });
    let (errs, _, events) = run(&sc, ClockConfig::paper_defaults(16.0));
    assert!(
        events
            .iter()
            .any(|(t, e)| *e == ClockEvent::OffsetSanity && *t >= 1.5 * 86_400.0),
        "sanity must fire during the fault"
    );
    // overall error distribution still healthy
    let p = Percentiles::from_data(&errs).unwrap();
    assert!(p.p99.abs() < 2e-3, "worst case {:.3} ms", p.p99 * 1e3);
    assert!(p.p50.abs() < 80e-6);
}

#[test]
fn route_change_cycle_detect_and_rebase() {
    // up-shift then later a downward shift back: the clock must detect the
    // first and silently absorb the second.
    let mut cfg = ClockConfig::paper_defaults(64.0);
    cfg.tau_prime = 2.0 * cfg.tau_star;
    let sc = Scenario::baseline(1006)
        .with_poll_period(64.0)
        .with_duration(6.0 * 86_400.0)
        .with_shift(LevelShift::forward_only(2.0 * 86_400.0, None, 0.9e-3))
        .with_shift(LevelShift {
            at: 4.0 * 86_400.0,
            until: None,
            fwd: -0.9e-3,
            back: 0.0,
        });
    let (_, _, events) = run(&sc, cfg);
    let upshifts: Vec<f64> = events
        .iter()
        .filter(|(_, e)| *e == ClockEvent::UpwardShift)
        .map(|(t, _)| *t)
        .collect();
    assert!(
        upshifts.iter().any(|&t| t > 2.0 * 86_400.0 && t < 2.3 * 86_400.0),
        "upward shift must be detected shortly after day 2: {upshifts:?}"
    );
    let newmins_after_day4 = events
        .iter()
        .filter(|(t, e)| *e == ClockEvent::NewRttMinimum && *t > 4.0 * 86_400.0)
        .count();
    assert!(
        newmins_after_day4 >= 1,
        "the downward return must register as a new minimum"
    );
}

#[test]
fn long_run_with_window_slides_stays_accurate() {
    // Use a small top window so slides happen many times in a short run.
    let mut cfg = ClockConfig::paper_defaults(16.0);
    cfg.top_window = 6.0 * 3600.0; // slide every 3 h
    let sc = Scenario::baseline(1007).with_duration(3.0 * 86_400.0);
    let (errs, _, events) = run(&sc, cfg);
    let slides = events
        .iter()
        .filter(|(_, e)| *e == ClockEvent::WindowSlid)
        .count();
    assert!(slides >= 10, "expected many slides, got {slides}");
    let p = Percentiles::from_data(&errs).unwrap();
    assert!(
        p.p50.abs() < 80e-6,
        "median with frequent slides: {:.1} µs",
        p.p50 * 1e6
    );
}

#[test]
fn deterministic_end_to_end() {
    let sc = Scenario::baseline(1008).with_duration(86_400.0);
    let (a, _, _) = run(&sc, ClockConfig::paper_defaults(16.0));
    let (b, _, _) = run(&sc, ClockConfig::paper_defaults(16.0));
    assert_eq!(a, b, "identical seeds must give identical results");
}

#[test]
fn local_rate_configuration_also_converges() {
    let mut cfg = ClockConfig::paper_defaults(16.0);
    cfg.use_local_rate = true;
    let sc = Scenario::baseline(1009).with_duration(4.0 * 86_400.0);
    let (errs, clock, _) = run(&sc, cfg);
    assert!(clock.status().p_local.is_some(), "local rate must activate");
    let p = Percentiles::from_data(&errs).unwrap();
    assert!(p.p50.abs() < 60e-6);
}

#[test]
fn swclock_baseline_is_worse_on_the_same_trace() {
    use tscclock_repro::swclock::DisciplinedClock;
    let sc = Scenario::baseline(1010).with_duration(4.0 * 86_400.0);
    let (errs, _, _) = run(&sc, ClockConfig::paper_defaults(16.0));
    let tsc_iqr = Percentiles::from_data(&errs).unwrap().iqr();

    let mut sw = DisciplinedClock::default();
    let mut sw_errs = Vec::new();
    let mut n = 0;
    for e in sc.build() {
        if e.lost {
            continue;
        }
        let ta_raw = e.ta_tsc as f64 * 1e-9;
        let tf_raw = e.tf_tsc as f64 * 1e-9;
        sw.process(ta_raw, e.tb, e.te, tf_raw);
        n += 1;
        if n > 1500 {
            sw_errs.push(sw.now(tf_raw) - e.tg);
        }
    }
    let sw_iqr = Percentiles::from_data(&sw_errs).unwrap().iqr();
    // Under calm conditions SW-NTP is serviceable ("for many purposes this
    // SW-NTP clock ... works well", §1) — but the feed-forward clock must
    // still be clearly tighter.
    assert!(
        sw_iqr > 2.0 * tsc_iqr,
        "feed-forward clock must beat the feedback baseline: {:.1} vs {:.1} µs",
        sw_iqr * 1e6,
        tsc_iqr * 1e6
    );
}
