//! Differential property test for the factored-weight incremental offset
//! estimator (see `tscclock::offset`): the O(1) rolling-sum machinery vs
//! the preserved full-pass reference pipeline, with the **rebuild cadence
//! forced down** so the rebuild/absorb boundary — the only place where
//! the incremental and refilled forms of the sums can disagree — is
//! crossed continuously instead of every 1024 packets.
//!
//! Rebuilds are semantically transparent (they recompute exactly what the
//! rolling sums track), so *every* cadence must produce θ̂ within the
//! standard parity budget of the reference, over scenarios that exercise
//! re-basing events (new minima), upward shifts, data gaps and top-window
//! slides.

use proptest::prelude::*;
use tscclock_repro::clock::reference::ReferenceClock;
use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};

proptest! {
    /// θ̂ parity (1e-12 relative + 50 ps floor) between the incremental
    /// estimator at an arbitrary forced rebuild cadence and the full-pass
    /// reference, plus bit-exactness of the branch-free estimates, over
    /// randomized congestion streams with a route shift and a data gap.
    #[test]
    fn incremental_estimator_matches_reference_at_any_rebuild_cadence(
        seed_delays in prop::collection::vec(
            (0.0f64..10e-3, 0.0f64..10e-3, 0.0f64..2e-3), 60..350),
        cadence_idx in 0usize..8,
        shift_at in 60usize..200,
        shift_ms in 0.5f64..3.0,
        gap_at in 40usize..200,
        gap_s in 0.0f64..40_000.0,
    ) {
        let cadence = [1u32, 2, 3, 5, 7, 16, 64, 1024][cadence_idx];
        let mut cfg = ClockConfig::paper_defaults(16.0);
        // Shrunk windows: slides, shifts and re-basing all happen within a
        // few hundred packets, and τ′ = 16 packets keeps the incremental
        // path (not the ≤4-packet stack path) in play.
        cfg.top_window = 80.0 * 16.0;
        cfg.ts_window = 20.0 * 16.0;
        cfg.tau_prime = 16.0 * 16.0;
        cfg.tau_bar = 32.0 * 16.0;
        cfg.w_split = 4;
        cfg.warmup_packets = 16;

        let p_true = 1.0000524e-9;
        let mut optimized = TscNtpClock::new(cfg);
        optimized.set_offset_rebuild_cadence(cadence);
        let mut reference = ReferenceClock::new(cfg);
        let mut t = 0.0f64;
        for (k, &(qf, qb, serr)) in seed_delays.iter().enumerate() {
            t += 16.0;
            if k == gap_at {
                t += gap_s;
            }
            let d = 450e-6 + if k >= shift_at { shift_ms * 1e-3 / 2.0 } else { 0.0 };
            let e = RawExchange {
                ta_tsc: (t / p_true) as u64,
                tb: t + d + qf + serr,
                te: t + d + qf + serr + 20e-6,
                tf_tsc: ((t + 2.0 * d + 20e-6 + qf + qb) / p_true) as u64,
            };
            let a = optimized.process(e);
            let b = reference.process(e);
            prop_assert_eq!(a.is_some(), b.is_some(), "admission diverged at {}", k);
            let (Some(a), Some(b)) = (a, b) else { continue };
            prop_assert_eq!(a.p_hat.to_bits(), b.p_hat.to_bits(),
                "p_hat diverged at {} (cadence {})", k, cadence);
            prop_assert_eq!(a.point_error.to_bits(), b.point_error.to_bits(),
                "point_error diverged at {} (cadence {})", k, cadence);
            let close = |x: f64, y: f64| {
                x == y || (x - y).abs() <= 1e-12 * x.abs().max(y.abs()) + 5e-11
            };
            prop_assert!(close(a.theta_hat, b.theta_hat),
                "theta_hat diverged at {} (cadence {}): {:e} vs {:e}",
                k, cadence, a.theta_hat, b.theta_hat);
        }
    }

    /// Two incremental clocks at *different* cadences must agree with each
    /// other to the same budget — the cadence is an implementation knob,
    /// never a semantic one.
    #[test]
    fn rebuild_cadence_is_semantically_transparent(
        seed_delays in prop::collection::vec(
            (0.0f64..8e-3, 0.0f64..8e-3), 60..250),
        cadence_ia in 0usize..4,
        cadence_ib in 0usize..4,
    ) {
        let cadence_a = [1u32, 3, 17, 1024][cadence_ia];
        let cadence_b = [2u32, 5, 64, 4096][cadence_ib];
        let mut cfg = ClockConfig::paper_defaults(16.0);
        cfg.tau_prime = 16.0 * 16.0;
        cfg.warmup_packets = 16;
        let p_true = 1.0000524e-9;
        let mut ca = TscNtpClock::new(cfg);
        ca.set_offset_rebuild_cadence(cadence_a);
        let mut cb = TscNtpClock::new(cfg);
        cb.set_offset_rebuild_cadence(cadence_b);
        for (k, &(qf, qb)) in seed_delays.iter().enumerate() {
            let t = (k + 1) as f64 * 16.0;
            let d = 450e-6;
            let e = RawExchange {
                ta_tsc: (t / p_true) as u64,
                tb: t + d + qf,
                te: t + d + qf + 20e-6,
                tf_tsc: ((t + 2.0 * d + 20e-6 + qf + qb) / p_true) as u64,
            };
            let (a, b) = (ca.process(e), cb.process(e));
            prop_assert_eq!(a.is_some(), b.is_some());
            let (Some(a), Some(b)) = (a, b) else { continue };
            let close = |x: f64, y: f64| {
                x == y || (x - y).abs() <= 1e-12 * x.abs().max(y.abs()) + 5e-11
            };
            prop_assert!(close(a.theta_hat, b.theta_hat),
                "cadences {} vs {} diverged at {}: {:e} vs {:e}",
                cadence_a, cadence_b, k, a.theta_hat, b.theta_hat);
        }
    }
}
