//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use tscclock_repro::clock::reference::ReferenceClock;
use tscclock_repro::clock::{ClockConfig, RawExchange, TscNtpClock};
use tscclock_repro::ntp::{LeapIndicator, Mode, NtpPacket, NtpShort, NtpTimestamp};
use tscclock_repro::stats::{
    allan_variance, percentile, Histogram, RunningStats, SlidingMin,
};

proptest! {
    /// The NTP packet codec roundtrips every representable header.
    #[test]
    fn packet_codec_roundtrip(
        leap_bits in 0u8..4,
        version in 1u8..5,
        mode_bits in 0u8..8,
        stratum in 0u8..=255,
        poll in -10i8..20,
        precision in -30i8..5,
        root_delay in any::<u32>(),
        root_dispersion in any::<u32>(),
        refid in any::<[u8; 4]>(),
        ts in any::<[u64; 4]>(),
    ) {
        let p = NtpPacket {
            leap: match leap_bits { 0 => LeapIndicator::NoWarning, 1 => LeapIndicator::LastMinute61, 2 => LeapIndicator::LastMinute59, _ => LeapIndicator::Unsynchronized },
            version,
            mode: match mode_bits { 0 => Mode::Reserved, 1 => Mode::SymmetricActive, 2 => Mode::SymmetricPassive, 3 => Mode::Client, 4 => Mode::Server, 5 => Mode::Broadcast, 6 => Mode::Control, _ => Mode::Private },
            stratum,
            poll,
            precision,
            root_delay: NtpShort(root_delay),
            root_dispersion: NtpShort(root_dispersion),
            reference_id: refid,
            reference_ts: NtpTimestamp::from_bits(ts[0]),
            origin_ts: NtpTimestamp::from_bits(ts[1]),
            receive_ts: NtpTimestamp::from_bits(ts[2]),
            transmit_ts: NtpTimestamp::from_bits(ts[3]),
        };
        let decoded = NtpPacket::decode(&p.encode()).unwrap();
        prop_assert_eq!(p, decoded);
    }

    /// Timestamp conversion roundtrips to sub-2ns over the whole era.
    #[test]
    fn ntp_timestamp_roundtrip(s in 1.0f64..4.0e9) {
        let ts = NtpTimestamp::from_ntp_seconds(s);
        prop_assert!((ts.to_ntp_seconds() - s).abs() < 2e-9);
    }

    /// Signed timestamp differences respect magnitude and antisymmetry for
    /// spans within half an era.
    #[test]
    fn ntp_timestamp_diff_antisymmetric(a in 0.0f64..1e9, d in -1e8f64..1e8) {
        let ta = NtpTimestamp::from_ntp_seconds(1e9 + a);
        let tb = NtpTimestamp::from_ntp_seconds(1e9 + a + d);
        let fwd = tb.diff_seconds(ta);
        let back = ta.diff_seconds(tb);
        // tolerance: the f64 inputs near 1e9 s carry ~1.2e-7 s of ULP noise
        prop_assert!((fwd - d).abs() < 5e-7);
        prop_assert!((fwd + back).abs() < 5e-7);
    }

    /// SlidingMin always equals the brute-force window minimum.
    #[test]
    fn sliding_min_matches_naive(
        cap in 1usize..50,
        xs in prop::collection::vec(-1e6f64..1e6, 1..300),
    ) {
        let mut w = SlidingMin::new(cap);
        for (i, &x) in xs.iter().enumerate() {
            w.push(x);
            let lo = i.saturating_sub(cap - 1);
            let naive = xs[lo..=i].iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(w.get(), Some(naive));
        }
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone_and_bounded(
        xs in prop::collection::vec(-1e9f64..1e9, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo).unwrap();
        let b = percentile(&xs, hi).unwrap();
        prop_assert!(a <= b);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min && b <= max);
    }

    /// Allan variance is non-negative and invariant under adding any linear
    /// phase ramp (constant skew is invisible to stability analysis).
    #[test]
    fn allan_invariant_to_linear_ramp(
        xs in prop::collection::vec(-1e-3f64..1e-3, 10..200),
        slope in -1e-3f64..1e-3,
        m in 1usize..5,
    ) {
        prop_assume!(xs.len() > 2 * m);
        let base = allan_variance(&xs, 1.0, m).unwrap();
        prop_assert!(base >= 0.0);
        let ramped: Vec<f64> = xs.iter().enumerate().map(|(i, &x)| x + slope * i as f64).collect();
        let with_ramp = allan_variance(&ramped, 1.0, m).unwrap();
        prop_assert!((base - with_ramp).abs() <= 1e-12 + base * 1e-6);
    }

    /// Histogram conserves counts: total = in-range + under + over.
    #[test]
    fn histogram_conserves_mass(
        xs in prop::collection::vec(-10.0f64..10.0, 0..300),
        nbins in 1usize..40,
    ) {
        let mut h = Histogram::new(-5.0, 5.0, nbins);
        for &x in &xs {
            h.add(x);
        }
        let in_range: u64 = h.counts().iter().sum();
        prop_assert_eq!(h.total(), in_range + h.underflow() + h.overflow());
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    /// RunningStats min ≤ mean ≤ max, and merge equals sequential.
    #[test]
    fn running_stats_invariants(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let all: RunningStats = xs.iter().copied().collect();
        prop_assert!(all.min() <= all.mean() + 1e-9);
        prop_assert!(all.mean() <= all.max() + 1e-9);
        let mut a: RunningStats = xs[..split].iter().copied().collect();
        let b: RunningStats = xs[split..].iter().copied().collect();
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
    }

    /// RTT in counts survives arbitrary counter values including wraps.
    #[test]
    fn rtt_counts_wrapping(ta in any::<u64>(), delta in 1u64..1_000_000_000) {
        let e = RawExchange {
            ta_tsc: ta,
            tb: 0.0,
            te: 0.0,
            tf_tsc: ta.wrapping_add(delta),
        };
        prop_assert_eq!(e.rtt_counts(), delta);
    }

    /// Feeding the clock arbitrary well-formed exchange streams never
    /// panics and keeps every estimate finite.
    #[test]
    fn clock_never_panics_on_plausible_streams(
        seed_delays in prop::collection::vec((0.0f64..20e-3, 0.0f64..20e-3, 0.0f64..5e-3), 10..120),
    ) {
        let p_true = 1.0000524e-9;
        let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
        for (k, &(qf, qb, serr)) in seed_delays.iter().enumerate() {
            let t = (k + 1) as f64 * 16.0;
            let d = 450e-6;
            let e = RawExchange {
                ta_tsc: (t / p_true) as u64,
                tb: t + d + qf + serr,
                te: t + d + qf + serr + 20e-6,
                tf_tsc: ((t + 2.0 * d + 20e-6 + qf + qb) / p_true) as u64,
            };
            if let Some(out) = clock.process(e) {
                prop_assert!(out.p_hat.is_finite() && out.p_hat > 0.0);
                prop_assert!(out.theta_hat.is_finite());
                prop_assert!(out.rtt.is_finite() && out.rtt > 0.0);
            }
        }
        let s = clock.status();
        if let Some(p) = s.p_hat {
            // even adversarial queueing cannot push the rate estimate far:
            // the physically-true period is ~1e-9
            prop_assert!(p > 0.5e-9 && p < 2e-9, "rate estimate diverged: {}", p);
        }
    }

    /// The NtpShort 16.16 format roundtrips within one LSB.
    #[test]
    fn ntp_short_roundtrip(s in 0.0f64..65_000.0) {
        let v = NtpShort::from_seconds(s);
        prop_assert!((v.to_seconds() - s).abs() <= 1.0 / 65_536.0);
    }

    /// Differential test: the optimized O(1)-amortized pipeline must produce
    /// the same estimates as the preserved pre-optimization reference
    /// pipeline (naive full-window rescans) on arbitrary plausible streams.
    ///
    /// The configuration shrinks every window so a few hundred packets
    /// exercise all the rework's machinery: top-window slides (min-deque
    /// recomputation + rate-pair j replacement), new-minimum re-basing
    /// (era/min-event suffix tables vs eager sweeps), upward-shift
    /// detection and re-basing (era reassignment), local-rate sub-window
    /// selection, offset fallback/gap paths, and the fused weighted pass.
    #[test]
    fn optimized_pipeline_matches_reference(
        seed_delays in prop::collection::vec(
            (0.0f64..10e-3, 0.0f64..10e-3, 0.0f64..2e-3), 50..400),
        shift_at in 60usize..200,
        shift_ms in 0.5f64..3.0,
        gap_at in 40usize..200,
        gap_s in 0.0f64..40_000.0,
        use_local_rate in any::<bool>(),
    ) {
        let mut cfg = ClockConfig::paper_defaults(16.0);
        // Shrink every window so slides/shifts happen within a short run.
        cfg.top_window = 80.0 * 16.0;      // top window: 80 packets
        cfg.ts_window = 20.0 * 16.0;       // shift window: 20 packets
        cfg.tau_prime = 16.0 * 16.0;       // offset window: 16 packets
        cfg.tau_bar = 32.0 * 16.0;         // local-rate window: 32 packets
        cfg.w_split = 4;
        cfg.warmup_packets = 16;
        cfg.use_local_rate = use_local_rate;
        differential_case(cfg, &seed_delays, shift_at, shift_ms, gap_at, gap_s)?;
    }

    /// Same differential property on a *coarse-poll geometry*: τ′ collapses
    /// to 2 packets (the offset estimator's stack-buffer path instead of
    /// the ring cache), the local-rate sub-windows to near 1 / far 2
    /// packets (the direct-read path instead of the rolling argmin
    /// deques), and the shift window sits at the `MIN_TS_PACKETS` floor.
    /// The reference pipeline keeps independent dense implementations of
    /// the history, offset and local-rate stages, so this pins those fast
    /// paths' bit-exactness, not just their self-consistency. (The shift
    /// *detector* is shared by both pipelines; its own parked-vs-dense
    /// differential tests — including one with drifting p̂/r̂ — live in
    /// `tscclock::shift`.)
    #[test]
    fn coarse_poll_fast_paths_match_reference(
        seed_delays in prop::collection::vec(
            (0.0f64..10e-3, 0.0f64..10e-3, 0.0f64..2e-3), 50..400),
        shift_at in 60usize..200,
        shift_ms in 0.5f64..3.0,
        gap_at in 40usize..200,
        gap_s in 0.0f64..40_000.0,
        use_local_rate in any::<bool>(),
    ) {
        let mut cfg = ClockConfig::paper_defaults(16.0);
        cfg.top_window = 80.0 * 16.0;      // top window: 80 packets
        cfg.ts_window = 4.0 * 16.0;        // floored up to MIN_TS_PACKETS
        cfg.tau_prime = 2.0 * 16.0;        // offset window: 2 packets
        cfg.tau_bar = 30.0 * 16.0;         // near 1 / far 2 sub-windows
        cfg.w_split = 30;
        cfg.warmup_packets = 16;
        cfg.use_local_rate = use_local_rate;
        differential_case(cfg, &seed_delays, shift_at, shift_ms, gap_at, gap_s)?;
    }
}

/// Drives the optimized and reference pipelines over one generated stream
/// (queueing noise, a permanent upward route change, a data gap) and
/// asserts estimate parity packet by packet.
fn differential_case(
    cfg: ClockConfig,
    seed_delays: &[(f64, f64, f64)],
    shift_at: usize,
    shift_ms: f64,
    gap_at: usize,
    gap_s: f64,
) -> Result<(), proptest::TestCaseError> {
    let p_true = 1.0000524e-9;
    let mut optimized = TscNtpClock::new(cfg);
    let mut reference = ReferenceClock::new(cfg);
    let mut t = 0.0f64;
    for (k, &(qf, qb, serr)) in seed_delays.iter().enumerate() {
        t += 16.0;
        if k == gap_at {
            t += gap_s; // server outage: the §6.1 gap paths
        }
        // permanent upward route change at shift_at
        let d = 450e-6 + if k >= shift_at { shift_ms * 1e-3 / 2.0 } else { 0.0 };
        let e = RawExchange {
            ta_tsc: (t / p_true) as u64,
            tb: t + d + qf + serr,
            te: t + d + qf + serr + 20e-6,
            tf_tsc: ((t + 2.0 * d + 20e-6 + qf + qb) / p_true) as u64,
        };
        let a = optimized.process(e);
        let b = reference.process(e);
        prop_assert_eq!(a.is_some(), b.is_some(), "admission diverged at {}", k);
        let (Some(a), Some(b)) = (a, b) else { continue };
        // Rate, point-error and naive-offset paths contain no
        // reassociated arithmetic, so they must agree BIT-EXACTLY.
        prop_assert_eq!(a.p_hat.to_bits(), b.p_hat.to_bits(),
            "p_hat diverged at {}: {:e} vs {:e}", k, a.p_hat, b.p_hat);
        prop_assert_eq!(a.point_error.to_bits(), b.point_error.to_bits(),
            "point_error diverged at {}: {:e} vs {:e}", k, a.point_error, b.point_error);
        prop_assert_eq!(a.theta_naive.to_bits(), b.theta_naive.to_bits(),
            "theta_naive diverged at {}", k);
        prop_assert_eq!(a.p_local.is_some(), b.p_local.is_some(),
            "local-rate activation diverged at {}", k);
        if let (Some(pa), Some(pb)) = (a.p_local, b.p_local) {
            prop_assert_eq!(pa.to_bits(), pb.to_bits(), "p_local diverged at {}", k);
        }
        // θ̂ runs through the vectorized weight kernel (reassociated
        // sums, fast exp, FMA contraction) and carries estimates
        // forward across packets, so ulp-level differences accumulate
        // along chains: allow 1e-12 relative with a 50 ps absolute
        // floor — five orders of magnitude below the paper's µs-scale
        // clock errors.
        let close = |x: f64, y: f64| {
            x == y || (x - y).abs() <= 1e-12 * x.abs().max(y.abs()) + 5e-11
        };
        prop_assert!(close(a.theta_hat, b.theta_hat),
            "theta_hat diverged at {}: {:e} vs {:e}", k, a.theta_hat, b.theta_hat);
    }
    // Every retained record's resolved point error must match the
    // eagerly re-based reference history, record by record.
    let p = optimized.status().p_hat.unwrap_or(p_true);
    let opt_hist = optimized.history();
    for rb in reference.history().iter() {
        let ra = opt_hist.get(rb.idx).expect("same retention");
        let (ea, eb) = (ra.point_error(p), rb.point_error(p));
        prop_assert_eq!(
            ea.to_bits(), eb.to_bits(),
            "stored point error diverged at idx {}: {:e} vs {:e}", rb.idx, ea, eb
        );
    }
    Ok(())
}
