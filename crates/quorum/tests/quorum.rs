//! Integration tests of the quorum layer against the real network
//! simulator: the K-identical sanity anchor, the ISSUE's fault-injection
//! acceptance scenario, and a property test over quorum sizes, fault
//! schedules and combiner parameters.

use proptest::prelude::*;
use tsc_netsim::{
    CongestionParams, LevelShift, MultiServerScenario, RoundSample, Scenario, ServerFault,
    ServerKind, ServerPath,
};
use tscclock::{RawExchange, TscNtpClock};
use tsc_quorum::{QuorumClock, QuorumConfig};

/// Runs a multi-server scenario through a quorum clock, collecting for
/// each round: the quorum output plus (truth) the true time at each
/// delivered `Tf` read.
struct Replay {
    /// Per-round: (output, per-server sample).
    rounds: Vec<(tsc_quorum::QuorumOutput, Vec<RoundSample>)>,
}

fn replay(sc: &MultiServerScenario, cfg: QuorumConfig) -> (QuorumClock, Replay) {
    let mut q = QuorumClock::new(sc.k(), cfg);
    let mut stream = sc.stream();
    let mut buf = Vec::new();
    let mut round_in: Vec<Option<RawExchange>> = Vec::new();
    let mut rounds = Vec::new();
    while stream.next_round(&mut buf) {
        round_in.clear();
        round_in.extend(buf.iter().map(|s| s.delivered.then_some(s.raw)));
        let out = q.process_round(&round_in);
        rounds.push((out, buf.clone()));
    }
    (q, Replay { rounds })
}

/// Mean absolute error of server `k`'s own clock over the last `tail`
/// combined rounds, measured against the simulator's ground truth at each
/// round's delivered `Tf` read of that server.
fn server_tail_error(q: &QuorumClock, r: &Replay, k: usize, tail: usize) -> f64 {
    let xs: Vec<f64> = r
        .rounds
        .iter()
        .rev()
        .filter(|(_, samples)| samples[k].delivered)
        .take(tail)
        .map(|(_, samples)| {
            let s = &samples[k];
            let ca = q.server(k).absolute_time(s.raw.tf_tsc).expect("aligned");
            (ca - s.tf_read).abs()
        })
        .collect();
    assert!(!xs.is_empty(), "server {k} never delivered");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean absolute error of the *combined* clock over the last `tail`
/// combined rounds, evaluated at each round's reference instant.
fn combined_tail_error(r: &Replay, tail: usize) -> f64 {
    let xs: Vec<f64> = r
        .rounds
        .iter()
        .rev()
        .filter(|(out, _)| out.combined)
        .take(tail)
        .map(|(out, samples)| {
            // truth at tsc_ref: the tf_read of the sample that supplied it
            let truth = samples
                .iter()
                .filter(|s| s.delivered && s.raw.tf_tsc == out.tsc_ref)
                .map(|s| s.tf_read)
                .next()
                .expect("tsc_ref comes from a delivered sample");
            (out.utc_ref - truth).abs()
        })
        .collect();
    assert!(!xs.is_empty(), "no combined rounds");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The u32-mask capacity invariant is encoded in two crates (tsc-quorum
/// must not depend on the simulator); they must never drift apart.
#[test]
fn max_servers_matches_netsim() {
    assert_eq!(tsc_quorum::MAX_SERVERS, tsc_netsim::MAX_SERVERS);
}

/// Sanity anchor: a quorum of K identical healthy members fed the *same*
/// exchange stream must be bit-near (≤ 1e-12 relative + 50 ps floor) the
/// single-server clock on those exchanges — the combination must add
/// nothing when there is nothing to combine.
#[test]
fn k_identical_members_are_bit_near_the_single_clock() {
    let sc = Scenario::baseline(5).with_duration(8.0 * 3600.0);
    let cfg = QuorumConfig::paper_defaults(sc.poll_period);
    for k in [1usize, 3, 5] {
        let mut q = QuorumClock::new(k, cfg);
        let mut single = TscNtpClock::new(cfg.clock);
        let mut round: Vec<Option<RawExchange>> = Vec::new();
        let mut checked = 0usize;
        for ex in sc.stream().raw() {
            single.process(ex);
            round.clear();
            round.resize(k, Some(ex));
            let out = q.process_round(&round);
            if out.combined {
                let want = single.absolute_time(out.tsc_ref).expect("aligned");
                let err = (out.utc_ref - want).abs();
                let bound = 1e-12 * want.abs() + 50e-12;
                assert!(
                    err <= bound,
                    "K={k}: combined {} vs single {want} (err {err:.3e})",
                    out.utc_ref
                );
                checked += 1;
            }
        }
        assert!(checked > 1000, "K={k}: only {checked} combined rounds");
    }
}

/// The ISSUE's fault-injection acceptance scenario: 3 servers, one
/// develops a ≥1 ms mid-run asymmetry step. The combiner must demote the
/// faulty server within 200 exchanges, and the combined clock's final
/// error must stay within 1.5× of the best healthy member's.
#[test]
fn asymmetry_step_is_demoted_within_200_exchanges_and_error_contained() {
    // ServerExt paths: their ≈6.8 ms backward minimum has room for the
    // −1 ms leg of a 2 ms asymmetry step, so the fault is *truly* silent
    // (RTT bit-unchanged) — the hardest version of the scenario.
    let onset = 6.0 * 3600.0;
    let mut sc = MultiServerScenario::baseline(3, 902).with_duration(12.0 * 3600.0);
    for k in 0..3 {
        sc.servers[k] = ServerPath::new(ServerKind::Ext);
    }
    sc = sc.with_server_path(
        2,
        ServerPath::new(ServerKind::Ext)
            .with_shift(LevelShift::asymmetric(onset, None, 2.0e-3)),
    );
    let (q, r) = replay(&sc, QuorumConfig::paper_defaults(sc.poll_period));

    // demotion latency: rounds (= exchanges of the faulty server) from
    // fault onset to the first round with server 2 demoted
    let onset_round = (onset / sc.poll_period) as u64;
    let demoted_at = r
        .rounds
        .iter()
        .find(|(out, _)| out.round > onset_round && out.demoted_mask & 0b100 != 0)
        .map(|(out, _)| out.round)
        .expect("faulty server must be demoted");
    let latency = demoted_at - onset_round;
    assert!(latency <= 200, "demotion took {latency} exchanges");
    // ... and it stays demoted to the end (the fault is permanent)
    let (last_out, _) = r.rounds.last().unwrap();
    assert!(last_out.demoted_mask & 0b100 != 0);
    assert_eq!(last_out.demoted_mask & 0b011, 0, "healthy members demoted");

    // final accuracy: combined vs best healthy member, tail-averaged
    let tail = 50;
    let e_combined = combined_tail_error(&r, tail);
    let e_best = server_tail_error(&q, &r, 0, tail).min(server_tail_error(&q, &r, 1, tail));
    let e_faulty = server_tail_error(&q, &r, 2, tail);
    assert!(
        e_combined <= 1.5 * e_best,
        "combined {e_combined:.2e} vs best healthy {e_best:.2e}"
    );
    // sanity of the scenario itself: the faulted member's own clock is
    // dragged by ~the asymmetry bias, an order beyond the healthy ones
    assert!(
        e_faulty > 4.0 * e_best,
        "fault had no effect? faulty {e_faulty:.2e}, healthy {e_best:.2e}"
    );
}

/// A server that goes dark mid-run is demoted on staleness and the quorum
/// keeps serving time from the survivors.
#[test]
fn outage_demotes_and_quorum_rides_through() {
    let sc = MultiServerScenario::baseline(3, 77)
        .with_duration(10.0 * 3600.0)
        .with_server_path(
            1,
            ServerPath::new(ServerKind::Int).with_outage(4.0 * 3600.0, 9.0 * 3600.0),
        );
    let (q, r) = replay(&sc, QuorumConfig::paper_defaults(sc.poll_period));
    let dark = r
        .rounds
        .iter()
        .filter(|(out, _)| {
            let t = out.round as f64 * sc.poll_period;
            (4.0 * 3600.0..9.0 * 3600.0).contains(&t)
        })
        .collect::<Vec<_>>();
    assert!(dark.iter().all(|(out, _)| out.delivered_mask & 0b010 == 0));
    assert!(
        dark.iter().filter(|(out, _)| out.combined).count() > dark.len() * 9 / 10,
        "quorum must keep combining through the outage"
    );
    assert!(
        dark.last().unwrap().0.demoted_mask & 0b010 != 0,
        "dark server must be demoted"
    );
    let e = combined_tail_error(&r, 50);
    assert!(e < 200e-6, "combined error after outage: {e:.2e}");
    let _ = q;
}

proptest! {
    /// Over quorum sizes, fault schedules and combiner parameters: the
    /// combined clock's tail error never exceeds the best healthy
    /// member's by more than that member's disagreement tolerance (its
    /// point-error-bound-derived allowance).
    #[test]
    fn combined_error_bounded_by_best_healthy_plus_tolerance(
        k in 1usize..=5,
        seed in 0u64..1000,
        fault_kind in 0u8..4,
        tol_mult in 1.0f64..4.0,
        tol_floor in 100e-6f64..400e-6,
    ) {
        let mut sc = MultiServerScenario::baseline(k, seed).with_duration(6.0 * 3600.0);
        // fault a strict minority (the quorum premise)
        let faulted = (k - 1) / 2;
        for f in 0..faulted {
            let path = ServerPath::new(ServerKind::Int);
            let onset = 2.0 * 3600.0 + f as f64 * 600.0;
            sc.servers[k - 1 - f] = match fault_kind {
                0 => path.with_shift(LevelShift::asymmetric(onset, None, 1.5e-3)),
                1 => path.with_outage(onset, onset + 2.0 * 3600.0),
                2 => path.with_fault(ServerFault {
                    start: onset,
                    end: onset + 1800.0,
                    offset: 0.05,
                }),
                _ => path.with_shift(LevelShift::forward_only(onset, None, 1.2e-3)),
            };
        }
        let mut cfg = QuorumConfig::paper_defaults(sc.poll_period);
        cfg.combiner.tol_mult = tol_mult;
        cfg.combiner.tol_floor = tol_floor;
        let (q, r) = replay(&sc, cfg);
        let tail = 40;
        let e_combined = combined_tail_error(&r, tail);
        let healthy = 0..(k - faulted);
        let (mut e_best, mut best_k) = (f64::INFINITY, 0);
        for h in healthy {
            let e = server_tail_error(&q, &r, h, tail);
            if e < e_best {
                e_best = e;
                best_k = h;
            }
        }
        let allowance = cfg.combiner.tolerance(q.point_error_bound(best_k));
        prop_assert!(
            e_combined <= e_best + allowance,
            "combined {:.2e} vs best healthy {:.2e} + allowance {:.2e}",
            e_combined, e_best, allowance
        );
    }
}

/// Shared-bottleneck congestion inflates every path at once; the quorum
/// must not demote anybody for a correlated slowdown.
#[test]
fn shared_bottleneck_does_not_demote_healthy_servers() {
    let sc = MultiServerScenario::baseline(3, 55)
        .with_duration(8.0 * 3600.0)
        .with_bottleneck(CongestionParams {
            mean_off: 900.0,
            mean_on: 240.0,
            scale: 1.5e-3,
            shape: 1.5,
        });
    let (q, r) = replay(&sc, QuorumConfig::paper_defaults(sc.poll_period));
    let (last_out, _) = r.rounds.last().unwrap();
    assert_eq!(
        last_out.demoted_mask, 0,
        "correlated congestion demoted someone (trusts: {:?})",
        (0..3).map(|k| q.trust(k)).collect::<Vec<_>>()
    );
    let e = combined_tail_error(&r, 50);
    assert!(e < 500e-6, "combined error under shared congestion: {e:.2e}");
}
