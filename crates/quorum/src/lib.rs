//! # tsc-quorum — multi-server quorum synchronization
//!
//! The paper's TSCclock synchronizes against a *single* NTP server and
//! §6 catalogues everything that can go wrong on the server side: upward
//! RTT shifts, path-asymmetry changes, server clock faults, outages. A
//! production host polls **K servers** and must detect and exclude the
//! bad ones. This crate is that layer: it runs K independent, unmodified
//! [`tscclock::TscNtpClock`] instances — one per server, all reading the
//! same TSC/oscillator timeline — and fuses them into one combined clock.
//!
//! ```text
//!   round r: [Option<RawExchange>; K]   (one poll of every server)
//!        │ per-server, unchanged §5–§6 pipeline
//!        ▼
//!   TscNtpClock k  ──►  y_k = Ca_k(TSC_ref)   per-server absolute time
//!        │                    │
//!        │   HealthTracker k  │  trust w_k, point-error bound
//!        ▼                    ▼
//!   weighted median m ── exclude |y_k − m| > tol_k ── trimmed mean
//!        │
//!        ▼
//!   combined clock: Ca(t) = y* + (TSC(t) − TSC_ref)·p̂*
//! ```
//!
//! Two mechanisms cover the two classes of server failure:
//!
//! * **Self-evident degradation** (congestion, upward shifts, loss,
//!   outages) is visible in the server's own outputs; the
//!   [`health::HealthTracker`] folds those signals into a trust score
//!   with hysteresis, and trust weights the combination.
//! * **Silent lying** (a server whose path asymmetry stepped, or whose
//!   clock is simply wrong) is *invisible* in every self-reported figure —
//!   §4.3 proves asymmetry error cannot be measured from one server. The
//!   [`combine`] stage catches it by disagreement: a reading further from
//!   the quorum's weighted median than the server's own point-error-derived
//!   tolerance is excluded outright, and sustained exclusion demotes.
//!
//! Offsets of different clocks are **not** directly comparable — each
//! clock's `θ̂` is relative to its own alignment constant `C̄` — so the
//! combiner fuses *absolute-time readings* `Ca_k(TSC_ref)` evaluated at a
//! common counter instant (the round's latest receive timestamp), which
//! are comparable by construction.
//!
//! Everything is deterministic: a `QuorumClock` is a pure function of its
//! input rounds, so fleet replays digest bit-identically at any thread
//! count (see `tsc-fleet`).

pub mod combine;
pub mod health;

pub use combine::{Candidate, Combination, CombinerConfig};
pub use health::{HealthConfig, HealthTracker, RoundObservation};

use tsc_telemetry as telemetry;
use tscclock::snapshot::{self, SnapshotReader, SnapshotWriter};
use tscclock::{ClockConfig, ClockEvent, RawExchange, SnapshotError, TscNtpClock};

/// Maximum quorum size (per-server flags live in `u32` masks). Must stay
/// equal to `tsc_netsim::MAX_SERVERS` — this crate deliberately does not
/// depend on the simulator, so the invariant is enforced by a dev-test
/// instead of a re-export.
pub const MAX_SERVERS: usize = 32;

/// Full parameter set of a quorum clock.
#[derive(Debug, Clone, Copy)]
pub struct QuorumConfig {
    /// Per-server clock parameters (identical for every member).
    pub clock: ClockConfig,
    /// Health-scoring parameters.
    pub health: HealthConfig,
    /// Combiner parameters.
    pub combiner: CombinerConfig,
}

impl QuorumConfig {
    /// Paper-default clocks with default health/combiner tuning.
    pub fn paper_defaults(poll_period: f64) -> Self {
        Self {
            clock: ClockConfig::paper_defaults(poll_period),
            health: HealthConfig::default(),
            combiner: CombinerConfig::default(),
        }
    }

    /// Validates all three parameter groups.
    pub fn validate(&self) -> Result<(), String> {
        self.clock.validate()?;
        self.health.validate()?;
        self.combiner.validate()
    }
}

/// Last successful combination: the combined clock's state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Combined {
    tsc_ref: u64,
    utc_ref: f64,
    p_hat: f64,
}

/// One server slot: its clock and its health state.
struct ServerSlot {
    clock: TscNtpClock,
    health: HealthTracker,
}

/// Per-round output of [`QuorumClock::process_round`]. Per-server flags
/// are bitmasks over server indices (bit `k` = server `k`), so the output
/// is `Copy` and digest-friendly at any quorum size up to [`MAX_SERVERS`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuorumOutput {
    /// Round counter (1-based after the first call).
    pub round: u64,
    /// Servers whose poll was answered this round.
    pub delivered_mask: u32,
    /// Servers whose clock was bootstrapped enough to offer a reading.
    pub candidate_mask: u32,
    /// Candidates excluded for disagreeing with the quorum median.
    pub excluded_mask: u32,
    /// Servers currently demoted (after this round's health update).
    pub demoted_mask: u32,
    /// `true` when a combination was produced this round.
    pub combined: bool,
    /// Reference counter instant of the combination (0 when `!combined`).
    pub tsc_ref: u64,
    /// Combined absolute time at `tsc_ref` (NaN when `!combined`).
    pub utc_ref: f64,
    /// Combined rate estimate (NaN when `!combined`).
    pub p_hat: f64,
}

/// K per-server TSC-NTP clocks plus health scoring and robust
/// combination; see the crate docs.
pub struct QuorumClock {
    cfg: QuorumConfig,
    servers: Vec<ServerSlot>,
    round: u64,
    last: Option<Combined>,
    /// Reused per-round scratch.
    candidates: Vec<Candidate>,
    scratch: Vec<(f64, f64)>,
}

impl QuorumClock {
    /// A quorum of `k` identically-configured clocks.
    ///
    /// # Panics
    /// Panics when `k` is 0 or exceeds [`MAX_SERVERS`], or when the
    /// configuration fails [`QuorumConfig::validate`].
    pub fn new(k: usize, cfg: QuorumConfig) -> Self {
        assert!(
            (1..=MAX_SERVERS).contains(&k),
            "quorum size must be 1..={MAX_SERVERS}"
        );
        if let Err(e) = cfg.validate() {
            panic!("invalid quorum configuration: {e}");
        }
        Self {
            cfg,
            servers: (0..k)
                .map(|_| ServerSlot {
                    clock: TscNtpClock::new(cfg.clock),
                    health: HealthTracker::new(),
                })
                .collect(),
            round: 0,
            last: None,
            candidates: Vec::with_capacity(k),
            scratch: Vec::with_capacity(k),
        }
    }

    /// Quorum size K.
    pub fn k(&self) -> usize {
        self.servers.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &QuorumConfig {
        &self.cfg
    }

    /// Server `k`'s clock (read-only; the quorum owns its ingestion).
    pub fn server(&self, k: usize) -> &TscNtpClock {
        &self.servers[k].clock
    }

    /// Server `k`'s current trust score.
    pub fn trust(&self, k: usize) -> f64 {
        self.servers[k].health.trust()
    }

    /// Whether server `k` is currently demoted.
    pub fn demoted(&self, k: usize) -> bool {
        self.servers[k].health.demoted()
    }

    /// Server `k`'s point-error bound (the basis of its disagreement
    /// tolerance).
    pub fn point_error_bound(&self, k: usize) -> f64 {
        self.servers[k].health.point_error_bound(&self.cfg.health)
    }

    /// The combined **absolute clock**: `Ca(t) = y* + (TSC(t) − TSC_ref)·p̂*`,
    /// extrapolated from the last combination. `None` before the first one.
    pub fn absolute_time(&self, tsc: u64) -> Option<f64> {
        let c = self.last?;
        Some(c.utc_ref + (tsc.wrapping_sub(c.tsc_ref) as i64) as f64 * c.p_hat)
    }

    /// The combined rate estimate. `None` before the first combination.
    pub fn p_hat(&self) -> Option<f64> {
        self.last.map(|c| c.p_hat)
    }

    /// Feeds one round — one `Option<RawExchange>` per server, `None` for
    /// an unanswered poll — through every member clock, updates health,
    /// and re-combines.
    ///
    /// # Panics
    /// Panics when `round.len() != self.k()`.
    pub fn process_round(&mut self, round: &[Option<RawExchange>]) -> QuorumOutput {
        assert_eq!(round.len(), self.servers.len(), "one entry per server");
        self.round += 1;

        // 1. Per-server ingestion (the unchanged §5–§6 pipeline).
        let mut delivered_mask = 0u32;
        let mut tsc_ref: Option<u64> = None;
        let mut obs = [RoundObservation::default(); MAX_SERVERS];
        for (k, ex) in round.iter().enumerate() {
            let Some(ex) = ex else { continue };
            delivered_mask |= 1 << k;
            obs[k].delivered = true;
            tsc_ref = Some(tsc_ref.map_or(ex.tf_tsc, |t: u64| t.max(ex.tf_tsc)));
            if let Some(out) = self.servers[k].clock.process(*ex) {
                obs[k].point_error = Some(out.point_error);
                obs[k].upward_shift = out.events.contains(ClockEvent::UpwardShift);
            }
        }

        // 2. Candidates: every bootstrapped clock's absolute reading at
        // the shared reference instant, weighted by (pre-update) trust.
        let mut candidate_mask = 0u32;
        let mut excluded_mask = 0u32;
        let mut combined: Option<Combined> = None;
        if let Some(tsc_ref) = tsc_ref {
            self.candidates.clear();
            for (k, s) in self.servers.iter().enumerate() {
                let (Some(y), Some(p)) = (s.clock.absolute_time(tsc_ref), s.clock.p_hat())
                else {
                    continue;
                };
                candidate_mask |= 1 << k;
                self.candidates.push(Candidate {
                    server: k,
                    value: y,
                    rate: p,
                    weight: if s.health.demoted() { 0.0 } else { s.health.trust() },
                    tolerance: self
                        .cfg
                        .combiner
                        .tolerance(s.health.point_error_bound(&self.cfg.health)),
                });
            }
            // 3. Robust combination.
            if !self.candidates.is_empty() {
                let c = combine::combine(&self.candidates, &mut self.scratch);
                excluded_mask = c.excluded_mask;
                if excluded_mask != 0 {
                    telemetry::add(
                        telemetry::Ctr::QuorumExclusions,
                        excluded_mask.count_ones() as u64,
                    );
                    telemetry::event(
                        telemetry::EventKind::CombinerExclusion,
                        self.round,
                        excluded_mask as u64,
                        0,
                    );
                }
                combined = Some(Combined {
                    tsc_ref,
                    utc_ref: c.value,
                    p_hat: c.rate,
                });
                self.last = combined;
            }
        }

        // 4. Health update (uses this round's exclusion verdicts).
        let mut demoted_mask = 0u32;
        for (k, s) in self.servers.iter_mut().enumerate() {
            obs[k].excluded = excluded_mask & (1 << k) != 0;
            let was_demoted = s.health.demoted();
            s.health.observe(&self.cfg.health, obs[k]);
            if s.health.demoted() {
                demoted_mask |= 1 << k;
                if !was_demoted {
                    telemetry::add(telemetry::Ctr::QuorumDemotions, 1);
                    telemetry::event(
                        telemetry::EventKind::TrustDemoted,
                        self.round,
                        k as u64,
                        s.health.trust().to_bits(),
                    );
                }
            } else if was_demoted {
                telemetry::add(telemetry::Ctr::QuorumReadmissions, 1);
                telemetry::event(
                    telemetry::EventKind::TrustReadmitted,
                    self.round,
                    k as u64,
                    s.health.trust().to_bits(),
                );
            }
        }

        QuorumOutput {
            round: self.round,
            delivered_mask,
            candidate_mask,
            excluded_mask,
            demoted_mask,
            combined: combined.is_some(),
            tsc_ref: combined.map_or(0, |c| c.tsc_ref),
            utc_ref: combined.map_or(f64::NAN, |c| c.utc_ref),
            p_hat: combined.map_or(f64::NAN, |c| c.p_hat),
        }
    }

    /// Serializes the full quorum state — config, every member clock and
    /// its health tracker, the round counter and the last combination —
    /// into a versioned, checksummed snapshot envelope
    /// ([`tscclock::snapshot::kind::QUORUM`]).
    ///
    /// [`QuorumClock::restore`] of the result resumes **bit-identically**:
    /// feeding the restored quorum the same remaining rounds produces the
    /// same [`QuorumOutput`] bits as the uninterrupted run. Per-round
    /// scratch (`candidates`, the combiner sort buffer) is rebuilt empty —
    /// it is dead between rounds.
    pub fn snapshot(&self) -> Vec<u8> {
        let tm = telemetry::StageTimer::start(telemetry::Hist::SealNs);
        let mut w = SnapshotWriter::new();
        self.cfg.clock.save_state(&mut w);
        self.cfg.health.save_state(&mut w);
        self.cfg.combiner.save_state(&mut w);
        w.put_usize(self.servers.len());
        for s in &self.servers {
            s.clock.save_state(&mut w);
            s.health.save_state(&mut w);
        }
        w.put_u64(self.round);
        match self.last {
            Some(c) => {
                w.put_u8(1);
                w.put_u64(c.tsc_ref);
                w.put_f64(c.utc_ref);
                w.put_f64(c.p_hat);
            }
            None => w.put_u8(0),
        }
        let blob = w.seal(snapshot::kind::QUORUM);
        tm.stop();
        telemetry::add(telemetry::Ctr::SnapshotSeals, 1);
        blob
    }

    /// Restores a quorum from a [`QuorumClock::snapshot`] blob.
    ///
    /// Every corruption — truncation, bit flips, foreign or
    /// version-mismatched envelopes, semantically inconsistent state —
    /// yields a typed [`SnapshotError`]; callers degrade to a cold
    /// [`QuorumClock::new`] instead of running a wrong clock.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let tm = telemetry::StageTimer::start(telemetry::Hist::RestoreNs);
        let result = Self::restore_inner(bytes);
        tm.stop();
        match &result {
            Ok(_) => telemetry::add(telemetry::Ctr::SnapshotRestores, 1),
            Err(e) => snapshot::record_restore_failure(e, bytes.len()),
        }
        result
    }

    fn restore_inner(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = snapshot::open_envelope(bytes, snapshot::kind::QUORUM)?;
        let mut r = SnapshotReader::new(payload);
        let clock_cfg = ClockConfig::load_state(&mut r)?;
        let health_cfg = HealthConfig::load_state(&mut r)?;
        let combiner_cfg = CombinerConfig::load_state(&mut r)?;
        let cfg = QuorumConfig {
            clock: clock_cfg,
            health: health_cfg,
            combiner: combiner_cfg,
        };
        let k = r.get_usize()?;
        if !(1..=MAX_SERVERS).contains(&k) {
            return Err(SnapshotError::Invalid("quorum size out of range"));
        }
        let mut servers = Vec::with_capacity(k);
        for _ in 0..k {
            servers.push(ServerSlot {
                clock: TscNtpClock::load_state(&mut r)?,
                health: HealthTracker::load_state(&mut r)?,
            });
        }
        let round = r.get_u64()?;
        let last = match r.get_u8()? {
            0 => None,
            1 => Some(Combined {
                tsc_ref: r.get_u64()?,
                utc_ref: r.get_f64()?,
                p_hat: r.get_f64()?,
            }),
            _ => return Err(SnapshotError::Invalid("option tag not 0/1")),
        };
        r.finish()?;
        Ok(Self {
            cfg,
            servers,
            round,
            last,
            candidates: Vec::with_capacity(k),
            scratch: Vec::with_capacity(k),
        })
    }

    /// Batched ingest: feeds `rounds.len() / K` consecutive rounds — a
    /// flattened row-major slice, `K` entries per round — appending one
    /// [`QuorumOutput`] per round to `out`; returns how many were
    /// appended.
    ///
    /// Results are **bit-identical** to calling
    /// [`QuorumClock::process_round`] in a loop. This is the fleet-replay
    /// ingest path: one output buffer is reused across a whole entry, the
    /// flat input keeps consecutive rounds contiguous in cache, and the
    /// per-round scratch (candidates, combiner sort buffer, observation
    /// row) is already reused inside `process_round`, so a warmed-up
    /// replay makes no allocation at all.
    ///
    /// # Panics
    /// Panics when `rounds.len()` is not a multiple of the quorum size.
    pub fn process_batch(
        &mut self,
        rounds: &[Option<RawExchange>],
        out: &mut Vec<QuorumOutput>,
    ) -> usize {
        let k = self.servers.len();
        assert_eq!(rounds.len() % k, 0, "flattened batch must be whole rounds");
        let before = out.len();
        out.reserve(rounds.len() / k);
        for round in rounds.chunks_exact(k) {
            let o = self.process_round(round);
            out.push(o);
        }
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P_TRUE: f64 = 1.0000524e-9;

    /// Ideal symmetric exchange at true time `t` with optional extra
    /// one-way bias `asym` added to the forward path (server stamps late).
    fn ex(t: f64, asym: f64) -> RawExchange {
        let d = 450e-6;
        let s = 20e-6;
        RawExchange {
            ta_tsc: (t / P_TRUE).round() as u64,
            tb: t + d + asym + 20e-6,
            te: t + d + asym + 20e-6 + s,
            tf_tsc: ((t + 2.0 * d + s + 40e-6) / P_TRUE).round() as u64,
        }
    }

    fn quorum(k: usize) -> QuorumClock {
        QuorumClock::new(k, QuorumConfig::paper_defaults(16.0))
    }

    #[test]
    fn identical_members_match_single_clock_exactly() {
        let mut q = quorum(3);
        let mut single = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
        for i in 0..600u64 {
            let e = ex(i as f64 * 16.0, 0.0);
            let out = q.process_round(&[Some(e), Some(e), Some(e)]);
            single.process(e);
            if out.combined {
                let want = single.absolute_time(out.tsc_ref).expect("aligned");
                assert_eq!(
                    out.utc_ref.to_bits(),
                    want.to_bits(),
                    "round {i}: combined {} vs single {want}",
                    out.utc_ref
                );
            }
        }
        assert!(q.absolute_time(1_000_000).is_some());
    }

    #[test]
    fn lying_server_is_excluded_and_demoted() {
        let mut q = quorum(3);
        // healthy warm-up
        for i in 0..400u64 {
            let e = ex(i as f64 * 16.0, 0.0);
            q.process_round(&[Some(e), Some(e), Some(e)]);
        }
        assert!((0..3).all(|k| !q.demoted(k)));
        // server 2 develops a 2 ms asymmetry (its stamps shift silently)
        let mut first_excluded = None;
        let mut first_demoted = None;
        for i in 400..800u64 {
            let t = i as f64 * 16.0;
            let good = ex(t, 0.0);
            let bad = ex(t, 2.0e-3);
            let out = q.process_round(&[Some(good), Some(good), Some(bad)]);
            if out.excluded_mask & 0b100 != 0 && first_excluded.is_none() {
                first_excluded = Some(i - 400);
            }
            if out.demoted_mask & 0b100 != 0 && first_demoted.is_none() {
                first_demoted = Some(i - 400);
            }
            assert_eq!(out.excluded_mask & 0b011, 0, "healthy servers must survive");
        }
        let exc = first_excluded.expect("lying server must be excluded");
        let dem = first_demoted.expect("lying server must be demoted");
        assert!(dem <= 200, "demotion took {dem} rounds");
        assert!(exc <= dem);
        assert!(q.trust(2) < 0.2, "trust {}", q.trust(2));
        assert!(q.trust(0) > 0.7 && q.trust(1) > 0.7);
        // the combined clock still tracks the healthy pair
        let t = 800.0 * 16.0;
        let e = ex(t, 0.0);
        let ca = q.absolute_time(e.tf_tsc).unwrap();
        let t_true = e.tf_tsc as f64 * P_TRUE;
        assert!(
            (ca - t_true).abs() < 300e-6,
            "combined clock dragged by liar: err {}",
            ca - t_true
        );
    }

    #[test]
    fn missing_polls_are_tolerated_and_outage_demotes() {
        let mut q = quorum(2);
        for i in 0..300u64 {
            let e = ex(i as f64 * 16.0, 0.0);
            q.process_round(&[Some(e), Some(e)]);
        }
        // server 1 goes dark
        for i in 300..500u64 {
            let e = ex(i as f64 * 16.0, 0.0);
            let out = q.process_round(&[Some(e), None]);
            assert!(out.combined, "quorum must keep combining through the outage");
        }
        assert!(q.demoted(1), "a 200-round outage must demote");
        assert!(!q.demoted(0));
        // recovery: the server returns healthy and is eventually re-admitted
        for i in 500..800u64 {
            let e = ex(i as f64 * 16.0, 0.0);
            q.process_round(&[Some(e), Some(e)]);
        }
        assert!(!q.demoted(1), "recovered server must be re-admitted");
    }

    #[test]
    fn no_combination_before_bootstrap_or_without_deliveries() {
        let mut q = quorum(2);
        let out = q.process_round(&[None, None]);
        assert!(!out.combined);
        assert!(q.absolute_time(0).is_none());
        assert!(q.p_hat().is_none());
        // one round delivers: clocks hold their first packet (bootstrap
        // needs two), so still no candidates
        let out = q.process_round(&[Some(ex(16.0, 0.0)), Some(ex(16.0, 0.0))]);
        assert!(!out.combined);
        // second delivery bootstraps both clocks
        let out = q.process_round(&[Some(ex(32.0, 0.0)), Some(ex(32.0, 0.0))]);
        assert!(out.combined);
        assert_eq!(out.candidate_mask, 0b11);
    }

    #[test]
    #[should_panic(expected = "one entry per server")]
    fn wrong_round_width_panics() {
        quorum(2).process_round(&[None]);
    }

    #[test]
    fn process_batch_is_bit_identical_to_round_loop() {
        // same rounds (including losses and a lying server), fed per-round
        // vs flattened in various batch sizes: outputs and final state
        // must match bit-for-bit
        let k = 3usize;
        let rounds: Vec<Option<RawExchange>> = (0..500u64)
            .flat_map(|i| {
                let t = i as f64 * 16.0;
                let asym = if i > 250 { 2e-3 } else { 0.0 };
                [
                    Some(ex(t, 0.0)),
                    (!i.is_multiple_of(11)).then_some(ex(t, 0.0)),
                    Some(ex(t, asym)),
                ]
            })
            .collect();
        let mut seq = quorum(k);
        let expected: Vec<QuorumOutput> =
            rounds.chunks_exact(k).map(|r| seq.process_round(r)).collect();
        for chunk_rounds in [1usize, 7, 64, 500] {
            let mut batched = quorum(k);
            let mut out = Vec::new();
            let mut appended = 0;
            for chunk in rounds.chunks(chunk_rounds * k) {
                appended += batched.process_batch(chunk, &mut out);
            }
            assert_eq!(appended, expected.len(), "batch {chunk_rounds}");
            for (a, b) in out.iter().zip(&expected) {
                assert_eq!(a.round, b.round);
                assert_eq!(a.delivered_mask, b.delivered_mask);
                assert_eq!(a.excluded_mask, b.excluded_mask);
                assert_eq!(a.demoted_mask, b.demoted_mask);
                assert_eq!(a.utc_ref.to_bits(), b.utc_ref.to_bits());
                assert_eq!(a.p_hat.to_bits(), b.p_hat.to_bits());
            }
            for s in 0..k {
                assert_eq!(batched.trust(s).to_bits(), seq.trust(s).to_bits());
                assert_eq!(batched.demoted(s), seq.demoted(s));
            }
        }
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Drive a 3-server quorum through losses and a developing liar,
        // snapshot mid-fault, restore, and replay the rest on both: every
        // output and every health figure must match bit-for-bit.
        let k = 3usize;
        let round_at = |i: u64| {
            let t = i as f64 * 16.0;
            let asym = if i > 250 { 2e-3 } else { 0.0 };
            [
                Some(ex(t, 0.0)),
                (!i.is_multiple_of(11)).then_some(ex(t, 0.0)),
                Some(ex(t, asym)),
            ]
        };
        let mut live = quorum(k);
        for i in 0..300u64 {
            live.process_round(&round_at(i));
        }
        let blob = live.snapshot();
        let mut warm = QuorumClock::restore(&blob).expect("clean snapshot must restore");
        assert_eq!(warm.k(), k);
        for i in 300..600u64 {
            let a = live.process_round(&round_at(i));
            let b = warm.process_round(&round_at(i));
            assert_eq!(a.round, b.round, "round {i}");
            assert_eq!(a.delivered_mask, b.delivered_mask);
            assert_eq!(a.candidate_mask, b.candidate_mask);
            assert_eq!(a.excluded_mask, b.excluded_mask, "round {i}");
            assert_eq!(a.demoted_mask, b.demoted_mask, "round {i}");
            assert_eq!(a.combined, b.combined);
            assert_eq!(a.tsc_ref, b.tsc_ref);
            assert_eq!(a.utc_ref.to_bits(), b.utc_ref.to_bits(), "round {i}");
            assert_eq!(a.p_hat.to_bits(), b.p_hat.to_bits(), "round {i}");
        }
        for s in 0..k {
            assert_eq!(live.trust(s).to_bits(), warm.trust(s).to_bits());
            assert_eq!(live.demoted(s), warm.demoted(s));
            assert_eq!(
                live.point_error_bound(s).to_bits(),
                warm.point_error_bound(s).to_bits()
            );
        }
    }

    #[test]
    fn corrupted_quorum_snapshot_is_a_typed_error() {
        let mut q = quorum(2);
        for i in 0..150u64 {
            let e = ex(i as f64 * 16.0, 0.0);
            q.process_round(&[Some(e), Some(e)]);
        }
        let blob = q.snapshot();
        assert!(QuorumClock::restore(&blob).is_ok());
        for cut in (0..blob.len()).step_by(17) {
            assert!(QuorumClock::restore(&blob[..cut]).is_err(), "cut {cut}");
        }
        for i in (0..blob.len()).step_by(29) {
            let mut m = blob.clone();
            m[i] ^= 0x04;
            assert!(QuorumClock::restore(&m).is_err(), "flip at {i}");
        }
        // a clock envelope is not a quorum envelope
        let clock_blob = q.server(0).snapshot();
        assert!(matches!(
            QuorumClock::restore(&clock_blob),
            Err(SnapshotError::KindMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "whole rounds")]
    fn ragged_batch_panics() {
        quorum(2).process_batch(&[None, None, None], &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "quorum size")]
    fn zero_servers_rejected() {
        quorum(0);
    }
}
