//! Robust combination of per-server estimates.
//!
//! Per-server absolute-time readings are fused in two stages:
//!
//! 1. **Weighted median** over all candidates (weights = trust scores):
//!    the quorum's consensus reading `m`. The median holder always agrees
//!    with itself, so the included set below is never empty.
//! 2. **Hard exclusion**: any candidate whose reading differs from `m` by
//!    more than its *own* tolerance — derived from its own point-error
//!    bound — is dropped. A lying or silently-asymmetric server looks
//!    healthy by every self-reported figure; only this disagreement test
//!    catches it.
//! 3. **Trimmed weighted mean**: the combined value is `m` plus the
//!    trust-weighted mean of the surviving deviations from `m` — smoother
//!    than the raw median between updates, and *exactly* `m` when all
//!    survivors agree bit-for-bit (the K-identical-servers anchor).

use serde::{Deserialize, Serialize};
use tscclock::snapshot::{SnapshotReader, SnapshotWriter};
use tscclock::SnapshotError;

/// Tunables of the combiner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinerConfig {
    /// Multiplier on a server's point-error bound in its disagreement
    /// tolerance.
    pub tol_mult: f64,
    /// Additive tolerance floor (seconds): two healthy clocks can
    /// legitimately differ by their own absolute errors.
    pub tol_floor: f64,
}

impl Default for CombinerConfig {
    fn default() -> Self {
        Self {
            tol_mult: 2.0,
            tol_floor: 100e-6,
        }
    }
}

impl CombinerConfig {
    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.tol_mult >= 0.0 && self.tol_floor > 0.0) {
            return Err("tol_mult must be ≥ 0 and tol_floor positive".into());
        }
        Ok(())
    }

    /// A server's disagreement tolerance given its point-error bound.
    pub fn tolerance(&self, point_error_bound: f64) -> f64 {
        self.tol_mult * point_error_bound + self.tol_floor
    }

    /// Serializes the config (snapshot payload, no envelope).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.tol_mult);
        w.put_f64(self.tol_floor);
    }

    /// Deserializes and re-validates a config written by
    /// [`CombinerConfig::save_state`].
    pub fn load_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let cfg = Self {
            tol_mult: r.get_f64()?,
            tol_floor: r.get_f64()?,
        };
        cfg.validate()
            .map_err(|_| SnapshotError::Invalid("combiner config fails validation"))?;
        Ok(cfg)
    }
}

/// One server's entry into a combination round.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Server index (for the exclusion mask).
    pub server: usize,
    /// The server's absolute-time reading at the round's reference
    /// instant.
    pub value: f64,
    /// The server's rate estimate.
    pub rate: f64,
    /// Combination weight (trust; 0 for demoted servers).
    pub weight: f64,
    /// The server's own disagreement tolerance.
    pub tolerance: f64,
}

/// Result of one combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Combination {
    /// The fused absolute-time reading.
    pub value: f64,
    /// The fused rate.
    pub rate: f64,
    /// Bitmask of candidates excluded for disagreement.
    pub excluded_mask: u32,
    /// Number of candidates that survived into the trimmed mean.
    pub included: usize,
}

/// Weighted median over `(value, weight)` drawn from `items`: the smallest
/// value whose cumulative weight reaches half the total. Returns one of
/// the input values. `scratch` is caller-provided to keep the hot path
/// allocation-free; all weights must be non-negative with a positive sum.
fn weighted_median(
    items: impl Iterator<Item = (f64, f64)>,
    scratch: &mut Vec<(f64, f64)>,
) -> f64 {
    scratch.clear();
    scratch.extend(items);
    debug_assert!(!scratch.is_empty(), "weighted_median of nothing");
    scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
    let total: f64 = scratch.iter().map(|c| c.1).sum();
    debug_assert!(total > 0.0, "weighted_median needs positive total weight");
    let half = total / 2.0;
    let mut acc = 0.0;
    for &(v, w) in scratch.iter() {
        acc += w;
        if acc >= half {
            return v;
        }
    }
    scratch.last().expect("non-empty").0
}

/// Runs the robust combination over `candidates` (must be non-empty).
/// When every candidate carries zero weight (all demoted), the median and
/// mean fall back to equal weights — a quorum of the distrusted beats no
/// clock at all, and the exclusion rule still trims the outliers.
pub fn combine(candidates: &[Candidate], scratch: &mut Vec<(f64, f64)>) -> Combination {
    assert!(!candidates.is_empty(), "combine() needs at least one candidate");
    let any_weight = candidates.iter().any(|c| c.weight > 0.0);
    let w_of = |c: &Candidate| if any_weight { c.weight } else { 1.0 };

    let m = weighted_median(
        candidates.iter().filter(|c| w_of(c) > 0.0).map(|c| (c.value, w_of(c))),
        scratch,
    );

    let mut excluded_mask = 0u32;
    let (mut dev_sum, mut w_sum, mut included) = (0.0f64, 0.0f64, 0usize);
    for c in candidates {
        if (c.value - m).abs() > c.tolerance {
            excluded_mask |= 1 << c.server;
            continue;
        }
        let w = w_of(c);
        if w > 0.0 {
            dev_sum += w * (c.value - m);
            w_sum += w;
            included += 1;
        }
    }
    // The median holder is always within its own tolerance of itself, so
    // at least one weighted candidate survived.
    debug_assert!(included > 0 && w_sum > 0.0);

    let value = m + dev_sum / w_sum;
    let rate = weighted_median(
        candidates
            .iter()
            .filter(|c| excluded_mask & (1 << c.server) == 0 && w_of(c) > 0.0)
            .map(|c| (c.rate, w_of(c))),
        scratch,
    );
    Combination {
        value,
        rate,
        excluded_mask,
        included,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(server: usize, value: f64, weight: f64, tol: f64) -> Candidate {
        Candidate {
            server,
            value,
            rate: 1e-9 + server as f64 * 1e-15,
            weight,
            tolerance: tol,
        }
    }

    fn run(cands: &[Candidate]) -> Combination {
        combine(cands, &mut Vec::new())
    }

    #[test]
    fn identical_candidates_combine_exactly() {
        // the anchor property: all values bit-equal ⇒ output bit-equal
        let v = 123.456_789_012_345_67;
        let c = run(&[
            cand(0, v, 0.9, 1e-4),
            cand(1, v, 0.5, 1e-4),
            cand(2, v, 0.7, 1e-4),
        ]);
        assert_eq!(c.value.to_bits(), v.to_bits());
        assert_eq!(c.excluded_mask, 0);
        assert_eq!(c.included, 3);
    }

    #[test]
    fn single_candidate_passes_through() {
        let c = run(&[cand(2, 42.0, 0.8, 1e-4)]);
        assert_eq!(c.value, 42.0);
        assert_eq!(c.included, 1);
        assert_eq!(c.excluded_mask, 0);
    }

    #[test]
    fn outlier_is_excluded_by_its_own_tolerance() {
        let c = run(&[
            cand(0, 100.000_00, 1.0, 2e-4),
            cand(1, 100.000_05, 1.0, 2e-4),
            cand(2, 100.002_00, 1.0, 2e-4), // 2 ms off, tol 200 µs
        ]);
        assert_eq!(c.excluded_mask, 0b100);
        assert_eq!(c.included, 2);
        assert!((c.value - 100.000_025).abs() < 1e-4);
        // the outlier cannot drag the combined value
        assert!((c.value - 100.002).abs() > 1e-3);
    }

    #[test]
    fn majority_wins_against_two_colluding_outliers() {
        // 3 honest vs 2 biased-the-same-way: the weighted median sits in
        // the honest cluster, so both liars are excluded.
        let c = run(&[
            cand(0, 10.000_00, 1.0, 2e-4),
            cand(1, 10.000_02, 1.0, 2e-4),
            cand(2, 10.000_04, 1.0, 2e-4),
            cand(3, 10.005_00, 1.0, 2e-4),
            cand(4, 10.005_02, 1.0, 2e-4),
        ]);
        assert_eq!(c.excluded_mask, 0b11000);
        assert!((c.value - 10.000_02).abs() < 1e-4);
    }

    #[test]
    fn weights_steer_the_median() {
        // Two clusters; the trusted one holds the median even though the
        // other has more members.
        let c = run(&[
            cand(0, 5.000_0, 0.9, 1e-4),
            cand(1, 5.010_0, 0.1, 1e-4),
            cand(2, 5.010_1, 0.1, 1e-4),
            cand(3, 5.010_2, 0.1, 1e-4),
        ]);
        assert!((c.value - 5.0).abs() < 1e-3, "value {}", c.value);
        assert_eq!(c.excluded_mask, 0b1110);
    }

    #[test]
    fn all_demoted_falls_back_to_equal_weights() {
        let c = run(&[
            cand(0, 7.000_0, 0.0, 2e-4),
            cand(1, 7.000_1, 0.0, 2e-4),
            cand(2, 7.020_0, 0.0, 2e-4),
        ]);
        assert_eq!(c.excluded_mask, 0b100, "outlier still trimmed");
        assert!((c.value - 7.000_05).abs() < 1e-4);
    }

    #[test]
    fn zero_weight_candidate_is_judged_but_not_counted() {
        let c = run(&[
            cand(0, 3.000_00, 1.0, 2e-4),
            cand(1, 3.000_02, 1.0, 2e-4),
            cand(2, 3.000_04, 0.0, 2e-4), // demoted but agreeing
        ]);
        assert_eq!(c.excluded_mask, 0, "agreeing demoted server not 'excluded'");
        assert_eq!(c.included, 2, "but it carries no weight");
    }

    #[test]
    fn rate_is_fused_from_survivors_only() {
        let mut bad = cand(2, 100.002, 1.0, 2e-4);
        bad.rate = 2e-9; // wildly wrong rate on the excluded server
        let c = run(&[cand(0, 100.0, 1.0, 2e-4), cand(1, 100.0, 1.0, 2e-4), bad]);
        assert!(c.rate < 1.5e-9, "excluded server's rate must not leak in");
    }

    #[test]
    fn tolerance_formula_scales_with_bound() {
        let cfg = CombinerConfig::default();
        assert!(cfg.validate().is_ok());
        let t = cfg.tolerance(50e-6);
        assert!((t - (2.0 * 50e-6 + 100e-6)).abs() < 1e-12);
        let mut bad = cfg;
        bad.tol_floor = 0.0;
        assert!(bad.validate().is_err());
    }
}
