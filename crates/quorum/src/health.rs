//! Per-server health scoring with hysteresis.
//!
//! Each server's [`HealthTracker`] folds the signals its clock already
//! produces — point-error quality, upward-shift confirmations, delivery /
//! staleness, and the combiner's disagreement verdict — into one scalar
//! **trust score** in `[0, 1]`, smoothed by an exponential moving average.
//! Demotion and re-admission are hysteretic: a server is demoted only
//! after its trust stays below the demotion threshold for a streak of
//! rounds, and re-admitted only after it stays above a *higher* threshold
//! for a longer streak — a flapping server loses its vote quickly and
//! earns it back slowly.
//!
//! The tracker also maintains the server's **point-error bound**: an EMA
//! of its per-packet point errors `Eᵢ` (capped so congestion bursts cannot
//! inflate it without limit). The combiner derives each server's
//! disagreement tolerance from this bound — a server is judged against
//! the quality *it itself claims*, so a clean low-jitter server is held
//! to a tight tolerance while a noisy long-path server gets a wider one.

use serde::{Deserialize, Serialize};
use tscclock::snapshot::{SnapshotReader, SnapshotWriter};
use tscclock::SnapshotError;

/// Tunables of the health model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// EMA gain of the trust score (per round).
    pub alpha: f64,
    /// Trust below this demotes (after `demote_rounds` of persistence).
    pub demote_below: f64,
    /// Trust above this re-admits (after `readmit_rounds`); must exceed
    /// `demote_below` — the hysteresis band.
    pub readmit_above: f64,
    /// Consecutive below-threshold rounds required to demote.
    pub demote_rounds: usize,
    /// Consecutive above-threshold rounds required to re-admit.
    pub readmit_rounds: usize,
    /// Health sample of a round whose poll went unanswered (loss or
    /// outage): staleness pulls trust toward this level.
    pub miss_score: f64,
    /// Health penalty of a confirmed upward RTT shift (route degradation).
    pub shift_penalty: f64,
    /// Floor of the point-error quality term. Congestion is *noise the
    /// per-server filter already handles*, not evidence of a bad server,
    /// so quality alone must not be able to demote: keep this floor above
    /// `demote_below` and only disagreement (`excluded`), staleness and
    /// shift penalties can take trust below it.
    pub quality_floor: f64,
    /// Point-error → quality scale: a delivered packet scores
    /// `quality_floor + (1 − quality_floor)·exp(−Eᵢ/pe_scale)`.
    pub pe_scale: f64,
    /// EMA gain of the point-error bound for *improving* samples (new
    /// point error below the EMA): the bound tracks a clean server down
    /// quickly, tightening its disagreement tolerance.
    pub pe_alpha: f64,
    /// EMA gain for *degrading* samples (new point error above the EMA);
    /// must not exceed `pe_alpha`. The asymmetry is a security property
    /// on top of [`HealthConfig::pe_cap`]: the disagreement tolerance
    /// derives from the server's own bound, so a server sliding into a
    /// fault must not be able to widen its own exclusion tolerance in the
    /// rounds *before* the cap bites — its bound rises a few times slower
    /// than it falls, keeping the tolerance anchored to its recent healthy
    /// self while the combiner judges the degradation.
    pub pe_alpha_up: f64,
    /// Cap on the per-packet point error folded into the bound. This is a
    /// security property as much as a noise clamp: the disagreement
    /// tolerance derives from the server's *own* bound, so a degrading
    /// (or lying) server must not be able to widen its own tolerance
    /// arbitrarily by reporting noisy exchanges.
    pub pe_cap: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            alpha: 0.15,
            demote_below: 0.35,
            readmit_above: 0.6,
            demote_rounds: 8,
            readmit_rounds: 32,
            miss_score: 0.3,
            shift_penalty: 0.5,
            quality_floor: 0.65,
            pe_scale: 300e-6,
            pe_alpha: 0.05,
            pe_alpha_up: 0.0125,
            pe_cap: 400e-6,
        }
    }
}

impl HealthConfig {
    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("alpha must be in (0, 1]".into());
        }
        if !(self.pe_alpha > 0.0 && self.pe_alpha <= 1.0) {
            return Err("pe_alpha must be in (0, 1]".into());
        }
        if !(self.pe_alpha_up > 0.0 && self.pe_alpha_up <= self.pe_alpha) {
            return Err(
                "pe_alpha_up must be in (0, pe_alpha] (the bound must not rise faster than it falls)"
                    .into(),
            );
        }
        if !(0.0 <= self.demote_below && self.demote_below < self.readmit_above
            && self.readmit_above <= 1.0)
        {
            return Err("need 0 ≤ demote_below < readmit_above ≤ 1 (hysteresis band)".into());
        }
        if !(self.pe_scale > 0.0 && self.pe_cap > 0.0) {
            return Err("pe_scale and pe_cap must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.miss_score) {
            return Err("miss_score must be in [0, 1]".into());
        }
        if !(self.quality_floor > self.demote_below && self.quality_floor <= 1.0) {
            return Err("quality_floor must exceed demote_below (congestion must not demote)".into());
        }
        Ok(())
    }

    /// Serializes the config (snapshot payload, no envelope).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.alpha);
        w.put_f64(self.demote_below);
        w.put_f64(self.readmit_above);
        w.put_usize(self.demote_rounds);
        w.put_usize(self.readmit_rounds);
        w.put_f64(self.miss_score);
        w.put_f64(self.shift_penalty);
        w.put_f64(self.quality_floor);
        w.put_f64(self.pe_scale);
        w.put_f64(self.pe_alpha);
        w.put_f64(self.pe_alpha_up);
        w.put_f64(self.pe_cap);
    }

    /// Deserializes and re-validates a config written by
    /// [`HealthConfig::save_state`].
    pub fn load_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let cfg = Self {
            alpha: r.get_f64()?,
            demote_below: r.get_f64()?,
            readmit_above: r.get_f64()?,
            demote_rounds: r.get_usize()?,
            readmit_rounds: r.get_usize()?,
            miss_score: r.get_f64()?,
            shift_penalty: r.get_f64()?,
            quality_floor: r.get_f64()?,
            pe_scale: r.get_f64()?,
            pe_alpha: r.get_f64()?,
            pe_alpha_up: r.get_f64()?,
            pe_cap: r.get_f64()?,
        };
        cfg.validate()
            .map_err(|_| SnapshotError::Invalid("health config fails validation"))?;
        Ok(cfg)
    }
}

/// What one round looked like from one server (the tracker's input).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundObservation {
    /// The poll was answered.
    pub delivered: bool,
    /// Point error `Eᵢ` of the delivered packet, when the clock produced
    /// an estimate for it.
    pub point_error: Option<f64>,
    /// The clock confirmed an upward RTT shift this round.
    pub upward_shift: bool,
    /// The combiner excluded this server for disagreeing with the quorum.
    pub excluded: bool,
}

/// Rolling health state of one server.
#[derive(Debug, Clone, Copy)]
pub struct HealthTracker {
    trust: f64,
    /// EMA of capped point errors; NaN until the first delivered packet.
    pe_ema: f64,
    demoted: bool,
    below_streak: usize,
    above_streak: usize,
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthTracker {
    /// A fresh tracker: fully trusted (the clock's own warm-up covers the
    /// early rounds), no point-error history.
    pub fn new() -> Self {
        Self {
            trust: 1.0,
            pe_ema: f64::NAN,
            demoted: false,
            below_streak: 0,
            above_streak: 0,
        }
    }

    /// Current trust score in `[0, 1]`.
    pub fn trust(&self) -> f64 {
        self.trust
    }

    /// Whether the server is currently demoted (zero combination weight).
    pub fn demoted(&self) -> bool {
        self.demoted
    }

    /// The server's own point-error bound (seconds). Until the first
    /// delivered packet this is the cap — an unknown server gets the
    /// widest tolerance, not a spuriously tight one.
    pub fn point_error_bound(&self, cfg: &HealthConfig) -> f64 {
        if self.pe_ema.is_nan() {
            cfg.pe_cap
        } else {
            self.pe_ema
        }
    }

    /// Folds one round into the score and runs the hysteresis machine.
    pub fn observe(&mut self, cfg: &HealthConfig, obs: RoundObservation) {
        let health = if !obs.delivered {
            cfg.miss_score
        } else if obs.excluded {
            // Disagreeing with the quorum beyond tolerance is the gravest
            // signal: the server's *own* quality figures cannot be
            // trusted (a lying or silently-asymmetric server looks
            // perfectly healthy to itself).
            0.0
        } else {
            let quality = match obs.point_error {
                Some(pe) => {
                    cfg.quality_floor
                        + (1.0 - cfg.quality_floor) * (-pe.max(0.0) / cfg.pe_scale).exp()
                }
                None => cfg.miss_score,
            };
            let penalty = if obs.upward_shift { cfg.shift_penalty } else { 0.0 };
            (quality - penalty).max(0.0)
        };
        self.trust += cfg.alpha * (health - self.trust);

        if obs.delivered {
            if let Some(pe) = obs.point_error {
                let pe = pe.max(0.0).min(cfg.pe_cap);
                if self.pe_ema.is_nan() {
                    self.pe_ema = pe;
                } else {
                    // Asymmetric EMA: fast down, slow up (see
                    // `HealthConfig::pe_alpha_up`).
                    let alpha = if pe > self.pe_ema {
                        cfg.pe_alpha_up
                    } else {
                        cfg.pe_alpha
                    };
                    self.pe_ema += alpha * (pe - self.pe_ema);
                }
            }
        }

        // Hysteresis: sustained low trust demotes; sustained high trust
        // (a strictly higher bar) re-admits.
        if self.trust < cfg.demote_below {
            self.below_streak += 1;
            self.above_streak = 0;
            if !self.demoted && self.below_streak >= cfg.demote_rounds {
                self.demoted = true;
            }
        } else if self.trust > cfg.readmit_above {
            self.above_streak += 1;
            self.below_streak = 0;
            if self.demoted && self.above_streak >= cfg.readmit_rounds {
                self.demoted = false;
            }
        } else {
            // inside the hysteresis band: streaks do not advance
            self.below_streak = 0;
            self.above_streak = 0;
        }
    }

    /// Serializes the tracker (snapshot payload, no envelope). `pe_ema`'s
    /// NaN "no history yet" sentinel round-trips via the raw bit pattern.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.trust);
        w.put_f64(self.pe_ema);
        w.put_bool(self.demoted);
        w.put_usize(self.below_streak);
        w.put_usize(self.above_streak);
    }

    /// Deserializes a tracker written by [`HealthTracker::save_state`].
    pub fn load_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let t = Self {
            trust: r.get_f64()?,
            pe_ema: r.get_f64()?,
            demoted: r.get_bool()?,
            below_streak: r.get_usize()?,
            above_streak: r.get_usize()?,
        };
        if !(0.0..=1.0).contains(&t.trust) {
            return Err(SnapshotError::Invalid("trust score out of [0, 1]"));
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> RoundObservation {
        RoundObservation {
            delivered: true,
            point_error: Some(30e-6),
            upward_shift: false,
            excluded: false,
        }
    }

    #[test]
    fn defaults_validate() {
        assert!(HealthConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_configs_rejected() {
        let d = HealthConfig::default();
        let c = HealthConfig { alpha: 0.0, ..d };
        assert!(c.validate().is_err());
        // no hysteresis band
        let c = HealthConfig { readmit_above: d.demote_below, ..d };
        assert!(c.validate().is_err());
        let c = HealthConfig { pe_cap: 0.0, ..d };
        assert!(c.validate().is_err());
        // congestion quality able to demote
        let c = HealthConfig { quality_floor: d.demote_below, ..d };
        assert!(c.validate().is_err());
    }

    #[test]
    fn healthy_server_stays_trusted() {
        let cfg = HealthConfig::default();
        let mut t = HealthTracker::new();
        for _ in 0..500 {
            t.observe(&cfg, good());
        }
        assert!(t.trust() > 0.8, "trust {}", t.trust());
        assert!(!t.demoted());
        let b = t.point_error_bound(&cfg);
        assert!((b - 30e-6).abs() < 1e-6, "bound {b}");
    }

    #[test]
    fn sustained_exclusion_demotes_then_recovery_readmits() {
        let cfg = HealthConfig::default();
        let mut t = HealthTracker::new();
        for _ in 0..100 {
            t.observe(&cfg, good());
        }
        // fault: quorum exclusion every round
        let mut demoted_after = None;
        for i in 0..200 {
            t.observe(
                &cfg,
                RoundObservation {
                    excluded: true,
                    ..good()
                },
            );
            if t.demoted() && demoted_after.is_none() {
                demoted_after = Some(i + 1);
            }
        }
        let demoted_after = demoted_after.expect("must demote under sustained exclusion");
        assert!(
            demoted_after <= 40,
            "demotion must be prompt, took {demoted_after} rounds"
        );
        // recovery: healthy again, must re-admit — but slower than it fell
        let mut readmitted_after = None;
        for i in 0..500 {
            t.observe(&cfg, good());
            if !t.demoted() && readmitted_after.is_none() {
                readmitted_after = Some(i + 1);
            }
        }
        let readmitted_after = readmitted_after.expect("must re-admit after recovery");
        assert!(
            readmitted_after >= demoted_after,
            "re-admission ({readmitted_after}) must be slower than demotion ({demoted_after})"
        );
    }

    #[test]
    fn brief_glitch_does_not_demote() {
        let cfg = HealthConfig::default();
        let mut t = HealthTracker::new();
        for _ in 0..100 {
            t.observe(&cfg, good());
        }
        // a glitch shorter than the demote streak requirement
        for _ in 0..3 {
            t.observe(
                &cfg,
                RoundObservation {
                    excluded: true,
                    ..good()
                },
            );
        }
        for _ in 0..50 {
            t.observe(&cfg, good());
        }
        assert!(!t.demoted(), "3-round glitch must not demote");
        assert!(t.trust() > 0.8);
    }

    #[test]
    fn staleness_decays_trust_toward_miss_score() {
        let cfg = HealthConfig::default();
        let mut t = HealthTracker::new();
        for _ in 0..100 {
            t.observe(&cfg, good());
        }
        for _ in 0..200 {
            t.observe(&cfg, RoundObservation::default()); // missed polls
        }
        assert!((t.trust() - cfg.miss_score).abs() < 0.02);
        assert!(t.demoted(), "a long outage must demote");
    }

    #[test]
    fn ramping_fault_cannot_widen_its_own_tolerance_quickly() {
        // Regression for the asymmetric EMA: a server whose point errors
        // *ramp* toward the cap (a degrading route, or an attacker easing
        // into a fault to stretch its disagreement tolerance) must see its
        // bound rise several times slower than a symmetric EMA would
        // allow, and recover (fall) at full speed afterwards.
        let cfg = HealthConfig::default();
        let mut asym = HealthTracker::new();
        for _ in 0..200 {
            asym.observe(&cfg, good()); // settle at ~30 µs
        }
        let settled = asym.point_error_bound(&cfg);
        // mirror tracker with a symmetric EMA (pe_alpha both ways)
        let mut sym_ema = settled;
        // 40-round ramp from 30 µs to the 400 µs cap
        let mut worst_ratio: f64 = 0.0;
        for i in 0..40 {
            let pe = 30e-6 + (i as f64 + 1.0) / 40.0 * 370e-6;
            asym.observe(
                &cfg,
                RoundObservation {
                    delivered: true,
                    point_error: Some(pe),
                    ..Default::default()
                },
            );
            sym_ema += cfg.pe_alpha * (pe.min(cfg.pe_cap) - sym_ema);
            let a = asym.point_error_bound(&cfg);
            worst_ratio = worst_ratio.max((a - settled) / (sym_ema - settled));
        }
        assert!(
            worst_ratio < 0.45,
            "asymmetric bound rose at {worst_ratio:.2}× the symmetric rate (want < 0.45×)"
        );
        // the rise stayed well below the cap during the whole ramp
        assert!(
            asym.point_error_bound(&cfg) < 150e-6,
            "bound after the ramp: {}",
            asym.point_error_bound(&cfg)
        );
        // recovery is fast: clean rounds pull the bound back down at the
        // full pe_alpha rate
        for _ in 0..60 {
            asym.observe(&cfg, good());
        }
        let b = asym.point_error_bound(&cfg);
        assert!((b - 30e-6).abs() < 15e-6, "bound must fall promptly, got {b}");
    }

    #[test]
    fn congestion_cannot_blow_up_the_point_error_bound() {
        let cfg = HealthConfig::default();
        let mut t = HealthTracker::new();
        for _ in 0..500 {
            t.observe(
                &cfg,
                RoundObservation {
                    delivered: true,
                    point_error: Some(50e-3), // monster bursts every round
                    ..Default::default()
                },
            );
        }
        assert!(t.point_error_bound(&cfg) <= cfg.pe_cap + 1e-12);
    }

    #[test]
    fn unknown_server_gets_widest_bound() {
        let cfg = HealthConfig::default();
        let t = HealthTracker::new();
        assert_eq!(t.point_error_bound(&cfg), cfg.pe_cap);
    }
}
