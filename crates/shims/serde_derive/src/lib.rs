//! `#[derive(Serialize, Deserialize)]` for the local serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment has no registry access). Supports exactly what this
//! workspace uses: structs with named fields and enums with unit variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we parsed out of the derive input.
enum Input {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skips attributes (`#[...]`) starting at `i`; returns the new position.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits the tokens of a brace group at top-level commas.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            if p.as_char() == ',' {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: unexpected token {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream().into_iter().collect::<Vec<_>>();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic types are not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde shim derive: `{name}` has no braced body (tuple/unit types unsupported)"),
        }
    };
    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            for chunk in split_commas(body) {
                let j = skip_vis(&chunk, skip_attrs(&chunk, 0));
                match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                    other => panic!("serde shim derive: bad field in `{name}`: {other:?}"),
                }
            }
            Input::Struct { name, fields }
        }
        "enum" => {
            let mut variants = Vec::new();
            for chunk in split_commas(body) {
                let j = skip_attrs(&chunk, 0);
                match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => {
                        if chunk.len() > j + 1 {
                            panic!(
                                "serde shim derive: enum `{name}` has a non-unit variant; \
                                 only unit variants are supported"
                            );
                        }
                        variants.push(id.to_string());
                    }
                    other => panic!("serde shim derive: bad variant in `{name}`: {other:?}"),
                }
            }
            Input::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(v.get_field(\"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code must parse")
}
