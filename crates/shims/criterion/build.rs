//! Captures the compiling toolchain's version string so the JSON bench
//! report can record it: numbers are only comparable across runs built by
//! the same compiler.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=SHIM_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
