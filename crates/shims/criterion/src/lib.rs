//! Minimal criterion-compatible benchmark harness.
//!
//! Supports the subset this workspace uses: `criterion_group!` /
//! `criterion_main!`, benchmark groups with throughput and sample-size
//! hints, `Bencher::iter` and `Bencher::iter_batched`, a substring filter
//! (`cargo bench -- <filter>`), and the `--test` smoke mode that runs every
//! bench exactly once (used by CI).
//!
//! Reported numbers are the mean wall-clock time per iteration over a
//! fixed measurement budget after a short warm-up — adequate for tracking
//! the order-of-magnitude improvements this repo's benches exist to show,
//! with none of real criterion's statistics.
//!
//! # Machine-readable output
//!
//! When the `BENCH_JSON` environment variable names a path, every bench
//! binary writes its measurements there as a JSON array of
//! `{"bench", "mean_ns", "median_ns", "iters", "elements_per_iter",
//! "throughput_per_sec", "threads", "host_cpus", "rustc"}` records on
//! exit (via the `criterion_main!` epilogue) — the hook the repo uses to
//! track its performance trajectory across PRs (e.g. `BENCH_fleet.json`).
//! `median_ns` is the median of the per-batch sample means: on a
//! single-core host the scheduler can stall one batch for tens of
//! milliseconds, inflating the mean of a short benchmark by double-digit
//! percentages while the median stays put — prefer it when comparing
//! runs. The trailing host columns make rows self-describing: `threads`
//! is the worker count a `<N>threads` bench-id suffix declares (null
//! otherwise), `host_cpus` is [`std::thread::available_parallelism`] at
//! run time, and `rustc` is the compiler that built the binary — a
//! thread-scaling row measured on a 1-CPU host documents pool overhead,
//! not parallel speedup, and the row now says so itself. Smoke runs
//! (`--test`) record nothing.
//!
//! `BenchmarkGroup::sample_size(n)` is honored as a real floor of `n`
//! timed batches (criterion's own contract), not just a hint: noisy
//! benches that set it keep measuring past the wall-clock budget until
//! the median has at least that many samples behind it.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use self::measurement::black_box;

mod measurement {
    /// Re-export of the std black box under criterion's historical path.
    pub fn black_box<T>(x: T) -> T {
        std::hint::black_box(x)
    }
}

/// Throughput hint attached to a group: scales the per-iteration time into
/// elements/s or bytes/s in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch-size hint for `iter_batched` (ignored: every batch has one input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Harness configuration, parsed from the command line.
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    /// Wall-clock budget per benchmark.
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filter: None,
            measure_budget: Duration::from_millis(700),
        }
    }
}

impl Criterion {
    /// Applies `--test` (smoke mode) and a positional substring filter, the
    /// two things `cargo bench` / CI pass through.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "-t" => self.test_mode = true,
                "--bench" => {}
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_one(&cfg, id.as_ref(), None, 10, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(self.c, &full, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(c: &Criterion, id: &str, throughput: Option<Throughput>, min_samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode: c.test_mode,
        budget: c.measure_budget,
        min_samples,
        total: Duration::ZERO,
        iters: 0,
        samples: Vec::new(),
    };
    f(&mut b);
    if c.test_mode {
        println!("test bench {id} ... ok");
        return;
    }
    if b.iters == 0 {
        println!("{id:<50} (no measurements)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    let median = b.median_ns().unwrap_or(ns);
    record_result(id, ns, median, b.iters, throughput);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:>12} elem/s", human(n as f64 / (ns * 1e-9)))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:>12} B/s", human(n as f64 / (ns * 1e-9)))
        }
        None => String::new(),
    };
    println!("{id:<50} time: {:>12}/iter{rate}", human_time(ns));
}

/// One finished measurement, kept for the JSON report.
struct BenchRecord {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    iters: u64,
    elements_per_iter: Option<u64>,
    bytes_per_iter: Option<u64>,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Records an externally measured result into the JSON report. For
/// benches whose measurement loop the harness cannot drive — e.g.
/// interleaved A/B arms sharing one workload — which still want their
/// rows in `$BENCH_JSON` next to the harness-timed ones.
pub fn record_custom(
    id: &str,
    mean_ns: f64,
    median_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
) {
    record_result(id, mean_ns, median_ns, iters, throughput);
}

fn record_result(
    id: &str,
    mean_ns: f64,
    median_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
) {
    let (elements, bytes) = match throughput {
        Some(Throughput::Elements(n)) => (Some(n), None),
        Some(Throughput::Bytes(n)) => (None, Some(n)),
        None => (None, None),
    };
    RESULTS.lock().expect("results lock").push(BenchRecord {
        name: id.to_string(),
        mean_ns,
        median_ns,
        iters,
        elements_per_iter: elements,
        bytes_per_iter: bytes,
    });
}

/// Renders an f64 for JSON (finite by construction here).
fn json_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{x}")
    }
}

/// Worker-thread count declared by a `<N>threads` suffix in the bench id
/// (the workspace's thread-scaling naming convention), if present.
fn threads_from_id(id: &str) -> Option<u64> {
    let tail = id.rsplit('/').next()?;
    let digits = tail.strip_suffix("threads")?;
    digits.parse().ok()
}

/// Writes the collected measurements to `$BENCH_JSON`, if set. Called by
/// the `criterion_main!` epilogue; a no-op without the variable or without
/// measurements (smoke mode).
pub fn write_json_report() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results lock");
    if results.is_empty() {
        return;
    }
    let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let rustc = env!("SHIM_RUSTC_VERSION");
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let per_unit = r.elements_per_iter.or(r.bytes_per_iter);
        let rate = per_unit
            .map(|n| json_num(n as f64 / (r.mean_ns * 1e-9)))
            .unwrap_or_else(|| "null".into());
        let elems = r
            .elements_per_iter
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".into());
        let threads = threads_from_id(&r.name)
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "  {{\"bench\": {:?}, \"mean_ns\": {}, \"median_ns\": {}, \"iters\": {}, \"elements_per_iter\": {}, \"throughput_per_sec\": {}, \"threads\": {}, \"host_cpus\": {}, \"rustc\": {:?}}}{}\n",
            r.name,
            json_num(r.mean_ns),
            json_num(r.median_ns),
            r.iters,
            elems,
            rate,
            threads,
            host_cpus,
            rustc,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench report written to {path}"),
        Err(e) => eprintln!("bench report write to {path} failed: {e}"),
    }
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to each benchmark closure; accumulates timing.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    /// Floor on timed batches (`sample_size`): measurement continues past
    /// the wall-clock budget until this many samples back the median.
    min_samples: usize,
    total: Duration,
    iters: u64,
    /// Per-batch sample means (ns per iteration), for the median.
    samples: Vec<f64>,
}

impl Bencher {
    /// Median of the per-batch sample means, if any batches were timed.
    fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let n = s.len();
        Some(if n % 2 == 1 {
            s[n / 2]
        } else {
            0.5 * (s[n / 2 - 1] + s[n / 2])
        })
    }
    /// Times `f` repeatedly until the measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up and batch-size calibration: find an iteration count that
        // takes ~10 ms, so timer overhead stays negligible.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(10) || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < self.min_samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.total += dt;
            self.iters += batch;
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            self.total += dt;
            self.iters += 1;
            self.samples.push(dt.as_nanos() as f64);
            if Instant::now() >= deadline && self.samples.len() >= self.min_samples {
                break;
            }
        }
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}
