//! Local, API-compatible subset of `serde`.
//!
//! The real serde is unavailable in this build environment (no registry
//! access), so this shim provides the two traits plus the derive macros the
//! workspace uses. Serialization goes through a small self-describing
//! [`Value`] model; `serde_json` (the sibling shim) renders and parses it.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers (also produced by the JSON parser for `123`).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    /// Finite floats; non-finite floats serialize as marker strings
    /// (`"inf"`, `"-inf"`, `"NaN"`) so they round-trip.
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl Value {
    /// Looks up a field of a map value (derive-generated code uses this).
    pub fn get_field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected map with field `{name}`, got {other:?}"
            ))),
        }
    }
}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    /// Non-finite floats serialize as the strings `"inf"`, `"-inf"`,
    /// `"NaN"` so snapshots round-trip losslessly (real serde_json lossily
    /// writes `null`; nothing in this workspace relies on that).
    fn serialize_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else if self.is_nan() {
            Value::Str("NaN".into())
        } else if *self > 0.0 {
            Value::Str("inf".into())
        } else {
            Value::Str("-inf".into())
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        (*self as f64).serialize_value()
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    /// Static string fields only occur in tiny, long-lived config structs
    /// (e.g. `ServerFacts`), so leaking the parsed string is acceptable here.
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(xs) if xs.len() == $len => Ok((
                        $($name::deserialize_value(&xs[$idx])?,)+
                    )),
                    other => Err(DeError::new(format!(
                        "expected {}-tuple sequence, got {other:?}", $len
                    ))),
                }
            }
        }
    };
}
impl_tuple!(1 => A: 0);
impl_tuple!(2 => A: 0, B: 1);
impl_tuple!(3 => A: 0, B: 1, C: 2);
impl_tuple!(4 => A: 0, B: 1, C: 2, D: 3);
