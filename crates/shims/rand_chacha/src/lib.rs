//! A real ChaCha12 keystream RNG for the rand shim.
//!
//! Deterministic per seed (which is all the simulator needs — traces are
//! reproducible bit-for-bit for a given scenario seed); not guaranteed to
//! produce the same stream as the upstream `rand_chacha` crate.

use rand::{RngCore, SeedableRng};

/// ChaCha with 12 rounds, keyed by a 32-byte seed, zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..13 as low/high).
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        // 12 rounds = 6 double rounds.
        for _ in 0..6 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
