//! A real ChaCha12 keystream RNG for the rand shim.
//!
//! Deterministic per seed (which is all the simulator needs — traces are
//! reproducible bit-for-bit for a given scenario seed); not guaranteed to
//! produce the same stream as the upstream `rand_chacha` crate.
//!
//! # Multi-block refill
//!
//! The keystream is produced eight blocks at a time into a 128-word
//! buffer: blocks with counters `c .. c+8` are either computed by an AVX2
//! kernel that interleaves the eight independent block states across the
//! 32-bit lanes of `__m256i` rows (runtime-dispatched, same pattern as
//! `tscclock::fastmath`) or by eight sequential scalar block functions.
//! Both paths emit words in counter order, so the keystream is
//! **bit-identical by construction** to the original one-block-at-a-time
//! scalar implementation — the parity tests below verify ≥4096 words
//! across seeds and buffer/counter boundaries, word for word.

use rand::{RngCore, SeedableRng};

/// Words buffered per refill: 8 ChaCha blocks. Public so snapshot
/// restores can bounds-check an exported `idx` before
/// [`ChaCha12Rng::from_state`] (which panics on out-of-range values).
pub const BUF_WORDS: usize = 128;

/// ChaCha with 12 rounds, keyed by a 32-byte seed, zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..13 as low/high) of the next
    /// block to generate.
    counter: u64,
    /// Buffered keystream: 4 consecutive blocks.
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means exhausted.
    idx: usize,
    /// Test knob: skip the SIMD kernel even when the CPU has it.
    force_scalar: bool,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha12 block with the given key and counter, written to `out`.
#[inline]
fn block_scalar(key: &[u32; 8], counter: u64, out: &mut [u32]) {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let input = state;
    // 12 rounds = 6 double rounds.
    for _ in 0..6 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = state[i].wrapping_add(input[i]);
    }
}

/// Eight sequential blocks (counters `counter..counter+8`) into `out`.
#[doc(hidden)]
pub fn blocks_x8_scalar(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    for b in 0..8 {
        block_scalar(key, counter.wrapping_add(b as u64), &mut out[b * 16..(b + 1) * 16]);
    }
}

/// Eight interleaved blocks via AVX2: each of the 16 state words becomes a
/// `__m256i` row holding that word for blocks `c..c+8` (one per 32-bit
/// lane), the rounds run on whole rows, and an 8×8 lane transpose at the
/// end lays the blocks out sequentially — i.e. exactly the scalar output
/// order.
#[cfg(target_arch = "x86_64")]
#[doc(hidden)]
#[target_feature(enable = "avx2")]
pub unsafe fn blocks_x8_avx2(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn rotl<const L: i32, const R: i32>(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi32(x, L), _mm256_srli_epi32(x, R))
    }

    #[inline(always)]
    unsafe fn qr(rows: &mut [__m256i; 16], a: usize, b: usize, c: usize, d: usize) {
        rows[a] = _mm256_add_epi32(rows[a], rows[b]);
        rows[d] = rotl::<16, 16>(_mm256_xor_si256(rows[d], rows[a]));
        rows[c] = _mm256_add_epi32(rows[c], rows[d]);
        rows[b] = rotl::<12, 20>(_mm256_xor_si256(rows[b], rows[c]));
        rows[a] = _mm256_add_epi32(rows[a], rows[b]);
        rows[d] = rotl::<8, 24>(_mm256_xor_si256(rows[d], rows[a]));
        rows[c] = _mm256_add_epi32(rows[c], rows[d]);
        rows[b] = rotl::<7, 25>(_mm256_xor_si256(rows[b], rows[c]));
    }

    let mut rows = [_mm256_setzero_si256(); 16];
    for i in 0..4 {
        rows[i] = _mm256_set1_epi32(CONSTANTS[i] as i32);
    }
    for i in 0..8 {
        rows[4 + i] = _mm256_set1_epi32(key[i] as i32);
    }
    let mut c = [0u64; 8];
    for (b, ci) in c.iter_mut().enumerate() {
        *ci = counter.wrapping_add(b as u64);
    }
    // `_mm256_set_epi32` takes lanes high-to-low; lane b must be block b.
    rows[12] = _mm256_set_epi32(
        c[7] as u32 as i32,
        c[6] as u32 as i32,
        c[5] as u32 as i32,
        c[4] as u32 as i32,
        c[3] as u32 as i32,
        c[2] as u32 as i32,
        c[1] as u32 as i32,
        c[0] as u32 as i32,
    );
    rows[13] = _mm256_set_epi32(
        (c[7] >> 32) as u32 as i32,
        (c[6] >> 32) as u32 as i32,
        (c[5] >> 32) as u32 as i32,
        (c[4] >> 32) as u32 as i32,
        (c[3] >> 32) as u32 as i32,
        (c[2] >> 32) as u32 as i32,
        (c[1] >> 32) as u32 as i32,
        (c[0] >> 32) as u32 as i32,
    );
    // rows[14], rows[15] stay zero (nonce).
    let input = rows;
    for _ in 0..6 {
        qr(&mut rows, 0, 4, 8, 12);
        qr(&mut rows, 1, 5, 9, 13);
        qr(&mut rows, 2, 6, 10, 14);
        qr(&mut rows, 3, 7, 11, 15);
        qr(&mut rows, 0, 5, 10, 15);
        qr(&mut rows, 1, 6, 11, 12);
        qr(&mut rows, 2, 7, 8, 13);
        qr(&mut rows, 3, 4, 9, 14);
    }
    for i in 0..16 {
        rows[i] = _mm256_add_epi32(rows[i], input[i]);
    }
    // Transpose each half (word-rows 0..8 and 8..16) from word-major to
    // block-major with the standard AVX2 8×8 32-bit transpose: after it,
    // vector `b` of a half holds words `h·8 .. h·8+8` of block `b`.
    for h in 0..2 {
        let r = &rows[h * 8..h * 8 + 8];
        let t0 = _mm256_unpacklo_epi32(r[0], r[1]); // w0b0 w1b0 w0b1 w1b1 | b4 b5
        let t1 = _mm256_unpackhi_epi32(r[0], r[1]); // w0b2 w1b2 w0b3 w1b3 | b6 b7
        let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
        let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
        let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
        let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
        let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
        let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
        let u0 = _mm256_unpacklo_epi64(t0, t2); // w0..w4 of b0 | b4
        let u1 = _mm256_unpackhi_epi64(t0, t2); // b1 | b5
        let u2 = _mm256_unpacklo_epi64(t1, t3); // b2 | b6
        let u3 = _mm256_unpackhi_epi64(t1, t3); // b3 | b7
        let u4 = _mm256_unpacklo_epi64(t4, t6); // w4..w8 of b0 | b4
        let u5 = _mm256_unpackhi_epi64(t4, t6);
        let u6 = _mm256_unpacklo_epi64(t5, t7);
        let u7 = _mm256_unpackhi_epi64(t5, t7);
        let mut store = |block: usize, v: __m256i| {
            _mm256_storeu_si256(out.as_mut_ptr().add(block * 16 + h * 8) as *mut __m256i, v)
        };
        store(0, _mm256_permute2x128_si256(u0, u4, 0x20));
        store(4, _mm256_permute2x128_si256(u0, u4, 0x31));
        store(1, _mm256_permute2x128_si256(u1, u5, 0x20));
        store(5, _mm256_permute2x128_si256(u1, u5, 0x31));
        store(2, _mm256_permute2x128_si256(u2, u6, 0x20));
        store(6, _mm256_permute2x128_si256(u2, u6, 0x31));
        store(3, _mm256_permute2x128_si256(u3, u7, 0x20));
        store(7, _mm256_permute2x128_si256(u3, u7, 0x31));
    }
}

impl ChaCha12Rng {
    #[inline(never)]
    fn refill(&mut self) {
        #[cfg(target_arch = "x86_64")]
        {
            if !self.force_scalar && std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence checked at runtime just above.
                unsafe { blocks_x8_avx2(&self.key, self.counter, &mut self.buf) };
                self.counter = self.counter.wrapping_add(8);
                self.idx = 0;
                return;
            }
        }
        blocks_x8_scalar(&self.key, self.counter, &mut self.buf);
        self.counter = self.counter.wrapping_add(8);
        self.idx = 0;
    }

    /// Test knob: disable the SIMD refill (the keystream is identical
    /// either way; this exists so the parity tests can prove it).
    #[doc(hidden)]
    pub fn set_force_scalar(&mut self, on: bool) {
        self.force_scalar = on;
    }

    /// Exports the full stream position as `(key, counter, idx)`.
    ///
    /// The buffered keystream is *derived* state (blocks `counter-8 ..
    /// counter` whenever `idx < BUF_WORDS`), so these three values pin the
    /// generator exactly: [`ChaCha12Rng::from_state`] rebuilds an RNG that
    /// continues the keystream word-for-word. This is the snapshot hook
    /// the lifecycle clients use to persist their jitter stream across a
    /// warm restart.
    pub fn export_state(&self) -> ([u32; 8], u64, usize) {
        (self.key, self.counter, self.idx)
    }

    /// Rebuilds an RNG from an [`ChaCha12Rng::export_state`] triple; the
    /// restored stream is bit-identical to the original from the exported
    /// position onward.
    ///
    /// # Panics
    /// Panics when `idx > BUF_WORDS` (not a value `export_state` emits).
    pub fn from_state(key: [u32; 8], counter: u64, idx: usize) -> Self {
        assert!(idx <= BUF_WORDS, "ChaCha12Rng state idx out of range");
        let mut rng = Self {
            key,
            counter,
            buf: [0; BUF_WORDS],
            idx: BUF_WORDS,
            force_scalar: false,
        };
        if idx < BUF_WORDS {
            // The live buffer holds blocks `counter-8 .. counter`:
            // regenerate it, which re-advances the counter to `counter`.
            rng.counter = counter.wrapping_sub(8);
            rng.refill();
            rng.idx = idx;
        }
        rng
    }

    /// Fills `dest` with consecutive keystream `u64`s — exactly the values
    /// `next_u64` would return, but with the buffer bookkeeping amortized
    /// over the whole slice (the batched-keystream hook the oscillator's
    /// stochastic sub-stepping uses).
    pub fn fill_u64(&mut self, dest: &mut [u64]) {
        let mut i = 0;
        while i < dest.len() {
            if self.idx >= BUF_WORDS {
                self.refill();
            }
            let avail = (BUF_WORDS - self.idx) / 2;
            if avail == 0 {
                // Odd word left in the buffer: pair it with the first word
                // of the next refill, exactly as sequential reads would.
                dest[i] = self.next_u64();
                i += 1;
                continue;
            }
            let n = avail.min(dest.len() - i);
            for d in &mut dest[i..i + n] {
                let lo = self.buf[self.idx] as u64;
                let hi = self.buf[self.idx + 1] as u64;
                *d = lo | (hi << 32);
                self.idx += 2;
            }
            i += n;
        }
    }
}

impl RngCore for ChaCha12Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BUF_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words still buffered.
        if self.idx + 2 <= BUF_WORDS {
            let lo = self.buf[self.idx] as u64;
            let hi = self.buf[self.idx + 1] as u64;
            self.idx += 2;
            return lo | (hi << 32);
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_u64(&mut self, dest: &mut [u64]) {
        // Batched buffer drain — same values as the provided per-word
        // default, with the bookkeeping amortized (see the inherent method).
        ChaCha12Rng::fill_u64(self, dest);
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            idx: BUF_WORDS,
            force_scalar: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    /// The central claim of the SIMD refill: the keystream is bit-identical
    /// to the scalar path. ≥4096 words per seed, so every comparison spans
    /// many 8-block buffer refills and dozens of counter increments.
    #[test]
    fn simd_keystream_matches_scalar_word_for_word() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let mut simd = ChaCha12Rng::seed_from_u64(seed);
            let mut scalar = ChaCha12Rng::seed_from_u64(seed);
            scalar.set_force_scalar(true);
            for i in 0..4096 {
                assert_eq!(
                    simd.next_u32(),
                    scalar.next_u32(),
                    "seed {seed}: keystream diverged at word {i}"
                );
            }
        }
    }

    /// Direct kernel-level parity across a counter straddling the u64 wrap
    /// (lanes `c..c+8` must wrap independently).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn kernel_parity_across_counter_wrap() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let key = [1u32, 2, 3, 4, 0xffff_ffff, 6, 7, 8];
        for counter in [0u64, 1, 1000, u64::MAX - 7, u64::MAX - 3, u64::MAX - 1, u64::MAX] {
            let mut a = [0u32; BUF_WORDS];
            let mut b = [0u32; BUF_WORDS];
            blocks_x8_scalar(&key, counter, &mut a);
            unsafe { blocks_x8_avx2(&key, counter, &mut b) };
            assert_eq!(a, b, "counter {counter}");
        }
    }

    /// `fill_u64` must yield exactly the sequence `next_u64` would,
    /// including when the start index is odd (word-level misalignment) and
    /// across multiple refills.
    #[test]
    fn fill_u64_matches_sequential_reads() {
        for misalign in [0usize, 1, 3] {
            let mut a = ChaCha12Rng::seed_from_u64(99);
            let mut b = ChaCha12Rng::seed_from_u64(99);
            for _ in 0..misalign {
                let x = a.next_u32();
                let y = b.next_u32();
                assert_eq!(x, y);
            }
            let mut filled = [0u64; 301];
            a.fill_u64(&mut filled);
            for (i, &w) in filled.iter().enumerate() {
                assert_eq!(w, b.next_u64(), "misalign {misalign}, word {i}");
            }
            // streams stay aligned afterwards
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `export_state`/`from_state` must resume the keystream exactly, from
    /// every buffer position (fresh, mid-buffer, exhausted) and across
    /// refill boundaries.
    #[test]
    fn exported_state_resumes_the_keystream_exactly() {
        for drain in [0usize, 1, 17, 127, 128, 129, 300] {
            let mut orig = ChaCha12Rng::seed_from_u64(77);
            for _ in 0..drain {
                orig.next_u32();
            }
            let (key, counter, idx) = orig.export_state();
            let mut restored = ChaCha12Rng::from_state(key, counter, idx);
            for i in 0..512 {
                assert_eq!(
                    orig.next_u32(),
                    restored.next_u32(),
                    "drain {drain}: diverged at word {i}"
                );
            }
        }
    }

    /// Mixed u32/u64 reads interleave identically on both paths.
    #[test]
    fn mixed_reads_parity() {
        let mut simd = ChaCha12Rng::seed_from_u64(5);
        let mut scalar = ChaCha12Rng::seed_from_u64(5);
        scalar.set_force_scalar(true);
        for i in 0..2000 {
            match i % 3 {
                0 => assert_eq!(simd.next_u32(), scalar.next_u32()),
                1 => assert_eq!(simd.next_u64(), scalar.next_u64()),
                _ => {
                    let x: f64 = simd.random();
                    let y: f64 = scalar.random();
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
