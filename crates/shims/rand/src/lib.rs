//! Local, API-compatible subset of `rand`: the `RngCore`/`SeedableRng`
//! core traits plus the `RngExt::random` extension the workspace uses.

/// Core RNG interface: a source of uniformly distributed bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Fills `dest` with consecutive `next_u64` values. Generators backed
    /// by a buffered keystream override this to amortize refill bookkeeping
    /// over the whole slice; the values are the same either way.
    fn fill_u64(&mut self, dest: &mut [u64]) {
        for d in dest {
            *d = self.next_u64();
        }
    }
}

/// Seedable construction, including the `seed_from_u64` convenience used
/// throughout the simulator for scenario seeds.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed with SplitMix64 (the same
    /// construction real rand uses, so seeds diffuse well).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from raw RNG bits (`rng.random::<T>()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods over any [`RngCore`] (the `rng.random()` API).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for code written against the classic `Rng` name.
pub use self::RngExt as Rng;
