//! Value-generation strategies (no shrinking).

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A way of generating a value from the deterministic test RNG.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_ranges!(f32, f64);

macro_rules! impl_tuples {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuples!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite f64s spanning many orders of magnitude (no NaN/inf: the
    /// upstream default also rarely produces them and every current use
    /// wants finite values).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(613) as i32 - 306) as f64;
        mantissa * 10f64.powf(exp)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — any representable value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length specification for [`vec`]: a fixed size or a range of sizes.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and length spec `L`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// `prop::collection::vec(element, len)`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (10u8..20).sample(&mut rng);
            assert!((10..20).contains(&x));
            let y = (-10i8..20).sample(&mut rng);
            assert!((-10..20).contains(&y));
            let z = (0u8..=255).sample(&mut rng);
            let _ = z; // full range: every value legal
            let f = (1.0f64..4.0e9).sample(&mut rng);
            assert!((1.0..4.0e9).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = vec(0.0f64..1.0, 3usize..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let fixed = vec(any::<u8>(), 5usize).sample(&mut rng);
        assert_eq!(fixed.len(), 5);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_case("tuple", 2);
        let (a, b, c) = (0.0f64..1.0, 5u32..6, any::<bool>()).sample(&mut rng);
        assert!((0.0..1.0).contains(&a));
        assert_eq!(b, 5);
        let _ = c;
    }
}
