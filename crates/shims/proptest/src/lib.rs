//! Minimal proptest-compatible property testing harness.
//!
//! Supports the subset this workspace's tests use: the `proptest!` macro
//! with `name in strategy` arguments, range / tuple / array / `any::<T>()`
//! / `prop::collection::vec` strategies, `prop_assert!`, `prop_assert_eq!`
//! and `prop_assume!`. No shrinking: on failure the macro panics with the
//! case number and the `Debug` rendering of every input, which together
//! with the deterministic per-test RNG makes failures reproducible.
//!
//! Case count defaults to 64 and can be raised with `PROPTEST_CASES`.

pub mod strategy;

pub use strategy::{any, Any, Strategy};

/// Deterministic RNG for generating cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// One deterministic stream per (test name, case index).
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case, try another.
    Reject(String),
    /// `prop_assert!`-style failure — the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Number of cases to run per property (env `PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// `prop` namespace mirror (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let mut rejected: u64 = 0;
                let mut case: u64 = 0;
                while case < cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case + rejected);
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                    let __inputs = || {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&::std::format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg
                            ));
                        )+
                        s
                    };
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match result {
                        ::std::result::Result::Ok(()) => { case += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > cases * 16 {
                                panic!(
                                    "proptest {}: too many rejected cases ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (of {}):\n{}\ninputs:\n{}",
                                stringify!($name), case, cases, msg, __inputs()
                            );
                        }
                    }
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), ::std::format!($($fmt)+), a, b),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {} != {}\n  both: {:?}",
                    stringify!($a), stringify!($b), a),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, vec, Any, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, TestCaseError,
        TestRng,
    };
}
