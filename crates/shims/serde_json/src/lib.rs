//! JSON rendering/parsing over the serde shim's [`serde::Value`] model.
//!
//! Floats are printed with Rust's shortest round-trip formatting, so an
//! `f64 → JSON → f64` round trip is bit-exact for finite values. Non-finite
//! floats serialize as the marker strings `"NaN"`/`"inf"`/`"-inf"` (see the
//! serde shim's `Serialize for f64`) so snapshots round-trip losslessly —
//! a deliberate deviation from real serde_json's lossy `null`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            // `{}` prints the shortest representation that round-trips.
            out.push_str(&format!("{x}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(x, out, indent, level + 1);
            }
            if !xs.is_empty() {
                newline(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, out, indent, level + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\n\r".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    /// Four hex digits starting at `at`.
    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let cp = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: combine with the low half
                                // that conformant emitters write next.
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(br"\u")
                                {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(xs));
        }
        loop {
            xs.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                other => return Err(Error(format!("expected , or ] got {other:?}"))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let k = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.parse_value()?;
            entries.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error(format!("expected , or }} got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn f64_round_trip_is_exact() {
        for &x in &[0.1, 1.0000524e-9, -3.5e300, 604800.0, f64::MIN_POSITIVE] {
            let s = super::to_string(&x).unwrap();
            let back: f64 = super::from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let s: String = super::from_str(r#""\ud83d\ude00!""#).unwrap();
        assert_eq!(s, "\u{1F600}!");
        assert!(super::from_str::<String>(r#""\ud83d""#).is_err(), "lone high");
        assert!(super::from_str::<String>(r#""\ud83d\u0041""#).is_err(), "bad low");
        assert!(super::from_str::<String>(r#""\udc00""#).is_err(), "lone low");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = String::from("a\"b\\c\nd\te\u{1}");
        let j = super::to_string(&s).unwrap();
        let back: String = super::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
