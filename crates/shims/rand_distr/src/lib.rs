//! Local subset of `rand_distr`: the `Distribution` trait plus the
//! exponential and Pareto distributions, and ziggurat samplers (the same
//! algorithm upstream uses) for the two hot-path distributions — a
//! [`StandardNormal`]/[`Normal`] for the Gaussian draws and an [`Exp1`]
//! standard exponential backing [`Exp`]. The common case of either costs
//! one keystream `u64`, one multiply and a table compare instead of the
//! two-draw/multi-libm-call classic formulations (Box-Muller, `−ln(u)`);
//! edge layers and tails fall back to exact rejection sampling, so both
//! distributions are exact, not approximate.

use rand::RngCore;
use std::sync::OnceLock;

/// Types that can be sampled from a distribution.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid-parameter error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub &'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Uniform in `[0, 1)` from raw bits (object-safe over `?Sized` RNGs).
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Generic over the float type like upstream (`Exp<f64>`); only `f64` is
/// implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<F = f64> {
    lambda: F,
}

impl Exp<f64> {
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Self { lambda })
        } else {
            Err(ParamError("Exp rate must be finite and positive"))
        }
    }
}

impl Exp<f64> {
    /// The original inverse-CDF formulation (`−ln(1−u)/λ`): one uniform and
    /// one `ln` per draw. Retained as the ground truth of the ziggurat
    /// parity tests; [`Distribution::sample`] now routes through [`Exp1`].
    pub fn sample_inverse_cdf<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ [0,1); 1−u ∈ (0,1] so ln is finite.
        -(1.0 - unit_f64(rng)).ln() / self.lambda
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        Exp1.sample(rng) / self.lambda
    }
}

/// Pareto distribution with minimum `scale` and tail index `shape`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto<F = f64> {
    scale: F,
    shape: F,
}

impl Pareto<f64> {
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if scale.is_finite() && scale > 0.0 && shape.is_finite() && shape > 0.0 {
            Ok(Self { scale, shape })
        } else {
            Err(ParamError("Pareto scale and shape must be positive"))
        }
    }
}

impl Distribution<f64> for Pareto<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (1.0 - unit_f64(rng)).powf(-1.0 / self.shape)
    }
}

/// Ziggurat layer count and constants for the standard normal (the
/// canonical 256-layer parameters, as in upstream `rand_distr`).
const ZIG_R: f64 = 3.654_152_885_361_009;
const ZIG_V: f64 = 4.928_673_233_990_11e-3;
const ZIG_LAYERS: usize = 256;

struct ZigTables {
    /// Layer x-boundaries; `x[0] = V/f(R) > R`, `x[256] = 0`.
    x: [f64; ZIG_LAYERS + 1],
    /// `f[i] = exp(-x[i]²/2)`.
    f: [f64; ZIG_LAYERS + 1],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; ZIG_LAYERS + 1];
        let mut f = [0.0; ZIG_LAYERS + 1];
        x[0] = ZIG_V / pdf(ZIG_R);
        x[1] = ZIG_R;
        for i in 1..ZIG_LAYERS {
            // Each layer has area V: x[i]·(f(x[i+1]) − f(x[i])) = V.
            x[i + 1] = (-2.0 * (ZIG_V / x[i] + pdf(x[i])).ln()).max(0.0).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        for i in 0..=ZIG_LAYERS {
            f[i] = pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

/// The standard normal distribution `N(0, 1)`, sampled with the ziggurat
/// algorithm: the common case costs one `u64` draw, one multiply and one
/// table compare; edges and the tail (|z| > 3.654) fall back to exact
/// rejection sampling, so the distribution is exact, not approximate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

/// One ziggurat attempt driven by the keystream word `bits`; `None` means
/// the wedge rejected and the caller must retry with a fresh word. Edge
/// cases (wedge, tail) complete with direct draws from `rng`.
#[inline]
fn zig_try<R: RngCore + ?Sized>(t: &ZigTables, rng: &mut R, bits: u64) -> Option<f64> {
    let i = (bits & 0xFF) as usize;
    // Symmetric uniform in [-1, 1) from the top 53 bits
    // (independent of the 8 layer-index bits).
    let u = ((bits >> 11) as f64) * (2.0 / (1u64 << 53) as f64) - 1.0;
    let x = u * t.x[i];
    if x.abs() < t.x[i + 1] {
        return Some(x); // inside the layer's rectangle: accept
    }
    if i == 0 {
        // Tail sample beyond R (Marsaglia's exact method).
        loop {
            let u1 = (1.0 - unit_f64(rng)).max(f64::MIN_POSITIVE);
            let u2 = 1.0 - unit_f64(rng);
            let xt = -u1.ln() / ZIG_R;
            if -2.0 * u2.ln() >= xt * xt {
                return Some(if u < 0.0 { -(ZIG_R + xt) } else { ZIG_R + xt });
            }
        }
    }
    // Wedge: accept with probability proportional to the pdf gap.
    if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * unit_f64(rng) < (-0.5 * x * x).exp() {
        Some(x)
    } else {
        None
    }
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let t = zig_tables();
        loop {
            let bits = rng.next_u64();
            if let Some(x) = zig_try(t, rng, bits) {
                return x;
            }
        }
    }
}

impl StandardNormal {
    /// Completes one `N(0, 1)` sample from a pre-drawn keystream word
    /// `bits`, falling back to direct draws from `rng` for the rare
    /// (~1.5%) wedge/tail cases. This is the primitive callers with their
    /// own batched keystream buffers build on; the distribution is exactly
    /// standard normal as long as `bits` is a fresh uniform word.
    #[inline]
    pub fn sample_with_word<R: RngCore + ?Sized>(&self, rng: &mut R, bits: u64) -> f64 {
        match zig_try(zig_tables(), rng, bits) {
            Some(x) => x,
            None => self.sample(rng),
        }
    }

    /// Fills `out` with independent `N(0, 1)` samples, reading the
    /// common-case keystream words in batches via [`RngCore::fill_u64`]
    /// (one batched read covers ~98% of the samples; wedge/tail cases
    /// complete with direct draws). Statistically identical to repeated
    /// [`Distribution::sample`], but not stream-compatible with it — the
    /// batched read reorders keystream consumption.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        const CHUNK: usize = 64;
        let t = zig_tables();
        let mut words = [0u64; CHUNK];
        for chunk in out.chunks_mut(CHUNK) {
            let words = &mut words[..chunk.len()];
            rng.fill_u64(words);
            for (o, &bits) in chunk.iter_mut().zip(words.iter()) {
                *o = match zig_try(t, rng, bits) {
                    Some(x) => x,
                    None => self.sample(rng),
                };
            }
        }
    }
}

/// Ziggurat constants for the standard exponential (the canonical
/// 256-layer parameters, as in upstream `rand_distr`).
const ZIG_EXP_R: f64 = 7.697_117_470_131_05;
const ZIG_EXP_V: f64 = 3.949_659_822_581_557e-3;

struct ZigExpTables {
    /// Layer x-boundaries; `x[0] = V/f(R) > R`, `x[256] = 0`.
    x: [f64; ZIG_LAYERS + 1],
    /// `f[i] = exp(-x[i])`.
    f: [f64; ZIG_LAYERS + 1],
}

fn zig_exp_tables() -> &'static ZigExpTables {
    static TABLES: OnceLock<ZigExpTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-x).exp();
        let mut x = [0.0; ZIG_LAYERS + 1];
        let mut f = [0.0; ZIG_LAYERS + 1];
        x[0] = ZIG_EXP_V / pdf(ZIG_EXP_R);
        x[1] = ZIG_EXP_R;
        for i in 1..ZIG_LAYERS {
            // Each layer has area V: x[i]·(f(x[i+1]) − f(x[i])) = V.
            x[i + 1] = (-(ZIG_EXP_V / x[i] + pdf(x[i])).ln()).max(0.0);
        }
        x[ZIG_LAYERS] = 0.0;
        for i in 0..=ZIG_LAYERS {
            f[i] = pdf(x[i]);
        }
        ZigExpTables { x, f }
    })
}

/// The standard exponential distribution `Exp(1)`, sampled with the
/// ziggurat algorithm: the common case costs one `u64` draw, one multiply
/// and one table compare — no `ln`. Edge layers fall back to exact wedge
/// rejection and the tail (`x > 7.697`) to the memoryless identity
/// `R + Exp(1)`, so the distribution is exact, not approximate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exp1;

/// One exponential-ziggurat attempt driven by the keystream word `bits`;
/// `None` means the wedge rejected and the caller must retry with a fresh
/// word. The tail completes with direct draws from `rng`.
#[inline]
fn zig_exp_try<R: RngCore + ?Sized>(
    t: &ZigExpTables,
    rng: &mut R,
    bits: u64,
) -> Option<f64> {
    let i = (bits & 0xFF) as usize;
    // Uniform in [0, 1) from the top 53 bits (independent of the 8
    // layer-index bits).
    let u = ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
    let x = u * t.x[i];
    if x < t.x[i + 1] {
        return Some(x); // inside the layer's rectangle: accept
    }
    if i == 0 {
        // Tail: exponential beyond R is R + Exp(1) (memorylessness); one
        // inverse-CDF draw completes it exactly.
        return Some(ZIG_EXP_R - (1.0 - unit_f64(rng)).ln());
    }
    // Wedge: accept with probability proportional to the pdf gap.
    if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * unit_f64(rng) < (-x).exp() {
        Some(x)
    } else {
        None
    }
}

impl Distribution<f64> for Exp1 {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let t = zig_exp_tables();
        loop {
            let bits = rng.next_u64();
            if let Some(x) = zig_exp_try(t, rng, bits) {
                return x;
            }
        }
    }
}

impl Exp1 {
    /// Completes one `Exp(1)` sample from a pre-drawn keystream word
    /// `bits`, falling back to direct draws from `rng` for the rare
    /// (~1.2%) wedge/tail cases — the batched-keystream primitive, mirror
    /// of [`StandardNormal::sample_with_word`]. Exactly exponential as
    /// long as `bits` is a fresh uniform word.
    #[inline]
    pub fn sample_with_word<R: RngCore + ?Sized>(&self, rng: &mut R, bits: u64) -> f64 {
        match zig_exp_try(zig_exp_tables(), rng, bits) {
            Some(x) => x,
            None => self.sample(rng),
        }
    }

    /// Fills `out` with independent `Exp(1)` samples, reading the
    /// common-case keystream words in batches via [`RngCore::fill_u64`],
    /// mirror of [`StandardNormal::fill`]. Statistically identical to
    /// repeated [`Distribution::sample`], but not stream-compatible with
    /// it — the batched read reorders keystream consumption.
    pub fn fill<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        const CHUNK: usize = 64;
        let t = zig_exp_tables();
        let mut words = [0u64; CHUNK];
        for chunk in out.chunks_mut(CHUNK) {
            let words = &mut words[..chunk.len()];
            rng.fill_u64(words);
            for (o, &bits) in chunk.iter_mut().zip(words.iter()) {
                *o = match zig_exp_try(t, rng, bits) {
                    Some(x) => x,
                    None => self.sample(rng),
                };
            }
        }
    }
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Self { mean, std_dev })
        } else {
            Err(ParamError("Normal std_dev must be finite and non-negative"))
        }
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed) | 1)
        }
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(2.0).unwrap();
        let mut rng = Lcg::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let d = Pareto::new(3.0, 2.5).unwrap();
        let mut rng = Lcg::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Pareto::new(-1.0, 2.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    /// SplitMix64: the ziggurat consumes low bits for the layer index, so
    /// the test RNG must have full-width diffusion (the Lcg above doesn't).
    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ziggurat_tables_are_consistent() {
        let t = zig_tables();
        assert!((t.x[0] - ZIG_V / (-0.5 * ZIG_R * ZIG_R).exp()).abs() < 1e-12);
        assert_eq!(t.x[1], ZIG_R);
        assert_eq!(t.x[ZIG_LAYERS], 0.0);
        // strictly decreasing boundaries, f increasing to f(0)=1
        for i in 1..=ZIG_LAYERS {
            assert!(t.x[i] < t.x[i - 1], "x not decreasing at {i}");
            assert!(t.f[i] > t.f[i - 1], "f not increasing at {i}");
        }
        assert!((t.f[ZIG_LAYERS] - 1.0).abs() < 1e-9, "f(0) = {}", t.f[ZIG_LAYERS]);
        // every layer i ≥ 1 has area V
        for i in 1..ZIG_LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - ZIG_V).abs() < 1e-9, "layer {i} area {area}");
        }
    }

    #[test]
    fn standard_normal_moments_match() {
        let mut rng = Sm(7);
        let n = 2_000_000usize;
        let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
        let (mut gt1, mut gt2, mut gt3, mut tail) = (0usize, 0, 0, 0);
        for _ in 0..n {
            let z = StandardNormal.sample(&mut rng);
            s1 += z;
            s2 += z * z;
            s3 += z * z * z;
            s4 += z * z * z * z;
            let a = z.abs();
            if a > 1.0 {
                gt1 += 1;
            }
            if a > 2.0 {
                gt2 += 1;
            }
            if a > 3.0 {
                gt3 += 1;
            }
            if a > ZIG_R {
                tail += 1;
            }
        }
        let nf = n as f64;
        assert!((s1 / nf).abs() < 3e-3, "mean {}", s1 / nf);
        assert!((s2 / nf - 1.0).abs() < 5e-3, "variance {}", s2 / nf);
        assert!((s3 / nf).abs() < 1e-2, "skew {}", s3 / nf);
        assert!((s4 / nf - 3.0).abs() < 5e-2, "kurtosis {}", s4 / nf);
        let frac = |k: usize| k as f64 / nf;
        assert!((frac(gt1) - 0.3173).abs() < 3e-3, "P(|z|>1) = {}", frac(gt1));
        assert!((frac(gt2) - 0.0455).abs() < 1.5e-3, "P(|z|>2) = {}", frac(gt2));
        assert!((frac(gt3) - 0.0027).abs() < 4e-4, "P(|z|>3) = {}", frac(gt3));
        // the Marsaglia tail path is actually exercised and has the right
        // mass: P(|z| > 3.6542) ≈ 2.58e-4
        assert!(
            frac(tail) > 0.5e-4 && frac(tail) < 5e-4,
            "P(|z|>R) = {}",
            frac(tail)
        );
    }

    #[test]
    fn standard_normal_quantiles_match() {
        // Empirical CDF at a few probe points vs Φ(x).
        let mut rng = Sm(13);
        let n = 1_000_000usize;
        let probes = [-2.0f64, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0];
        let phi = [0.02275, 0.15866, 0.30854, 0.5, 0.69146, 0.84134, 0.97725];
        let mut counts = [0usize; 7];
        for _ in 0..n {
            let z = StandardNormal.sample(&mut rng);
            for (j, &p) in probes.iter().enumerate() {
                if z <= p {
                    counts[j] += 1;
                }
            }
        }
        for j in 0..probes.len() {
            let got = counts[j] as f64 / n as f64;
            assert!(
                (got - phi[j]).abs() < 2.5e-3,
                "CDF({}) = {got} vs {}",
                probes[j],
                phi[j]
            );
        }
    }

    #[test]
    fn normal_scales_and_shifts() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = Sm(99);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn fill_matches_sample_statistics() {
        // The batched path must produce the same distribution as repeated
        // sample() (it reorders keystream reads, nothing else).
        let mut rng = Sm(21);
        let n = 400_000;
        let mut buf = vec![0.0; n];
        StandardNormal.fill(&mut rng, &mut buf);
        let nf = n as f64;
        let mean = buf.iter().sum::<f64>() / nf;
        let var = buf.iter().map(|z| z * z).sum::<f64>() / nf;
        let gt2 = buf.iter().filter(|z| z.abs() > 2.0).count() as f64 / nf;
        assert!(mean.abs() < 5e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "variance {var}");
        assert!((gt2 - 0.0455).abs() < 3e-3, "P(|z|>2) = {gt2}");
    }

    #[test]
    fn fill_is_deterministic_and_covers_odd_lengths() {
        for len in [0usize, 1, 63, 64, 65, 200] {
            let run = |seed: u64| {
                let mut rng = Sm(seed);
                let mut buf = vec![0.0; len];
                StandardNormal.fill(&mut rng, &mut buf);
                buf.iter().map(|z| z.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(run(9), run(9), "len {len}");
            if len > 0 {
                assert_ne!(run(9), run(10), "len {len}");
            }
        }
    }

    #[test]
    fn exp_ziggurat_tables_are_consistent() {
        let t = zig_exp_tables();
        assert!((t.x[0] - ZIG_EXP_V / (-ZIG_EXP_R).exp()).abs() < 1e-9);
        assert_eq!(t.x[1], ZIG_EXP_R);
        assert_eq!(t.x[ZIG_LAYERS], 0.0);
        // strictly decreasing boundaries, f increasing to f(0)=1
        for i in 1..=ZIG_LAYERS {
            assert!(t.x[i] < t.x[i - 1], "x not decreasing at {i}");
            assert!(t.f[i] > t.f[i - 1], "f not increasing at {i}");
        }
        assert!((t.f[ZIG_LAYERS] - 1.0).abs() < 1e-12, "f(0) = {}", t.f[ZIG_LAYERS]);
        // every layer i ≥ 1 has area V
        for i in 1..ZIG_LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - ZIG_EXP_V).abs() < 1e-9, "layer {i} area {area}");
        }
    }

    /// Moment/tail parity of the ziggurat exponential against the retained
    /// `−ln(1−u)` inverse-CDF path: same mean, variance, skewness and tail
    /// masses to within sampling error, on independent streams.
    #[test]
    fn exp_ziggurat_matches_inverse_cdf_moments_and_tails() {
        let d = Exp::new(1.0).unwrap();
        let n = 2_000_000usize;
        let collect = |samples: Box<dyn Iterator<Item = f64>>| {
            let (mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0);
            let (mut t1, mut t3, mut t8) = (0usize, 0, 0);
            for x in samples {
                assert!(x >= 0.0, "exponential sample negative: {x}");
                s1 += x;
                s2 += x * x;
                s3 += x * x * x;
                if x > 1.0 {
                    t1 += 1;
                }
                if x > 3.0 {
                    t3 += 1;
                }
                // beyond the ziggurat R: the Marsaglia tail path
                if x > 8.0 {
                    t8 += 1;
                }
            }
            let nf = n as f64;
            [s1 / nf, s2 / nf, s3 / nf, t1 as f64 / nf, t3 as f64 / nf, t8 as f64 / nf]
        };
        let mut zig_rng = Sm(17);
        let zig = collect(Box::new((0..n).map(move |_| d.sample(&mut zig_rng))));
        let mut ln_rng = Sm(18);
        let ln = collect(Box::new(
            (0..n).map(move |_| d.sample_inverse_cdf(&mut ln_rng)),
        ));
        // Exp(1) truth: E=1, E[x²]=2, E[x³]=6, P(>1)=e⁻¹, P(>3)=e⁻³, P(>8)=e⁻⁸.
        let truth = [
            1.0,
            2.0,
            6.0,
            (-1.0f64).exp(),
            (-3.0f64).exp(),
            (-8.0f64).exp(),
        ];
        let tol = [3e-3, 1.5e-2, 1e-1, 1.5e-3, 3e-4, 2e-5];
        for (k, name) in ["mean", "E[x²]", "E[x³]", "P(>1)", "P(>3)", "P(>8)"]
            .iter()
            .enumerate()
        {
            assert!(
                (zig[k] - truth[k]).abs() < tol[k],
                "ziggurat {name}: {} vs {}",
                zig[k],
                truth[k]
            );
            assert!(
                (zig[k] - ln[k]).abs() < 2.0 * tol[k],
                "{name} diverges from ln path: {} vs {}",
                zig[k],
                ln[k]
            );
        }
        // the tail path fires with the right (tiny but nonzero) mass
        assert!(zig[5] > 0.0, "Exp(1) tail beyond 8 never sampled");
    }

    #[test]
    fn exp_quantiles_match_inverse_cdf() {
        // Empirical CDF at probe points vs 1 − e⁻ˣ, for both paths.
        let d = Exp::new(1.0).unwrap();
        let n = 1_000_000usize;
        let probes = [0.1f64, 0.5, 1.0, 2.0, 4.0, ZIG_EXP_R];
        let run = |ziggurat: bool, seed: u64| {
            let mut rng = Sm(seed);
            let mut counts = [0usize; 6];
            for _ in 0..n {
                let x = if ziggurat {
                    d.sample(&mut rng)
                } else {
                    d.sample_inverse_cdf(&mut rng)
                };
                for (j, &p) in probes.iter().enumerate() {
                    if x <= p {
                        counts[j] += 1;
                    }
                }
            }
            counts
        };
        let zig = run(true, 23);
        let ln = run(false, 24);
        for (j, &p) in probes.iter().enumerate() {
            let cdf = 1.0 - (-p).exp();
            for (name, got) in [("ziggurat", zig[j]), ("ln", ln[j])] {
                let got = got as f64 / n as f64;
                assert!(
                    (got - cdf).abs() < 2.5e-3,
                    "{name} CDF({p}) = {got} vs {cdf}"
                );
            }
        }
    }

    #[test]
    fn exp_lambda_scales_both_paths() {
        let d = Exp::new(4.0).unwrap();
        let mut rng = Sm(31);
        let n = 400_000;
        let mean_zig = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let mean_ln = (0..n).map(|_| d.sample_inverse_cdf(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean_zig - 0.25).abs() < 2e-3, "ziggurat mean {mean_zig}");
        assert!((mean_ln - 0.25).abs() < 2e-3, "ln mean {mean_ln}");
    }

    #[test]
    fn exp1_fill_and_sample_with_word_match_sample_statistics() {
        let n = 400_000;
        let mut buf = vec![0.0; n];
        let mut rng = Sm(41);
        Exp1.fill(&mut rng, &mut buf);
        let nf = n as f64;
        let mean = buf.iter().sum::<f64>() / nf;
        let var = buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nf;
        let t1 = buf.iter().filter(|&&x| x > 1.0).count() as f64 / nf;
        assert!((mean - 1.0).abs() < 5e-3, "fill mean {mean}");
        assert!((var - 1.0).abs() < 1.5e-2, "fill variance {var}");
        assert!((t1 - (-1.0f64).exp()).abs() < 3e-3, "fill P(>1) {t1}");
        // caller-batched words: same distribution
        let mut rng = Sm(43);
        let mut mean_w = 0.0;
        for _ in 0..n {
            let bits = rng.next_u64();
            mean_w += Exp1.sample_with_word(&mut rng, bits);
        }
        mean_w /= nf;
        assert!((mean_w - 1.0).abs() < 5e-3, "sample_with_word mean {mean_w}");
    }

    #[test]
    fn exp1_fill_is_deterministic_and_covers_odd_lengths() {
        for len in [0usize, 1, 63, 64, 65, 200] {
            let run = |seed: u64| {
                let mut rng = Sm(seed);
                let mut buf = vec![0.0; len];
                Exp1.fill(&mut rng, &mut buf);
                buf.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(run(9), run(9), "len {len}");
            if len > 0 {
                assert_ne!(run(9), run(10), "len {len}");
            }
        }
    }

    #[test]
    fn standard_normal_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut rng = Sm(seed);
            (0..1000)
                .map(|_| StandardNormal.sample(&mut rng).to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
