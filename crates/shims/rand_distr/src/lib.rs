//! Local subset of `rand_distr`: the `Distribution` trait plus the
//! exponential and Pareto distributions (inverse-CDF sampling), which are
//! what the network-delay simulator draws from.

use rand::RngCore;

/// Types that can be sampled from a distribution.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid-parameter error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub &'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Uniform in `[0, 1)` from raw bits (object-safe over `?Sized` RNGs).
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Generic over the float type like upstream (`Exp<f64>`); only `f64` is
/// implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<F = f64> {
    lambda: F,
}

impl Exp<f64> {
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Self { lambda })
        } else {
            Err(ParamError("Exp rate must be finite and positive"))
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ [0,1); 1−u ∈ (0,1] so ln is finite.
        -(1.0 - unit_f64(rng)).ln() / self.lambda
    }
}

/// Pareto distribution with minimum `scale` and tail index `shape`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto<F = f64> {
    scale: F,
    shape: F,
}

impl Pareto<f64> {
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if scale.is_finite() && scale > 0.0 && shape.is_finite() && shape > 0.0 {
            Ok(Self { scale, shape })
        } else {
            Err(ParamError("Pareto scale and shape must be positive"))
        }
    }
}

impl Distribution<f64> for Pareto<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (1.0 - unit_f64(rng)).powf(-1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed) | 1)
        }
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(2.0).unwrap();
        let mut rng = Lcg::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let d = Pareto::new(3.0, 2.5).unwrap();
        let mut rng = Lcg::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Pareto::new(-1.0, 2.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
    }
}
