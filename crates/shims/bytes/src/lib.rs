//! Local subset of the `bytes` crate: the `Buf`/`BufMut` cursor traits over
//! plain slices, with the network-order (big-endian) accessors the NTP
//! packet codec uses. Panics on under/overflow exactly like upstream.

/// Read cursor over a byte source (implemented for `&[u8]`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor over a byte sink (implemented for `&mut [u8]`).
pub trait BufMut {
    fn remaining_mut(&self) -> usize;
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for &mut [u8] {
    fn remaining_mut(&self) -> usize {
        self.len()
    }

    fn put_slice(&mut self, src: &[u8]) {
        assert!(self.len() >= src.len(), "buffer overflow");
        let taken = std::mem::take(self);
        let (head, tail) = taken.split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_network_order() {
        let mut storage = [0u8; 13];
        {
            let mut w: &mut [u8] = &mut storage;
            w.put_u8(0xAB);
            w.put_u32(0x1234_5678);
            w.put_u64(0x0102_0304_0506_0708);
            assert_eq!(w.remaining_mut(), 0);
        }
        assert_eq!(storage[0], 0xAB);
        assert_eq!(&storage[1..5], &[0x12, 0x34, 0x56, 0x78]);
        let mut r: &[u8] = &storage;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0x1234_5678);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32();
    }
}
