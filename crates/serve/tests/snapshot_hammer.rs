//! Snapshot publication hammer: one publisher republishing at full speed,
//! N reader threads evaluating concurrently. Asserts the seqlock's whole
//! contract:
//!
//! - **no torn reads** — every field of every observed snapshot is the
//!   deterministic function of its era that the publisher wrote, so any
//!   cross-era mix of fields is detected;
//! - **eras are monotone** per reader (a reader never observes time going
//!   backwards through publications);
//! - **error bounds are monotone between republishes** — within one
//!   observed era, `bound_at` evaluated at increasing counter readings
//!   never shrinks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsc_serve::{ClockSnapshot, SnapshotCell};

/// The unique snapshot the publisher seals for `era` — every field
/// derives from the era, so readers can verify internal consistency.
fn snapshot_for_era(era: u64) -> ClockSnapshot {
    ClockSnapshot {
        era,
        tsc0: era.wrapping_mul(1_000),
        base: 1.0e9 + era as f64 * 1e-3,
        rate: 1e-9 + (era % 16) as f64 * 1e-13,
        bound: 10e-6 + (era % 8) as f64 * 1e-6,
        widen_rate: 1e-7 + (era % 4) as f64 * 1e-9,
        synced: era.is_multiple_of(2),
        reference_id: (era as u32).to_be_bytes(),
    }
}

fn assert_consistent(s: &ClockSnapshot) {
    let want = snapshot_for_era(s.era);
    assert_eq!(s, &want, "torn read: era {} fields are mixed", s.era);
}

#[test]
fn hammer_no_torn_reads_and_monotone_bounds() {
    const READERS: usize = 4;
    const RUN: Duration = Duration::from_millis(500);

    let cell = Arc::new(SnapshotCell::new());
    let stop = Arc::new(AtomicBool::new(false));
    let published = Arc::new(AtomicU64::new(0));

    let pub_cell = Arc::clone(&cell);
    let pub_stop = Arc::clone(&stop);
    let pub_count = Arc::clone(&published);
    let publisher = std::thread::spawn(move || {
        let mut era = 0u64;
        while !pub_stop.load(Ordering::Relaxed) {
            era += 1;
            pub_cell.publish(&snapshot_for_era(era));
        }
        pub_count.store(era, Ordering::Relaxed);
    });

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut last_era = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let Some(s) = cell.read() else { continue };
                    assert_consistent(&s);
                    assert!(
                        s.era >= last_era,
                        "era went backwards: {} after {}",
                        s.era,
                        last_era
                    );
                    last_era = s.era;
                    // Bound monotone in staleness within this snapshot.
                    let t1 = s.tsc0.wrapping_add(100);
                    let t2 = s.tsc0.wrapping_add(100_000);
                    assert!(s.bound_at(t2) >= s.bound_at(t1));
                    assert!(s.bound_at(t1) >= s.bound);
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let t0 = Instant::now();
    while t0.elapsed() < RUN {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    publisher.join().unwrap();
    let total_reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    let eras = published.load(Ordering::Relaxed);
    // Sanity: the hammer actually hammered — both sides made real progress
    // (thousands of operations even on a 1-core host).
    assert!(eras > 1_000, "publisher only sealed {eras} eras");
    assert!(total_reads > 1_000, "readers only completed {total_reads} reads");
}

/// Same cell exercised single-threaded at era-rollover scale: the seq
/// counter wraps are harmless (the cell uses wrapping arithmetic).
#[test]
fn sequential_republish_is_lossless() {
    let cell = SnapshotCell::new();
    for era in 1..=10_000 {
        cell.publish(&snapshot_for_era(era));
        let s = cell.read().unwrap();
        assert_eq!(s.era, era);
        assert_consistent(&s);
    }
}
