//! Served-timestamp correctness against netsim ground truth.
//!
//! A day-long simulated run drives the full serving pipeline: the
//! discipline loop ingests each delivered exchange and republishes the
//! snapshot; *before* every ingest, a simulated client asks the serving
//! plane for the time at that exchange's `Tf` counter reading (so every
//! answer comes from the previous seal, one poll period stale — the
//! steady-state worst case). For **every** served response we assert
//!
//! ```text
//! |served Tb − true time at the read| ≤ wire-reported bound
//! ```
//!
//! where the truth is the scenario's DAG-corrected reference timestamp
//! (`SimExchange::tg`), the same oracle the accuracy suites use. A
//! mid-day 10 000 s outage then proves the staleness horizon: the first
//! request after the gap is *refused* (`STAL` Kiss-o'-Death), never
//! answered silently stale, and serving resumes after re-sync.

use std::sync::Arc;
use tsc_netsim::{Scenario, SimExchange};
use tsc_ntp::packet::{NtpPacket, PacketError};
use tsc_ntp::timestamp::NtpTimestamp;
use tsc_serve::{
    BatchBufs, DatagramBatch, PublishPolicy, Publisher, ServeConfig, ServePlane, SimTransport,
    SnapshotCell, REFUSE_STALE,
};
use tscclock::{ClockConfig, RawExchange, TscNtpClock};

fn to_raw(e: &SimExchange) -> RawExchange {
    RawExchange {
        ta_tsc: e.ta_tsc,
        tb: e.tb,
        te: e.te,
        tf_tsc: e.tf_tsc,
    }
}

struct Outcome {
    served: u64,
    refused: u64,
    violations: Vec<(f64, f64, f64)>, // (poll_time, |err|, bound)
    stale_refusal_times: Vec<f64>,
    served_times: Vec<f64>,
    worst_margin: f64, // max |err| / bound over all served responses
}

fn run(sc: &Scenario, horizon: f64) -> Outcome {
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    let cell = Arc::new(SnapshotCell::new());
    let mut publisher = Publisher::new(Arc::clone(&cell), PublishPolicy::default());
    let mut plane = ServePlane::new(
        Arc::clone(&cell),
        ServeConfig {
            stale_horizon: horizon,
            ..ServeConfig::default()
        },
    );
    let mut transport = SimTransport::new();
    let mut rx = BatchBufs::new(4);
    let mut tx = BatchBufs::new(4);

    let mut out = Outcome {
        served: 0,
        refused: 0,
        violations: Vec::new(),
        stale_refusal_times: Vec::new(),
        served_times: Vec::new(),
        worst_margin: 0.0,
    };

    let mut stream = sc.stream();
    while let Some(e) = stream.step() {
        if e.lost {
            continue;
        }
        // 1. A client queries at this exchange's Tf reading — served off
        //    the *previous* seal (one poll period of staleness).
        let request = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(e.tg), 4);
        transport.push_request(&request.encode());
        let n = transport.recv_batch(&mut rx, 4).unwrap();
        let mut tsc = || e.tf_tsc;
        plane.serve_batch(&rx, n, &mut tx, &mut tsc);
        transport.send_batch(&tx, n).unwrap();
        let (resp, len) = transport.pop_response().unwrap();
        let resp = NtpPacket::decode(&resp[..len]).unwrap();
        match resp.validate_response(&request) {
            Ok(()) => {
                let served_tb = resp.receive_ts.to_unix_seconds();
                let bound = resp.root_dispersion.to_seconds();
                let err = (served_tb - e.tg).abs();
                out.served += 1;
                out.served_times.push(e.poll_time);
                out.worst_margin = out.worst_margin.max(err / bound);
                if err > bound {
                    out.violations.push((e.poll_time, err, bound));
                }
            }
            Err(PacketError::KissOfDeath(code)) => {
                out.refused += 1;
                if code == REFUSE_STALE {
                    out.stale_refusal_times.push(e.poll_time);
                }
            }
            Err(other) => panic!("unexpected response error {other:?}"),
        }
        // 2. The discipline loop ingests the exchange and republishes.
        if let Some(o) = clock.process(to_raw(&e)) {
            publisher.observe(&o);
        }
        publisher.publish_clock(&clock, e.tf_tsc);
    }
    out
}

#[test]
fn day_long_run_every_served_bound_holds() {
    let sc = Scenario::baseline(4242)
        .with_poll_period(16.0)
        .with_duration(86_400.0);
    let out = run(&sc, 600.0);
    assert!(
        out.violations.is_empty(),
        "{} of {} served responses exceeded their bound; worst: {:?}",
        out.violations.len(),
        out.served,
        out.violations
            .iter()
            .take(5)
            .map(|(t, e, b)| format!("t={t:.0}s err={:.1}µs bound={:.1}µs", e * 1e6, b * 1e6))
            .collect::<Vec<_>>()
    );
    // The run really served (warmup refusals aside, a day at poll 16 is
    // ~5400 exchanges).
    assert!(out.served > 4_000, "only {} served", out.served);
    assert!(out.refused > 0, "warmup must refuse, not serve");
    // Bounds are not vacuous: the worst served error used a real fraction
    // of its bound.
    assert!(
        out.worst_margin > 0.01,
        "worst served error at {:.4} of bound — bound looks inflated",
        out.worst_margin
    );
}

#[test]
fn outage_past_horizon_refuses_then_recovers() {
    let sc = Scenario::baseline(77)
        .with_poll_period(16.0)
        .with_duration(86_400.0)
        .with_outage(40_000.0, 50_000.0);
    let out = run(&sc, 600.0);
    assert!(out.violations.is_empty(), "bound violations: {:?}", out.violations);
    // The first delivered exchange after the 10 000 s gap sees a snapshot
    // far beyond the 600 s horizon → STAL refusal, not a stale answer.
    assert!(
        out.stale_refusal_times
            .iter()
            .any(|&t| (50_000.0..50_600.0).contains(&t)),
        "no STAL refusal right after the outage: {:?}",
        &out.stale_refusal_times[..out.stale_refusal_times.len().min(5)]
    );
    // Serving resumes once the loop republishes on fresh exchanges.
    assert!(
        out.served_times.iter().any(|&t| t > 50_600.0),
        "serving never resumed after the outage"
    );
}
