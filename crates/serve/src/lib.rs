//! `tsc-serve` — the `ntpd`-style serving plane: answer NTP client
//! requests off the disciplined TSC clock at millions of responses per
//! second, without ever making the response path wait on the discipline
//! loop.
//!
//! Three layers (see `README.md` for the full design):
//!
//! - [`cell`]: the lock-free published clock snapshot. The discipline
//!   loop seals `(Ca(t0), p̂, error bound, era)` into a seqlock
//!   [`SnapshotCell`]; readers evaluate `Ca(t) = base + rate·(t − t0)`
//!   with zero locks and retry only on a torn generation.
//! - [`publish`]: the writer side — [`Publisher`] turns a `TscNtpClock`
//!   or `QuorumClock` plus a bound policy (point-error EMA, floor,
//!   staleness widening) into sealed snapshots.
//! - [`transport`] + [`plane`]: the batched datagram front-end — a
//!   recvmmsg/sendmmsg-shaped [`DatagramBatch`] trait over one contiguous
//!   buffer per direction, implemented by real UDP sockets and an
//!   in-process [`SimTransport`]; [`ServePlane::serve_batch`] decodes,
//!   decides serve-or-refuse, stamps and encodes whole batches
//!   allocation-free, and [`spawn_udp`] runs it as a daemon thread.
//!
//! Every response carries a served-error bound (clock error at seal +
//! `widen_rate`·staleness) in its root-dispersion field, and requests
//! past the staleness horizon are refused with a stratum-0 Kiss-o'-Death
//! (`STAL`) rather than answered stale.

pub mod cell;
pub mod plane;
pub mod publish;
pub mod transport;

pub use cell::{ClockSnapshot, MutexCell, SnapshotCell};
pub use plane::{
    decide, instant_counter, spawn_udp, Decision, ServeConfig, ServeDaemonHandle, ServePlane,
    ServeStats, REFUSE_INIT, REFUSE_STALE, REFUSE_UNSYNC,
};
pub use publish::{PublishPolicy, Publisher};
pub use transport::{BatchBufs, DatagramBatch, SimTransport, UdpBatchTransport, SLOT_LEN};
