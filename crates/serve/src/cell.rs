//! The lock-free published clock snapshot: a seqlock cell the discipline
//! loop seals `(Ca(t0), p̂, error bound, era)` into, and the serving hot
//! path reads without ever taking a lock.
//!
//! # Why a seqlock
//!
//! The serving plane answers millions of requests per second while the
//! discipline loop republishes every few hundred microseconds to seconds.
//! Readers vastly outnumber writes, readers must never block the writer
//! (a stalled discipline loop is worse than a retried read), and the
//! payload is a handful of words. That is exactly the seqlock sweet spot:
//! the writer bumps a generation counter to odd, stores the fields, bumps
//! it to even; a reader grabs the generation, copies the fields, and
//! retries only if the generation was odd or moved — a torn read is
//! *detected and discarded*, never returned.
//!
//! Every field lives in its own `AtomicU64` (floats as `to_bits`), so all
//! accesses are atomic and the data race the classic C seqlock relies on
//! never exists — this is the memory-ordering recipe from crossbeam's
//! seqlock discussions: writer `seq += 1 (Relaxed); fence(Release); data
//! stores (Relaxed); seq += 1 (Release)`, reader `s1 = seq (Acquire); data
//! loads (Relaxed); fence(Acquire); s2 = seq (Relaxed); accept iff s1 ==
//! s2 and even`.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One sealed clock estimate: everything the response path needs to stamp
/// a timestamp and bound its error, with no access to the clock itself.
///
/// The absolute time at counter reading `tsc` is evaluated as
///
/// ```text
/// Ca(tsc) = base + (tsc − tsc0)·rate
/// ```
///
/// and the **served-error bound** widens with staleness:
///
/// ```text
/// bound(tsc) = bound + widen_rate · staleness,   staleness = (tsc − tsc0)·rate
/// ```
///
/// `bound` is the paper's clock error at seal time (point-error derived);
/// `widen_rate` (s/s) covers rate-estimate error and undetected drift
/// while the snapshot ages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSnapshot {
    /// Publication generation, strictly increasing from 1. A cell that has
    /// never been published reads as `None`, not era 0.
    pub era: u64,
    /// Raw counter reading at seal time (`t0`).
    pub tsc0: u64,
    /// Absolute time `Ca(t0)` in Unix seconds.
    pub base: f64,
    /// Rate estimate `p̂` in seconds per count.
    pub rate: f64,
    /// Clock error bound at seal time, seconds.
    pub bound: f64,
    /// Bound widening per second of staleness (s/s).
    pub widen_rate: f64,
    /// Whether the discipline loop considers itself synchronized; `false`
    /// makes the serving plane refuse rather than stamp.
    pub synced: bool,
    /// Reference identifier to advertise in responses.
    pub reference_id: [u8; 4],
}

impl ClockSnapshot {
    /// Elapsed seconds between the seal and counter reading `tsc`
    /// (negative if `tsc` predates the seal — callers treat that as 0).
    #[inline]
    pub fn staleness(&self, tsc: u64) -> f64 {
        (tsc.wrapping_sub(self.tsc0) as i64) as f64 * self.rate
    }

    /// The absolute clock `Ca(tsc) = base + (tsc − tsc0)·rate`.
    #[inline]
    pub fn time_at(&self, tsc: u64) -> f64 {
        self.base + (tsc.wrapping_sub(self.tsc0) as i64) as f64 * self.rate
    }

    /// Served-error bound at `tsc`: seal-time bound plus staleness
    /// widening. Monotone in `tsc` between republishes.
    #[inline]
    pub fn bound_at(&self, tsc: u64) -> f64 {
        self.bound + self.widen_rate * self.staleness(tsc).max(0.0)
    }
}

/// The seqlock cell. One writer (the discipline loop), any number of
/// lock-free readers (the serving hot path, telemetry, tests).
///
/// Writers must be externally serialized — in this system there is exactly
/// one publisher per cell (the discipline loop that owns the clock), which
/// is the deployment the cell is documented and tested for.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    /// Generation: even = stable, odd = write in progress.
    seq: AtomicU64,
    era: AtomicU64,
    tsc0: AtomicU64,
    base: AtomicU64,
    rate: AtomicU64,
    bound: AtomicU64,
    widen: AtomicU64,
    /// bit 0: synced; bits 32–63: reference id (big-endian bytes).
    flags: AtomicU64,
}

impl SnapshotCell {
    /// A fresh, never-published cell; [`SnapshotCell::read`] returns `None`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes `snap` (the writer side of the seqlock). The era stored
    /// is forced to `max(snap.era, 1)` so a published cell is always
    /// distinguishable from a fresh one.
    pub fn publish(&self, snap: &ClockSnapshot) {
        let flags = (snap.synced as u64) | ((u32::from_be_bytes(snap.reference_id) as u64) << 32);
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        self.era.store(snap.era.max(1), Ordering::Relaxed);
        self.tsc0.store(snap.tsc0, Ordering::Relaxed);
        self.base.store(snap.base.to_bits(), Ordering::Relaxed);
        self.rate.store(snap.rate.to_bits(), Ordering::Relaxed);
        self.bound.store(snap.bound.to_bits(), Ordering::Relaxed);
        self.widen.store(snap.widen_rate.to_bits(), Ordering::Relaxed);
        self.flags.store(flags, Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Lock-free read: copies the current snapshot, retrying while a write
    /// is in progress or raced the copy. Returns `None` until the first
    /// publish. Never blocks the writer; a reader retries at most as long
    /// as writes keep landing mid-copy.
    #[inline]
    pub fn read(&self) -> Option<ClockSnapshot> {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let era = self.era.load(Ordering::Relaxed);
            let tsc0 = self.tsc0.load(Ordering::Relaxed);
            let base = self.base.load(Ordering::Relaxed);
            let rate = self.rate.load(Ordering::Relaxed);
            let bound = self.bound.load(Ordering::Relaxed);
            let widen = self.widen.load(Ordering::Relaxed);
            let flags = self.flags.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) != s1 {
                std::hint::spin_loop();
                continue;
            }
            if era == 0 {
                return None;
            }
            return Some(ClockSnapshot {
                era,
                tsc0,
                base: f64::from_bits(base),
                rate: f64::from_bits(rate),
                bound: f64::from_bits(bound),
                widen_rate: f64::from_bits(widen),
                synced: flags & 1 == 1,
                reference_id: ((flags >> 32) as u32).to_be_bytes(),
            });
        }
    }

    /// Current era without copying the payload (0 = never published).
    pub fn era(&self) -> u64 {
        self.era.load(Ordering::Acquire)
    }
}

/// The mutex strawman the A/B bench row compares the seqlock against:
/// identical payload, `std::sync::Mutex` protection. Kept in the library
/// (not the bench) so the comparison is against the same inlining.
#[derive(Debug, Default)]
pub struct MutexCell {
    inner: std::sync::Mutex<Option<ClockSnapshot>>,
}

impl MutexCell {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn publish(&self, snap: &ClockSnapshot) {
        *self.inner.lock().unwrap() = Some(*snap);
    }

    pub fn read(&self) -> Option<ClockSnapshot> {
        *self.inner.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(era: u64) -> ClockSnapshot {
        ClockSnapshot {
            era,
            tsc0: 1_000 * era,
            base: 1.0e9 + era as f64,
            rate: 1e-9,
            bound: 1e-6,
            widen_rate: 5e-8,
            synced: true,
            reference_id: *b"TSC\0",
        }
    }

    #[test]
    fn fresh_cell_reads_none() {
        assert_eq!(SnapshotCell::new().read(), None);
        assert_eq!(SnapshotCell::new().era(), 0);
    }

    #[test]
    fn publish_then_read_roundtrips() {
        let cell = SnapshotCell::new();
        let s = snap(7);
        cell.publish(&s);
        assert_eq!(cell.read(), Some(s));
        assert_eq!(cell.era(), 7);
    }

    #[test]
    fn era_zero_is_promoted_to_one() {
        let cell = SnapshotCell::new();
        cell.publish(&snap(0));
        assert_eq!(cell.read().unwrap().era, 1);
    }

    #[test]
    fn evaluation_math() {
        let s = snap(1);
        // 2000 counts past tsc0 at 1 ns/count = 2 µs.
        let tsc = s.tsc0 + 2_000;
        assert!((s.staleness(tsc) - 2e-6).abs() < 1e-18);
        assert!((s.time_at(tsc) - (s.base + 2e-6)).abs() < 1e-9);
        assert!((s.bound_at(tsc) - (1e-6 + 5e-8 * 2e-6)).abs() < 1e-18);
        // A reading just *before* the seal must not shrink the bound.
        assert!(s.bound_at(s.tsc0.wrapping_sub(10)) >= s.bound);
    }

    #[test]
    fn unsynced_flag_and_refid_roundtrip() {
        let cell = SnapshotCell::new();
        let mut s = snap(3);
        s.synced = false;
        s.reference_id = *b"GPS1";
        cell.publish(&s);
        let r = cell.read().unwrap();
        assert!(!r.synced);
        assert_eq!(r.reference_id, *b"GPS1");
    }
}
