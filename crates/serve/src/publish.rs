//! The writer side of the serving plane: turning a live discipline loop
//! (a [`TscNtpClock`] or a [`QuorumClock`]) into sealed [`ClockSnapshot`]s
//! in a [`SnapshotCell`].
//!
//! The publisher owns the *policy* part of the published state — how the
//! per-exchange point errors are smoothed into a seal-time bound, what
//! floor and widening rate the bound carries — so the clocks themselves
//! stay policy-free. Defaults mirror `LifecycleConfig` on the client side
//! (50 µs floor, 1e-7 s/s widening ≈ the paper's γ* oscillator
//! stability), keeping serve-side and client-side degrade semantics
//! consistent.

use crate::cell::{ClockSnapshot, SnapshotCell};
use std::sync::Arc;
use tsc_quorum::QuorumClock;
use tscclock::clock::{ProcessOutput, TscNtpClock};
use tsc_telemetry as telemetry;

/// How seal-time error bounds are derived and how they age.
#[derive(Debug, Clone, Copy)]
pub struct PublishPolicy {
    /// Floor of the published bound (seconds). Never publish tighter than
    /// this no matter how good the point errors look.
    pub bound_floor: f64,
    /// Multiplier on the smoothed point error: the published bound is
    /// `max(bound_floor, bound_mult · EMA(|point_error|))`.
    pub bound_mult: f64,
    /// EMA smoothing factor for |point error| (per accepted exchange).
    pub ema_alpha: f64,
    /// Bound widening per second of snapshot staleness (s/s), carried in
    /// the snapshot for readers to apply.
    pub widen_rate: f64,
    /// Reference id stamped into responses (e.g. `b"TSC\0"`).
    pub reference_id: [u8; 4],
}

impl Default for PublishPolicy {
    fn default() -> Self {
        Self {
            bound_floor: 50e-6,
            bound_mult: 4.0,
            ema_alpha: 0.125,
            widen_rate: 1e-7,
            reference_id: *b"TSC\0",
        }
    }
}

/// Seals snapshots from a discipline loop into a shared [`SnapshotCell`].
///
/// One publisher per cell: the discipline loop that owns the clock also
/// owns the publisher, calls [`Publisher::observe`] per processed
/// exchange, and [`Publisher::publish_clock`] (or `publish_quorum`) at
/// its republish cadence.
#[derive(Debug)]
pub struct Publisher {
    cell: Arc<SnapshotCell>,
    policy: PublishPolicy,
    era: u64,
    pe_ema: Option<f64>,
}

impl Publisher {
    pub fn new(cell: Arc<SnapshotCell>, policy: PublishPolicy) -> Self {
        Self {
            cell,
            policy,
            era: 0,
            pe_ema: None,
        }
    }

    /// The cell this publisher seals into.
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// Eras published so far.
    pub fn era(&self) -> u64 {
        self.era
    }

    /// Current smoothed |point error|, if any exchange has been observed.
    pub fn point_error_ema(&self) -> Option<f64> {
        self.pe_ema
    }

    /// Folds one processed exchange's point error into the bound EMA.
    pub fn observe(&mut self, out: &ProcessOutput) {
        self.observe_point_error(out.point_error);
    }

    /// Same as [`Publisher::observe`] from a bare point error (quorum and
    /// replay paths that don't carry a full `ProcessOutput`).
    pub fn observe_point_error(&mut self, point_error: f64) {
        let e = point_error.abs();
        if !e.is_finite() {
            return;
        }
        self.pe_ema = Some(match self.pe_ema {
            Some(ema) => ema + self.policy.ema_alpha * (e - ema),
            None => e,
        });
    }

    /// The bound the next seal will carry.
    pub fn current_bound(&self) -> f64 {
        match self.pe_ema {
            Some(ema) => (self.policy.bound_mult * ema).max(self.policy.bound_floor),
            None => self.policy.bound_floor,
        }
    }

    /// Seals the clock's current estimate at counter reading `tsc`.
    /// Returns `false` (and publishes an *unsynchronized* snapshot) when
    /// the clock cannot produce an absolute time yet or is still inside
    /// rate warmup — readers then refuse rather than serve estimates the
    /// bound policy can't vouch for.
    pub fn publish_clock(&mut self, clock: &TscNtpClock, tsc: u64) -> bool {
        let warmed = clock.status().warmed_up;
        match (clock.absolute_time(tsc), clock.p_hat()) {
            (Some(base), Some(rate)) if warmed => self.seal(tsc, base, rate, true),
            _ => self.seal_unsynced(tsc),
        }
    }

    /// Seals the quorum's combined estimate at counter reading `tsc`.
    pub fn publish_quorum(&mut self, q: &QuorumClock, tsc: u64) -> bool {
        match (q.absolute_time(tsc), q.p_hat()) {
            (Some(base), Some(rate)) => self.seal(tsc, base, rate, true),
            _ => self.seal_unsynced(tsc),
        }
    }

    /// Seals an explicit `(base, rate)` estimate — the building block the
    /// clock/quorum fronts share; public for custom discipline loops.
    pub fn seal(&mut self, tsc: u64, base: f64, rate: f64, synced: bool) -> bool {
        self.seal_with_bound(tsc, base, rate, self.current_bound(), synced)
    }

    /// Seals with an explicitly supplied bound, bypassing the point-error
    /// EMA (still floored by policy) — for discipline loops that carry
    /// their own bound, e.g. `LifecycleClient`'s verdict bounds.
    pub fn seal_with_bound(
        &mut self,
        tsc: u64,
        base: f64,
        rate: f64,
        bound: f64,
        synced: bool,
    ) -> bool {
        self.era += 1;
        self.cell.publish(&ClockSnapshot {
            era: self.era,
            tsc0: tsc,
            base,
            rate,
            bound: bound.max(self.policy.bound_floor),
            widen_rate: self.policy.widen_rate,
            synced,
            reference_id: self.policy.reference_id,
        });
        telemetry::add(telemetry::Ctr::SnapshotsPublished, 1);
        synced
    }

    fn seal_unsynced(&mut self, tsc: u64) -> bool {
        self.seal(tsc, 0.0, 0.0, false);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_floor_applies_before_any_observation() {
        let p = Publisher::new(Arc::new(SnapshotCell::new()), PublishPolicy::default());
        assert_eq!(p.current_bound(), 50e-6);
    }

    #[test]
    fn ema_tracks_point_errors_and_mult_scales() {
        let mut p = Publisher::new(Arc::new(SnapshotCell::new()), PublishPolicy::default());
        p.observe_point_error(100e-6);
        assert!((p.point_error_ema().unwrap() - 100e-6).abs() < 1e-12);
        assert!((p.current_bound() - 400e-6).abs() < 1e-12);
        // NaN/inf observations are ignored, not absorbed.
        p.observe_point_error(f64::NAN);
        p.observe_point_error(f64::INFINITY);
        assert!((p.point_error_ema().unwrap() - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn unwarmed_clock_publishes_unsynced() {
        let clock = TscNtpClock::new(tscclock::ClockConfig::paper_defaults(16.0));
        let cell = Arc::new(SnapshotCell::new());
        let mut p = Publisher::new(Arc::clone(&cell), PublishPolicy::default());
        assert!(!p.publish_clock(&clock, 12345));
        let snap = cell.read().expect("published");
        assert!(!snap.synced);
        assert_eq!(snap.era, 1);
    }

    #[test]
    fn fresh_quorum_publishes_unsynced() {
        let q = QuorumClock::new(3, tsc_quorum::QuorumConfig::paper_defaults(16.0));
        let cell = Arc::new(SnapshotCell::new());
        let mut p = Publisher::new(Arc::clone(&cell), PublishPolicy::default());
        assert!(!p.publish_quorum(&q, 999));
        assert!(!cell.read().unwrap().synced);
    }

    #[test]
    fn eras_are_strictly_increasing() {
        let cell = Arc::new(SnapshotCell::new());
        let mut p = Publisher::new(Arc::clone(&cell), PublishPolicy::default());
        for i in 1..=5 {
            p.seal(i * 100, 1e9, 1e-9, true);
            assert_eq!(cell.read().unwrap().era, i);
        }
    }
}
