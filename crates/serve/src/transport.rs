//! The batched datagram front-end: a recvmmsg/sendmmsg-shaped transport
//! trait, a real UDP implementation, and an in-process implementation for
//! benches and deterministic tests.
//!
//! # The batch shape
//!
//! Like `recvmmsg(2)`/`sendmmsg(2)`, a batch is N datagram headers over
//! **one contiguous buffer per direction**: slot `i` occupies bytes
//! `[i·SLOT_LEN, (i+1)·SLOT_LEN)` and `lens[i]` says how many are valid.
//! The serve loop touches exactly two linear buffers per batch — no
//! per-datagram allocation, no pointer chasing.
//!
//! # Slot correspondence
//!
//! Addressing is positional: response slot `i` answers receive slot `i`,
//! and the transport remembers peer `i` internally. A response length of
//! **0 marks a dropped slot** (malformed request — nothing is sent). This
//! keeps peer addresses (socket addrs, sim client ids…) out of the trait
//! entirely.
//!
//! # Slot size
//!
//! `SLOT_LEN` is 48 bytes — the full NTP header, which is all the serving
//! plane reads or writes. A request carrying extension fields is
//! truncated on receive; its header still parses and is answered
//! normally, matching the codec's documented "extensions ignored"
//! behaviour.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;
use tsc_ntp::packet::PACKET_LEN;

/// Bytes per batch slot (one NTP header).
pub const SLOT_LEN: usize = PACKET_LEN;

/// Default maximum datagrams per batch (matches typical mmsg vlen use).
pub const DEFAULT_BATCH: usize = 64;

/// One direction's batch storage: `slots` contiguous `SLOT_LEN` ranges
/// plus per-slot valid lengths. Reused across batches — allocate once.
#[derive(Debug, Clone)]
pub struct BatchBufs {
    data: Vec<u8>,
    lens: Vec<usize>,
}

impl BatchBufs {
    pub fn new(slots: usize) -> Self {
        Self {
            data: vec![0; slots * SLOT_LEN],
            lens: vec![0; slots],
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.lens.len()
    }

    /// Valid length of slot `i` (0 = empty / dropped).
    #[inline]
    pub fn len(&self, i: usize) -> usize {
        self.lens[i]
    }

    #[inline]
    pub fn set_len(&mut self, i: usize, len: usize) {
        debug_assert!(len <= SLOT_LEN);
        self.lens[i] = len;
    }

    /// Slot `i`'s valid bytes.
    #[inline]
    pub fn slot(&self, i: usize) -> &[u8] {
        &self.data[i * SLOT_LEN..i * SLOT_LEN + self.lens[i]]
    }

    /// Slot `i`'s full `SLOT_LEN` range, mutable (set the length after
    /// writing).
    #[inline]
    pub fn slot_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.data[i * SLOT_LEN..(i + 1) * SLOT_LEN]
    }
}

/// A recvmmsg/sendmmsg-shaped datagram transport.
///
/// Contract:
/// - `recv_batch` fills `rx` slots `0..n` and returns `n`; it may block
///   briefly (implementation-defined timeout) and returns `Ok(0)` on an
///   idle interval — callers poll a shutdown flag between batches.
/// - `send_batch(tx, n)` answers the *immediately preceding* `recv_batch`:
///   slot `i` goes to the peer of receive slot `i`; `tx.len(i) == 0`
///   skips the slot. Returns the number of datagrams actually sent.
pub trait DatagramBatch {
    fn recv_batch(&mut self, rx: &mut BatchBufs, max: usize) -> io::Result<usize>;
    fn send_batch(&mut self, tx: &BatchBufs, n: usize) -> io::Result<usize>;
}

/// Real UDP sockets.
///
/// Where `recvmmsg`/`sendmmsg` are unavailable to std (no libc binding in
/// this workspace), the documented fallback applies: one blocking
/// `recv_from` (bounded by a read timeout) latches the batch, then a
/// non-blocking drain packs as many already-queued datagrams as fit — so
/// under load the kernel's receive queue still amortizes into large
/// batches, and when idle the loop wakes at timeout granularity.
#[derive(Debug)]
pub struct UdpBatchTransport {
    socket: UdpSocket,
    peers: Vec<Option<SocketAddr>>,
}

impl UdpBatchTransport {
    /// Binds to `addr` (port 0 for ephemeral) with a 50 ms receive
    /// timeout and room for `slots` peers per batch.
    pub fn bind<A: ToSocketAddrs>(addr: A, slots: usize) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok(Self {
            socket,
            peers: vec![None; slots],
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl DatagramBatch for UdpBatchTransport {
    fn recv_batch(&mut self, rx: &mut BatchBufs, max: usize) -> io::Result<usize> {
        let max = max.min(rx.slots()).min(self.peers.len());
        if max == 0 {
            return Ok(0);
        }
        // Blocking (timeout-bounded) receive for the first datagram…
        let (len, from) = match self.socket.recv_from(rx.slot_mut(0)) {
            Ok(x) => x,
            Err(ref e) if crate::plane::is_idle_kind(e.kind()) => return Ok(0),
            Err(e) => return Err(e),
        };
        rx.set_len(0, len.min(SLOT_LEN));
        self.peers[0] = Some(from);
        let mut n = 1;
        // …then drain whatever else the kernel already queued.
        self.socket.set_nonblocking(true)?;
        while n < max {
            match self.socket.recv_from(rx.slot_mut(n)) {
                Ok((len, from)) => {
                    rx.set_len(n, len.min(SLOT_LEN));
                    self.peers[n] = Some(from);
                    n += 1;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if crate::plane::is_idle_kind(e.kind()) => continue,
                Err(e) => {
                    self.socket.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        self.socket.set_nonblocking(false)?;
        Ok(n)
    }

    fn send_batch(&mut self, tx: &BatchBufs, n: usize) -> io::Result<usize> {
        let mut sent = 0;
        for i in 0..n.min(tx.slots()) {
            if tx.len(i) == 0 {
                continue;
            }
            if let Some(peer) = self.peers[i] {
                self.socket.send_to(tx.slot(i), peer)?;
                sent += 1;
            }
        }
        Ok(sent)
    }
}

/// In-process transport: requests are queued by the driving test/bench
/// (e.g. generated from a netsim client population), responses land in an
/// outbox — no sockets, no root, deterministic.
#[derive(Debug, Default)]
pub struct SimTransport {
    inbox: VecDeque<([u8; SLOT_LEN], usize)>,
    outbox: VecDeque<([u8; SLOT_LEN], usize)>,
    /// When `false`, responses are counted in `responses_sent` but not
    /// retained — benches measure the serve loop, not outbox growth.
    pub keep_responses: bool,
    /// Slots the serve loop explicitly dropped (len 0).
    pub dropped: u64,
    /// Total responses handed to `send_batch` with a non-zero length.
    pub responses_sent: u64,
}

impl SimTransport {
    pub fn new() -> Self {
        Self {
            keep_responses: true,
            ..Self::default()
        }
    }

    /// Queues a raw request datagram (truncated to one slot).
    pub fn push_request(&mut self, bytes: &[u8]) {
        let mut slot = [0u8; SLOT_LEN];
        let len = bytes.len().min(SLOT_LEN);
        slot[..len].copy_from_slice(&bytes[..len]);
        self.inbox.push_back((slot, len));
    }

    /// Pending (unserved) requests.
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }

    /// Pops the oldest retained response.
    pub fn pop_response(&mut self) -> Option<([u8; SLOT_LEN], usize)> {
        self.outbox.pop_front()
    }
}

impl DatagramBatch for SimTransport {
    fn recv_batch(&mut self, rx: &mut BatchBufs, max: usize) -> io::Result<usize> {
        let max = max.min(rx.slots());
        let mut n = 0;
        while n < max {
            let Some((slot, len)) = self.inbox.pop_front() else {
                break;
            };
            rx.slot_mut(n)[..len].copy_from_slice(&slot[..len]);
            rx.set_len(n, len);
            n += 1;
        }
        Ok(n)
    }

    fn send_batch(&mut self, tx: &BatchBufs, n: usize) -> io::Result<usize> {
        let mut sent = 0;
        for i in 0..n.min(tx.slots()) {
            let len = tx.len(i);
            if len == 0 {
                self.dropped += 1;
                continue;
            }
            if self.keep_responses {
                let mut slot = [0u8; SLOT_LEN];
                slot[..len].copy_from_slice(tx.slot(i));
                self.outbox.push_back((slot, len));
            }
            self.responses_sent += 1;
            sent += 1;
        }
        Ok(sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_transport_fifo_and_slot_correspondence() {
        let mut t = SimTransport::new();
        t.push_request(&[1; 48]);
        t.push_request(&[2; 48]);
        t.push_request(&[3; 48]);
        let mut rx = BatchBufs::new(8);
        let n = t.recv_batch(&mut rx, 2).unwrap();
        assert_eq!(n, 2);
        assert_eq!(rx.slot(0)[0], 1);
        assert_eq!(rx.slot(1)[0], 2);
        assert_eq!(t.pending(), 1);

        let mut tx = BatchBufs::new(8);
        tx.slot_mut(0)[..4].copy_from_slice(&[9; 4]);
        tx.set_len(0, 4);
        tx.set_len(1, 0); // dropped slot
        assert_eq!(t.send_batch(&tx, 2).unwrap(), 1);
        assert_eq!(t.dropped, 1);
        let (resp, len) = t.pop_response().unwrap();
        assert_eq!((len, resp[0]), (4, 9));
    }

    #[test]
    fn oversized_request_is_truncated_to_slot() {
        let mut t = SimTransport::new();
        t.push_request(&[7; 100]);
        let mut rx = BatchBufs::new(1);
        assert_eq!(t.recv_batch(&mut rx, 1).unwrap(), 1);
        assert_eq!(rx.len(0), SLOT_LEN);
    }

    #[test]
    fn udp_loopback_batch_roundtrip() {
        let mut server = UdpBatchTransport::bind("127.0.0.1:0", 8).unwrap();
        let addr = server.local_addr().unwrap();
        let c1 = UdpSocket::bind("127.0.0.1:0").unwrap();
        let c2 = UdpSocket::bind("127.0.0.1:0").unwrap();
        c1.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        c2.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        c1.send_to(&[1; 48], addr).unwrap();
        c2.send_to(&[2; 48], addr).unwrap();

        let mut rx = BatchBufs::new(8);
        let mut got = 0;
        let mut tx = BatchBufs::new(8);
        // Both datagrams may or may not coalesce into one batch; loop.
        while got < 2 {
            let n = server.recv_batch(&mut rx, 8).unwrap();
            for i in 0..n {
                assert_eq!(rx.len(i), 48);
                // Echo the first byte back so each client can check routing.
                tx.slot_mut(i)[0] = rx.slot(i)[0];
                tx.set_len(i, 1);
            }
            server.send_batch(&tx, n).unwrap();
            got += n;
        }
        let mut buf = [0u8; 8];
        let (len, _) = c1.recv_from(&mut buf).unwrap();
        assert_eq!((len, buf[0]), (1, 1));
        let (len, _) = c2.recv_from(&mut buf).unwrap();
        assert_eq!((len, buf[0]), (1, 2));
    }

    #[test]
    fn udp_idle_interval_returns_zero() {
        let mut server = UdpBatchTransport::bind("127.0.0.1:0", 4).unwrap();
        let mut rx = BatchBufs::new(4);
        assert_eq!(server.recv_batch(&mut rx, 4).unwrap(), 0);
    }
}
