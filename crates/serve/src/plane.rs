//! The serve loop: decode a received batch, decide serve-or-refuse off
//! one snapshot read, stamp `Tb`/`Te`, encode responses in place.
//!
//! # Serve / refuse semantics
//!
//! Mirrors the client-side `LifecycleClient` verdicts, on the server side:
//!
//! - no snapshot published yet → refuse `INIT`
//! - snapshot marked unsynchronized → refuse `UNSY`
//! - snapshot staleness beyond the horizon → refuse `STAL`
//! - otherwise serve: `Tb = Ca(tsc)`, `Te = Tb + residence`, and the
//!   response's root-dispersion field carries the **served-error bound**
//!   `bound + widen_rate·staleness`, rounded *up* to the 16.16 wire
//!   format so the bound on the wire never under-reports.
//!
//! A refusal is a stratum-0 Kiss-o'-Death response (LI unsynchronized,
//! refid = code) — honest unavailability instead of a silently stale
//! timestamp.

use crate::cell::{ClockSnapshot, SnapshotCell};
use crate::transport::{BatchBufs, DatagramBatch, DEFAULT_BATCH};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tsc_ntp::packet::{Mode, NtpPacket};
use tsc_ntp::server::DEFAULT_RESIDENCE;
use tsc_ntp::timestamp::{NtpShort, NtpTimestamp};
use tsc_telemetry as telemetry;

/// Refusal code: no snapshot has ever been published.
pub const REFUSE_INIT: [u8; 4] = *b"INIT";
/// Refusal code: the published snapshot is marked unsynchronized.
pub const REFUSE_UNSYNC: [u8; 4] = *b"UNSY";
/// Refusal code: the snapshot is older than the staleness horizon.
pub const REFUSE_STALE: [u8; 4] = *b"STAL";

/// Serving-plane policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Refuse once the snapshot is staler than this (seconds).
    pub stale_horizon: f64,
    /// Modeled residence `Te − Tb` (seconds) — same model as the legacy
    /// server's [`DEFAULT_RESIDENCE`].
    pub residence: f64,
    /// Max datagrams per batch.
    pub batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            // Mirrors LifecycleConfig::defaults' 4-hour client-side horizon.
            stale_horizon: 4.0 * 3600.0,
            residence: DEFAULT_RESIDENCE,
            batch: DEFAULT_BATCH,
        }
    }
}

/// What the plane decided for one request at one counter reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Stamp and serve.
    Serve {
        /// Server receive time `Tb` (Unix seconds).
        tb: f64,
        /// Server transmit time `Te = Tb + residence`.
        te: f64,
        /// Served-error bound (seconds) before wire quantization.
        bound: f64,
    },
    /// Refuse with this Kiss-o'-Death code.
    Refuse([u8; 4]),
}

/// The serve-or-refuse decision for a request arriving at counter reading
/// `tsc`, given the current snapshot. Pure — the whole correctness story
/// of the plane, separated from I/O so tests hit it directly.
#[inline]
pub fn decide(cfg: &ServeConfig, snap: Option<&ClockSnapshot>, tsc: u64) -> Decision {
    let Some(snap) = snap else {
        return Decision::Refuse(REFUSE_INIT);
    };
    if !snap.synced {
        return Decision::Refuse(REFUSE_UNSYNC);
    }
    let staleness = snap.staleness(tsc);
    if staleness > cfg.stale_horizon {
        return Decision::Refuse(REFUSE_STALE);
    }
    let tb = snap.time_at(tsc);
    Decision::Serve {
        tb,
        te: tb + cfg.residence,
        bound: snap.bound_at(tsc),
    }
}

/// Encodes `bound` seconds into the 16.16 short format **rounding up**,
/// saturating at the format maximum: the wire bound must dominate the
/// internal one.
#[inline]
pub fn bound_to_wire(bound: f64) -> NtpShort {
    let scaled = (bound * 65536.0).ceil();
    if scaled >= u32::MAX as f64 {
        NtpShort(u32::MAX)
    } else {
        NtpShort(scaled.max(0.0) as u32)
    }
}

/// Plain per-plane counters (always available, telemetry feature or not).
#[derive(Debug, Default, Clone, Copy)]
pub struct ServeStats {
    /// Datagrams received (valid or not).
    pub requests: u64,
    /// Timestamped responses sent.
    pub responses: u64,
    /// Datagrams dropped as malformed (decode error / non-client mode).
    pub malformed: u64,
    /// Kiss-o'-Death refusals sent.
    pub refusals: u64,
    /// Batches processed (with ≥1 datagram).
    pub batches: u64,
}

/// One server's serving state: config + the shared snapshot cell.
#[derive(Debug)]
pub struct ServePlane {
    pub cfg: ServeConfig,
    cell: Arc<SnapshotCell>,
    pub stats: ServeStats,
}

impl ServePlane {
    pub fn new(cell: Arc<SnapshotCell>, cfg: ServeConfig) -> Self {
        Self {
            cfg,
            cell,
            stats: ServeStats::default(),
        }
    }

    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// Serves one received batch: for each of the `n` filled `rx` slots,
    /// decodes, validates, decides, and encodes the response into the
    /// matching `tx` slot (len 0 = drop). Returns the number of non-empty
    /// responses. **One snapshot read per batch**; one `tsc_now()` reading
    /// per datagram.
    ///
    /// Telemetry is batch-granular: counters and the batch-fill/snapshot-
    /// age histograms are touched once per batch, never per packet.
    pub fn serve_batch(
        &mut self,
        rx: &BatchBufs,
        n: usize,
        tx: &mut BatchBufs,
        tsc_now: &mut dyn FnMut() -> u64,
    ) -> usize {
        if n == 0 {
            return 0;
        }
        let snap = self.cell.read();
        let (mut served, mut malformed, mut refused) = (0u64, 0u64, 0u64);
        let mut first_age_ns = 0u64;
        for i in 0..n {
            let request = match NtpPacket::decode(rx.slot(i)) {
                Ok(p) if p.mode == Mode::Client => p,
                _ => {
                    tx.set_len(i, 0);
                    malformed += 1;
                    continue;
                }
            };
            let tsc = tsc_now();
            if i == 0 {
                if let Some(s) = &snap {
                    first_age_ns = (s.staleness(tsc).max(0.0) * 1e9) as u64;
                }
            }
            match decide(&self.cfg, snap.as_ref(), tsc) {
                Decision::Serve { tb, te, bound } => {
                    let snap = snap.as_ref().unwrap();
                    let mut resp = NtpPacket::server_response(
                        &request,
                        NtpTimestamp::from_unix_seconds(tb),
                        NtpTimestamp::from_unix_seconds(te),
                        snap.reference_id,
                    );
                    resp.root_dispersion = bound_to_wire(bound);
                    resp.reference_ts = NtpTimestamp::from_unix_seconds(snap.base);
                    resp.encode_into(tx.slot_mut(i));
                    tx.set_len(i, tsc_ntp::packet::PACKET_LEN);
                    served += 1;
                }
                Decision::Refuse(code) => {
                    NtpPacket::refusal_response(&request, code).encode_into(tx.slot_mut(i));
                    tx.set_len(i, tsc_ntp::packet::PACKET_LEN);
                    refused += 1;
                }
            }
        }
        self.stats.requests += n as u64;
        self.stats.responses += served;
        self.stats.malformed += malformed;
        self.stats.refusals += refused;
        self.stats.batches += 1;
        telemetry::add(telemetry::Ctr::ServeRequests, n as u64);
        telemetry::add(telemetry::Ctr::ServeResponses, served);
        telemetry::add(telemetry::Ctr::ServeMalformed, malformed);
        telemetry::add(telemetry::Ctr::ServeRefusals, refused);
        telemetry::add(telemetry::Ctr::ServeBatches, 1);
        telemetry::record_ns(telemetry::Hist::ServeBatchFill, n as u64);
        telemetry::record_ns(telemetry::Hist::ServeSnapshotAgeNs, first_age_ns);
        (served + refused) as usize
    }
}

/// Counter source for live daemons: nanoseconds since construction via
/// `Instant` — the same "driver-level counter" model `live_ntp` uses.
pub fn instant_counter() -> impl FnMut() -> u64 + Send {
    let t0 = std::time::Instant::now();
    move || t0.elapsed().as_nanos() as u64
}

/// Shared daemon statistics, mirrored from [`ServeStats`] batch by batch.
#[derive(Debug, Default)]
struct DaemonShared {
    requests: AtomicU64,
    responses: AtomicU64,
    malformed: AtomicU64,
    refusals: AtomicU64,
    batches: AtomicU64,
}

/// Handle to a running UDP serve daemon; dropping it (or calling
/// [`ServeDaemonHandle::shutdown`]) stops the loop.
pub struct ServeDaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<DaemonShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServeDaemonHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters (requests, responses, malformed, refusals, batches).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            responses: self.shared.responses.load(Ordering::Relaxed),
            malformed: self.shared.malformed.load(Ordering::Relaxed),
            refusals: self.shared.refusals.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServeDaemonHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Spawns the batched UDP serve daemon on `addr`, answering off `cell`.
/// The discipline loop keeps publishing into `cell` from its own thread;
/// the daemon never blocks it.
pub fn spawn_udp<A: ToSocketAddrs>(
    addr: A,
    cell: Arc<SnapshotCell>,
    cfg: ServeConfig,
    mut tsc_now: impl FnMut() -> u64 + Send + 'static,
) -> io::Result<ServeDaemonHandle> {
    let transport = crate::transport::UdpBatchTransport::bind(addr, cfg.batch)?;
    let local = transport.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let shared = Arc::new(DaemonShared::default());
    let shared2 = Arc::clone(&shared);
    let join = std::thread::Builder::new()
        .name("tsc-serve".into())
        .spawn(move || {
            let mut transport = transport;
            let mut plane = ServePlane::new(cell, cfg);
            let mut rx = BatchBufs::new(cfg.batch);
            let mut tx = BatchBufs::new(cfg.batch);
            while !stop2.load(Ordering::SeqCst) {
                let n = match transport.recv_batch(&mut rx, cfg.batch) {
                    Ok(n) => n,
                    Err(_) => {
                        telemetry::add(telemetry::Ctr::ServeRecvErrors, 1);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        continue;
                    }
                };
                if n == 0 {
                    continue;
                }
                let before = plane.stats;
                plane.serve_batch(&rx, n, &mut tx, &mut tsc_now);
                let _ = transport.send_batch(&tx, n);
                let s = plane.stats;
                shared2
                    .requests
                    .fetch_add(s.requests - before.requests, Ordering::Relaxed);
                shared2
                    .responses
                    .fetch_add(s.responses - before.responses, Ordering::Relaxed);
                shared2
                    .malformed
                    .fetch_add(s.malformed - before.malformed, Ordering::Relaxed);
                shared2
                    .refusals
                    .fetch_add(s.refusals - before.refusals, Ordering::Relaxed);
                shared2
                    .batches
                    .fetch_add(s.batches - before.batches, Ordering::Relaxed);
            }
        })?;
    Ok(ServeDaemonHandle {
        addr: local,
        stop,
        shared,
        join: Some(join),
    })
}

/// Error kinds that mean "nothing to read right now", not failure.
pub fn is_idle_kind(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimTransport;

    fn synced_snap(tsc0: u64) -> ClockSnapshot {
        ClockSnapshot {
            era: 1,
            tsc0,
            base: 1.0e9,
            rate: 1e-9, // 1 ns per count
            bound: 20e-6,
            widen_rate: 1e-7,
            synced: true,
            reference_id: *b"TSC\0",
        }
    }

    #[test]
    fn decide_covers_all_refusal_states() {
        let cfg = ServeConfig {
            stale_horizon: 10.0,
            ..ServeConfig::default()
        };
        assert_eq!(decide(&cfg, None, 0), Decision::Refuse(REFUSE_INIT));
        let mut s = synced_snap(0);
        s.synced = false;
        assert_eq!(decide(&cfg, Some(&s), 0), Decision::Refuse(REFUSE_UNSYNC));
        let s = synced_snap(0);
        // 11 s past the seal at 1 ns/count.
        let tsc = 11_000_000_000;
        assert_eq!(decide(&cfg, Some(&s), tsc), Decision::Refuse(REFUSE_STALE));
        // Just inside the horizon: serve, with the bound widened.
        let tsc = 9_000_000_000;
        match decide(&cfg, Some(&s), tsc) {
            Decision::Serve { tb, te, bound } => {
                assert!((tb - (1.0e9 + 9.0)).abs() < 1e-6);
                // f64 ULP near 1e9 is ~1.2e-7 s; te = tb + residence only
                // resolves to that granularity.
                assert!((te - tb - cfg.residence).abs() < 5e-7);
                assert!((bound - (20e-6 + 1e-7 * 9.0)).abs() < 1e-12);
            }
            d => panic!("expected serve, got {d:?}"),
        }
    }

    #[test]
    fn wire_bound_rounds_up_never_down() {
        for bound in [0.0, 1e-9, 15e-6, 50e-6, 1.0, 3.7e4] {
            let wire = bound_to_wire(bound).to_seconds();
            assert!(wire >= bound, "wire {wire} < internal {bound}");
            assert!(wire - bound <= 1.0 / 65536.0 + 1e-12);
        }
        assert_eq!(bound_to_wire(1e9).0, u32::MAX); // saturates
    }

    #[test]
    fn serve_batch_stamps_refuses_and_drops() {
        let cell = Arc::new(SnapshotCell::new());
        cell.publish(&synced_snap(0));
        let cfg = ServeConfig {
            stale_horizon: 10.0,
            ..ServeConfig::default()
        };
        let mut plane = ServePlane::new(Arc::clone(&cell), cfg);
        let mut t = SimTransport::new();
        // Slot 0: valid request. Slot 1: garbage. Slot 2: non-client mode.
        let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(500.0), 4);
        t.push_request(&req.encode());
        t.push_request(&[0xFF; 48]);
        let mut server_mode = req;
        server_mode.mode = Mode::Server;
        t.push_request(&server_mode.encode());

        let mut rx = BatchBufs::new(8);
        let mut tx = BatchBufs::new(8);
        let n = t.recv_batch(&mut rx, 8).unwrap();
        assert_eq!(n, 3);
        let mut tsc = move || 5_000_000_000u64; // 5 s after seal
        let answered = plane.serve_batch(&rx, n, &mut tx, &mut tsc);
        assert_eq!(answered, 1);
        assert_eq!(t.send_batch(&tx, n).unwrap(), 1);
        assert_eq!(
            (plane.stats.requests, plane.stats.responses, plane.stats.malformed),
            (3, 1, 2)
        );

        let (resp, len) = t.pop_response().unwrap();
        let p = NtpPacket::decode(&resp[..len]).unwrap();
        assert!(p.validate_response(&req).is_ok());
        assert!((p.receive_ts.to_unix_seconds() - (1.0e9 + 5.0)).abs() < 1e-5);
        let bound = p.root_dispersion.to_seconds();
        assert!(bound >= 20e-6 + 1e-7 * 5.0);

        // Past the horizon the same plane refuses with STAL.
        t.push_request(&req.encode());
        let n = t.recv_batch(&mut rx, 8).unwrap();
        let mut tsc = move || 11_000_000_000u64;
        plane.serve_batch(&rx, n, &mut tx, &mut tsc);
        t.send_batch(&tx, n).unwrap();
        let (resp, len) = t.pop_response().unwrap();
        let p = NtpPacket::decode(&resp[..len]).unwrap();
        assert!(matches!(
            p.validate_response(&req),
            Err(tsc_ntp::packet::PacketError::KissOfDeath(code)) if code == REFUSE_STALE
        ));
        assert_eq!(plane.stats.refusals, 1);
    }

    #[test]
    fn unpublished_cell_refuses_init() {
        let cell = Arc::new(SnapshotCell::new());
        let mut plane = ServePlane::new(cell, ServeConfig::default());
        let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(1.0), 4);
        let mut t = SimTransport::new();
        t.push_request(&req.encode());
        let mut rx = BatchBufs::new(4);
        let mut tx = BatchBufs::new(4);
        let n = t.recv_batch(&mut rx, 4).unwrap();
        let mut tsc = move || 0u64;
        plane.serve_batch(&rx, n, &mut tx, &mut tsc);
        let p = NtpPacket::decode(tx.slot(0)).unwrap();
        assert!(matches!(
            p.validate_response(&req),
            Err(tsc_ntp::packet::PacketError::KissOfDeath(code)) if code == REFUSE_INIT
        ));
    }

    #[test]
    fn udp_daemon_end_to_end() {
        let cell = Arc::new(SnapshotCell::new());
        let daemon = spawn_udp(
            "127.0.0.1:0",
            Arc::clone(&cell),
            ServeConfig::default(),
            instant_counter(),
        )
        .unwrap();
        // Publish a synced snapshot pinned to "counter 0 = base time"; the
        // daemon's instant_counter starts near 0 so staleness stays tiny.
        cell.publish(&ClockSnapshot {
            era: 1,
            tsc0: 0,
            base: 1.7e9,
            rate: 1e-9,
            bound: 30e-6,
            widen_rate: 1e-7,
            synced: true,
            reference_id: *b"TSC\0",
        });
        let mut client = tsc_ntp::client::SntpClient::connect(daemon.addr()).unwrap();
        client
            .set_timeout(std::time::Duration::from_secs(2))
            .unwrap();
        let mut t = 0.0;
        let ft = client
            .query(|| {
                t += 0.001;
                t
            })
            .expect("daemon answers");
        assert!(ft.tb > 1.7e9 - 1.0 && ft.tb < 1.7e9 + 60.0);
        assert!(ft.te >= ft.tb);
        // The reply can arrive before the daemon mirrors its counters.
        let t0 = std::time::Instant::now();
        while daemon.stats().responses < 1 && t0.elapsed() < std::time::Duration::from_secs(2) {
            std::thread::yield_now();
        }
        let stats = daemon.stats();
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.refusals, 0);
        daemon.shutdown();
    }
}
