//! # tsc-telemetry — the fleet-wide observability plane
//!
//! A lock-free metrics registry, a per-thread event flight recorder and
//! stage-level profiling hooks for the IMC'04 software-clock
//! reproduction, engineered around two hard constraints:
//!
//! * **Digest transparency.** Instrumentation only *observes*: it reads
//!   pipeline state and mutates private atomics and thread-local rings.
//!   No telemetry value ever feeds back into clock arithmetic, RNG
//!   streams or scheduling, so every parity/digest suite is
//!   bit-identical with telemetry on and off. Flight-recorder events are
//!   timestamped by **packet index / TSC reading / simulated time** —
//!   never wall clock — so even the recorded event stream is
//!   deterministic and replay-stable. (Stage *timers* do read the wall
//!   clock, but durations are write-only observability data.)
//! * **Near-zero cost.** Without `feature = "enabled"` (the default)
//!   the whole public surface compiles to inlined no-ops. With it, the
//!   hot path pays only relaxed atomic adds at batch granularity plus a
//!   runtime `recording()` master-switch check; stage timers are
//!   sampled. Measured: ≤2% on `fleet_ingest_1000clocks`
//!   (BENCH_telemetry.json).
//!
//! Consumer crates depend on `tsc-telemetry` unconditionally and expose
//! their own `telemetry` cargo feature forwarding to
//! `tsc-telemetry/enabled`; cargo feature unification then flips the
//! entire workspace with one flag and zero `cfg` noise at call sites.

pub mod ids;

pub use ids::{err_code, Ctr, EventKind, Gauge, Hist, CTR_COUNT, GAUGE_COUNT, HIST_COUNT};

#[cfg(feature = "enabled")]
mod enabled;
#[cfg(feature = "enabled")]
pub use enabled::*;

#[cfg(not(feature = "enabled"))]
mod disabled;
#[cfg(not(feature = "enabled"))]
pub use disabled::*;
