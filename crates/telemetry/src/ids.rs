//! Fixed identifier spaces for the registry and the flight recorder.
//!
//! Every metric lives in a compile-time-known slot: counters, gauges and
//! histograms are dense `enum`-indexed arrays, so the hot path is a
//! single relaxed `fetch_add` with no hashing, no interning and no
//! allocation. Adding a metric means adding a variant here — the
//! exposition, merge and reset paths pick it up automatically because
//! they iterate the `ALL` tables.

/// Monotonic counters. Names in the exposition are
/// `tsc_<snake_case>_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Ctr {
    /// Packets folded into clocks by fleet replay (batch-granular).
    PacketsIngested = 0,
    /// Ingest batches processed by fleet replay.
    BatchesIngested,
    /// Chunks claimed off the pool's shared cursor.
    PoolChunksClaimed,
    /// Times a pool worker parked on the condvar waiting for work.
    PoolParkCycles,
    /// SoA megabatch stripe rounds executed.
    StripeRounds,
    /// Lanes peeled out of a megabatch stripe (admission-rejected /
    /// warm-up packets handled scalar).
    LanesPeeled,
    /// §6.2 upward shifts confirmed.
    UpwardShifts,
    /// Suspicious windows fully evaluated and rejected by the §6.2
    /// decision rule.
    ShiftWindowsRejected,
    /// Offset-window slides (coarse-poll fast path).
    WindowSlides,
    /// Rate-estimate sanity rejections.
    RateSanity,
    /// Offset-estimate sanity rejections.
    OffsetSanity,
    /// Offset fallbacks to the naive estimate.
    OffsetFallbacks,
    /// Full factored-weight window rebuilds.
    OffsetRebuilds,
    /// Clocks that completed warm-up.
    WarmupExits,
    /// Quorum servers demoted out of trust.
    QuorumDemotions,
    /// Quorum servers readmitted after demotion.
    QuorumReadmissions,
    /// Per-round combiner exclusions (servers excluded by disagreement).
    QuorumExclusions,
    /// Lifecycle state-machine transitions.
    LifecycleTransitions,
    /// Lifecycle transitions whose trace record was dropped at the
    /// `max_trace` cap (no silent truncation: always exposed).
    LifecycleTraceDropped,
    /// Snapshot envelopes sealed.
    SnapshotSeals,
    /// Snapshot envelopes successfully restored.
    SnapshotRestores,
    /// Snapshot restores that failed with a typed `SnapshotError`.
    SnapshotRestoreErrors,
    /// Crashes injected by the deterministic crash plan.
    CrashesInjected,
    /// Crash recoveries that restored warm from a checkpoint.
    WarmRestores,
    /// Crash recoveries that fell back to a cold restart.
    ColdRestarts,
    /// Packets re-ingested during crash recovery replay.
    ReplayedPackets,
    /// Flight-recorder events overwritten before they could be dumped
    /// (ring wrapped). Always exposed — truncation is never silent.
    RecorderDropped,
    /// Client datagrams received by a serving plane (batch-granular).
    ServeRequests,
    /// Responses stamped and sent by a serving plane.
    ServeResponses,
    /// Datagrams dropped as malformed (short, bad version, non-client
    /// mode). Always exposed — drops are never silent.
    ServeMalformed,
    /// Requests answered with a stratum-0 refusal (snapshot never
    /// published, marked unsynchronized, or past the staleness horizon).
    ServeRefusals,
    /// Datagram batches processed by a serving plane.
    ServeBatches,
    /// Non-transient receive errors the serve loop survived (the loop
    /// counts and continues instead of dying silently).
    ServeRecvErrors,
    /// Clock snapshots sealed into a published cell.
    SnapshotsPublished,
}

/// Number of counter slots.
pub const CTR_COUNT: usize = Ctr::SnapshotsPublished as usize + 1;

impl Ctr {
    /// All counters, in slot order.
    pub const ALL: [Ctr; CTR_COUNT] = [
        Ctr::PacketsIngested,
        Ctr::BatchesIngested,
        Ctr::PoolChunksClaimed,
        Ctr::PoolParkCycles,
        Ctr::StripeRounds,
        Ctr::LanesPeeled,
        Ctr::UpwardShifts,
        Ctr::ShiftWindowsRejected,
        Ctr::WindowSlides,
        Ctr::RateSanity,
        Ctr::OffsetSanity,
        Ctr::OffsetFallbacks,
        Ctr::OffsetRebuilds,
        Ctr::WarmupExits,
        Ctr::QuorumDemotions,
        Ctr::QuorumReadmissions,
        Ctr::QuorumExclusions,
        Ctr::LifecycleTransitions,
        Ctr::LifecycleTraceDropped,
        Ctr::SnapshotSeals,
        Ctr::SnapshotRestores,
        Ctr::SnapshotRestoreErrors,
        Ctr::CrashesInjected,
        Ctr::WarmRestores,
        Ctr::ColdRestarts,
        Ctr::ReplayedPackets,
        Ctr::RecorderDropped,
        Ctr::ServeRequests,
        Ctr::ServeResponses,
        Ctr::ServeMalformed,
        Ctr::ServeRefusals,
        Ctr::ServeBatches,
        Ctr::ServeRecvErrors,
        Ctr::SnapshotsPublished,
    ];

    /// Snake-case metric name (without the `tsc_`/`_total` decoration).
    pub fn name(self) -> &'static str {
        match self {
            Ctr::PacketsIngested => "packets_ingested",
            Ctr::BatchesIngested => "batches_ingested",
            Ctr::PoolChunksClaimed => "pool_chunks_claimed",
            Ctr::PoolParkCycles => "pool_park_cycles",
            Ctr::StripeRounds => "stripe_rounds",
            Ctr::LanesPeeled => "lanes_peeled",
            Ctr::UpwardShifts => "upward_shifts",
            Ctr::ShiftWindowsRejected => "shift_windows_rejected",
            Ctr::WindowSlides => "window_slides",
            Ctr::RateSanity => "rate_sanity_rejections",
            Ctr::OffsetSanity => "offset_sanity_rejections",
            Ctr::OffsetFallbacks => "offset_fallbacks",
            Ctr::OffsetRebuilds => "offset_rebuilds",
            Ctr::WarmupExits => "warmup_exits",
            Ctr::QuorumDemotions => "quorum_demotions",
            Ctr::QuorumReadmissions => "quorum_readmissions",
            Ctr::QuorumExclusions => "quorum_exclusions",
            Ctr::LifecycleTransitions => "lifecycle_transitions",
            Ctr::LifecycleTraceDropped => "lifecycle_trace_dropped",
            Ctr::SnapshotSeals => "snapshot_seals",
            Ctr::SnapshotRestores => "snapshot_restores",
            Ctr::SnapshotRestoreErrors => "snapshot_restore_errors",
            Ctr::CrashesInjected => "crashes_injected",
            Ctr::WarmRestores => "warm_restores",
            Ctr::ColdRestarts => "cold_restarts",
            Ctr::ReplayedPackets => "replayed_packets",
            Ctr::RecorderDropped => "flight_recorder_dropped",
            Ctr::ServeRequests => "serve_requests",
            Ctr::ServeResponses => "serve_responses",
            Ctr::ServeMalformed => "serve_malformed_drops",
            Ctr::ServeRefusals => "serve_refusals",
            Ctr::ServeBatches => "serve_batches",
            Ctr::ServeRecvErrors => "serve_recv_errors",
            Ctr::SnapshotsPublished => "snapshots_published",
        }
    }
}

/// Point-in-time gauges. Merged across registries by `max` (idempotent
/// and order-independent, matching the elementwise-merge contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Worker threads in the fleet pool.
    PoolWorkers = 0,
    /// Clocks in the most recent fleet replay.
    FleetClocks,
    /// Clients in the most recent population run.
    PopulationClients,
}

/// Number of gauge slots.
pub const GAUGE_COUNT: usize = Gauge::PopulationClients as usize + 1;

impl Gauge {
    /// All gauges, in slot order.
    pub const ALL: [Gauge; GAUGE_COUNT] =
        [Gauge::PoolWorkers, Gauge::FleetClocks, Gauge::PopulationClients];

    /// Snake-case metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::PoolWorkers => "pool_workers",
            Gauge::FleetClocks => "fleet_clocks",
            Gauge::PopulationClients => "population_clients",
        }
    }
}

/// Log2-bucketed histograms. All record nanoseconds unless a variant
/// documents another unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Snapshot seal (checkpoint write) latency.
    SealNs = 0,
    /// Snapshot restore latency.
    RestoreNs,
    /// Megabatch phase-1 (`step_prepare` over the stripe) latency per
    /// sampled round.
    StagePrepareNs,
    /// Megabatch kernel-round latency per sampled round.
    StageKernelNs,
    /// Megabatch phase-2/3 (`step_mid` + `step_finish`) latency per
    /// sampled round.
    StageCommitNs,
    /// Whole-ingest-batch latency (per `ingest_batch` packets per clock).
    IngestBatchNs,
    /// Age of the published snapshot at serve time (nanoseconds of
    /// staleness, worst slot per batch).
    ServeSnapshotAgeNs,
    /// Datagrams per received batch (**unit: datagrams**, not ns) — how
    /// well the batched front-end amortizes its syscalls.
    ServeBatchFill,
}

/// Number of histogram slots.
pub const HIST_COUNT: usize = Hist::ServeBatchFill as usize + 1;

impl Hist {
    /// All histograms, in slot order.
    pub const ALL: [Hist; HIST_COUNT] = [
        Hist::SealNs,
        Hist::RestoreNs,
        Hist::StagePrepareNs,
        Hist::StageKernelNs,
        Hist::StageCommitNs,
        Hist::IngestBatchNs,
        Hist::ServeSnapshotAgeNs,
        Hist::ServeBatchFill,
    ];

    /// Snake-case metric name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SealNs => "snapshot_seal_ns",
            Hist::RestoreNs => "snapshot_restore_ns",
            Hist::StagePrepareNs => "stage_prepare_ns",
            Hist::StageKernelNs => "stage_kernel_ns",
            Hist::StageCommitNs => "stage_commit_ns",
            Hist::IngestBatchNs => "ingest_batch_ns",
            Hist::ServeSnapshotAgeNs => "serve_snapshot_age_ns",
            Hist::ServeBatchFill => "serve_batch_fill",
        }
    }
}

/// Compact flight-recorder event kinds (fits in one byte).
///
/// Events carry two generic payload words `a`/`b`; the per-kind meaning
/// is documented here and rendered by the dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Clock finished warm-up. `a` = packets seen.
    WarmupExit = 0,
    /// §6.2 upward shift confirmed. `a` = detection-window start index.
    UpwardShift,
    /// Suspicious window evaluated and rejected. `a` = window length.
    ShiftWindowRejected,
    /// Offset window slid (coarse-poll path). `a` = new window start.
    WindowSlid,
    /// Factored-weight window rebuilt. `a` = window population.
    OffsetRebuild,
    /// Quorum server demoted. `a` = server index, `b` = trust as f64 bits.
    TrustDemoted,
    /// Quorum server readmitted. `a` = server index, `b` = trust bits.
    TrustReadmitted,
    /// Combiner excluded servers this round. `a` = exclusion bitmask.
    CombinerExclusion,
    /// Lifecycle edge. `a` = `(from << 8) | to` state tags, `b` = cause tag.
    LifecycleTransition,
    /// Lifecycle trace hit its cap; this edge was not traced. `a`/`b` as
    /// in [`EventKind::LifecycleTransition`].
    LifecycleTraceDropped,
    /// Snapshot sealed. `a` = blob length in bytes.
    CheckpointSealed,
    /// Snapshot restored warm. `a` = blob length in bytes.
    CheckpointRestored,
    /// Snapshot restore failed. `a` = [`err_code`] for the typed
    /// `SnapshotError`, `b` = blob length in bytes.
    RestoreFailed,
    /// Crash recovery restored warm from a checkpoint. `a` = packets
    /// replayed since the checkpoint.
    WarmRestore,
    /// Crash recovery fell back to a cold restart. `a` = packets
    /// replayed from scratch.
    ColdRestart,
    /// Deterministic crash injected. `a` = crash index within the run.
    CrashInjected,
}

impl EventKind {
    /// Human-readable kind label for the dump.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::WarmupExit => "warmup-exit",
            EventKind::UpwardShift => "upward-shift",
            EventKind::ShiftWindowRejected => "shift-window-rejected",
            EventKind::WindowSlid => "window-slid",
            EventKind::OffsetRebuild => "offset-rebuild",
            EventKind::TrustDemoted => "trust-demoted",
            EventKind::TrustReadmitted => "trust-readmitted",
            EventKind::CombinerExclusion => "combiner-exclusion",
            EventKind::LifecycleTransition => "lifecycle-transition",
            EventKind::LifecycleTraceDropped => "lifecycle-trace-dropped",
            EventKind::CheckpointSealed => "checkpoint-sealed",
            EventKind::CheckpointRestored => "checkpoint-restored",
            EventKind::RestoreFailed => "restore-failed",
            EventKind::WarmRestore => "warm-restore",
            EventKind::ColdRestart => "cold-restart",
            EventKind::CrashInjected => "crash-injected",
        }
    }
}

/// Numeric codes for the typed `SnapshotError` variants, so the flight
/// recorder can carry the error in a POD event word and the dump can
/// name it. `tsc-telemetry` cannot depend on `tscclock` (the dependency
/// runs the other way), so producers map the error to a code at the
/// recording site.
pub mod err_code {
    /// `SnapshotError::BadMagic`.
    pub const BAD_MAGIC: u64 = 1;
    /// `SnapshotError::Truncated`.
    pub const TRUNCATED: u64 = 2;
    /// `SnapshotError::Checksum`.
    pub const CHECKSUM: u64 = 3;
    /// `SnapshotError::VersionMismatch`.
    pub const VERSION_MISMATCH: u64 = 4;
    /// `SnapshotError::KindMismatch`.
    pub const KIND_MISMATCH: u64 = 5;
    /// `SnapshotError::Invalid`.
    pub const INVALID: u64 = 6;

    /// Name for a code (the `SnapshotError` variant name).
    pub fn name(code: u64) -> &'static str {
        match code {
            BAD_MAGIC => "BadMagic",
            TRUNCATED => "Truncated",
            CHECKSUM => "Checksum",
            VERSION_MISMATCH => "VersionMismatch",
            KIND_MISMATCH => "KindMismatch",
            INVALID => "Invalid",
            _ => "Unknown",
        }
    }
}
