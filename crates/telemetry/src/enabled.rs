//! The real telemetry plane (`feature = "enabled"`).
//!
//! Everything here obeys two contracts:
//!
//! * **Digest transparency** — recording only *reads* pipeline state and
//!   mutates private atomics/rings. Nothing here feeds back into clock
//!   arithmetic, RNG streams or replay scheduling, so instrumented runs
//!   are bit-identical to uninstrumented ones.
//! * **Near-zero hot-path cost** — counters are plain relaxed
//!   `fetch_add`s at batch granularity, histograms one `fetch_add` per
//!   *sampled* stage round, and the flight recorder only runs on rare
//!   state-transition branches.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

use tsc_stats::{Log2Histogram, LOG2_BUCKETS};

use crate::ids::{err_code, Ctr, EventKind, Gauge, Hist, CTR_COUNT, GAUGE_COUNT, HIST_COUNT};

/// `true` in builds where the telemetry feature is compiled in.
pub const TELEMETRY_COMPILED: bool = true;

/// Master runtime switch. Compiled-in telemetry can still be silenced at
/// runtime — the A/B overhead bench interleaves on/off arms within one
/// binary through this.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Is runtime recording currently on?
#[inline(always)]
pub fn recording() -> bool {
    RECORDING.load(Relaxed)
}

/// Flips the runtime master switch (relaxed; takes effect immediately
/// for subsequent recording calls).
pub fn set_recording(on: bool) {
    RECORDING.store(on, Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One atomic log2 histogram: bucket counts plus exact count/sum.
#[derive(Debug)]
struct AtomicHist {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHist {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[tsc_stats::log2_bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    fn snapshot(&self) -> Log2Histogram {
        let counts = std::array::from_fn(|i| self.buckets[i].load(Relaxed));
        Log2Histogram::from_parts(counts, self.count.load(Relaxed), self.sum.load(Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
    }
}

/// Lock-free, fixed-slot metrics registry.
///
/// Every slot is a plain `AtomicU64` touched with relaxed ordering; the
/// hot path never allocates, hashes or locks. Registries merge
/// elementwise (counters/histograms add, gauges take `max`), so
/// per-worker registries can be folded in any order — the same
/// order-independence contract as the fleet's digest folds.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; CTR_COUNT],
    gauges: [AtomicU64; GAUGE_COUNT],
    hists: [AtomicHist; HIST_COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| AtomicHist::new()),
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.counters[c as usize].fetch_add(n, Relaxed);
    }

    /// Reads a counter.
    pub fn counter(&self, c: Ctr) -> u64 {
        self.counters[c as usize].load(Relaxed)
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].store(v, Relaxed);
    }

    /// Reads a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Relaxed)
    }

    /// Records one histogram observation.
    #[inline]
    pub fn record(&self, h: Hist, v: u64) {
        self.hists[h as usize].record(v);
    }

    /// Snapshots a histogram into the shared mergeable type.
    pub fn hist(&self, h: Hist) -> Log2Histogram {
        self.hists[h as usize].snapshot()
    }

    /// Elementwise merge of `other` into `self`: counters and histogram
    /// buckets add, gauges take the max. Commutative and associative, so
    /// per-worker registries fold in any order.
    pub fn merge_from(&self, other: &Registry) {
        for (dst, src) in self.counters.iter().zip(other.counters.iter()) {
            dst.fetch_add(src.load(Relaxed), Relaxed);
        }
        for (dst, src) in self.gauges.iter().zip(other.gauges.iter()) {
            dst.fetch_max(src.load(Relaxed), Relaxed);
        }
        for (dst, src) in self.hists.iter().zip(other.hists.iter()) {
            for (d, s) in dst.buckets.iter().zip(src.buckets.iter()) {
                d.fetch_add(s.load(Relaxed), Relaxed);
            }
            dst.count.fetch_add(src.count.load(Relaxed), Relaxed);
            dst.sum.fetch_add(src.sum.load(Relaxed), Relaxed);
        }
    }

    /// Zeroes every slot (for tests, benches and per-experiment sections).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all convenience functions write to.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Adds `n` to a global counter (no-op while recording is off).
#[inline]
pub fn add(c: Ctr, n: u64) {
    if recording() {
        global().add(c, n);
    }
}

/// Sets a global gauge (no-op while recording is off).
#[inline]
pub fn gauge_set(g: Gauge, v: u64) {
    if recording() {
        global().gauge_set(g, v);
    }
}

/// Records a global histogram observation (no-op while recording is off).
#[inline]
pub fn record_ns(h: Hist, ns: u64) {
    if recording() {
        global().record(h, ns);
    }
}

/// Zeroes the global registry.
pub fn reset_global() {
    global().reset();
}

/// A scoped stage timer: reads the monotonic clock only when recording
/// is on, and records elapsed nanoseconds into a global histogram on
/// [`StageTimer::stop`].
///
/// Wall-clock *durations* are observability data, not pipeline input —
/// they are recorded and never read back, so timers do not break
/// determinism even though `Instant` is non-deterministic.
#[derive(Debug)]
pub struct StageTimer(Option<(Hist, Instant)>);

impl StageTimer {
    /// Starts timing into `h` (inert when recording is off).
    #[inline]
    pub fn start(h: Hist) -> Self {
        if recording() {
            StageTimer(Some((h, Instant::now())))
        } else {
            StageTimer(None)
        }
    }

    /// Stops and records the elapsed nanoseconds.
    #[inline]
    pub fn stop(self) {
        if let Some((h, t0)) = self.0 {
            global().record(h, t0.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Capacity of each per-thread event ring.
pub const RING_CAP: usize = 1024;

/// One compact flight-recorder record.
///
/// `at` is deterministic pipeline time — a packet index, TSC reading or
/// simulated-time encoding — never wall clock, so the recorded stream is
/// identical across reruns and across recording on/off (which is what
/// makes it safe to leave enabled in parity runs).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Deterministic timestamp (packet index / TSC / encoded sim time).
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload word (see [`EventKind`] docs).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

struct Ring {
    buf: Vec<Event>,
    /// Next write position (wraps at [`RING_CAP`]).
    next: usize,
    /// Total events ever pushed on this thread.
    total: u64,
    /// Overwrites not yet folded into [`Ctr::RecorderDropped`] — flushed
    /// in batches of [`DROP_FLUSH`] so a saturated ring doesn't pay one
    /// global atomic per push, and flushed exactly on every dump/clear.
    pending_drops: u32,
}

/// Ring overwrites are folded into the global drop counter in batches of
/// this many; [`flight_dump`] and [`clear_flight_recorder`] flush the
/// remainder, so the counter is exact at every dump point.
const DROP_FLUSH: u32 = 64;

impl Ring {
    const fn new() -> Self {
        Ring {
            buf: Vec::new(),
            next: 0,
            total: 0,
            pending_drops: 0,
        }
    }

    /// Appends `ev`; returns `true` when an old record was overwritten.
    fn push(&mut self, ev: Event) -> bool {
        self.total += 1;
        if self.buf.len() < RING_CAP {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % RING_CAP;
            true
        }
    }

    fn dropped(&self) -> u64 {
        self.total.saturating_sub(self.buf.len() as u64)
    }
}

thread_local! {
    static RING: RefCell<Ring> = const { RefCell::new(Ring::new()) };
}

/// Pushes an event onto this thread's flight-recorder ring (no-op while
/// recording is off). When the ring wraps, the overwritten record is
/// counted in [`Ctr::RecorderDropped`] — truncation is never silent.
/// Overwrite counts reach the global registry in batches (exactly
/// flushed by every dump/clear), so a saturated ring stays cheap.
#[inline]
pub fn event(kind: EventKind, at: u64, a: u64, b: u64) {
    if !recording() {
        return;
    }
    let flush = RING.with(|r| {
        let mut ring = r.borrow_mut();
        if ring.push(Event { at, kind, a, b }) {
            ring.pending_drops += 1;
            if ring.pending_drops >= DROP_FLUSH {
                return std::mem::take(&mut ring.pending_drops);
            }
        }
        0
    });
    if flush > 0 {
        global().add(Ctr::RecorderDropped, u64::from(flush));
    }
}

/// Clears this thread's ring (tests and per-scenario sections), folding
/// any pending overwrite count into the drop counter first.
pub fn clear_flight_recorder() {
    let pending = RING.with(|r| {
        let mut ring = r.borrow_mut();
        let pending = ring.pending_drops;
        *ring = Ring::new();
        pending
    });
    if pending > 0 {
        global().add(Ctr::RecorderDropped, u64::from(pending));
    }
}

fn render_event(out: &mut String, ev: &Event) {
    let _ = write!(out, "  [{:>12}] {:<24}", ev.at, ev.kind.name());
    match ev.kind {
        EventKind::RestoreFailed => {
            let _ = writeln!(
                out,
                " error=SnapshotError::{} blob_len={}",
                err_code::name(ev.a),
                ev.b
            );
        }
        EventKind::LifecycleTransition | EventKind::LifecycleTraceDropped => {
            let _ = writeln!(
                out,
                " from={} to={} cause={}",
                ev.a >> 8,
                ev.a & 0xff,
                ev.b
            );
        }
        _ => {
            let _ = writeln!(out, " a={} b={}", ev.a, ev.b);
        }
    }
}

/// Renders this thread's flight-recorder ring, oldest event first, with
/// an explicit dropped count in the header.
pub fn flight_dump() -> String {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        let pending = std::mem::take(&mut ring.pending_drops);
        if pending > 0 {
            global().add(Ctr::RecorderDropped, u64::from(pending));
        }
        let ring = &*ring;
        let mut out = format!(
            "--- flight recorder ({:?}: {} events, {} dropped) ---\n",
            std::thread::current().id(),
            ring.buf.len(),
            ring.dropped()
        );
        let n = ring.buf.len();
        if n == RING_CAP {
            // Ring full: oldest record sits at the write cursor.
            for i in 0..n {
                render_event(&mut out, &ring.buf[(ring.next + i) % RING_CAP]);
            }
        } else {
            for ev in &ring.buf {
                render_event(&mut out, ev);
            }
        }
        out
    })
}

/// Installs (once per process) a panic hook that dumps the panicking
/// thread's flight recorder to stderr before the default handler runs.
/// Panic hooks run on the panicking thread, so the thread-local ring in
/// scope is exactly the one with the events leading up to the crash.
pub fn install_panic_dump() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            eprintln!("{}", flight_dump());
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

/// Renders a registry as a Prometheus-style text exposition.
///
/// Every counter slot is emitted even when zero — the
/// `flight_recorder_dropped` / `lifecycle_trace_dropped` lines are a
/// contract (truncation is always reported), and fixed rows make diffs
/// between runs trivially comparable.
pub fn prometheus_for(reg: &Registry) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        "# tsc-telemetry exposition (compiled=on recording={})",
        if recording() { "on" } else { "off" }
    );
    for c in Ctr::ALL {
        let _ = writeln!(out, "# TYPE tsc_{}_total counter", c.name());
        let _ = writeln!(out, "tsc_{}_total {}", c.name(), reg.counter(c));
    }
    for g in Gauge::ALL {
        let _ = writeln!(out, "# TYPE tsc_{} gauge", g.name());
        let _ = writeln!(out, "tsc_{} {}", g.name(), reg.gauge(g));
    }
    for h in Hist::ALL {
        let snap = reg.hist(h);
        let _ = writeln!(out, "# TYPE tsc_{} histogram", h.name());
        let _ = writeln!(out, "tsc_{}_count {}", h.name(), snap.count());
        let _ = writeln!(out, "tsc_{}_sum {}", h.name(), snap.sum());
        let mut cum = 0u64;
        for (i, &c) in snap.counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let _ = writeln!(
                out,
                "tsc_{}_bucket{{le=\"{}\"}} {}",
                h.name(),
                tsc_stats::log2_bucket_bound(i),
                cum
            );
        }
        if !snap.is_empty() {
            let _ = writeln!(
                out,
                "tsc_{}_bucket{{le=\"+Inf\"}} {}",
                h.name(),
                snap.count()
            );
        }
    }
    out
}

/// Prometheus-style exposition of the global registry.
pub fn prometheus() -> String {
    prometheus_for(global())
}

/// Renders a registry as a JSON object (counters, gauges, and per-
/// histogram count/sum/mean plus factor-of-two quantile bounds).
pub fn to_json_for(reg: &Registry) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"compiled\":true,\"recording\":");
    out.push_str(if recording() { "true" } else { "false" });
    out.push_str(",\"counters\":{");
    for (i, c) in Ctr::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name(), reg.counter(*c));
    }
    out.push_str("},\"gauges\":{");
    for (i, g) in Gauge::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", g.name(), reg.gauge(*g));
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in Hist::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let snap = reg.hist(*h);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            h.name(),
            snap.count(),
            snap.sum(),
            snap.mean(),
            snap.quantile(0.50),
            snap.quantile(0.90),
            snap.quantile(0.99),
            snap.max_bound()
        );
    }
    out.push_str("}}");
    out
}

/// JSON export of the global registry.
pub fn to_json() -> String {
    to_json_for(global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle global recording state.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_and_merge_are_order_independent() {
        let _g = LOCK.lock().unwrap();
        let a = Registry::new();
        let b = Registry::new();
        a.add(Ctr::PacketsIngested, 7);
        a.record(Hist::SealNs, 1_000);
        a.gauge_set(Gauge::PoolWorkers, 4);
        b.add(Ctr::PacketsIngested, 5);
        b.add(Ctr::WarmupExits, 1);
        b.record(Hist::SealNs, 1_000_000);
        b.gauge_set(Gauge::PoolWorkers, 2);

        let ab = Registry::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = Registry::new();
        ba.merge_from(&b);
        ba.merge_from(&a);

        for c in Ctr::ALL {
            assert_eq!(ab.counter(c), ba.counter(c), "{}", c.name());
        }
        for h in Hist::ALL {
            assert_eq!(ab.hist(h), ba.hist(h), "{}", h.name());
        }
        for g in Gauge::ALL {
            assert_eq!(ab.gauge(g), ba.gauge(g), "{}", g.name());
        }
        assert_eq!(ab.counter(Ctr::PacketsIngested), 12);
        assert_eq!(ab.gauge(Gauge::PoolWorkers), 4);
        assert_eq!(ab.hist(Hist::SealNs).count(), 2);
    }

    #[test]
    fn recording_switch_silences_global_writes() {
        let _g = LOCK.lock().unwrap();
        clear_flight_recorder();
        let before = global().counter(Ctr::CrashesInjected);
        set_recording(false);
        add(Ctr::CrashesInjected, 3);
        event(EventKind::CrashInjected, 1, 0, 0);
        let t = StageTimer::start(Hist::RestoreNs);
        t.stop();
        assert_eq!(global().counter(Ctr::CrashesInjected), before);
        assert!(flight_dump().contains("0 events"));
        set_recording(true);
        add(Ctr::CrashesInjected, 2);
        assert_eq!(global().counter(Ctr::CrashesInjected), before + 2);
    }

    #[test]
    fn ring_wraps_with_counted_drops() {
        let _g = LOCK.lock().unwrap();
        set_recording(true);
        clear_flight_recorder();
        let dropped_before = global().counter(Ctr::RecorderDropped);
        let n = RING_CAP as u64 + 10;
        for i in 0..n {
            event(EventKind::WarmupExit, i, 0, 0);
        }
        let dump = flight_dump();
        assert!(
            dump.contains(&format!("{} events, 10 dropped", RING_CAP)),
            "{}",
            dump.lines().next().unwrap_or("")
        );
        // Oldest surviving event is #10, newest is #(n-1), in order.
        let first = dump
            .lines()
            .nth(1)
            .and_then(|l| l.trim().strip_prefix('['))
            .and_then(|l| l.split(']').next())
            .map(|s| s.trim().to_string());
        assert_eq!(first.as_deref(), Some("10"));
        assert!(dump.contains(&format!("[{:>12}]", n - 1)));
        assert_eq!(global().counter(Ctr::RecorderDropped), dropped_before + 10);
        clear_flight_recorder();
    }

    #[test]
    fn exposition_always_reports_drop_counters() {
        let _g = LOCK.lock().unwrap();
        let reg = Registry::new();
        let text = prometheus_for(&reg);
        assert!(text.contains("tsc_flight_recorder_dropped_total 0"));
        assert!(text.contains("tsc_lifecycle_trace_dropped_total 0"));
        reg.add(Ctr::LifecycleTraceDropped, 4);
        assert!(prometheus_for(&reg).contains("tsc_lifecycle_trace_dropped_total 4"));
        let json = to_json_for(&reg);
        assert!(json.contains("\"lifecycle_trace_dropped\":4"));
        assert!(json.contains("\"flight_recorder_dropped\":0"));
    }

    #[test]
    fn restore_failed_dump_names_the_error() {
        let _g = LOCK.lock().unwrap();
        set_recording(true);
        clear_flight_recorder();
        event(EventKind::RestoreFailed, 42, err_code::CHECKSUM, 512);
        let dump = flight_dump();
        assert!(dump.contains("restore-failed"), "{dump}");
        assert!(dump.contains("error=SnapshotError::Checksum"), "{dump}");
        clear_flight_recorder();
    }

    #[test]
    fn histogram_buckets_cumulate_in_exposition() {
        let _g = LOCK.lock().unwrap();
        let reg = Registry::new();
        reg.record(Hist::SealNs, 100);
        reg.record(Hist::SealNs, 100);
        reg.record(Hist::SealNs, 1_000_000);
        let text = prometheus_for(&reg);
        assert!(text.contains("tsc_snapshot_seal_ns_count 3"));
        assert!(text.contains("tsc_snapshot_seal_ns_bucket{le=\"127\"} 2"));
        assert!(text.contains("tsc_snapshot_seal_ns_bucket{le=\"1048575\"} 3"));
        assert!(text.contains("tsc_snapshot_seal_ns_bucket{le=\"+Inf\"} 3"));
    }
}
