//! The compiled-out telemetry plane (default, without
//! `feature = "enabled"`).
//!
//! Mirrors the public surface of the real implementation with
//! `#[inline(always)]` no-ops, so instrumented call sites need no
//! `cfg` guards and the optimizer deletes them entirely: counters,
//! timers and events cost literally nothing in the default build.

use crate::ids::{Ctr, EventKind, Gauge, Hist};

/// `false`: this build compiled telemetry out.
pub const TELEMETRY_COMPILED: bool = false;

/// Always `false` when compiled out.
#[inline(always)]
pub fn recording() -> bool {
    false
}

/// No-op.
#[inline(always)]
pub fn set_recording(_on: bool) {}

/// No-op counter add.
#[inline(always)]
pub fn add(_c: Ctr, _n: u64) {}

/// No-op gauge store.
#[inline(always)]
pub fn gauge_set(_g: Gauge, _v: u64) {}

/// No-op histogram record.
#[inline(always)]
pub fn record_ns(_h: Hist, _ns: u64) {}

/// No-op.
#[inline(always)]
pub fn reset_global() {}

/// Zero-sized inert stage timer.
#[derive(Debug)]
pub struct StageTimer;

impl StageTimer {
    /// No-op start.
    #[inline(always)]
    pub fn start(_h: Hist) -> Self {
        StageTimer
    }

    /// No-op stop.
    #[inline(always)]
    pub fn stop(self) {}
}

/// No-op event push.
#[inline(always)]
pub fn event(_kind: EventKind, _at: u64, _a: u64, _b: u64) {}

/// No-op.
#[inline(always)]
pub fn clear_flight_recorder() {}

/// Marker string: nothing was recorded in this build.
pub fn flight_dump() -> String {
    "--- flight recorder (telemetry compiled out) ---\n".to_string()
}

/// No-op.
#[inline(always)]
pub fn install_panic_dump() {}

/// Marker exposition: telemetry compiled out.
pub fn prometheus() -> String {
    "# tsc-telemetry exposition (compiled=off)\n".to_string()
}

/// Marker JSON: telemetry compiled out.
pub fn to_json() -> String {
    "{\"compiled\":false}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_surface_is_inert() {
        assert!(!recording());
        set_recording(true);
        assert!(!recording());
        add(Ctr::PacketsIngested, 1);
        gauge_set(Gauge::PoolWorkers, 8);
        record_ns(Hist::SealNs, 123);
        event(EventKind::WarmupExit, 0, 0, 0);
        StageTimer::start(Hist::SealNs).stop();
        install_panic_dump();
        assert!(prometheus().contains("compiled=off"));
        assert!(to_json().contains("\"compiled\":false"));
        assert!(flight_dump().contains("compiled out"));
    }
}
