//! Extension X3: quorum vs single-server synchronization under server
//! faults, on the **paper's own three-server testbed**
//! ([`MultiServerScenario::paper_testbed`]: ServerLoc + ServerInt +
//! ServerExt, the Table-2 configuration).
//!
//! Runs the same 3-server scenario — the far (Ext) server develops a
//! silent asymmetry step mid-run — four ways:
//!
//! 1. **single-good** — one clock pinned to the healthy local (Loc)
//!    server;
//! 2. **single-bad** — one clock pinned to the faulted Ext server (what
//!    an unlucky single-server deployment gets);
//! 3. **mean-all** — naive unweighted mean of all three members, no
//!    exclusion (what a trivial combiner gets: the liar drags it);
//! 4. **quorum** — the full health-weighted robust combination.
//!
//! Errors are measured against the simulator's ground truth at each
//! round's reference instant, over the post-fault half of the run.

use crate::fmt::{table, Report};
use crate::ExpOptions;
use tsc_netsim::{LevelShift, MultiServerScenario, ServerKind, ServerPath};
use tsc_quorum::{QuorumClock, QuorumConfig};
use tsc_stats::Percentiles;
use tscclock::RawExchange;

/// Runs the four variants.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new(
        "quorum",
        "X3 — quorum vs single-server synchronization under a silent asymmetry fault",
    );
    let hours = if opt.full { 48.0 } else { 12.0 };
    let onset = hours * 3600.0 / 2.0;
    let delta = 2.0e-3;
    // The Table-2 testbed: Loc + Int + Ext. The asymmetry step lands on
    // the Ext path — the only one whose backward minimum (~6.8 ms) has
    // room for an RTT-silent −delta/2 leg.
    let mut sc = MultiServerScenario::paper_testbed(opt.seed).with_duration(hours * 3600.0);
    sc = sc.with_server_path(
        2,
        ServerPath::new(ServerKind::Ext).with_shift(LevelShift::asymmetric(onset, None, delta)),
    );
    r.line(format!(
        "paper testbed (Loc + Int + Ext), poll {} s, {hours} h; ServerExt takes a {:.1} ms asymmetry step at {:.0} h",
        sc.poll_period,
        delta * 1e3,
        onset / 3600.0
    ));
    r.line("post-fault absolute clock error vs ground truth (µs):");
    r.line("");

    let mut quorum = QuorumClock::new(3, QuorumConfig::paper_defaults(sc.poll_period));
    let mut stream = sc.stream();
    let mut samples = Vec::new();
    let mut round_in: Vec<Option<RawExchange>> = Vec::new();
    // per-variant |error| series over the post-fault window
    let (mut e_good, mut e_bad, mut e_mean, mut e_quorum) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut demoted_at: Option<f64> = None;
    while stream.next_round(&mut samples) {
        round_in.clear();
        round_in.extend(samples.iter().map(|s| s.delivered.then_some(s.raw)));
        let out = quorum.process_round(&round_in);
        let t = out.round as f64 * sc.poll_period;
        // first demotion *after* onset (transient pre-fault demotions — a
        // genuinely degraded episode on some seeds — don't count)
        if demoted_at.is_none() && t > onset && out.demoted_mask & 0b100 != 0 {
            demoted_at = Some(t);
        }
        if !out.combined || t <= onset {
            continue;
        }
        let Some(truth) = samples
            .iter()
            .find(|s| s.delivered && s.raw.tf_tsc == out.tsc_ref)
            .map(|s| s.tf_read)
        else {
            continue;
        };
        let per_server: Vec<Option<f64>> = (0..3)
            .map(|k| quorum.server(k).absolute_time(out.tsc_ref))
            .collect();
        if let Some(ca) = per_server[0] {
            e_good.push((ca - truth).abs());
        }
        if let Some(ca) = per_server[2] {
            e_bad.push((ca - truth).abs());
        }
        let known: Vec<f64> = per_server.iter().flatten().copied().collect();
        if !known.is_empty() {
            let mean = known.iter().sum::<f64>() / known.len() as f64;
            e_mean.push((mean - truth).abs());
        }
        e_quorum.push((out.utc_ref - truth).abs());
    }

    let mut rows = Vec::new();
    for (name, series) in [
        ("single-good", &e_good),
        ("single-bad", &e_bad),
        ("mean-all", &e_mean),
        ("quorum", &e_quorum),
    ] {
        let p = Percentiles::from_data(series).expect("data");
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", p.p50 * 1e6),
            format!("{:.1}", p.p99 * 1e6),
        ]);
        r.metrics
            .push((format!("{}_median_us", name.replace('-', "_")), p.p50 * 1e6));
    }
    r.body.push_str(&table(&["variant", "median", "p99"], &rows));
    r.line("");
    match demoted_at {
        Some(at) => r.metric("demotion_latency_exchanges", (at - onset) / sc.poll_period),
        None => r.line("  (faulty server was never demoted!)"),
    }
    let gain = r.get("single_bad_median_us").unwrap_or(f64::NAN)
        / r.get("quorum_median_us").unwrap_or(f64::NAN);
    r.metric("quorum_vs_bad_gain", gain);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_beats_the_bad_server_and_the_naive_mean() {
        let rep = run(ExpOptions::default());
        let good = rep.get("single_good_median_us").unwrap();
        let bad = rep.get("single_bad_median_us").unwrap();
        let mean = rep.get("mean_all_median_us").unwrap();
        let quorum = rep.get("quorum_median_us").unwrap();
        // the fault bites the pinned clock by ~delta/2 = 1 ms
        assert!(bad > 700.0, "bad-server median {bad} µs");
        // the naive mean inherits ~a third of the bias
        assert!(mean > 1.5 * good, "naive mean {mean} vs good {good}");
        // the quorum stays at healthy-single level
        assert!(quorum < 1.5 * good, "quorum {quorum} vs good {good}");
        assert!(quorum < 0.35 * bad, "quorum {quorum} vs bad {bad}");
        let latency = rep.get("demotion_latency_exchanges").unwrap();
        assert!(latency <= 200.0, "demotion latency {latency}");
    }
}
