//! Figure 11: behaviour under extreme events.
//!
//! * (a) a 3.8-day data gap — fast recovery, no warm-up needed;
//! * (b) a 150 ms server clock error for a few minutes — undetectable in
//!   RTTs, caught by the sanity checks, damage "a millisecond or less";
//! * (c) artificial +0.9 ms upward level shifts in the forward direction
//!   (one shorter than Ts — never detected, little impact; one permanent —
//!   detected after Ts, with a ~0.45 ms estimate jump from the true Δ
//!   change);
//! * (d) a natural-style −0.36 ms downward shift applied equally in both
//!   directions — absorbed instantly with no impact on estimates.

use crate::fmt::{fmt_time, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::{LevelShift, Scenario, ServerFault};
use tsc_stats::median;
use tscclock::ClockConfig;

const DAY: f64 = 86_400.0;

fn cfg_for(sc: &Scenario) -> ClockConfig {
    let mut cfg = ClockConfig::paper_defaults(sc.poll_period);
    // the robustness experiments use τ′ = 2τ* (Figure 11 caption)
    cfg.tau_prime = 2.0 * cfg.tau_star;
    cfg
}

/// Median error over packets whose poll time is in `[lo, hi)`.
fn med_err(run: &crate::runner::ClockRun, lo: f64, hi: f64) -> f64 {
    let v: Vec<f64> = run
        .packets
        .iter()
        .filter(|p| p.t >= lo && p.t < hi)
        .map(|p| p.err_abs)
        .collect();
    median(&v).unwrap_or(f64::NAN)
}

/// (a) 3.8-day outage and recovery.
pub fn run_outage(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig11a", "Figure 11(a) — recovery after a 3.8-day gap");
    let gap_days = if opt.full { 3.8 } else { 2.0 };
    let gap_start = 3.0 * DAY;
    let gap_end = gap_start + gap_days * DAY;
    let sc = Scenario::baseline(opt.seed)
        .with_poll_period(64.0)
        .with_duration(gap_end + 2.0 * DAY)
        .with_outage(gap_start, gap_end);
    let run = run_clock(&sc, cfg_for(&sc));
    let before = med_err(&run, gap_start - DAY, gap_start);
    // first two hours after the gap
    let right_after = med_err(&run, gap_end, gap_end + 7200.0);
    let after = med_err(&run, gap_end + 7200.0, gap_end + DAY);
    r.line(format!("median error, day before gap:   {}", fmt_time(before)));
    r.line(format!("median error, 2h after gap:     {}", fmt_time(right_after)));
    r.line(format!("median error, rest of day:      {}", fmt_time(after)));
    r.line("Paper: fast recovery even after a 3.8-day gap (rate needs no warmup;");
    r.line("offset re-acquires within the first packets).");
    r.metric("before_us", before * 1e6);
    r.metric("right_after_us", right_after * 1e6);
    r.metric("after_us", after * 1e6);
    r.metric(
        "recovery_excess_us",
        (right_after - before).abs() * 1e6,
    );
    r
}

/// (b) server clock error of 150 ms lasting a few minutes.
pub fn run_server_fault(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig11b", "Figure 11(b) — 150 ms server error (sanity check)");
    let fault_start = 2.0 * DAY;
    let fault_len = 300.0; // "a few minutes"
    let sc = Scenario::baseline(opt.seed)
        .with_poll_period(16.0)
        .with_duration(fault_start + DAY)
        .with_server_fault(ServerFault {
            start: fault_start,
            end: fault_start + fault_len,
            offset: 0.150,
        });
    let run = run_clock(&sc, cfg_for(&sc));
    let before = med_err(&run, fault_start - 7200.0, fault_start);
    // worst deviation of the estimate during/just after the fault
    let worst = run
        .packets
        .iter()
        .filter(|p| p.t >= fault_start && p.t < fault_start + fault_len + 3600.0)
        .map(|p| (p.err_abs - before).abs())
        .fold(0.0f64, f64::max);
    let sanity_count = run
        .packets
        .iter()
        .filter(|p| p.t >= fault_start && p.t < fault_start + fault_len + 600.0)
        .filter(|p| p.sanity_fired)
        .count();
    let after = med_err(&run, fault_start + fault_len + 3600.0, fault_start + DAY);
    r.line(format!("median error before fault:      {}", fmt_time(before)));
    r.line(format!("worst deviation during fault:   {}", fmt_time(worst)));
    r.line(format!("offset sanity triggers:         {sanity_count}"));
    r.line(format!("median error after fault:       {}", fmt_time(after)));
    r.line("Paper: server errors don't show in RTTs; the sanity check limits the");
    r.line("damage to a millisecond or less.");
    r.metric("worst_deviation_ms", worst * 1e3);
    r.metric("sanity_triggers", sanity_count as f64);
    r.metric("after_minus_before_us", (after - before).abs() * 1e6);
    r
}

/// (c) artificial upward level shifts: temporary (< Ts) and permanent.
pub fn run_upward_shifts(opt: ExpOptions) -> Report {
    let mut r = Report::new(
        "fig11c",
        "Figure 11(c) — +0.9 ms upward shifts (fwd only), temporary & permanent",
    );
    let poll = 64.0;
    // Ts = τ̄/2 = 2500 s; temporary shift of 1500 s < Ts
    let temp_start = 1.5 * DAY;
    let perm_start = 2.5 * DAY;
    let sc = Scenario::baseline(opt.seed)
        .with_poll_period(poll)
        .with_duration(4.5 * DAY)
        .with_shift(LevelShift::forward_only(
            temp_start,
            Some(temp_start + 1500.0),
            0.9e-3,
        ))
        .with_shift(LevelShift::forward_only(perm_start, None, 0.9e-3));
    let run = run_clock(&sc, cfg_for(&sc));
    let before = med_err(&run, temp_start - DAY, temp_start);
    let during_temp = med_err(&run, temp_start, temp_start + 1500.0);
    let settled = med_err(&run, perm_start + 6000.0, perm_start + DAY);
    let detected = run
        .packets
        .iter()
        .find(|p| p.shift_fired && p.t > perm_start)
        .map(|p| p.t - perm_start);
    r.line(format!("median error before shifts:     {}", fmt_time(before)));
    r.line(format!("during temporary shift:         {}", fmt_time(during_temp)));
    r.line(format!(
        "permanent shift detected after:  {}",
        detected.map(fmt_time).unwrap_or_else(|| "never".into())
    ));
    r.line(format!("median error after settling:    {}", fmt_time(settled)));
    r.line("Paper: temporary shift (< Ts) never detected, little impact; the");
    r.line("permanent one is detected ~Ts later; most of the residual jump is the");
    r.line("true Delta change of 0.9/2 = 0.45 ms, not an estimation error.");
    r.metric("temp_excess_us", (during_temp - before).abs() * 1e6);
    r.metric(
        "detection_delay_s",
        detected.unwrap_or(f64::NAN),
    );
    r.metric("settled_jump_us", (settled - before).abs() * 1e6);
    r
}

/// (d) natural downward shift: −0.36 ms, symmetric.
pub fn run_downward_shift(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig11d", "Figure 11(d) — −0.36 ms symmetric downward shift");
    let shift_at = 2.0 * DAY;
    let sc = Scenario::baseline(opt.seed)
        .with_server(tsc_netsim::ServerKind::Ext)
        .with_poll_period(64.0)
        .with_duration(4.0 * DAY)
        .with_shift(LevelShift::symmetric(shift_at, -0.36e-3));
    let run = run_clock(&sc, cfg_for(&sc));
    let before = med_err(&run, DAY, shift_at);
    let after = med_err(&run, shift_at + 3600.0, 4.0 * DAY);
    r.line(format!("median error before shift:      {}", fmt_time(before)));
    r.line(format!("median error after shift:       {}", fmt_time(after)));
    r.line("Paper: downward + symmetric => detection/reaction immediate, Delta");
    r.line("unchanged, \"the shift is absorbed with no impact on estimates\".");
    r.metric("jump_us", (after - before).abs() * 1e6);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt() -> ExpOptions {
        ExpOptions {
            seed: 41,
            full: false,
        }
    }

    #[test]
    fn outage_recovery_is_prompt() {
        let r = run_outage(opt());
        assert!(
            r.get("recovery_excess_us").unwrap() < 300.0,
            "post-gap error must recover to ~pre-gap level"
        );
    }

    #[test]
    fn server_fault_damage_is_bounded() {
        let r = run_server_fault(opt());
        assert!(
            r.get("sanity_triggers").unwrap() >= 1.0,
            "sanity check must fire"
        );
        assert!(
            r.get("worst_deviation_ms").unwrap() < 2.0,
            "damage must be ≲1 ms, not 150 ms"
        );
        assert!(
            r.get("after_minus_before_us").unwrap() < 100.0,
            "estimate must recover after the fault"
        );
    }

    #[test]
    fn upward_shifts_behave_as_figure11c() {
        let r = run_upward_shifts(opt());
        // temporary shift: impact well below the 0.9 ms shift size
        assert!(
            r.get("temp_excess_us").unwrap() < 450.0,
            "temporary shift impact should be partial/limited"
        );
        // permanent shift: detected within ~2·Ts
        let delay = r.get("detection_delay_s").unwrap();
        assert!(
            delay.is_finite() && delay < 3.0 * 2500.0,
            "permanent shift must be detected within a few Ts: {delay}"
        );
        // settled jump ≈ Δ/2 = 450 µs (±250)
        let jump = r.get("settled_jump_us").unwrap();
        assert!(
            (jump - 450.0).abs() < 300.0,
            "settled jump should reflect the Delta/2 change: {jump}"
        );
    }

    #[test]
    fn downward_shift_is_invisible() {
        let r = run_downward_shift(opt());
        assert!(
            r.get("jump_us").unwrap() < 150.0,
            "downward symmetric shift must not disturb estimates"
        );
    }
}
