//! Figure 7: relative error of the robust rate estimates for
//! E* = 20δ (0.3 ms) and E* = 5δ (0.075 ms).
//!
//! The paper's headline rate result: for both thresholds the errors
//! "rapidly fall below the desired bound of 0.1 PPM and do not return",
//! tracking the expected bound `2E*/Δ(t)` — and the scheme is insensitive
//! to E* even though the acceptance fraction changes drastically (72% vs
//! 3.9% of packets).

use crate::fmt::{table, Report};
use crate::runner::{reference_rate, to_raw};
use crate::ExpOptions;
use tsc_netsim::Scenario;
use tscclock::{GlobalRate, History};

/// One threshold's trajectory: relative errors sampled at marks.
fn trajectory(
    sc: &Scenario,
    e_star: f64,
    marks_days: &[f64],
) -> (Vec<(f64, f64, f64)>, f64) {
    let exchanges: Vec<_> = sc.run().into_iter().filter(|e| !e.lost).collect();
    let mut rate = GlobalRate::new(e_star, 16);
    let mut hist = History::new(200_000);
    let first = &exchanges[0];
    let mut out = Vec::new();
    let mut accepted = 0usize;
    let mut mark = 0usize;
    for e in &exchanges {
        hist.push(to_raw(e), 0.0);
        let rec = hist.last().unwrap();
        let ev = rate.process(&hist, &rec);
        if ev == tscclock::RateEvent::Updated {
            accepted += 1;
        }
        if mark < marks_days.len() && e.poll_time >= marks_days[mark] * 86_400.0 {
            if let Some(p) = rate.p_hat() {
                let p_ref = reference_rate(first.tf_tsc, first.tg, e.tf_tsc, e.tg)
                    .expect("reference rate");
                let rel = ((p - p_ref) / p_ref).abs();
                let bound = 2.0 * e_star / (e.poll_time - first.poll_time);
                out.push((marks_days[mark], rel, bound));
            }
            mark += 1;
        }
    }
    (out, accepted as f64 / exchanges.len() as f64)
}

/// Runs both E* settings over one day.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig7", "Figure 7 — robust rate error for E* = 20d and 5d");
    // one day in both modes, exactly as the paper's Figure 7 trace
    let _ = opt.full;
    let sc = Scenario::baseline(opt.seed).with_duration(86_400.0);
    let marks = [0.003, 0.01, 0.03, 0.1, 0.3, 0.9];
    let delta = 15e-6;
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for (label, e_star) in [("20d", 20.0 * delta), ("5d", 5.0 * delta)] {
        let (traj, frac) = trajectory(&sc, e_star, &marks);
        for &(d, rel, bound) in &traj {
            rows.push(vec![
                label.to_string(),
                format!("{d:.3}"),
                format!("{:.5}", rel * 1e6),
                format!("{:.5}", bound * 1e6),
            ]);
        }
        let last = traj.last().map(|&(_, rel, _)| rel).unwrap_or(f64::NAN);
        metrics.push((format!("final_rel_ppm_{label}"), last * 1e6));
        metrics.push((format!("accept_frac_{label}"), frac));
    }
    r.line(table(
        &["E*", "T_e [day]", "|rel err| [PPM]", "bound 2E*/dt [PPM]"],
        &rows,
    ));
    r.line("Paper: both settings fall below 0.1 PPM and stay; acceptance");
    r.line("fractions were 72% (20d) and 3.9% (5d) on their trace.");
    for (k, v) in metrics {
        r.metric(k, v);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_fall_below_01_ppm_for_both_thresholds() {
        let r = run(ExpOptions {
            seed: 23,
            full: false,
        });
        for label in ["20d", "5d"] {
            let rel = r.get(&format!("final_rel_ppm_{label}")).unwrap();
            assert!(
                rel < 0.1,
                "E*={label}: final error {rel} PPM must be < 0.1 PPM"
            );
        }
        // the tighter threshold accepts far fewer packets
        let f20 = r.get("accept_frac_20d").unwrap();
        let f5 = r.get("accept_frac_5d").unwrap();
        assert!(f20 > 2.0 * f5, "acceptance ordering: {f20} vs {f5}");
        assert!(f20 > 0.3, "20d should accept a large fraction: {f20}");
    }
}
