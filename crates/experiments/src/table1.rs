//! Table 1: absolute errors at key error rates and intervals.

use crate::fmt::{fmt_time, table, Report};
use tscclock::units;

/// Reproduces Table 1 analytically (it is a unit-conversion table).
pub fn run() -> Report {
    let mut r = Report::new("table1", "Table 1 — absolute errors at key error rates/intervals");
    let rows: Vec<Vec<String>> = units::table1()
        .iter()
        .map(|row| {
            vec![
                row.name.to_string(),
                fmt_time(row.duration),
                fmt_time(row.err_at_002),
                fmt_time(row.err_at_01),
            ]
        })
        .collect();
    r.line(table(
        &["Significant Time Interval", "Duration", "err @0.02PPM", "err @0.1PPM"],
        &rows,
    ));
    let t = units::table1();
    r.metric("skm_err_at_002_us", t[3].err_at_002 * 1e6);
    r.metric("skm_err_at_01_us", t[3].err_at_01 * 1e6);
    r.metric("daily_err_at_01_ms", t[4].err_at_01 * 1e3);
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_paper_bold_cells() {
        let r = super::run();
        assert!((r.get("skm_err_at_002_us").unwrap() - 20.0).abs() < 1e-9);
        assert!((r.get("skm_err_at_01_us").unwrap() - 100.0).abs() < 1e-9);
        assert!((r.get("daily_err_at_01_ms").unwrap() - 8.64).abs() < 1e-9);
        assert!(r.body.contains("Weekly"));
    }
}
