//! Figure 6: naive per-packet offset estimates θ̂ᵢ vs reference.
//!
//! "Errors due to network delay are readily apparent, but are more
//! significant than in the naive rate estimate case because they are not
//! damped by a large Δ(t) baseline. A histogram of the deviations ... is
//! essentially identical to a histogram of (q← − q→)/2, and is biased
//! towards negative values ... because the forward path is more heavily
//! utilised than the backward one."

use crate::fmt::{fmt_time, table, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::Scenario;
use tsc_stats::{percentile, Percentiles};
use tscclock::ClockConfig;

/// Runs one day and compares the naive offsets to the reference.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig6", "Figure 6 — naive per-packet offset estimates vs reference");
    let _ = opt.full;
    let sc = Scenario::baseline(opt.seed).with_duration(86_400.0);
    let run = run_clock(&sc, ClockConfig::paper_defaults(sc.poll_period));
    let skip = 200; // discard rate warm-up so p̂ error doesn't dominate
    let naive = run.naive_errors(skip);
    let p = Percentiles::from_data(&naive).expect("data");
    let med = percentile(&naive, 50.0).unwrap();
    r.line(table(
        &["p1", "p25", "median", "p75", "p99"],
        &[vec![
            fmt_time(p.p01),
            fmt_time(p.p25),
            fmt_time(p.p50),
            fmt_time(p.p75),
            fmt_time(p.p99),
        ]],
    ));
    // the asymmetric-congestion bias: forward queueing pulls the naive
    // estimate negative, i.e. (Ca_naive − Tg) = θg − θ̂ᵢ goes positive;
    // report the *offset-estimate* bias the paper plots (θ̂ᵢ − θg).
    let bias_theta = -med;
    r.line(format!(
        "naive offset-estimate bias (median of theta_i - theta_ref): {}",
        fmt_time(bias_theta)
    ));
    r.line("Paper: deviations mirror (q<- - q->)/2, biased negative because the");
    r.line("forward path is the more heavily utilised one.");
    r.metric("naive_bias_us", bias_theta * 1e6);
    r.metric("naive_iqr_us", p.iqr() * 1e6);
    r.metric("naive_p99_spread_us", p.spread_98() * 1e6);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_offsets_are_biased_and_noisy() {
        let r = run(ExpOptions {
            seed: 19,
            full: false,
        });
        // bias negative (forward path busier), tens of µs or more
        let bias = r.get("naive_bias_us").unwrap();
        assert!(bias < -5.0, "expected negative bias, got {bias} µs");
        // spread far larger than the filtered clock achieves (~50 µs)
        assert!(
            r.get("naive_p99_spread_us").unwrap() > 200.0,
            "naive spread should be large"
        );
    }
}
