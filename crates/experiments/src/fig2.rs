//! Figure 2: offset drift of the uncorrected clock in two temperature
//! environments, over 1000 s (left) and ~a week (right).
//!
//! The paper detrends with a constant `p̂` that forces first and last
//! offsets to zero, then checks that the residual always falls inside the
//! ±0.1 PPM cone. We reproduce both panels as summary series.

use crate::fmt::{fmt_time, table, Report};
use crate::ExpOptions;
use tsc_osc::Environment;
use tsc_stats::regression::detrend_endpoints;

/// Samples the oscillator offset (vs truth) every `step` seconds.
fn offset_trace(env: Environment, seed: u64, step: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut osc = env.build(seed);
    let ts: Vec<f64> = (0..n).map(|i| i as f64 * step).collect();
    let xs: Vec<f64> = ts.iter().map(|&t| osc.advance_to(t)).collect();
    (ts, xs)
}

/// Runs both panels for laboratory and machine-room.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new(
        "fig2",
        "Figure 2 — offset variations theta(t) of C(t), lab vs machine-room",
    );
    let days = if opt.full { 7.0 } else { 5.0 };
    let mut rows = Vec::new();
    for env in [Environment::Laboratory, Environment::MachineRoom] {
        // Left panel: 1000 s at 1 s sampling.
        let (ts, xs) = offset_trace(env, opt.seed, 1.0, 1000);
        let resid = detrend_endpoints(&ts, &xs).expect("non-degenerate");
        let max_small = resid.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        // Right panel: a week at 64 s sampling.
        let n = (days * 86_400.0 / 64.0) as usize;
        let (ts, xs) = offset_trace(env, opt.seed + 1, 64.0, n);
        let resid = detrend_endpoints(&ts, &xs).expect("non-degenerate");
        let max_large = resid.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        // The ±0.1 PPM cone at the trace end.
        let cone_small = 1e-7 * 1000.0;
        let cone_large = 1e-7 * days * 86_400.0;
        rows.push(vec![
            env.name().to_string(),
            fmt_time(max_small),
            fmt_time(cone_small),
            fmt_time(max_large),
            fmt_time(cone_large),
        ]);
        let tag = env.name().replace('-', "_");
        r.metrics
            .push((format!("{tag}_max_resid_1000s_us"), max_small * 1e6));
        r.metrics
            .push((format!("{tag}_max_resid_week_ms"), max_large * 1e3));
        r.metrics
            .push((format!("{tag}_cone_ratio_week"), max_large / cone_large));
    }
    r.line(table(
        &["environment", "max|resid| 1000s", "cone 1000s", "max|resid| week", "cone week"],
        &rows,
    ));
    r.line("Paper: residuals stay within the 0.1 PPM cone at all scales;");
    r.line("lab drifts more than machine-room at day scales (right panel).");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residuals_inside_cone() {
        let r = run(ExpOptions {
            seed: 3,
            full: false,
        });
        for env in ["laboratory", "machine_room"] {
            let ratio = r.get(&format!("{env}_cone_ratio_week")).unwrap();
            assert!(
                ratio < 1.0,
                "{env}: weekly residual exceeded the 0.1 PPM cone ({ratio})"
            );
        }
        // paper's right panel: offsets reach the multi-ms range over a week
        let lab = r.get("laboratory_max_resid_week_ms").unwrap();
        assert!(lab > 0.3, "lab weekly drift should be ≳ ms: {lab}");
    }
}
