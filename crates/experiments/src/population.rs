//! Extension X4: fleet survival report — a heterogeneous lifecycle
//! population under outage, churn, and the thundering-herd ablation.
//!
//! Replays a fleet of lifecycle clients ([`tsc_fleet::LifecycleClient`])
//! whose access paths are drawn from the consumer [`ProfileMix`]
//! (datacenter / DSL / Wi-Fi / mobile / satellite), with a mid-run server
//! outage, late joiners and early leavers. Reports, per profile:
//!
//! * median / p99 absolute clock error at accepted exchanges,
//! * fleet time-in-state fractions (the lifecycle diagram as numbers),
//! * the herd ablation: peak post-outage request rate under naive
//!   fixed-interval retry vs jittered exponential backoff.
//!
//! Everything derives from the committed seed (`ExpOptions::seed`,
//! default 42): rerunning `repro population` reproduces every number.

use crate::fmt::{table, Report};
use crate::ExpOptions;
use tsc_fleet::{
    compare_herd, replay_population, ChurnPlan, PopulationConfig, WorkerPool, STATE_COUNT,
};
use tsc_netsim::{ProfileMix, Scenario, ALL_PROFILES};
use tsc_stats::Percentiles;
use tscclock::ClockConfig;

/// State names in `ClientState as usize` order.
const STATE_NAMES: [&str; STATE_COUNT] = ["Unsynced", "Syncing", "Synced", "Degraded", "Failed"];

/// Runs the population replay and the herd ablation.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new(
        "population",
        "X4 — fleet survival: per-profile accuracy, lifecycle occupancy, thundering herd",
    );
    let hours = if opt.full { 12.0 } else { 4.0 };
    let clients = if opt.full { 128 } else { 48 };
    let duration = hours * 3600.0;
    let outage = (duration * 0.5, duration * 0.5 + 600.0);

    let scenario = Scenario::baseline(opt.seed)
        .with_poll_period(16.0)
        .with_duration(duration)
        .with_outage(outage.0, outage.1);
    let mut cfg = PopulationConfig::new(
        clients,
        opt.seed,
        scenario,
        ClockConfig::paper_defaults(16.0),
    );
    cfg.mix = ProfileMix::consumer();
    cfg.churn = ChurnPlan {
        join_frac: 0.25,
        join_window: (duration * 0.05, duration * 0.25),
        leave_frac: 0.15,
        leave_window: (duration * 0.75, duration * 0.95),
    };

    r.line(format!(
        "{clients} lifecycle clients, consumer profile mix, poll 16 s, {hours} h; \
         server outage {:.0}–{:.0} min; 25% late joiners, 15% leavers",
        outage.0 / 60.0,
        outage.1 / 60.0
    ));
    r.line("");

    let mut pool = WorkerPool::new(4);
    let summary = replay_population(&mut pool, &cfg);

    // --- per-profile accuracy ---------------------------------------
    r.line("per-profile absolute clock error at accepted exchanges:");
    let mut rows = Vec::new();
    for profile in ALL_PROFILES {
        let errs = summary.profile_errors(profile);
        let n = summary
            .clients
            .iter()
            .filter(|c| c.profile == profile)
            .count();
        if errs.is_empty() {
            rows.push(vec![
                format!("{profile:?}"),
                n.to_string(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let p = Percentiles::from_data(&errs).expect("data");
        rows.push(vec![
            format!("{profile:?}"),
            n.to_string(),
            format!("{:.1}", p.p50 * 1e6),
            format!("{:.1}", p.p99 * 1e6),
        ]);
        let key = format!("{profile:?}").to_lowercase();
        r.metrics.push((format!("{key}_median_us"), p.p50 * 1e6));
        r.metrics.push((format!("{key}_p99_us"), p.p99 * 1e6));
    }
    r.body
        .push_str(&table(&["profile", "clients", "median µs", "p99 µs"], &rows));
    r.line("");

    // --- lifecycle occupancy ----------------------------------------
    let tis = summary.time_in_state();
    let total: f64 = tis.iter().sum();
    r.line("fleet time-in-state:");
    let rows: Vec<Vec<String>> = STATE_NAMES
        .iter()
        .zip(tis)
        .map(|(name, s)| {
            vec![
                name.to_string(),
                format!("{:.1}", s / 3600.0),
                format!("{:.2}", 100.0 * s / total),
            ]
        })
        .collect();
    r.body.push_str(&table(&["state", "hours", "%"], &rows));
    for (name, s) in STATE_NAMES.iter().zip(tis) {
        r.metrics
            .push((format!("{}_frac", name.to_lowercase()), s / total));
    }
    r.line("");

    // --- the herd ablation ------------------------------------------
    let herd = compare_herd(&mut pool, &cfg, 16.0);
    r.line(format!(
        "thundering herd, post-outage window {:.0}–{:.0} min (bucket {:.0} s):",
        herd.window.0 / 60.0,
        herd.window.1 / 60.0,
        summary.bucket_width
    ));
    r.line(format!(
        "  naive fixed-retry peak    {:>5} req/bucket",
        herd.naive_peak
    ));
    r.line(format!(
        "  jittered backoff peak     {:>5} req/bucket",
        herd.jittered_peak
    ));
    r.metric("herd_naive_peak", herd.naive_peak as f64);
    r.metric("herd_jittered_peak", herd.jittered_peak as f64);
    r.metric("herd_suppression_ratio", herd.ratio());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_order_by_path_and_herd_is_suppressed() {
        let rep = run(ExpOptions::default());
        // accuracy tracks the access path: datacenter beats satellite
        let dc = rep.get("datacenter_median_us").unwrap();
        let sat = rep.get("satellite_median_us").unwrap();
        assert!(dc < sat, "datacenter {dc} µs !< satellite {sat} µs");
        // the fleet spends most of its life healthy
        let synced = rep.get("synced_frac").unwrap();
        assert!(synced > 0.5, "synced fraction {synced}");
        let occupancy: f64 = ["unsynced", "syncing", "synced", "degraded", "failed"]
            .iter()
            .map(|s| rep.get(&format!("{s}_frac")).unwrap())
            .sum();
        assert!((occupancy - 1.0).abs() < 1e-9);
        // acceptance bar: jittered backoff caps the herd ≥3×
        let ratio = rep.get("herd_suppression_ratio").unwrap();
        assert!(ratio >= 3.0, "herd suppression ratio {ratio}");
    }

    #[test]
    fn report_is_reproducible_from_the_committed_seed() {
        let a = run(ExpOptions::default()).render();
        let b = run(ExpOptions::default()).render();
        assert_eq!(a, b);
    }
}
