//! Figure 10: performance over four host–server environments
//! (Lab–Int, MR–Int, MR–Loc, MR–Ext) at a 64 s polling period.
//!
//! The paper's reading: variability shrinks from laboratory to
//! machine-room, improves again with the closer local server, and the
//! distant ServerExt *shifts the median* (by ≈ Δ/2 due to its much larger
//! path asymmetry) and widens the spread (quality packets rarer over 10
//! hops) — while remaining far below its 14.2 ms RTT.

use crate::fmt::{table, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::{Scenario, ServerKind};
use tsc_osc::Environment;
use tsc_stats::Percentiles;
use tscclock::ClockConfig;

/// Runs the four environments.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig10", "Figure 10 — four host-server environments (poll 64 s)");
    let days = if opt.full { 14.0 } else { 5.0 };
    let configs = [
        ("Lab-Int", Environment::Laboratory, ServerKind::Int),
        ("MR-Int", Environment::MachineRoom, ServerKind::Int),
        ("MR-Loc", Environment::MachineRoom, ServerKind::Loc),
        ("MR-Ext", Environment::MachineRoom, ServerKind::Ext),
    ];
    let mut rows = Vec::new();
    for (i, &(name, env, srv)) in configs.iter().enumerate() {
        let sc = Scenario::baseline(opt.seed + i as u64)
            .with_environment(env)
            .with_server(srv)
            .with_poll_period(64.0)
            .with_duration(days * 86_400.0);
        let mut cfg = ClockConfig::paper_defaults(64.0);
        cfg.tau_prime = cfg.tau_star; // paper: τ′ = τ*, E = 4δ, τ̄ = 5τ*
        let run = run_clock(&sc, cfg);
        let skip = (run.packets.len() / 5).min(600);
        let errs = run.abs_errors(skip);
        let p = Percentiles::from_data(&errs).expect("data");
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", p.p01 * 1e6),
            format!("{:.1}", p.p25 * 1e6),
            format!("{:.1}", p.p50 * 1e6),
            format!("{:.1}", p.p75 * 1e6),
            format!("{:.1}", p.p99 * 1e6),
            format!("{:.1}", p.iqr() * 1e6),
        ]);
        let tag = name.to_lowercase().replace('-', "_");
        r.metrics.push((format!("{tag}_median_us"), p.p50 * 1e6));
        r.metrics.push((format!("{tag}_iqr_us"), p.iqr() * 1e6));
    }
    r.line(table(
        &["env", "p1[us]", "p25[us]", "p50[us]", "p75[us]", "p99[us]", "IQR[us]"],
        &rows,
    ));
    r.line("Paper: Lab > MR variability; MR-Loc tightest; MR-Ext median shifted");
    r.line("by ~Delta/2 (250 us) with wider spread — yet << its 14.2 ms RTT.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_ordering_matches_figure10() {
        let r = run(ExpOptions {
            seed: 37,
            full: false,
        });
        let ext_med = r.get("mr_ext_median_us").unwrap().abs();
        let int_med = r.get("mr_int_median_us").unwrap().abs();
        let loc_iqr = r.get("mr_loc_iqr_us").unwrap();
        let ext_iqr = r.get("mr_ext_iqr_us").unwrap();
        // ServerExt: median shifted by ~Δ/2 = 250 µs
        assert!(
            ext_med > 120.0 && ext_med < 500.0,
            "Ext median should sit near Delta/2: {ext_med}"
        );
        assert!(
            ext_med > 3.0 * int_med.max(10.0) || ext_med > 100.0,
            "Ext median must exceed Int's: {ext_med} vs {int_med}"
        );
        // spread widens for the distant server
        assert!(
            ext_iqr > loc_iqr,
            "Ext IQR {ext_iqr} should exceed Loc IQR {loc_iqr}"
        );
        // all environments remain ≪ RTT (14.2 ms)
        assert!(ext_med < 1000.0, "Ext error must be << its RTT");
    }
}
