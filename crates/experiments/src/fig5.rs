//! Figure 5: naive per-packet rate estimates vs reference, with a steadily
//! increasing baseline Δ(TSC).
//!
//! The i-th estimate compares packet i against packet 1 (equation (17),
//! backward path), normalised against the long-term rate. The bulk of the
//! estimates falls within 0.1 PPM as 1/Δ(t) damping kicks in, but
//! congested packets still produce large errors at any baseline — the
//! motivation for quality gating.

use crate::fmt::{table, Report};
use crate::ExpOptions;
use tsc_netsim::Scenario;
use tscclock::naive::naive_rate_backward;
use tscclock::RawExchange;

/// Runs one day of 16 s polls and evaluates the naive estimator.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig5", "Figure 5 — naive per-packet rate estimates vs reference");
    let _ = opt.full; // one day in both modes, as in the paper
    let sc = Scenario::baseline(opt.seed).with_duration(86_400.0);
    let exchanges: Vec<_> = sc.run().into_iter().filter(|e| !e.lost).collect();
    let first = &exchanges[0];
    let j = RawExchange {
        ta_tsc: first.ta_tsc,
        tb: first.tb,
        te: first.te,
        tf_tsc: first.tf_tsc,
    };
    // long-term reference rate from the DAG over the whole trace
    let last = exchanges.last().expect("non-empty");
    let p_ref = crate::runner::reference_rate(first.tf_tsc, first.tg, last.tf_tsc, last.tg)
        .expect("valid reference");

    let mut series = Vec::new(); // (t_days, rel_err)
    for e in exchanges.iter().skip(1) {
        let i = RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        };
        if let Some(p) = naive_rate_backward(&j, &i) {
            series.push((e.poll_time / 86_400.0, (p - p_ref) / p_ref));
        }
    }
    // Summaries over bands of elapsed baseline.
    let mut rows = Vec::new();
    let bands = [
        (0.0, 0.01),
        (0.01, 0.05),
        (0.05, 0.2),
        (0.2, 0.5),
        (0.5, 1.0),
    ];
    let mut in_band_frac_last = 0.0;
    let mut worst_late: f64 = 0.0;
    for &(lo, hi) in &bands {
        let vals: Vec<f64> = series
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            continue;
        }
        let frac_within =
            vals.iter().filter(|v| v.abs() < 1e-7).count() as f64 / vals.len() as f64;
        let worst = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if hi == 1.0 {
            in_band_frac_last = frac_within;
            worst_late = worst;
        }
        rows.push(vec![
            format!("{lo:.2}-{hi:.2}"),
            format!("{}", vals.len()),
            format!("{:.1}%", frac_within * 100.0),
            format!("{:.4}", worst * 1e6),
        ]);
    }
    r.line(table(
        &["T_e band [day]", "n", "within 0.1PPM", "worst |err| [PPM]"],
        &rows,
    ));
    r.line("Paper: bulk of estimates fall within 0.1 PPM quickly, but heavily-");
    r.line("delayed packets remain poor at any baseline (unbounded errors).");
    r.metric("frac_within_01ppm_late", in_band_frac_last);
    r.metric("worst_late_ppm", worst_late * 1e6);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_converges_but_outliers_remain() {
        let r = run(ExpOptions {
            seed: 17,
            full: false,
        });
        // by late in the day most naive estimates sit within 0.1 PPM…
        assert!(
            r.get("frac_within_01ppm_late").unwrap() > 0.8,
            "bulk should be within 0.1 PPM"
        );
        // …yet worst-case errors are NOT controlled (can exceed 0.1 PPM)
        assert!(
            r.get("worst_late_ppm").unwrap() > 0.05,
            "congested packets should still produce visible errors"
        );
    }
}
