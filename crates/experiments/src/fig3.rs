//! Figure 3: Allan-deviation plots of the host oscillator in four
//! host–server environments.
//!
//! The paper computes the offsets from (side-mode corrected) `Tf`
//! timestamps against the DAG reference, then plots the Allan deviation
//! over τ from ~16 s to 10⁵ s: a 1/τ slope at small scales (timestamping
//! white noise), a minimum of order 0.01 PPM near τ* = 1000 s, and a
//! bounded (< 0.1 PPM) rise at day scales.

use crate::fmt::{table, Report};
use crate::ExpOptions;
use tsc_netsim::{Scenario, ServerKind};
use tsc_osc::Environment;
use tsc_refmon::sidemode::correct_side_modes_drifting;
use tsc_stats::allan::allan_sweep;

/// One environment's sweep: (label, Vec<(tau, adev)>).
fn sweep(env: Environment, server: ServerKind, seed: u64, days: f64) -> (String, Vec<(f64, f64)>) {
    let sc = Scenario::baseline(seed)
        .with_environment(env)
        .with_server(server)
        .with_poll_period(16.0)
        .with_duration(days * 86_400.0);
    // phase = host clock error sampled at packet arrivals: Tf·p̄ − Tg,
    // with p̄ the endpoint-detrending rate the paper uses in §3.1 (it
    // "forces the first and last offset values to be the same").
    let mut tf_counts = Vec::new();
    let mut tg = Vec::new();
    for e in sc.build() {
        if e.lost {
            continue;
        }
        tf_counts.push(e.tf_tsc as f64);
        tg.push(e.tg);
    }
    let p_bar = (tg[tg.len() - 1] - tg[0]) / (tf_counts[tf_counts.len() - 1] - tf_counts[0]);
    let tf_secs: Vec<f64> = tf_counts.iter().map(|&c| c * p_bar).collect();
    // §2.4/§3.1: corrected Tf timestamps (side modes removed) are essential
    // at small scales.
    let (tf_corr, _report) = correct_side_modes_drifting(&tf_secs, &tg, 101);
    let phase: Vec<f64> = tf_corr.iter().zip(&tg).map(|(f, g)| f - g).collect();
    let sweep = allan_sweep(&phase, 16.0, 2);
    (
        format!("{}-{}", env.name(), server.name()),
        sweep.iter().map(|p| (p.tau, p.adev)).collect(),
    )
}

/// Runs the four environment sweeps of Figure 3.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig3", "Figure 3 — Allan deviation of y_tau, four environments");
    let days = if opt.full { 14.0 } else { 4.0 };
    let configs = [
        (Environment::Laboratory, ServerKind::Int),
        (Environment::MachineRoom, ServerKind::Int),
        (Environment::MachineRoom, ServerKind::Loc),
        (Environment::MachineRoom, ServerKind::Ext),
    ];
    let sweeps: Vec<(String, Vec<(f64, f64)>)> = configs
        .iter()
        .enumerate()
        .map(|(i, &(env, srv))| sweep(env, srv, opt.seed + i as u64, days))
        .collect();

    // Render at common taus.
    let taus: Vec<f64> = sweeps[0].1.iter().map(|&(t, _)| t).collect();
    let mut rows = Vec::new();
    for (ti, &tau) in taus.iter().enumerate() {
        let mut row = vec![format!("{tau:.0}")];
        for (_, sw) in &sweeps {
            row.push(
                sw.get(ti)
                    .map(|&(_, a)| format!("{:.3}", a * 1e6))
                    .unwrap_or_default(),
            );
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("tau[s]")
        .chain(sweeps.iter().map(|(n, _)| n.as_str()))
        .collect();
    r.line(table(&headers, &rows));
    r.line("(values in PPM; paper: 1/tau slope, minimum ~0.01 PPM near tau*=1000 s,");
    r.line(" all curves below 0.1 PPM at large scales)");

    // Key shape metrics from the machine-room/Int sweep.
    let mr = &sweeps[1].1;
    let at = |target: f64| {
        mr.iter()
            .min_by(|a, b| {
                (a.0 - target)
                    .abs()
                    .partial_cmp(&(b.0 - target).abs())
                    .expect("finite")
            })
            .map(|&(_, a)| a)
            .unwrap_or(f64::NAN)
    };
    let small = at(32.0);
    let near_star = at(1000.0);
    let large = mr
        .iter()
        .filter(|&&(t, _)| t > 20_000.0)
        .map(|&(_, a)| a)
        .fold(0.0f64, f64::max);
    r.metric("adev_at_32s_ppm", small * 1e6);
    r.metric("adev_at_1000s_ppm", near_star * 1e6);
    r.metric("adev_max_large_ppm", large * 1e6);
    r.metric("slope_ratio_32_to_1000", small / near_star);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure3() {
        let r = run(ExpOptions {
            seed: 11,
            full: false,
        });
        let small = r.get("adev_at_32s_ppm").unwrap();
        let near_star = r.get("adev_at_1000s_ppm").unwrap();
        let large = r.get("adev_max_large_ppm").unwrap();
        // 1/τ decrease from small scales to the SKM scale
        assert!(
            small > 3.0 * near_star,
            "expected 1/tau fall: {small} vs {near_star}"
        );
        // minimum of order 0.01 PPM near τ*
        assert!(
            near_star > 0.001 && near_star < 0.08,
            "ADEV(1000s) = {near_star} PPM out of band"
        );
        // bounded by ~0.1 PPM at large scales, but above the minimum
        assert!(large < 0.15, "large-scale ADEV {large} PPM exceeds bound");
        assert!(large > near_star * 0.8, "curves should rise at large tau");
    }
}
