//! Figure 4: backward network delay and server delay time series
//! (1000 successive ServerLoc packets).
//!
//! The paper's observation: both series look like a deterministic minimum
//! plus positive noise; the server's minimum and mean are in the
//! *microsecond* range while the network's are in the *millisecond* range
//! (for this short route, sub-ms minimum with ms-scale congestion).

use crate::fmt::{fmt_time, table, Report};
use crate::ExpOptions;
use tsc_netsim::{Scenario, ServerKind};
use tsc_stats::{percentile, RunningStats};

/// Runs the 1000-packet ServerLoc observation.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig4", "Figure 4 — backward network delay and server delay series");
    let n = if opt.full { 4000 } else { 1000 };
    let sc = Scenario::baseline(opt.seed)
        .with_server(ServerKind::Loc)
        .with_poll_period(16.0)
        .with_duration(n as f64 * 16.0 + 32.0);
    let mut d_back = Vec::new();
    let mut d_srv = Vec::new();
    for e in sc.build().take(n) {
        if e.lost {
            continue;
        }
        // measured exactly as the paper does: d← = Tg − Te, d↑ = Te − Tb
        d_back.push(e.tg - e.te);
        d_srv.push(e.te - e.tb);
    }
    let mut rows = Vec::new();
    for (name, series) in [("backward d<-", &d_back), ("server d^", &d_srv)] {
        let st: RunningStats = series.iter().copied().collect();
        rows.push(vec![
            name.to_string(),
            fmt_time(st.min()),
            fmt_time(percentile(series, 50.0).unwrap()),
            fmt_time(st.mean()),
            fmt_time(percentile(series, 99.0).unwrap()),
            fmt_time(st.max()),
        ]);
    }
    r.line(table(&["series", "min", "median", "mean", "p99", "max"], &rows));
    r.line("Paper: server delay minima/means are µs-scale; network delays are");
    r.line("larger with ms-scale congestion excursions.");
    let sb: RunningStats = d_back.iter().copied().collect();
    let ss: RunningStats = d_srv.iter().copied().collect();
    // the raw minima can be *negative*: §4.2 observes reference backward
    // delays {Tg − Te} with outliers where Te > te by up to 1 ms — robust
    // floors use the 5th percentile instead
    r.metric("net_min_us", sb.min() * 1e6);
    r.metric("srv_min_us", ss.min() * 1e6);
    r.metric("net_floor_us", percentile(&d_back, 5.0).unwrap() * 1e6);
    r.metric("srv_floor_us", percentile(&d_srv, 5.0).unwrap() * 1e6);
    r.metric("net_mean_us", sb.mean() * 1e6);
    r.metric("srv_mean_us", ss.mean() * 1e6);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_delay_is_smaller_scale_than_network() {
        let r = run(ExpOptions {
            seed: 13,
            full: false,
        });
        let net_floor = r.get("net_floor_us").unwrap();
        let srv_floor = r.get("srv_floor_us").unwrap();
        let srv_mean = r.get("srv_mean_us").unwrap();
        // network floor ≈ the ServerLoc backward minimum (~0.16 ms)
        assert!(net_floor > 100.0 && net_floor < 300.0, "net floor {net_floor}");
        // server: tens of µs
        assert!(srv_floor > 5.0 && srv_floor < 60.0, "srv floor {srv_floor}");
        assert!(srv_mean < 150.0, "srv mean {srv_mean}");
        assert!(net_floor > 3.0 * srv_floor);
    }
}
