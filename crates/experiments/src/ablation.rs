//! Extension X2: ablation of the offset-filtering components.
//!
//! Quantifies what each ingredient of §5.3 buys, on a congested trace:
//!
//! 1. **naive** — per-packet θ̂ᵢ used directly (equation (19));
//! 2. **no-aging** — weighted filtering with ε = 0 (point errors never age);
//! 3. **full** — the paper's configuration;
//! 4. **full+local** — with the local-rate refinement (equation (21)).

use crate::fmt::{table, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::Scenario;
use tsc_stats::Percentiles;
use tscclock::ClockConfig;

/// Runs the four variants.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("ablation", "X2 — ablation of the offset filtering components");
    let days = if opt.full { 10.0 } else { 4.0 };
    let sc = Scenario::baseline(opt.seed).with_duration(days * 86_400.0);
    let base = ClockConfig::paper_defaults(sc.poll_period);

    let mut rows = Vec::new();
    let mut record = |name: &str, med: f64, iqr: f64, p99: f64, r: &mut Report| {
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", med * 1e6),
            format!("{:.1}", iqr * 1e6),
            format!("{:.1}", p99 * 1e6),
        ]);
        let tag = name.replace(['+', '-'], "_");
        r.metrics.push((format!("{tag}_iqr_us"), iqr * 1e6));
    };

    // Variant 1: naive (same clock run; use the naive errors).
    let run_full = run_clock(&sc, base);
    let skip = (run_full.packets.len() / 5).min(2000);
    let p_naive = Percentiles::from_data(&run_full.naive_errors(skip)).expect("data");
    record("naive", p_naive.p50, p_naive.iqr(), p_naive.p99, &mut r);

    // Variant 2: weighted but without error aging.
    let mut cfg = base;
    cfg.aging_rate = 0.0;
    let run_noage = run_clock(&sc, cfg);
    let p_noage = Percentiles::from_data(&run_noage.abs_errors(skip)).expect("data");
    record("no-aging", p_noage.p50, p_noage.iqr(), p_noage.p99, &mut r);

    // Variant 3: the full paper configuration.
    let p_full = Percentiles::from_data(&run_full.abs_errors(skip)).expect("data");
    record("full", p_full.p50, p_full.iqr(), p_full.p99, &mut r);

    // Variant 4: with local-rate refinement.
    let mut cfg = base;
    cfg.use_local_rate = true;
    let run_local = run_clock(&sc, cfg);
    let p_local = Percentiles::from_data(&run_local.abs_errors(skip)).expect("data");
    record("full+local", p_local.p50, p_local.iqr(), p_local.p99, &mut r);

    r.line(table(&["variant", "median[us]", "IQR[us]", "p99[us]"], &rows));
    r.line("Paper §5.3: weighting is the big win; aging and local rate are");
    r.line("refinements whose benefit appears mainly under loss/misconfiguration.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighting_is_the_big_win() {
        let r = run(ExpOptions {
            seed: 53,
            full: false,
        });
        let naive = r.get("naive_iqr_us").unwrap();
        let full = r.get("full_iqr_us").unwrap();
        let local = r.get("full_local_iqr_us").unwrap();
        assert!(
            naive > 2.0 * full,
            "weighted filtering must shrink IQR: naive {naive} vs full {full}"
        );
        // the refinements change little on a well-behaved trace (paper:
        // "the differences are marginal")
        assert!(
            (local - full).abs() < 0.7 * full + 10.0,
            "local-rate refinement should be marginal here: {local} vs {full}"
        );
    }
}
