//! Figure 12: offset-error histograms over a ~3-month continuous run with
//! standard polling periods (64 s and 256 s).
//!
//! The paper reports median −31 µs / IQR 15 µs (poll 64) and −33 µs /
//! IQR 24.3 µs (poll 256), with histograms showing exactly 99% of values.
//! The long trace includes gaps (1.5 h, 3.8 d) and a server error event —
//! we inject the same anomalies.

use crate::fmt::{fmt_time, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::{Scenario, ServerFault};
use tsc_stats::{Histogram, Percentiles};
use tscclock::ClockConfig;

const DAY: f64 = 86_400.0;

/// Runs the long trace for both polling periods.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig12", "Figure 12 — 3-month offset error histograms");
    let days = if opt.full { 90.0 } else { 21.0 };
    for poll in [64.0, 256.0] {
        let sc = Scenario::baseline(opt.seed)
            .with_poll_period(poll)
            .with_duration(days * DAY)
            // the paper's trace anomalies: a 1.5 h gap, a multi-day gap, and
            // a server error event
            .with_outage(5.0 * DAY, 5.0 * DAY + 5400.0)
            .with_outage(10.0 * DAY, 10.0 * DAY + (days / 24.0).min(3.8) * DAY)
            .with_server_fault(ServerFault {
                start: 15.0 * DAY,
                end: 15.0 * DAY + 240.0,
                offset: 0.150,
            });
        let mut cfg = ClockConfig::paper_defaults(poll);
        cfg.tau_prime = 2.0 * cfg.tau_star; // Figure 12 caption: τ′ = 2τ*
        let run = run_clock(&sc, cfg);
        let skip = (run.packets.len() / 20).min(500);
        let errs = run.abs_errors(skip);
        let p = Percentiles::from_data(&errs).expect("data");
        // histogram of the central 99% of values, as the paper plots
        let kept: Vec<f64> = errs
            .iter()
            .copied()
            .filter(|&e| e >= p.p01 && e <= p.p99)
            .collect();
        let hist = Histogram::auto(&kept, 30).expect("histogram");
        r.line(format!(
            "--- polling period {poll} s ({} packets, {} lost) ---",
            run.packets.len(),
            run.lost
        ));
        r.line(format!(
            "median = {}   IQR = {}   [p1, p99] = [{}, {}]",
            fmt_time(p.p50),
            fmt_time(p.iqr()),
            fmt_time(p.p01),
            fmt_time(p.p99)
        ));
        r.line(hist.ascii(40));
        let tag = format!("poll{}", poll as u32);
        r.metrics.push((format!("{tag}_median_us"), p.p50 * 1e6));
        r.metrics.push((format!("{tag}_iqr_us"), p.iqr() * 1e6));
    }
    r.line("Paper: median -31 us / IQR 15 us (64 s), median -33 us / IQR 24.3 us");
    r.line("(256 s): performance nearly unchanged by a 4x polling reduction.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_medians_match_figure12_shape() {
        let r = run(ExpOptions {
            seed: 43,
            full: false,
        });
        let m64 = r.get("poll64_median_us").unwrap();
        let m256 = r.get("poll256_median_us").unwrap();
        let i64_ = r.get("poll64_iqr_us").unwrap();
        let i256 = r.get("poll256_iqr_us").unwrap();
        // medians: tens of µs (≈ Δ/2 ambiguity), and close to each other
        assert!(m64.abs() > 5.0 && m64.abs() < 80.0, "poll64 median {m64}");
        assert!((m64 - m256).abs() < 30.0, "medians should nearly agree");
        // IQRs: tens of µs, slower polling somewhat wider
        assert!(i64_ < 80.0, "poll64 IQR {i64_}");
        assert!(i256 < 120.0, "poll256 IQR {i256}");
        assert!(i256 > 0.7 * i64_, "IQR ordering plausible");
    }
}
