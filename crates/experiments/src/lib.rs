//! Experiment runners reproducing every table and figure of the paper.
//!
//! Each module corresponds to one artifact of the evaluation (see
//! `DESIGN.md` for the full index) and produces a [`Report`]: a plain-text
//! block with the same rows/series the paper reports, plus the structured
//! numbers so integration tests can assert on shapes. The `repro` binary
//! exposes them as subcommands.
//!
//! Durations default to shortened-but-representative runs so the whole
//! suite completes in seconds; `--full` restores the paper's spans
//! (months) — still only tens of seconds of wall clock thanks to the
//! event-driven simulator.

pub mod ablation;
pub mod baseline;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fmt;
pub mod population;
pub mod quorum;
pub mod runner;
pub mod table1;
pub mod table2;

pub use fmt::Report;
pub use runner::{run_clock, ClockRun, PacketOut};

/// Common knobs for every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Master random seed.
    pub seed: u64,
    /// Use the paper's full durations instead of shortened defaults.
    pub full: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            seed: 42,
            full: false,
        }
    }
}

/// Runs one experiment by id (`table1`, `fig9a`, …). Returns `None` for an
/// unknown id.
pub fn run_by_id(id: &str, opt: ExpOptions) -> Option<Report> {
    Some(match id {
        "table1" => table1::run(),
        "table2" => table2::run(opt),
        "fig2" => fig2::run(opt),
        "fig3" => fig3::run(opt),
        "fig4" => fig4::run(opt),
        "fig5" => fig5::run(opt),
        "fig6" => fig6::run(opt),
        "fig7" => fig7::run(opt),
        "fig8" => fig8::run(opt),
        "fig9a" => fig9::run_tau_prime(opt),
        "fig9b" => fig9::run_quality(opt),
        "fig9c" => fig9::run_polling(opt),
        "fig10" => fig10::run(opt),
        "fig11a" => fig11::run_outage(opt),
        "fig11b" => fig11::run_server_fault(opt),
        "fig11c" => fig11::run_upward_shifts(opt),
        "fig11d" => fig11::run_downward_shift(opt),
        "fig12" => fig12::run(opt),
        "baseline" => baseline::run(opt),
        "ablation" => ablation::run(opt),
        "quorum" => quorum::run(opt),
        "population" => population::run(opt),
        _ => return None,
    })
}

/// All experiment ids in paper order.
pub const ALL_IDS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b",
    "fig9c", "fig10", "fig11a", "fig11b", "fig11c", "fig11d", "fig12", "baseline", "ablation",
    "quorum", "population",
];
