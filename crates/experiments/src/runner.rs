//! Shared experiment driver: scenario → clock → per-packet measurements.

use tsc_netsim::{Scenario, SimExchange};
use tscclock::{ClockConfig, ClockEvent, RawExchange, TscNtpClock};

/// Per-packet measurement extracted from one processed exchange.
#[derive(Debug, Clone, Copy)]
pub struct PacketOut {
    /// Packet index within the run (counting non-lost packets).
    pub i: usize,
    /// Scheduled poll time (true seconds).
    pub t: f64,
    /// RTT in seconds (clock's view).
    pub rtt: f64,
    /// Point error Eᵢ (seconds).
    pub point_error: f64,
    /// Absolute-clock error vs the DAG reference: `Ca(Tf) − Tg` (seconds).
    /// This is the paper's "actual performance" metric; its sign convention
    /// makes a clock *ahead* of true time positive.
    pub err_abs: f64,
    /// Error of the *naive* per-packet estimate used the same way:
    /// `(C(Tf) − θ̂ᵢ) − Tg`.
    pub err_naive: f64,
    /// Current global rate estimate (s/count).
    pub p_hat: f64,
    /// Current filtered offset estimate (seconds).
    pub theta_hat: f64,
    /// Reference offset of the uncorrected clock: `C(Tf) − Tg` (seconds).
    pub theta_ref: f64,
    /// True one-way forward delay (diagnostics).
    pub d_fwd: f64,
    /// True backward delay.
    pub d_back: f64,
    /// Server residence.
    pub d_srv: f64,
    /// Events raised.
    pub sanity_fired: bool,
    /// An upward shift was confirmed at this packet.
    pub shift_fired: bool,
}

/// Result of driving a clock over a scenario.
#[derive(Debug, Clone)]
pub struct ClockRun {
    /// Per-packet outputs (non-lost packets that produced estimates).
    pub packets: Vec<PacketOut>,
    /// Total exchanges attempted (including lost).
    pub attempted: usize,
    /// Lost exchanges.
    pub lost: usize,
    /// Final clock status.
    pub status: tscclock::ClockStatus,
}

impl ClockRun {
    /// Absolute errors from packet `skip` on (skipping warm-up transients).
    pub fn abs_errors(&self, skip: usize) -> Vec<f64> {
        self.packets
            .iter()
            .filter(|p| p.i >= skip)
            .map(|p| p.err_abs)
            .collect()
    }

    /// Naive errors from packet `skip` on.
    pub fn naive_errors(&self, skip: usize) -> Vec<f64> {
        self.packets
            .iter()
            .filter(|p| p.i >= skip)
            .map(|p| p.err_naive)
            .collect()
    }
}

/// Drives a [`TscNtpClock`] over every exchange of `scenario`.
pub fn run_clock(scenario: &Scenario, cfg: ClockConfig) -> ClockRun {
    let mut clock = TscNtpClock::new(cfg);
    let mut packets = Vec::new();
    let mut attempted = 0usize;
    let mut lost = 0usize;
    let mut i = 0usize;
    for e in scenario.build() {
        attempted += 1;
        if e.lost {
            lost += 1;
            continue;
        }
        let raw = to_raw(&e);
        let Some(out) = clock.process(raw) else {
            continue;
        };
        let ca = clock.absolute_time(e.tf_tsc).unwrap_or(f64::NAN);
        let c_uncorr = clock.uncorrected_time(e.tf_tsc).unwrap_or(f64::NAN);
        let theta_ref = c_uncorr - e.tg;
        packets.push(PacketOut {
            i,
            t: e.poll_time,
            rtt: out.rtt,
            point_error: out.point_error,
            err_abs: ca - e.tg,
            err_naive: (c_uncorr - out.theta_naive) - e.tg,
            p_hat: out.p_hat,
            theta_hat: out.theta_hat,
            theta_ref,
            d_fwd: e.truth.d_fwd,
            d_back: e.truth.d_back,
            d_srv: e.truth.d_srv,
            sanity_fired: out.events.contains(ClockEvent::OffsetSanity),
            shift_fired: out.events.contains(ClockEvent::UpwardShift),
        });
        i += 1;
    }
    ClockRun {
        packets,
        attempted,
        lost,
        status: clock.status(),
    }
}

/// Maps a simulated exchange to the clock's input type.
pub fn to_raw(e: &SimExchange) -> RawExchange {
    RawExchange {
        ta_tsc: e.ta_tsc,
        tb: e.tb,
        te: e.te,
        tf_tsc: e.tf_tsc,
    }
}

/// Reference ("DAG") rate over a packet pair: `p̂g = (Tg,i − Tg,j) /
/// (Tf,i − Tf,j)` in seconds per count — the paper's reference for
/// Figures 5 and 7.
pub fn reference_rate(tf_j: u64, tg_j: f64, tf_i: u64, tg_i: f64) -> Option<f64> {
    let dc = tf_i.wrapping_sub(tf_j) as i64 as f64;
    if dc <= 0.0 {
        return None;
    }
    Some((tg_i - tg_j) / dc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_produces_consistent_measurements() {
        let sc = Scenario::baseline(7).with_duration(6.0 * 3600.0);
        let run = run_clock(&sc, ClockConfig::paper_defaults(16.0));
        assert!(run.packets.len() > 1000);
        assert!(run.attempted >= run.packets.len());
        // after warm-up, absolute errors are small
        let errs = run.abs_errors(500);
        let med = tsc_stats::median(&errs).unwrap();
        assert!(
            med.abs() < 200e-6,
            "post-warmup median error {med} too large"
        );
        // naive errors are much noisier than filtered ones
        let naive = run.naive_errors(500);
        let iqr_naive = tsc_stats::iqr(&naive).unwrap();
        let iqr_algo = tsc_stats::iqr(&errs).unwrap();
        assert!(
            iqr_naive > 2.0 * iqr_algo,
            "filtering must shrink the IQR: naive {iqr_naive} vs {iqr_algo}"
        );
    }

    #[test]
    fn reference_rate_math() {
        let p = reference_rate(0, 0.0, 1000, 1e-6).unwrap();
        assert!((p - 1e-9).abs() < 1e-18);
        assert!(reference_rate(5, 0.0, 5, 1.0).is_none());
    }

    #[test]
    fn lost_packets_are_counted() {
        let sc = Scenario {
            loss_prob: 0.2,
            ..Scenario::baseline(9)
        }
        .with_duration(3600.0);
        let run = run_clock(&sc, ClockConfig::paper_defaults(16.0));
        assert!(run.lost > 10);
        assert_eq!(run.attempted, 225);
    }
}
