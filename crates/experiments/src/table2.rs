//! Table 2: measured characteristics of the three stratum-1 servers.
//!
//! The fixed columns (reference, distance, hops) are scenario facts; the
//! *measured* columns — minimum RTT over ≥ a week and the path asymmetry Δ
//! (estimated with the reference monitor per §4.2) — are produced by
//! actually running the simulation and measuring, exactly as the paper did.

use crate::fmt::{fmt_time, table, Report};
use crate::ExpOptions;
use tsc_netsim::{Scenario, ServerKind};
use tscclock::asym::{estimate_asymmetry, RefExchange};
use tscclock::RawExchange;

/// Runs a trace per server and measures min RTT and Δ.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("table2", "Table 2 — characteristics of the stratum-1 NTP servers");
    let days = if opt.full { 7.0 } else { 2.0 };
    let mut rows = Vec::new();
    for kind in [ServerKind::Loc, ServerKind::Int, ServerKind::Ext] {
        let facts = kind.facts();
        let sc = Scenario::baseline(opt.seed)
            .with_server(kind)
            .with_poll_period(16.0)
            .with_duration(days * 86_400.0);
        let mut min_rtt = f64::INFINITY;
        let mut refs = Vec::new();
        let p_nom = 1.0 / sc.tsc_freq_hz;
        for e in sc.build() {
            if e.lost {
                continue;
            }
            let rtt = e.tf_tsc.wrapping_sub(e.ta_tsc) as f64 * p_nom;
            min_rtt = min_rtt.min(rtt);
            refs.push(RefExchange {
                ex: RawExchange {
                    ta_tsc: e.ta_tsc,
                    tb: e.tb,
                    te: e.te,
                    tf_tsc: e.tf_tsc,
                },
                tg: e.tg,
            });
        }
        let delta = estimate_asymmetry(&refs, p_nom, 0.005).unwrap_or(f64::NAN);
        rows.push(vec![
            kind.name().to_string(),
            facts.reference.to_string(),
            facts.distance.to_string(),
            fmt_time(min_rtt),
            facts.hops.to_string(),
            fmt_time(delta),
        ]);
        let tag = kind.name().to_lowercase();
        r.metrics.push((format!("{tag}_rtt_ms"), min_rtt * 1e3));
        r.metrics.push((format!("{tag}_delta_us"), delta * 1e6));
    }
    r.line(table(
        &["Server", "Reference", "Distance", "RTT(min)", "Hops", "Delta"],
        &rows,
    ));
    r.line("Paper: Loc 0.38ms/50us, Int 0.89ms/50us, Ext 14.2ms/500us");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_values_match_table2() {
        let r = run(ExpOptions {
            seed: 5,
            full: false,
        });
        // RTT within 10% of the paper's values (host latencies add a bit)
        assert!((r.get("serverloc_rtt_ms").unwrap() - 0.38).abs() < 0.05);
        assert!((r.get("serverint_rtt_ms").unwrap() - 0.89).abs() < 0.09);
        assert!((r.get("serverext_rtt_ms").unwrap() - 14.2).abs() < 1.0);
        // asymmetry: right order of magnitude and ordering
        let d_int = r.get("serverint_delta_us").unwrap();
        let d_ext = r.get("serverext_delta_us").unwrap();
        assert!((d_int - 50.0).abs() < 40.0, "Int delta {d_int}");
        assert!((d_ext - 500.0).abs() < 150.0, "Ext delta {d_ext}");
        assert!(d_ext > d_int);
    }
}
