//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all [--full] [--seed N]     run every experiment
//! repro fig9a [--full] [--seed N]   run one experiment
//! repro list                        list experiment ids
//! ```
//!
//! Defaults use shortened (but representative) durations; `--full` restores
//! the paper's spans. Run with `--release` — the simulator covers months of
//! trace per second of wall clock.
//!
//! Built with `--features telemetry`, every report is followed by a
//! metrics exposition for that experiment (Prometheus text by default,
//! `--telemetry-json` for JSON). The exposition is appended *after* the
//! report — report text stays byte-identical in both feature states.

use tsc_experiments::{run_by_id, ExpOptions, ALL_IDS};

/// Prints the per-experiment metrics exposition and clears the registry
/// so the next experiment starts from zero. No-op when the telemetry
/// plane is compiled out.
fn dump_telemetry(json: bool) {
    if !tsc_telemetry::TELEMETRY_COMPILED {
        return;
    }
    let text = if json {
        tsc_telemetry::to_json()
    } else {
        tsc_telemetry::prometheus()
    };
    println!("{text}");
    tsc_telemetry::reset_global();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return;
    }
    let mut opt = ExpOptions::default();
    let mut ids: Vec<String> = Vec::new();
    let mut telemetry_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opt.full = true,
            "--telemetry-json" => telemetry_json = true,
            "--seed" => {
                i += 1;
                opt.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if !other.starts_with('-') => ids.push(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
        return;
    }
    for id in &ids {
        let t0 = std::time::Instant::now();
        match run_by_id(id, opt) {
            Some(report) => {
                println!("{}", report.render());
                dump_telemetry(telemetry_json);
                eprintln!("[{id}] completed in {:?}\n", t0.elapsed());
            }
            None => eprintln!("unknown experiment id: {id} (try `repro list`)"),
        }
    }
}

fn usage() {
    eprintln!(
        "usage: repro <all | list | EXPERIMENT_ID...> [--full] [--seed N] [--telemetry-json]"
    );
    eprintln!("experiments: {}", ALL_IDS.join(" "));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
