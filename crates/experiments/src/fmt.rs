//! Plain-text report formatting.

/// A finished experiment: a title, explanatory header, a text body (tables
/// and series), and named scalar metrics for programmatic assertions.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig9a`).
    pub id: &'static str,
    /// Human title matching the paper artifact.
    pub title: String,
    /// Rendered text body.
    pub body: String,
    /// Named metrics (for tests and EXPERIMENTS.md extraction).
    pub metrics: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self {
            id,
            title: title.into(),
            body: String::new(),
            metrics: Vec::new(),
        }
    }

    /// Appends a line to the body.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.body.push_str(s.as_ref());
        self.body.push('\n');
    }

    /// Records a named metric (also appended to the body).
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        self.line(format!("  {name} = {value:.6e}"));
        self.metrics.push((name, value));
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        let bar = "=".repeat(72);
        format!("{bar}\n[{}] {}\n{bar}\n{}", self.id, self.title, self.body)
    }
}

/// Renders a fixed-width table: the header row, a separator, then rows.
/// Column widths adapt to content.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with an adaptive unit (ns/µs/ms/s).
pub fn fmt_time(s: f64) -> String {
    let a = s.abs();
    if a < 1e-6 {
        format!("{:.1}ns", s * 1e9)
    } else if a < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if a < 1.0 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Formats a dimensionless fraction in PPM.
pub fn fmt_ppm(f: f64) -> String {
    format!("{:.4} PPM", f * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_metrics_roundtrip() {
        let mut r = Report::new("test", "Title");
        r.metric("median_us", 30.0);
        assert_eq!(r.get("median_us"), Some(30.0));
        assert!(r.get("missing").is_none());
        assert!(r.render().contains("median_us"));
        assert!(r.render().contains("[test] Title"));
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows same width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn time_units() {
        assert_eq!(fmt_time(5e-9), "5.0ns");
        assert_eq!(fmt_time(30e-6), "30.0us");
        assert_eq!(fmt_time(1.5e-3), "1.500ms");
        assert_eq!(fmt_time(2.0), "2.000s");
        assert_eq!(fmt_time(-30e-6), "-30.0us");
    }

    #[test]
    fn ppm_format() {
        assert_eq!(fmt_ppm(1e-7), "0.1000 PPM");
    }
}
