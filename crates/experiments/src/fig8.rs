//! Figure 8: the offset algorithm's estimates over a multi-week ServerInt
//! trace, against reference and naive values.
//!
//! "The algorithm succeeds in filtering out the noise in the naive
//! estimates, producing estimates which are only around 30 µs away from
//! the reference values."

use crate::fmt::{fmt_time, table, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::Scenario;
use tsc_stats::Percentiles;
use tscclock::ClockConfig;

/// Runs the trace and summarises algorithm vs naive errors.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig8", "Figure 8 — offset algorithm vs naive vs reference");
    let days = if opt.full { 21.0 } else { 7.0 };
    let sc = Scenario::baseline(opt.seed).with_duration(days * 86_400.0);
    let cfg = ClockConfig::paper_defaults(sc.poll_period);
    let run = run_clock(&sc, cfg);
    let skip = 2000.min(run.packets.len() / 4);
    let algo = run.abs_errors(skip);
    let naive = run.naive_errors(skip);
    let pa = Percentiles::from_data(&algo).expect("algo data");
    let pn = Percentiles::from_data(&naive).expect("naive data");
    let mut rows = Vec::new();
    for (name, p) in [("algorithm", &pa), ("naive", &pn)] {
        rows.push(vec![
            name.to_string(),
            fmt_time(p.p01),
            fmt_time(p.p50),
            fmt_time(p.p99),
            fmt_time(p.iqr()),
        ]);
    }
    r.line(table(&["series", "p1", "median", "p99", "IQR"], &rows));
    r.line(format!(
        "median |deviation from reference|: algorithm {} vs naive spread {}",
        fmt_time(pa.p50.abs()),
        fmt_time(pn.spread_98())
    ));
    r.line("Paper: algorithm estimates sit ~30 µs from reference; naive noise");
    r.line("(ms-scale congestion) is filtered out.");
    r.metric("algo_median_us", pa.p50 * 1e6);
    r.metric("algo_iqr_us", pa.iqr() * 1e6);
    r.metric("naive_iqr_us", pn.iqr() * 1e6);
    r.metric("noise_reduction_factor", pn.iqr() / pa.iqr());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_filters_naive_noise_to_tens_of_microseconds() {
        let r = run(ExpOptions {
            seed: 29,
            full: false,
        });
        let med = r.get("algo_median_us").unwrap();
        // ~Δ/2 = 25 µs ambiguity plus small estimation error
        assert!(
            med.abs() < 80.0,
            "algorithm median {med} µs should be tens of µs"
        );
        assert!(
            r.get("algo_iqr_us").unwrap() < 80.0,
            "algorithm IQR should be tens of µs"
        );
        assert!(
            r.get("noise_reduction_factor").unwrap() > 2.0,
            "filtering must beat naive substantially"
        );
    }
}
