//! Extension X1: the SW-NTP (ntpd-style feedback) baseline vs the TSC-NTP
//! clock on identical traces.
//!
//! Quantifies the paper's §1 motivation: the feedback clock's offset is
//! ms-scale and its *rate* wanders far beyond the 0.1 PPM hardware
//! stability, while the feed-forward clock holds tens-of-µs offsets with a
//! smooth rate.

use crate::fmt::{fmt_time, table, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::Scenario;
use tsc_stats::{Percentiles, RunningStats};
use tsc_swclock::DisciplinedClock;
use tscclock::ClockConfig;

/// Runs both clocks over the same scenario.
pub fn run(opt: ExpOptions) -> Report {
    let mut r = Report::new("baseline", "X1 — SW-NTP feedback baseline vs TSC-NTP clock");
    let days = if opt.full { 14.0 } else { 5.0 };
    let sc = Scenario::baseline(opt.seed).with_duration(days * 86_400.0);

    // --- TSC-NTP (this paper) ---
    let run_tsc = run_clock(&sc, ClockConfig::paper_defaults(sc.poll_period));
    let skip = (run_tsc.packets.len() / 5).min(2000);
    let p_tsc = Percentiles::from_data(&run_tsc.abs_errors(skip)).expect("data");

    // --- SW-NTP baseline on the *same* trace ---
    // The daemon sees raw host clock readings (counter · nominal period)
    // and the same server timestamps.
    let p_nom = 1.0 / sc.tsc_freq_hz;
    let mut sw = DisciplinedClock::default();
    let mut sw_errs = Vec::new();
    let mut sw_rates = RunningStats::new();
    let mut n = 0usize;
    for e in sc.build() {
        if e.lost {
            continue;
        }
        let ta_raw = e.ta_tsc as f64 * p_nom;
        let tf_raw = e.tf_tsc as f64 * p_nom;
        sw.process(ta_raw, e.tb, e.te, tf_raw);
        n += 1;
        if n > skip {
            sw_errs.push(sw.now(tf_raw) - e.tg);
            sw_rates.push(sw.rate_correction());
        }
    }
    let p_sw = Percentiles::from_data(&sw_errs).expect("data");

    let rows = vec![
        vec![
            "TSC-NTP (paper)".to_string(),
            fmt_time(p_tsc.p50),
            fmt_time(p_tsc.iqr()),
            fmt_time(p_tsc.spread_98()),
            "smooth (0.1 PPM bound)".to_string(),
        ],
        vec![
            "SW-NTP (ntpd-like)".to_string(),
            fmt_time(p_sw.p50),
            fmt_time(p_sw.iqr()),
            fmt_time(p_sw.spread_98()),
            format!(
                "{:.2} PPM swing",
                (sw_rates.max() - sw_rates.min()) * 1e6
            ),
        ],
    ];
    r.line(table(
        &["clock", "median err", "IQR", "p1..p99 spread", "rate behaviour"],
        &rows,
    ));
    r.line(format!("SW-NTP step (reset) events: {}", sw.steps()));
    r.line("Paper §1: SW-NTP offsets exceed RTTs in practice with occasional");
    r.line("resets; its rate is deliberately varied. The TSC-NTP clock decouples");
    r.line("rate from offset and wins on both.");
    r.metric("tsc_iqr_us", p_tsc.iqr() * 1e6);
    r.metric("sw_iqr_us", p_sw.iqr() * 1e6);
    r.metric("sw_rate_swing_ppm", (sw_rates.max() - sw_rates.min()) * 1e6);
    r.metric("improvement_factor", p_sw.iqr() / p_tsc.iqr());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_clock_beats_feedback_baseline() {
        let r = run(ExpOptions {
            seed: 47,
            full: false,
        });
        // The short (non-full) run's margin is RNG-stream dependent and
        // hovers around 2.6–3.2x across seeds; 2x is still the "wide
        // margin" the comparison exists to demonstrate.
        assert!(
            r.get("improvement_factor").unwrap() > 2.0,
            "TSC-NTP should beat SW-NTP by a wide margin"
        );
        assert!(
            r.get("sw_rate_swing_ppm").unwrap() > 0.1,
            "SW-NTP rate must wander beyond hardware stability"
        );
        assert!(
            r.get("tsc_iqr_us").unwrap() < 100.0,
            "TSC-NTP IQR must be tens of µs"
        );
    }
}
