//! Figure 9: sensitivity of offset-error percentiles to (a) the window
//! τ′, (b) the quality scale E, and (c) the polling period.
//!
//! Each panel plots the 1/25/50/75/99-percentiles of the empirical errors
//! `θ̂(t) − θg(t)` as one parameter sweeps. The paper's finding is *very
//! low sensitivity* across the board — the flagship robustness property.

use crate::fmt::{table, Report};
use crate::runner::run_clock;
use crate::ExpOptions;
use tsc_netsim::Scenario;
use tsc_stats::Percentiles;
use tscclock::ClockConfig;

/// Shared sweep driver: runs the scenario per configuration and collects
/// error percentiles.
fn sweep<F>(
    r: &mut Report,
    opt: ExpOptions,
    labels: &[String],
    mut configure: F,
    days: f64,
) -> Vec<Percentiles>
where
    F: FnMut(usize) -> (Scenario, ClockConfig),
{
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for (i, label) in labels.iter().enumerate() {
        let (sc, cfg) = configure(i);
        let sc = sc.with_duration(days * 86_400.0);
        let run = run_clock(&sc, cfg);
        let skip = (run.packets.len() / 5).min(2000);
        let errs = run.abs_errors(skip);
        let p = Percentiles::from_data(&errs).expect("data");
        rows.push(vec![
            label.clone(),
            format!("{:.1}", p.p01 * 1e6),
            format!("{:.1}", p.p25 * 1e6),
            format!("{:.1}", p.p50 * 1e6),
            format!("{:.1}", p.p75 * 1e6),
            format!("{:.1}", p.p99 * 1e6),
        ]);
        all.push(p);
    }
    r.line(table(
        &["param", "p1[us]", "p25[us]", "p50[us]", "p75[us]", "p99[us]"],
        &rows,
    ));
    let _ = opt;
    all
}

/// Panel (a): τ′/τ* ∈ {1/8 … 4}, with and without local rate.
pub fn run_tau_prime(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig9a", "Figure 9(a) — sensitivity to window tau'");
    let days = if opt.full { 7.0 } else { 3.0 };
    let ratios = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0];
    for use_local in [false, true] {
        r.line(format!(
            "--- {} local rate ---",
            if use_local { "with" } else { "without" }
        ));
        let labels: Vec<String> = ratios.iter().map(|x| format!("t'/t*={x}")).collect();
        let ps = sweep(
            &mut r,
            opt,
            &labels,
            |i| {
                let sc = Scenario::baseline(opt.seed);
                let mut cfg = ClockConfig::paper_defaults(sc.poll_period);
                cfg.tau_prime = ratios[i] * cfg.tau_star;
                cfg.use_local_rate = use_local;
                if use_local {
                    cfg.tau_bar = 20.0 * cfg.tau_star; // paper uses 20τ* here
                }
                (sc, cfg)
            },
            days,
        );
        let medians: Vec<f64> = ps.iter().map(|p| p.p50 * 1e6).collect();
        let spread =
            medians.iter().cloned().fold(f64::MIN, f64::max)
                - medians.iter().cloned().fold(f64::MAX, f64::min);
        r.metric(
            format!(
                "median_spread_us_{}",
                if use_local { "local" } else { "nolocal" }
            ),
            spread,
        );
    }
    r.line("Paper: median ~-28 µs across a wide range of tau'; IQR ~11 µs at");
    r.line("the optimum tau'/tau* = 0.5; very low sensitivity overall.");
    r
}

/// Panel (b): E/δ ∈ {1 … 20} at τ′ = τ*/2.
pub fn run_quality(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig9b", "Figure 9(b) — sensitivity to quality scale E");
    let days = if opt.full { 7.0 } else { 3.0 };
    let multiples = [1.0, 2.0, 3.0, 4.0, 7.0, 10.0, 20.0];
    let labels: Vec<String> = multiples.iter().map(|x| format!("E/d={x}")).collect();
    let ps = sweep(
        &mut r,
        opt,
        &labels,
        |i| {
            let sc = Scenario::baseline(opt.seed);
            let mut cfg = ClockConfig::paper_defaults(sc.poll_period);
            cfg.tau_prime = cfg.tau_star / 2.0;
            cfg.quality_scale = multiples[i] * cfg.delta;
            (sc, cfg)
        },
        days,
    );
    let medians: Vec<f64> = ps.iter().map(|p| p.p50 * 1e6).collect();
    let spread = medians.iter().cloned().fold(f64::MIN, f64::max)
        - medians.iter().cloned().fold(f64::MAX, f64::min);
    r.metric("median_spread_us", spread);
    r.metric("iqr_at_4d_us", ps[3].iqr() * 1e6);
    r.line("Paper: very low sensitivity; optimum at small multiples of delta.");
    r
}

/// Panel (c): polling period ∈ {16 … 512} s at τ′ = τ*, E = 4δ.
pub fn run_polling(opt: ExpOptions) -> Report {
    let mut r = Report::new("fig9c", "Figure 9(c) — sensitivity to polling period");
    let days = if opt.full { 7.0 } else { 3.0 };
    let polls = [16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
    let labels: Vec<String> = polls.iter().map(|x| format!("poll={x}s")).collect();
    let ps = sweep(
        &mut r,
        opt,
        &labels,
        |i| {
            let sc = Scenario::baseline(opt.seed).with_poll_period(polls[i]);
            let cfg = ClockConfig::paper_defaults(polls[i]);
            (sc, cfg)
        },
        days,
    );
    let medians: Vec<f64> = ps.iter().map(|p| p.p50 * 1e6).collect();
    let spread = medians.iter().cloned().fold(f64::MIN, f64::max)
        - medians.iter().cloned().fold(f64::MAX, f64::min);
    r.metric("median_spread_us", spread);
    r.metric("median_at_16s_us", medians[0]);
    r.metric("median_at_512s_us", medians[5]);
    r.line("Paper: median changed by only a few µs despite a 32x reduction in");
    r.line("raw information — NTP servers need not be loaded heavily.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt() -> ExpOptions {
        ExpOptions {
            seed: 31,
            full: false,
        }
    }

    #[test]
    fn tau_prime_sensitivity_is_low() {
        let r = run_tau_prime(opt());
        let spread = r.get("median_spread_us_nolocal").unwrap();
        assert!(
            spread < 40.0,
            "median should move < 40 µs across the tau' sweep: {spread}"
        );
    }

    #[test]
    fn quality_scale_sensitivity_is_low() {
        let r = run_quality(opt());
        assert!(
            r.get("median_spread_us").unwrap() < 40.0,
            "median should be insensitive to E"
        );
        assert!(r.get("iqr_at_4d_us").unwrap() < 80.0);
    }

    #[test]
    fn polling_period_sensitivity_is_low() {
        let r = run_polling(opt());
        let spread = r.get("median_spread_us").unwrap();
        assert!(
            spread < 60.0,
            "median spread across 16..512 s polling: {spread} µs"
        );
    }
}
