//! Streaming summary statistics (Welford's algorithm).

/// Numerically stable streaming mean / variance / extrema accumulator.
///
/// Uses Welford's online algorithm so that month-long traces (millions of
/// samples) can be summarized in one pass without catastrophic cancellation.
///
/// ```
/// use tsc_stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored so a stray NaN in
    /// a long trace cannot poison the whole summary.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Root mean square of the observations.
    pub fn rms(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64 + self.mean * self.mean).sqrt()
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_infinite());
        assert!(s.max().is_infinite());
    }

    #[test]
    fn single_value() {
        let mut s = RunningStats::new();
        s.push(7.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn nan_is_ignored() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: RunningStats = xs.iter().copied().collect();
        let a: RunningStats = xs[..37].iter().copied().collect();
        let mut b: RunningStats = xs[37..].iter().copied().collect();
        b.merge(&a);
        assert_eq!(b.count(), all.count());
        assert!((b.mean() - all.mean()).abs() < 1e-12);
        assert!((b.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(b.min(), all.min());
        assert_eq!(b.max(), all.max());
    }

    #[test]
    fn merge_into_empty() {
        let a: RunningStats = [1.0, 2.0].into_iter().collect();
        let mut b = RunningStats::new();
        b.merge(&a);
        assert_eq!(b.count(), 2);
        assert_eq!(b.mean(), 1.5);
    }

    #[test]
    fn rms_of_symmetric_values() {
        let s: RunningStats = [-3.0, 3.0].into_iter().collect();
        assert_eq!(s.mean(), 0.0);
        // rms uses population m2/n: sqrt(9) = 3
        assert!((s.rms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn large_offset_numerical_stability() {
        // Welford must survive a huge common offset.
        let base = 1e12;
        let s: RunningStats = (0..1000).map(|i| base + i as f64).collect();
        assert!((s.mean() - (base + 499.5)).abs() < 1e-3);
        let expected_var = (0..1000)
            .map(|i| {
                let d = i as f64 - 499.5;
                d * d
            })
            .sum::<f64>()
            / 999.0;
        assert!((s.variance() - expected_var).abs() / expected_var < 1e-6);
    }
}
