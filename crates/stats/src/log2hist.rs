//! Log2-bucketed histogram for latency/size distributions.
//!
//! This is the shared bucketing math behind the telemetry plane's
//! lock-free histograms (`tsc-telemetry` snapshots its atomic bucket
//! arrays into this type) and is usable standalone wherever a cheap,
//! merge-friendly distribution summary is wanted.
//!
//! Bucketing: bucket `0` holds exactly the value `0`; bucket `i ≥ 1`
//! holds values in `[2^(i-1), 2^i − 1]`. With 65 buckets the full `u64`
//! range is covered, `bucket_of` is branch-light (`leading_zeros`), and
//! two histograms merge by elementwise addition — order-independent, the
//! same contract the fleet pool's per-worker counters rely on.

/// Number of buckets: one for zero plus one per power of two up to `2^63`.
pub const LOG2_BUCKETS: usize = 65;

/// Bucket index for a value: `0` for `0`, else `64 − leading_zeros(v)`
/// (i.e. one plus the position of the highest set bit).
#[inline]
pub fn log2_bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i`: `0` for bucket 0, else `2^i − 1`
/// (saturating to `u64::MAX` for the top bucket).
#[inline]
pub fn log2_bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-size log2-bucketed histogram with exact count and sum.
///
/// Quantiles are extracted from bucket boundaries, so they are upper
/// bounds accurate to a factor of two — plenty for the "is seal time
/// microseconds or milliseconds" questions telemetry answers, and the
/// price of an allocation-free, lock-free-mergeable representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Builds a histogram directly from raw bucket counts plus exact
    /// count/sum — the bridge from `tsc-telemetry`'s atomic snapshot.
    pub fn from_parts(counts: [u64; LOG2_BUCKETS], count: u64, sum: u64) -> Self {
        Self { counts, count, sum }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[log2_bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Records `n` observations of the same value.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[log2_bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
    }

    /// Elementwise merge: afterwards `self` summarizes both inputs.
    /// Addition is commutative and associative, so merge order never
    /// changes the result.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (wrapping) sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Quantile upper bound: the inclusive upper boundary of the first
    /// bucket whose cumulative count reaches `q` of the total (`q`
    /// clamped to `[0, 1]`; `0` when empty). `quantile(1.0)` bounds the
    /// maximum recorded value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q=0 maps to rank 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return log2_bucket_bound(i);
            }
        }
        log2_bucket_bound(LOG2_BUCKETS - 1)
    }

    /// Inclusive upper bound of the highest non-empty bucket (`0` when
    /// empty) — a factor-of-two bound on the maximum recorded value.
    pub fn max_bound(&self) -> u64 {
        for i in (0..LOG2_BUCKETS).rev() {
            if self.counts[i] != 0 {
                return log2_bucket_bound(i);
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(log2_bucket_of(0), 0);
        assert_eq!(log2_bucket_of(1), 1);
        assert_eq!(log2_bucket_of(2), 2);
        assert_eq!(log2_bucket_of(3), 2);
        assert_eq!(log2_bucket_of(4), 3);
        assert_eq!(log2_bucket_of(1023), 10);
        assert_eq!(log2_bucket_of(1024), 11);
        assert_eq!(log2_bucket_of(u64::MAX), 64);
        // Every value lands in the bucket whose bound contains it.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let b = log2_bucket_of(v);
            assert!(v <= log2_bucket_bound(b));
            if b > 0 {
                assert!(v > log2_bucket_bound(b - 1));
            }
        }
    }

    #[test]
    fn count_sum_mean() {
        let mut h = Log2Histogram::new();
        assert!(h.is_empty());
        for v in [1u64, 2, 3, 10] {
            h.record(v);
        }
        h.record_n(4, 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 2 + 3 + 10 + 8);
        assert!((h.mean() - 24.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let vals_a = [0u64, 1, 5, 5, 900, 1 << 20];
        let vals_b = [2u64, 2, 7, 1 << 33, u64::MAX];
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut all = Log2Histogram::new();
        for &v in &vals_a {
            a.record(v);
            all.record(v);
        }
        for &v in &vals_b {
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Merge equals recording everything into one histogram, in
        // either merge order.
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }

    #[test]
    fn quantiles_are_factor_of_two_upper_bounds() {
        let mut h = Log2Histogram::new();
        // 100 observations of 100 ⇒ every quantile sits in bucket 7
        // (64..=127).
        h.record_n(100, 100);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 127);
        }

        // A skewed distribution: 90 fast (≈1 µs), 10 slow (≈1 ms).
        let mut h = Log2Histogram::new();
        h.record_n(1_000, 90);
        h.record_n(1_000_000, 10);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        assert!((1_000..2_048).contains(&p50), "p50 = {p50}");
        assert!((1_000_000..2_097_152).contains(&p95), "p95 = {p95}");
        // And the bound property holds: value ≤ quantile bound.
        assert!(h.quantile(1.0) >= 1_000_000);
        assert_eq!(h.max_bound(), h.quantile(1.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        let mut h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
