//! Linear fits: ordinary least squares and the robust Theil–Sen estimator.
//!
//! Used for detrending offset traces (§3.1 / Figure 2 "force the first and
//! last offset values to be the same") and for computing reference rates
//! from DAG timestamps.

/// Result of a straight-line fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Estimated slope.
    pub slope: f64,
    /// Estimated intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (0 when undefined).
    pub r2: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Subtracts the fitted line from each `(x, y)` pair, returning residuals.
    pub fn residuals(&self, xs: &[f64], ys: &[f64]) -> Vec<f64> {
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| y - self.predict(x))
            .collect()
    }
}

/// Ordinary least-squares fit of `ys` against `xs`.
///
/// Returns `None` when fewer than two points are supplied or all `xs`
/// coincide. The computation centres the data first for numerical stability
/// with the enormous abscissae (TSC counts ~1e14) this project deals with.
pub fn ols_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// Theil–Sen slope: the median of pairwise slopes, robust to ~29% outliers.
///
/// For large inputs the all-pairs set is subsampled deterministically to cap
/// cost at roughly `max_pairs` slope evaluations, keeping the estimator
/// usable on month-long traces.
pub fn theil_sen(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    const MAX_PAIRS: usize = 250_000;
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len();
    let total_pairs = n * (n - 1) / 2;
    let mut slopes = Vec::with_capacity(total_pairs.min(MAX_PAIRS));
    if total_pairs <= MAX_PAIRS {
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = xs[j] - xs[i];
                if dx != 0.0 {
                    slopes.push((ys[j] - ys[i]) / dx);
                }
            }
        }
    } else {
        // Deterministic stride-based subsample of pairs.
        let stride = (total_pairs / MAX_PAIRS).max(1);
        let mut k = 0usize;
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                if k.is_multiple_of(stride) {
                    let dx = xs[j] - xs[i];
                    if dx != 0.0 {
                        slopes.push((ys[j] - ys[i]) / dx);
                    }
                    if slopes.len() >= MAX_PAIRS {
                        break 'outer;
                    }
                }
                k += 1;
            }
        }
    }
    if slopes.is_empty() {
        return None;
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("finite slopes"));
    let slope = crate::quantile::percentile_of_sorted(&slopes, 50.0);
    // Intercept: median of y − slope·x.
    let mut inters: Vec<f64> = xs.iter().zip(ys).map(|(&x, &y)| y - slope * x).collect();
    inters.sort_by(|a, b| a.partial_cmp(b).expect("finite intercepts"));
    let intercept = crate::quantile::percentile_of_sorted(&inters, 50.0);
    Some(LinearFit {
        slope,
        intercept,
        r2: 0.0,
    })
}

/// Detrends `ys` so its first and last values become equal (and zero) —
/// the exact normalization the paper applies in Figure 2 ("they force the
/// first and last offset values to be the same, normalised to be zero").
///
/// Returns `None` when fewer than two points are given or `xs` start/end
/// coincide.
pub fn detrend_endpoints(xs: &[f64], ys: &[f64]) -> Option<Vec<f64>> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let dx = xs[xs.len() - 1] - xs[0];
    if dx == 0.0 {
        return None;
    }
    let slope = (ys[ys.len() - 1] - ys[0]) / dx;
    let x0 = xs[0];
    let y0 = ys[0];
    Some(
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| y - y0 - slope * (x - x0))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 2.0).collect();
        let f = ols_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_degenerate_inputs() {
        assert!(ols_fit(&[1.0], &[2.0]).is_none());
        assert!(ols_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(ols_fit(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn ols_huge_abscissae_stable() {
        // TSC-count-like x values: ~1e14 with tiny relative spread
        let xs: Vec<f64> = (0..100).map(|i| 1e14 + i as f64 * 1e9).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.8e-9 * x + 5.0).collect();
        let f = ols_fit(&xs, &ys).unwrap();
        assert!((f.slope - 1.8e-9).abs() / 1.8e-9 < 1e-9);
    }

    #[test]
    fn theil_sen_robust_to_outliers() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        // corrupt 20% of points badly
        for i in (0..50).step_by(5) {
            ys[i] += 1000.0;
        }
        let ts = theil_sen(&xs, &ys).unwrap();
        assert!((ts.slope - 2.0).abs() < 0.05, "slope {}", ts.slope);
        let ols = ols_fit(&xs, &ys).unwrap();
        assert!(
            (ols.slope - 2.0).abs() > (ts.slope - 2.0).abs(),
            "Theil-Sen must beat OLS under gross outliers"
        );
    }

    #[test]
    fn theil_sen_degenerate() {
        assert!(theil_sen(&[1.0], &[1.0]).is_none());
        assert!(theil_sen(&[2.0, 2.0], &[1.0, 5.0]).is_none());
    }

    #[test]
    fn theil_sen_large_input_subsampling() {
        let n = 2000; // all-pairs ≈ 2e6 > MAX_PAIRS, exercises subsample path
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| -0.5 * x + 3.0).collect();
        let f = theil_sen(&xs, &ys).unwrap();
        assert!((f.slope + 0.5).abs() < 1e-9);
    }

    #[test]
    fn residuals_are_zero_for_exact_fit() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 2.0, 3.0];
        let f = ols_fit(&xs, &ys).unwrap();
        for r in f.residuals(&xs, &ys) {
            assert!(r.abs() < 1e-12);
        }
    }

    #[test]
    fn detrend_endpoints_zeroes_ends() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 + 0.3 * x + (x * 0.9).sin()).collect();
        let d = detrend_endpoints(&xs, &ys).unwrap();
        assert!(d[0].abs() < 1e-12);
        assert!(d[d.len() - 1].abs() < 1e-12);
    }

    #[test]
    fn detrend_degenerate() {
        assert!(detrend_endpoints(&[1.0], &[1.0]).is_none());
        assert!(detrend_endpoints(&[1.0, 1.0], &[0.0, 5.0]).is_none());
    }
}
