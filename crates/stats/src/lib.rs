//! Statistics toolkit for the IMC'04 software-clock reproduction.
//!
//! This crate provides the analysis machinery the paper relies on:
//!
//! * [`allan`] — Allan variance / Allan deviation, the oscillator-stability
//!   characterization of §3.1 (Figure 3) which the paper calls "the
//!   fundamental hardware characterization on which the synchronization is
//!   based".
//! * [`quantile`] — percentile/median/IQR summaries used throughout the
//!   evaluation (Figures 9, 10, 12).
//! * [`histogram`] — fixed-bin histograms (Figure 12).
//! * [`log2hist`] — log2-bucketed histograms with elementwise merge; the
//!   bucketing math behind the `tsc-telemetry` latency histograms.
//! * [`window`] — running and sliding-window minima; the RTT minimum
//!   estimators `rˆ(t)` and `rˆl(t)` of §5.1/§6.2 are built on these.
//! * [`regression`] — ordinary least squares and Theil–Sen slope estimation
//!   for detrending and for reference rate computation.
//! * [`summary`] — streaming mean/variance/extrema.
//!
//! Everything here is deterministic, allocation-conscious and free of any
//! dependency on the rest of the workspace, so it can be reused as a small
//! standalone analysis library.

pub mod allan;
pub mod histogram;
pub mod log2hist;
pub mod quantile;
pub mod regression;
pub mod summary;
pub mod window;

pub use allan::{allan_deviation, allan_variance, AllanPoint};
pub use histogram::Histogram;
pub use log2hist::{log2_bucket_bound, log2_bucket_of, Log2Histogram, LOG2_BUCKETS};
pub use quantile::{iqr, median, percentile, Percentiles};
pub use regression::{ols_fit, theil_sen, LinearFit};
pub use summary::RunningStats;
pub use window::{RunningMin, SlidingMin};
