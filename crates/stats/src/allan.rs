//! Allan variance and Allan deviation.
//!
//! §3.1 of the paper characterizes oscillator stability through the Allan
//! variance of the time-scale-dependent rate `y_τ(t) = (θ(t+τ) − θ(t))/τ`
//! (equation (4)), computed over a log-spaced sweep of `τ` (Figure 3).
//! The square root — the **Allan deviation** — is read as "the typical size
//! of variations of time-scale dependent rate".
//!
//! Given regularly sampled *phase* (time-error) data `x_i = θ(i·τ0)`, the
//! overlapping Allan variance at `τ = m·τ0` is
//!
//! ```text
//! AVAR(τ) = 1 / (2 τ² (N − 2m)) · Σ_{i=0}^{N-2m-1} (x_{i+2m} − 2 x_{i+m} + x_i)²
//! ```
//!
//! which is exactly the Haar-wavelet spectral estimate the paper cites
//! (footnote ‡ of §3.1).

/// One point of an Allan-deviation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllanPoint {
    /// Averaging time-scale τ in seconds.
    pub tau: f64,
    /// Allan deviation at this τ (dimensionless fractional frequency,
    /// multiply by 1e6 for PPM).
    pub adev: f64,
    /// Number of squared second differences averaged.
    pub samples: usize,
}

/// Overlapping Allan variance of phase data `phase` (seconds of time error)
/// sampled every `tau0` seconds, at multiplier `m` (τ = m·τ0).
///
/// Returns `None` when there are not enough samples (needs `N ≥ 2m + 1`)
/// or the arguments are degenerate.
pub fn allan_variance(phase: &[f64], tau0: f64, m: usize) -> Option<f64> {
    if m == 0 || tau0 <= 0.0 || phase.len() < 2 * m + 1 {
        return None;
    }
    let n_terms = phase.len() - 2 * m;
    let tau = m as f64 * tau0;
    let mut acc = 0.0;
    for i in 0..n_terms {
        let d = phase[i + 2 * m] - 2.0 * phase[i + m] + phase[i];
        acc += d * d;
    }
    Some(acc / (2.0 * tau * tau * n_terms as f64))
}

/// Overlapping Allan deviation (square root of [`allan_variance`]).
pub fn allan_deviation(phase: &[f64], tau0: f64, m: usize) -> Option<f64> {
    allan_variance(phase, tau0, m).map(f64::sqrt)
}

/// Computes an Allan-deviation sweep over approximately log-spaced τ values
/// between `tau0` and `tau0 * (N/2)`, with `points_per_decade` points per
/// decade — the format of Figure 3.
pub fn allan_sweep(phase: &[f64], tau0: f64, points_per_decade: usize) -> Vec<AllanPoint> {
    let mut out = Vec::new();
    if phase.len() < 3 || tau0 <= 0.0 || points_per_decade == 0 {
        return out;
    }
    let max_m = (phase.len() - 1) / 2;
    let mut seen = std::collections::BTreeSet::new();
    let decades = (max_m as f64).log10();
    let total_points = (decades * points_per_decade as f64).ceil() as usize + 1;
    for k in 0..=total_points {
        let m = 10f64
            .powf(k as f64 / points_per_decade as f64)
            .round()
            .max(1.0) as usize;
        if m > max_m || !seen.insert(m) {
            continue;
        }
        if let Some(av) = allan_variance(phase, tau0, m) {
            out.push(AllanPoint {
                tau: m as f64 * tau0,
                adev: av.sqrt(),
                samples: phase.len() - 2 * m,
            });
        }
    }
    out
}

/// Converts fractional-frequency samples `y_i` (averaged over `tau0`) into
/// phase samples via cumulative integration, with `x_0 = 0`.
///
/// Handy when an oscillator model naturally produces rate errors rather than
/// accumulated time errors.
pub fn frequency_to_phase(freq: &[f64], tau0: f64) -> Vec<f64> {
    let mut x = Vec::with_capacity(freq.len() + 1);
    let mut acc = 0.0;
    x.push(0.0);
    for &y in freq {
        acc += y * tau0;
        x.push(acc);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// White *frequency* noise has ADEV(τ) ∝ τ^{-1/2}; white *phase* noise
    /// (which dominates the paper's small scales via timestamping error)
    /// has ADEV(τ) ∝ τ^{-1}. A pure linear phase ramp (constant skew) has
    /// ADEV = 0. These canonical shapes validate the implementation.
    #[test]
    fn constant_skew_has_zero_adev() {
        let gamma = 50e-6; // 50 PPM, typical CPU skew per §2.1
        let phase: Vec<f64> = (0..1000).map(|i| gamma * i as f64).collect();
        for m in [1, 2, 5, 10, 100] {
            let a = allan_deviation(&phase, 1.0, m).unwrap();
            assert!(a.abs() < 1e-15, "ADEV of linear ramp must vanish, got {a}");
        }
    }

    #[test]
    fn quadratic_drift_has_constant_allan_deviation_equal_to_drift_rate_tau() {
        // x(t) = 0.5 D t² → second difference = D τ², ADEV = D·τ/√2.
        let d = 1e-9;
        let phase: Vec<f64> = (0..2000).map(|i| 0.5 * d * (i as f64).powi(2)).collect();
        for m in [1usize, 4, 16] {
            let tau = m as f64;
            let a = allan_deviation(&phase, 1.0, m).unwrap();
            let expect = d * tau / 2f64.sqrt();
            assert!(
                (a - expect).abs() / expect < 1e-9,
                "m={m}: {a} vs {expect}"
            );
        }
    }

    #[test]
    fn white_phase_noise_scales_inverse_tau() {
        // Deterministic pseudo-noise: a fixed irrational-rotation sequence
        // behaves like white noise for this purpose without needing rand.
        let phase: Vec<f64> = (0..40000)
            .map(|i| ((i as f64 * 0.618033988749895).fract() - 0.5) * 1e-6)
            .collect();
        let a1 = allan_deviation(&phase, 1.0, 4).unwrap();
        let a2 = allan_deviation(&phase, 1.0, 64).unwrap();
        let ratio = a1 / a2;
        // expect ratio ≈ 16 (1/τ scaling); allow generous tolerance
        assert!(
            ratio > 8.0 && ratio < 32.0,
            "white PM should fall ~1/τ, ratio={ratio}"
        );
    }

    #[test]
    fn insufficient_data_returns_none() {
        assert_eq!(allan_variance(&[0.0, 1.0], 1.0, 1), None);
        assert_eq!(allan_variance(&[0.0; 10], 1.0, 5), None);
        assert_eq!(allan_variance(&[0.0; 11], 1.0, 0), None);
        assert_eq!(allan_variance(&[0.0; 11], 0.0, 1), None);
        assert!(allan_variance(&[0.0; 11], 1.0, 5).is_some());
    }

    #[test]
    fn sweep_is_monotone_in_tau_and_dedups() {
        let phase: Vec<f64> = (0..5000)
            .map(|i| ((i as f64 * 0.7548776662).fract() - 0.5) * 1e-6)
            .collect();
        let sweep = allan_sweep(&phase, 1.0, 4);
        assert!(sweep.len() > 5);
        for w in sweep.windows(2) {
            assert!(w[1].tau > w[0].tau, "taus must strictly increase");
        }
        // all sample counts consistent
        for p in &sweep {
            assert_eq!(p.samples, 5000 - 2 * (p.tau as usize));
        }
    }

    #[test]
    fn sweep_of_tiny_input_is_empty() {
        assert!(allan_sweep(&[0.0, 1.0], 1.0, 4).is_empty());
        assert!(allan_sweep(&[0.0; 100], 1.0, 0).is_empty());
    }

    #[test]
    fn frequency_to_phase_integrates() {
        let freq = [1e-6, 1e-6, -2e-6];
        let phase = frequency_to_phase(&freq, 2.0);
        assert_eq!(phase.len(), 4);
        assert_eq!(phase[0], 0.0);
        assert!((phase[1] - 2e-6).abs() < 1e-18);
        assert!((phase[2] - 4e-6).abs() < 1e-18);
        assert!((phase[3] - 0.0).abs() < 1e-18);
    }

    #[test]
    fn constant_frequency_error_roundtrip() {
        // constant y = γ integrates to a ramp whose ADEV vanishes
        let freq = vec![2e-7; 500];
        let phase = frequency_to_phase(&freq, 1.0);
        let a = allan_deviation(&phase, 1.0, 10).unwrap();
        assert!(a < 1e-18);
    }
}
