//! Running and sliding-window minimum trackers.
//!
//! §5.1 estimates the minimum RTT as `rˆ(t) = min_{i≤t} r_i` — a running
//! minimum that is "highly robust to packet loss". §6.2 additionally keeps a
//! *local* minimum `rˆl` over a sliding window of width `Ts` to detect upward
//! level shifts. [`RunningMin`] and [`SlidingMin`] implement both with O(1)
//! amortized updates (the sliding version uses a monotonic deque).

use std::collections::VecDeque;

/// Running (prefix) minimum over a stream of `f64` values.
#[derive(Debug, Clone, Default)]
pub struct RunningMin {
    min: Option<f64>,
    count: u64,
}

impl RunningMin {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a value; NaN is ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.min = Some(match self.min {
            Some(m) if m <= x => m,
            _ => x,
        });
    }

    /// Current minimum, or `None` before any observation.
    pub fn get(&self) -> Option<f64> {
        self.min
    }

    /// Number of values observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets to a given floor (used after an upward level shift is
    /// confirmed: the algorithm re-bases `rˆ` on the post-shift level).
    pub fn reset_to(&mut self, x: f64) {
        self.min = Some(x);
        self.count = 1;
    }

    /// Clears all state.
    pub fn clear(&mut self) {
        self.min = None;
        self.count = 0;
    }
}

/// Sliding-window minimum over the last `capacity` observations, with O(1)
/// amortized push via a monotonically increasing deque of candidates.
///
/// The paper's windows are nominally time intervals but are "in practice
/// based on maintaining a fixed number of packets calculated by dividing the
/// nominal interval size by the known polling period" (§6.1 "Lost Packets"),
/// which is exactly the count-based semantics implemented here.
#[derive(Debug, Clone)]
pub struct SlidingMin {
    capacity: usize,
    /// (sequence number, value) candidates in increasing value order.
    deque: VecDeque<(u64, f64)>,
    next_seq: u64,
}

impl SlidingMin {
    /// Creates a window holding up to `capacity` most recent values.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        Self {
            capacity,
            deque: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// Pushes a new observation, expiring anything older than `capacity`
    /// samples. NaN is ignored (it still does not consume a slot: NaNs are
    /// treated as missing data).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        // Drop candidates that can never be the minimum again.
        while matches!(self.deque.back(), Some(&(_, v)) if v >= x) {
            self.deque.pop_back();
        }
        self.deque.push_back((seq, x));
        // Expire out-of-window entries.
        let min_seq = self.next_seq.saturating_sub(self.capacity as u64);
        while matches!(self.deque.front(), Some(&(s, _)) if s < min_seq) {
            self.deque.pop_front();
        }
    }

    /// Minimum over the current window, or `None` if empty.
    pub fn get(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    /// Number of observations pushed in total (not the window size).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// `true` once at least `capacity` values have been observed, i.e. the
    /// window is fully populated and its minimum is trustworthy.
    pub fn full(&self) -> bool {
        self.next_seq >= self.capacity as u64
    }

    /// Window capacity in samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears all state (used when re-basing after a confirmed level shift).
    pub fn clear(&mut self) {
        self.deque.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_min_basic() {
        let mut m = RunningMin::new();
        assert_eq!(m.get(), None);
        m.push(3.0);
        m.push(5.0);
        assert_eq!(m.get(), Some(3.0));
        m.push(1.0);
        assert_eq!(m.get(), Some(1.0));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn running_min_ignores_nan() {
        let mut m = RunningMin::new();
        m.push(f64::NAN);
        assert_eq!(m.get(), None);
        m.push(2.0);
        m.push(f64::NAN);
        assert_eq!(m.get(), Some(2.0));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn running_min_reset() {
        let mut m = RunningMin::new();
        m.push(1.0);
        m.reset_to(10.0);
        assert_eq!(m.get(), Some(10.0));
        m.push(12.0);
        assert_eq!(m.get(), Some(10.0));
        m.clear();
        assert_eq!(m.get(), None);
    }

    #[test]
    fn sliding_min_expires_old_values() {
        let mut w = SlidingMin::new(3);
        w.push(1.0);
        w.push(5.0);
        w.push(6.0);
        assert_eq!(w.get(), Some(1.0));
        w.push(7.0); // 1.0 falls out
        assert_eq!(w.get(), Some(5.0));
        w.push(8.0);
        w.push(9.0);
        assert_eq!(w.get(), Some(7.0));
    }

    #[test]
    fn sliding_min_matches_naive() {
        // cross-check against a brute-force window for a pseudo-random series
        let xs: Vec<f64> = (0..500)
            .map(|i| ((i as f64 * 1.618).sin() * 100.0).round())
            .collect();
        let cap = 17;
        let mut w = SlidingMin::new(cap);
        for (i, &x) in xs.iter().enumerate() {
            w.push(x);
            let lo = i.saturating_sub(cap - 1);
            let naive = xs[lo..=i]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            assert_eq!(w.get(), Some(naive), "mismatch at i={i}");
        }
    }

    #[test]
    fn sliding_min_full_flag() {
        let mut w = SlidingMin::new(2);
        assert!(!w.full());
        w.push(1.0);
        assert!(!w.full());
        w.push(1.0);
        assert!(w.full());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SlidingMin::new(0);
    }

    #[test]
    fn sliding_min_detects_upward_shift() {
        // The level-shift use-case: minimum over the window rises once all
        // pre-shift samples have been expired, even with congestion spikes.
        let mut w = SlidingMin::new(10);
        for _ in 0..20 {
            w.push(1.0 + 0.5); // pre-shift with noise
            w.push(1.0);
        }
        assert_eq!(w.get(), Some(1.0));
        for i in 0..20 {
            w.push(2.0 + (i % 3) as f64 * 0.3); // post-shift
        }
        assert_eq!(w.get(), Some(2.0));
    }

    #[test]
    fn sliding_min_clear() {
        let mut w = SlidingMin::new(4);
        w.push(1.0);
        w.clear();
        assert_eq!(w.get(), None);
        assert_eq!(w.pushed(), 0);
    }
}
