//! Fixed-bin histograms (used for the Figure 12 error histograms and for the
//! §2.4 reference timestamping side-mode analysis).

/// A simple equal-width histogram over `[lo, hi)` with an explicit
/// underflow/overflow count, suitable for rendering the normalized
/// frequency plots of Figure 12.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo` or the bounds are non-finite.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "invalid histogram range [{lo}, {hi})"
        );
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Builds a histogram whose range covers the (finite) data exactly.
    /// Returns `None` if there are no finite observations.
    pub fn auto(data: &[f64], nbins: usize) -> Option<Self> {
        let finite: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Widen a degenerate range so max lands inside the top bin.
        let span = (hi - lo).max(f64::EPSILON.max(lo.abs() * 1e-12));
        let mut h = Self::new(lo, lo + span * (1.0 + 1e-9), nbins);
        for &x in &finite {
            h.add(x);
        }
        Some(h)
    }

    /// Records an observation. NaN is ignored; out-of-range values go to the
    /// underflow/overflow counters.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Per-bin relative frequency (sums to ≤ 1; the remainder is
    /// under/overflow mass).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Index of the most populated bin, or `None` if the histogram is empty
    /// inside its range.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &cnt) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)?;
        if cnt == 0 {
            None
        } else {
            Some(idx)
        }
    }

    /// Renders an ASCII bar chart, one line per bin: `center  count  bar`.
    /// Used by the `repro` experiment binaries to print Figure-12-style
    /// histograms in a terminal.
    pub fn ascii(&self, max_bar: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar_len = (c as usize * max_bar) / peak as usize;
            out.push_str(&format!(
                "{:>12.6}  {:>8}  {}\n",
                self.bin_center(i),
                c,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-1.0);
        h.add(2.0);
        h.add(1.0); // hi is exclusive
        h.add(0.0); // lo is inclusive
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn nan_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn auto_covers_data() {
        let data = [-3.0, 5.0, 1.0, 2.0];
        let h = Histogram::auto(&data, 8).unwrap();
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn auto_degenerate_single_value() {
        let h = Histogram::auto(&[7.0, 7.0, 7.0], 4).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn auto_empty_is_none() {
        assert!(Histogram::auto(&[], 4).is_none());
        assert!(Histogram::auto(&[f64::NAN], 4).is_none());
    }

    #[test]
    fn frequencies_sum_to_one_without_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.add(1.5);
        h.add(1.5);
        h.add(0.5);
        assert_eq!(h.mode_bin(), Some(1));
        let empty = Histogram::new(0.0, 1.0, 3);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn bin_centers_and_width() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.add(0.1);
        let s = h.ascii(10);
        assert_eq!(s.lines().count(), 3);
    }
}
