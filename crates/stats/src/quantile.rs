//! Percentile and quantile summaries.
//!
//! The paper reports its offset-error results as percentile families
//! (1%, 25%, 50%, 75%, 99% — Figures 9 and 10) and as median / inter-quartile
//! range pairs (Figure 12). These helpers compute those exact summaries.

/// Returns the `p`-th percentile (`0.0 ..= 100.0`) of `data` using linear
/// interpolation between closest ranks (the "C = 1" / inclusive convention,
/// matching NumPy's default).
///
/// Non-finite entries are filtered out. Returns `None` for an empty input.
///
/// ```
/// use tsc_stats::percentile;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(2.5));
/// assert_eq!(percentile(&v, 0.0), Some(1.0));
/// assert_eq!(percentile(&v, 100.0), Some(4.0));
/// ```
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    Some(percentile_of_sorted(&v, p))
}

/// Percentile of an already-sorted slice of finite values (panics if empty).
/// Useful when many percentiles are taken from the same data: sort once.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile); `None` on empty input.
pub fn median(data: &[f64]) -> Option<f64> {
    percentile(data, 50.0)
}

/// Inter-quartile range (75th − 25th percentile); `None` on empty input.
pub fn iqr(data: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    Some(percentile_of_sorted(&v, 75.0) - percentile_of_sorted(&v, 25.0))
}

/// The five-percentile family the paper plots: 1%, 25%, 50%, 75%, 99%.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 1st percentile (bottom curve in Figures 9/10).
    pub p01: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile (top curve).
    pub p99: f64,
}

impl Percentiles {
    /// Computes all five percentiles from `data` in one sort.
    /// Returns `None` for empty (or all-NaN) input.
    pub fn from_data(data: &[f64]) -> Option<Self> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        Some(Self {
            p01: percentile_of_sorted(&v, 1.0),
            p25: percentile_of_sorted(&v, 25.0),
            p50: percentile_of_sorted(&v, 50.0),
            p75: percentile_of_sorted(&v, 75.0),
            p99: percentile_of_sorted(&v, 99.0),
        })
    }

    /// Inter-quartile range of this family.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// 1–99% spread ("essentially the whole distribution" in the paper's
    /// Figure 12 phrasing, which shows exactly 99% of values).
    pub fn spread_98(&self) -> f64 {
        self.p99 - self.p01
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(median(&[]), None);
        assert_eq!(iqr(&[]), None);
        assert!(Percentiles::from_data(&[]).is_none());
    }

    #[test]
    fn all_nan_returns_none() {
        assert_eq!(median(&[f64::NAN, f64::NAN]), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[42.0], 1.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 99.0), Some(42.0));
        assert_eq!(iqr(&[42.0]), Some(0.0));
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn interpolation() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 10.0), Some(14.0));
        assert_eq!(percentile(&v, 90.0), Some(46.0));
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let v = [1.0, 2.0];
        assert_eq!(percentile(&v, -5.0), Some(1.0));
        assert_eq!(percentile(&v, 500.0), Some(2.0));
    }

    #[test]
    fn percentiles_family_ordering() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7919).sin()).collect();
        let p = Percentiles::from_data(&v).unwrap();
        assert!(p.p01 <= p.p25 && p.p25 <= p.p50 && p.p50 <= p.p75 && p.p75 <= p.p99);
        assert!(p.iqr() >= 0.0);
        assert!(p.spread_98() >= p.iqr());
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(iqr(&v), Some(50.0));
    }

    #[test]
    fn nan_entries_are_filtered() {
        let v = [1.0, f64::NAN, 3.0];
        assert_eq!(median(&v), Some(2.0));
    }
}
