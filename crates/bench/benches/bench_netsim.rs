//! Generation-only benchmarks: how fast can netsim produce exchanges?
//!
//! PR 2 measured fleet replay as *generation-bound* (~1.7 µs per packet in
//! the exchange pipeline against ~0.13–0.22 µs for the clock itself), so
//! the generator's throughput is tracked here as a first-class perf
//! series, separate from the consumers:
//!
//! * `netsim_stream_raw_*` — the fleet generation path: observables-only
//!   stepping ([`tsc_netsim::RawExchanges::fill_batch`]), no DAG sampling,
//!   no truth record.
//! * `netsim_stream_full_*` — the experiment path: full [`SimExchange`]
//!   records with ground truth and the DAG reference timestamp.
//! * `netsim_stream_plus_clock` — generation feeding one clock's batched
//!   ingest, the end-to-end single-clock replay cost.
//! * `osc_advance_*` — the oscillator alone: closed-form deterministic
//!   integration + bridged/batched stochastic sampling, at a dense and a
//!   coarse polling cadence.
//!
//! Set `BENCH_JSON=BENCH_netsim.json` to write machine-readable results
//! (bench name, mean ns, packets/s) for cross-PR tracking.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tsc_netsim::Scenario;
use tsc_osc::Environment;
use tscclock::{ClockConfig, ProcessOutput, RawExchange, TscNtpClock};

/// Polls per measured iteration, kept constant across cadences so the
/// per-packet numbers are directly comparable.
const POLLS: usize = 100_000;

fn scenario(poll: f64) -> Scenario {
    Scenario::baseline(7)
        .with_poll_period(poll)
        .with_duration(poll * POLLS as f64)
}

fn bench_stream_raw(c: &mut Criterion) {
    for poll in [16.0f64, 64.0] {
        let sc = scenario(poll);
        let mut g = c.benchmark_group(format!("netsim_stream_raw_poll{poll:.0}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(POLLS as u64));
        g.bench_function("generate", |b| {
            let mut buf: Vec<RawExchange> = Vec::with_capacity(4096);
            b.iter(|| {
                let mut raw = sc.stream().raw();
                let mut total = 0usize;
                loop {
                    buf.clear();
                    let n = raw.fill_batch(&mut buf, 4096);
                    if n == 0 {
                        break;
                    }
                    total += n;
                }
                std::hint::black_box(total)
            })
        });
        g.finish();
    }
}

fn bench_stream_full(c: &mut Criterion) {
    for poll in [16.0f64, 64.0] {
        let sc = scenario(poll);
        let mut g = c.benchmark_group(format!("netsim_stream_full_poll{poll:.0}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(POLLS as u64));
        g.bench_function("generate", |b| {
            b.iter(|| std::hint::black_box(sc.stream().count()))
        });
        g.finish();
    }
}

fn bench_stream_plus_clock(c: &mut Criterion) {
    let poll = 64.0;
    let sc = scenario(poll);
    let mut g = c.benchmark_group("netsim_stream_plus_clock_poll64");
    g.sample_size(10);
    g.throughput(Throughput::Elements(POLLS as u64));
    g.bench_function("replay", |b| {
        let mut buf: Vec<RawExchange> = Vec::with_capacity(256);
        let mut out: Vec<ProcessOutput> = Vec::with_capacity(256);
        b.iter(|| {
            let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(poll));
            let mut raw = sc.stream().raw();
            let mut produced = 0usize;
            loop {
                buf.clear();
                if raw.fill_batch(&mut buf, 256) == 0 {
                    break;
                }
                out.clear();
                produced += clock.process_batch(&buf, &mut out);
            }
            std::hint::black_box(produced)
        })
    });
    g.finish();
}

fn bench_osc_advance(c: &mut Criterion) {
    for (label, poll) in [("poll16", 16.0f64), ("poll1024", 1024.0)] {
        let mut g = c.benchmark_group(format!("osc_advance_{label}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(POLLS as u64));
        g.bench_function("machine_room", |b| {
            b.iter(|| {
                let mut osc = Environment::MachineRoom.build(3);
                let mut x = 0.0;
                for i in 1..=POLLS {
                    x = osc.advance_to(i as f64 * poll);
                }
                std::hint::black_box(x)
            })
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_stream_raw,
    bench_stream_full,
    bench_stream_plus_clock,
    bench_osc_advance
);
criterion_main!(benches);
