//! Quorum-layer benchmarks: multi-server generation, quorum ingestion
//! (per-server clocks + health + combination), and multi-source fleet
//! replay at 1/2/4/8 threads.
//!
//! Throughput is reported in *per-server exchanges* (one round of a
//! K-server quorum = K exchanges), so the numbers are directly comparable
//! to the single-clock `bench_fleet` rows — the quorum layer's overhead
//! over K independent clocks is the combination + health update, measured
//! here by `quorum_ingest` vs the clock-pipeline benches.
//!
//! Set `BENCH_JSON=BENCH_quorum.json` to write machine-readable results.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tsc_fleet::{
    replay_quorum_fleet, replay_quorum_sequential, total_quorum_delivered, QuorumFleetConfig,
    WorkerPool,
};
use tsc_netsim::MultiServerScenario;
use tsc_quorum::{QuorumClock, QuorumConfig};
use tscclock::RawExchange;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A fleet of `entries` quorums of `k` servers, `rounds` polls each.
fn fleet_cfg(entries: usize, k: usize, rounds: usize) -> QuorumFleetConfig {
    let scenario = MultiServerScenario::baseline(k, 0)
        .with_poll_period(64.0)
        .with_duration(64.0 * rounds as f64);
    QuorumFleetConfig::new(entries, 1, scenario, QuorumConfig::paper_defaults(64.0))
}

/// Pre-generates the per-round inputs of one quorum (delivered polls
/// only) as a flattened row-major batch for the ingest benches.
fn shared_rounds(k: usize, rounds: usize) -> Vec<Option<RawExchange>> {
    let sc = MultiServerScenario::baseline(k, 7)
        .with_poll_period(64.0)
        .with_duration(64.0 * rounds as f64);
    let mut stream = sc.stream();
    let mut buf = Vec::new();
    let mut out = Vec::with_capacity(rounds * k);
    while stream.next_round(&mut buf) {
        out.extend(buf.iter().map(|s| s.delivered.then_some(s.raw)));
    }
    out
}

fn bench_quorum_generation(c: &mut Criterion) {
    // multi-server generation alone: one host timeline, K paths
    for k in [3usize, 5] {
        let rounds = 6000 / k;
        let sc = MultiServerScenario::baseline(k, 3)
            .with_poll_period(64.0)
            .with_duration(64.0 * rounds as f64);
        let mut g = c.benchmark_group("quorum_generation");
        g.sample_size(20);
        g.throughput(Throughput::Elements((rounds * k) as u64));
        g.bench_function(format!("{k}servers_{rounds}rounds"), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                let mut stream = sc.stream();
                let mut n = 0u64;
                while stream.next_round(&mut buf) {
                    n += buf.len() as u64;
                }
                std::hint::black_box(n)
            })
        });
        g.finish();
    }
}

fn bench_quorum_ingest(c: &mut Criterion) {
    // consumers only: K clocks + health + combination over pre-generated
    // rounds, through the batched allocation-free ingest path — the
    // quorum layer's per-exchange cost
    for k in [3usize, 5] {
        let rounds = 6000 / k;
        let input = shared_rounds(k, rounds);
        let mut g = c.benchmark_group("quorum_ingest");
        g.sample_size(20);
        g.throughput(Throughput::Elements((rounds * k) as u64));
        g.bench_function(format!("{k}servers_{rounds}rounds"), |b| {
            let mut out = Vec::with_capacity(rounds);
            b.iter(|| {
                let mut q = QuorumClock::new(k, QuorumConfig::paper_defaults(64.0));
                out.clear();
                q.process_batch(&input, &mut out);
                std::hint::black_box(out.iter().filter(|o| o.combined).count())
            })
        });
        g.finish();
    }
}

fn bench_quorum_fleet(c: &mut Criterion) {
    // the full multi-source fleet engine across thread counts
    let (entries, k, rounds) = (60usize, 3usize, 400usize);
    let cfg = fleet_cfg(entries, k, rounds);
    let exchanges = total_quorum_delivered(&replay_quorum_sequential(&cfg));
    let mut g = c.benchmark_group(format!("quorum_fleet_{entries}entries_{k}servers"));
    g.sample_size(10);
    g.throughput(Throughput::Elements(exchanges));
    for threads in THREAD_COUNTS {
        let cfg = cfg.clone();
        let mut pool = WorkerPool::new(threads);
        g.bench_function(format!("{threads}threads"), |b| {
            b.iter(|| {
                let summaries = replay_quorum_fleet(&mut pool, &cfg);
                std::hint::black_box(summaries.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_quorum_generation,
    bench_quorum_ingest,
    bench_quorum_fleet
);
criterion_main!(benches);
