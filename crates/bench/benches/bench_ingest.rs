//! Per-stage clock-ingest benchmarks: the per-packet cost of the §5–§6
//! pipeline and of each estimator stage in isolation, at the polling
//! periods that matter (16 s = the paper's setting, 64 s = the fleet
//! benches, 1024 s = the coarse-poll fast paths).
//!
//! Two families:
//!
//! * `ingest_pipeline/*` — one `TscNtpClock` filtering a pre-generated
//!   delivered-exchange stream via the batched ingest path: the end-to-end
//!   per-packet ingest cost with generation excluded (the number the fleet
//!   `fleet_ingest_*` rows aggregate over 1000 clocks).
//! * `ingest_stage/*` — history admission alone, then history + one
//!   estimator at a time (offset / global rate / local rate), isolating
//!   where the per-packet budget goes. Stage costs are read by
//!   subtracting the `history` row (see also the `profile_stages` binary
//!   for a one-shot stdout version).
//!
//! Set `BENCH_JSON=BENCH_ingest.json` for machine-readable rows
//! (mean + median ns, packets/s).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tsc_netsim::Scenario;
use tscclock::{
    ClockConfig, GlobalRate, History, LocalRate, OffsetEstimator, ProcessOutput, RawExchange,
    TscNtpClock,
};

/// Pre-generates the delivered exchanges of a baseline scenario.
fn stream(poll: f64, packets: usize) -> Vec<RawExchange> {
    Scenario::baseline(7)
        .with_poll_period(poll)
        .with_duration(poll * packets as f64)
        .stream()
        .raw()
        .collect()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest_pipeline");
    g.sample_size(10);
    for (label, poll, packets) in [
        ("poll16", 16.0, 30_000usize),
        ("poll64", 64.0, 30_000),
        ("poll1024", 1024.0, 30_000),
    ] {
        let exchanges = stream(poll, packets);
        let cfg = ClockConfig::paper_defaults(poll);
        g.throughput(Throughput::Elements(exchanges.len() as u64));
        g.bench_function(label, |b| {
            let mut out: Vec<ProcessOutput> = Vec::with_capacity(exchanges.len());
            b.iter(|| {
                let mut clock = TscNtpClock::new(cfg);
                out.clear();
                clock.process_batch(&exchanges, &mut out);
                std::hint::black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    for (plabel, poll) in [("poll16", 16.0), ("poll64", 64.0)] {
        let exchanges = stream(poll, 30_000);
        let cfg = ClockConfig::paper_defaults(poll);
        let n = exchanges.len() as u64;
        let p = 1.0000524e-9;
        let c_bar = exchanges[0].server_midpoint() - exchanges[0].host_midpoint_counts() * p;
        let mut g = c.benchmark_group(format!("ingest_stage_{plabel}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(n));
        g.bench_function("history", |b| {
            b.iter(|| {
                let mut h = History::new(cfg.top_packets());
                for e in &exchanges {
                    std::hint::black_box(h.push(*e, 0.0));
                }
                h.len()
            })
        });
        g.bench_function("history_offset", |b| {
            b.iter(|| {
                let mut h = History::new(cfg.top_packets());
                let mut off = OffsetEstimator::new();
                for e in &exchanges {
                    h.push(*e, 0.0);
                    let k = h.last().unwrap();
                    std::hint::black_box(off.process(&cfg, &h, &k, p, c_bar, None, false, false));
                }
                h.len()
            })
        });
        g.bench_function("history_rate", |b| {
            b.iter(|| {
                let mut h = History::new(cfg.top_packets());
                let mut gr = GlobalRate::new(cfg.e_star, cfg.warmup_packets);
                for e in &exchanges {
                    h.push(*e, 0.0);
                    let k = h.last().unwrap();
                    std::hint::black_box(gr.process(&h, &k));
                }
                h.len()
            })
        });
        g.bench_function("history_local_rate", |b| {
            b.iter(|| {
                let mut h = History::new(cfg.top_packets());
                let mut lr = LocalRate::new(
                    cfg.tau_bar_packets(),
                    cfg.w_split,
                    cfg.gamma_star,
                    cfg.rate_sanity,
                    (cfg.warmup_packets + cfg.tau_bar_packets()) as u64,
                    cfg.tau_bar / 2.0,
                );
                for e in &exchanges {
                    h.push(*e, 0.0);
                    let k = h.last().unwrap();
                    std::hint::black_box(lr.process(&h, &k, p));
                }
                h.len()
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_pipeline, bench_stages);
criterion_main!(benches);
