//! Serving-plane benchmarks: the PR 10 acceptance numbers.
//!
//! * `serve_inproc_<tag>/batch64` — the headline row: single-threaded
//!   serve loop over the in-process batched transport, answering
//!   pre-encoded client requests off the lock-free snapshot cell **while
//!   a real discipline thread concurrently republishes** (warmed
//!   `TscNtpClock` ingesting a netsim stream, sealing ~2 kHz — two
//!   orders of magnitude above a real 1/16 s discipline cadence).
//!   Acceptance: ≥2 M responses/s.
//! * `serve_inproc_<tag>/batch1` — the same workload one datagram per
//!   batch: the batched-vs-single A/B pair.
//! * `snapshot_read_<tag>/{seqlock,mutex}` — the snapshot-read-vs-mutex
//!   A/B: one lock-free cell read vs one `Mutex` cell read (same payload,
//!   same inlining), both under the same concurrent republisher.
//! * with the `telemetry` feature: `serve_recording_<tag>/{on,off,
//!   overhead_pct}` — interleaved recording-on/off rows on the batch64
//!   workload; the telemetry contract is ≤2 % overhead.
//!
//! Set `BENCH_JSON=…` for machine-readable rows (`BENCH_serve.json`
//! commits one compiled-out + one telemetry run, merged).

use criterion::{criterion_group, criterion_main, record_custom, Criterion, Throughput};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsc_netsim::Scenario;
use tsc_ntp::packet::NtpPacket;
use tsc_ntp::timestamp::NtpTimestamp;
use tsc_serve::{
    BatchBufs, DatagramBatch, MutexCell, PublishPolicy, Publisher, ServeConfig, ServePlane,
    SimTransport, SnapshotCell,
};
use tsc_telemetry as telemetry;
use tscclock::{ClockConfig, RawExchange, TscNtpClock};

fn compiled_tag() -> &'static str {
    if telemetry::TELEMETRY_COMPILED {
        "compiled_on"
    } else {
        "compiled_off"
    }
}

fn to_raw(e: &tsc_netsim::SimExchange) -> RawExchange {
    RawExchange {
        ta_tsc: e.ta_tsc,
        tb: e.tb,
        te: e.te,
        tf_tsc: e.tf_tsc,
    }
}

/// The concurrent discipline loop: ingests the remainder of a netsim
/// stream into a warmed clock and republishes the snapshot after every
/// exchange, paced at ~2 kHz so the 1-core reference VM still gives the
/// serve thread the CPU (a real loop republishes at 1/16 s).
struct Republisher {
    stop: Arc<AtomicBool>,
    published: Arc<AtomicU64>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Republisher {
    fn start(
        cell: Arc<SnapshotCell>,
        mutex_cell: Arc<MutexCell>,
        mut clock: TscNtpClock,
        exchanges: Vec<RawExchange>,
        serve_tsc: Arc<AtomicU64>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let published = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let published2 = Arc::clone(&published);
        let join = std::thread::spawn(move || {
            let mut publisher = Publisher::new(cell, PublishPolicy::default());
            let mut i = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let raw = exchanges[i % exchanges.len()];
                i += 1;
                if let Some(out) = clock.process(raw) {
                    publisher.observe(&out);
                }
                publisher.publish_clock(&clock, raw.tf_tsc);
                // Mirror into the mutex strawman so its A/B read row sees
                // identical write pressure.
                if let Some(snap) = publisher.cell().read() {
                    mutex_cell.publish(&snap);
                }
                serve_tsc.store(raw.tf_tsc, Ordering::Relaxed);
                published2.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        Self {
            stop,
            published,
            join: Some(join),
        }
    }

    fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        self.published.load(Ordering::Relaxed)
    }
}

struct Workload {
    cell: Arc<SnapshotCell>,
    mutex_cell: Arc<MutexCell>,
    serve_tsc: Arc<AtomicU64>,
    requests: Vec<[u8; 48]>,
    republisher: Republisher,
}

/// Warm a clock on a poll-16 baseline stream, hand the tail of the stream
/// to the republisher thread, and pre-encode the request set.
fn setup(n_requests: usize) -> Workload {
    let sc = Scenario::baseline(90)
        .with_poll_period(16.0)
        .with_duration(40.0 * 86_400.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    let mut stream = sc.stream();
    let mut warm_tsc = 0u64;
    let mut warmed = 0;
    let cell = Arc::new(SnapshotCell::new());
    let mutex_cell = Arc::new(MutexCell::new());
    let mut publisher = Publisher::new(Arc::clone(&cell), PublishPolicy::default());
    while warmed < 3_000 {
        let e = stream.step().expect("stream long enough");
        if e.lost {
            continue;
        }
        if let Some(out) = clock.process(to_raw(&e)) {
            publisher.observe(&out);
        }
        warm_tsc = e.tf_tsc;
        warmed += 1;
    }
    assert!(publisher.publish_clock(&clock, warm_tsc), "clock must be servable");
    if let Some(snap) = cell.read() {
        mutex_cell.publish(&snap);
    }

    // Remaining deliverable exchanges feed the concurrent republisher.
    let mut tail = Vec::new();
    while let Some(e) = stream.step() {
        if !e.lost {
            tail.push(to_raw(&e));
        }
    }
    assert!(tail.len() > 10_000);

    let requests: Vec<[u8; 48]> = (0..n_requests)
        .map(|i| {
            NtpPacket::client_request(
                NtpTimestamp::from_unix_seconds(1.0e5 + i as f64 * 1e-3),
                4,
            )
            .encode()
        })
        .collect();

    let serve_tsc = Arc::new(AtomicU64::new(warm_tsc));
    let republisher = Republisher::start(
        Arc::clone(&cell),
        Arc::clone(&mutex_cell),
        clock,
        tail,
        Arc::clone(&serve_tsc),
    );
    Workload {
        cell,
        mutex_cell,
        serve_tsc,
        requests,
        republisher,
    }
}

/// One pass: push every request through the plane in `batch`-sized
/// batches. Returns (responses, refusals).
fn serve_run(
    plane: &mut ServePlane,
    transport: &mut SimTransport,
    rx: &mut BatchBufs,
    tx: &mut BatchBufs,
    requests: &[[u8; 48]],
    batch: usize,
    tsc_shared: &AtomicU64,
) -> (u64, u64) {
    let before = plane.stats;
    let mut jitter = 0u64;
    let mut tsc = move || {
        jitter = jitter.wrapping_add(97) & 0xFFF;
        tsc_shared.load(Ordering::Relaxed) + jitter
    };
    for chunk in requests.chunks(batch) {
        for r in chunk {
            transport.push_request(r);
        }
        let n = transport.recv_batch(rx, batch).unwrap();
        plane.serve_batch(rx, n, tx, &mut tsc);
        transport.send_batch(tx, n).unwrap();
    }
    (
        plane.stats.responses - before.responses,
        plane.stats.refusals - before.refusals,
    )
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

fn bench_serve_plane(c: &mut Criterion) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test" || a == "-t");
    let tag = compiled_tag();

    let n_requests = if test_mode { 512 } else { 65_536 };
    let w = setup(n_requests);
    let mut transport = SimTransport::new();
    transport.keep_responses = false;
    let mut rx = BatchBufs::new(64);
    let mut tx = BatchBufs::new(64);

    if test_mode {
        let mut plane = ServePlane::new(Arc::clone(&w.cell), ServeConfig::default());
        let (served, refused) = serve_run(
            &mut plane,
            &mut transport,
            &mut rx,
            &mut tx,
            &w.requests,
            64,
            &w.serve_tsc,
        );
        assert_eq!(refused, 0, "warmed snapshot must serve");
        assert_eq!(served, n_requests as u64);
        assert!(w.cell.read().unwrap().synced);
        assert!(w.mutex_cell.read().unwrap().synced);
        w.republisher.stop();
        println!("test bench serve_inproc/batch64 ... ok");
        return;
    }

    // Batched vs single-datagram A/B, same requests, same concurrent
    // republisher. Round 0 of each arm is warm-up and discarded.
    const ROUNDS: usize = 13;
    for batch in [64usize, 1] {
        let mut plane = ServePlane::new(Arc::clone(&w.cell), ServeConfig::default());
        let mut times = Vec::new();
        let mut served_total = 0u64;
        for round in 0..ROUNDS {
            let t0 = Instant::now();
            let (served, refused) = serve_run(
                &mut plane,
                &mut transport,
                &mut rx,
                &mut tx,
                &w.requests,
                batch,
                &w.serve_tsc,
            );
            let dt = t0.elapsed().as_nanos() as f64;
            assert_eq!(refused, 0, "no refusals expected mid-run");
            assert_eq!(served, n_requests as u64);
            served_total = served;
            if round > 0 {
                times.push(dt);
            }
        }
        let med = median(times.clone());
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        record_custom(
            &format!("serve_inproc_{tag}/batch{batch}"),
            mean,
            med,
            times.len() as u64,
            Some(Throughput::Elements(served_total)),
        );
        println!(
            "serve_inproc_{tag}/batch{batch}: {:.2} M responses/s (median)",
            served_total as f64 / med * 1e3
        );
    }

    // Recording-on/off A/B (meaningful with the telemetry feature; the
    // compiled-out rows document the no-op floor). Interleaved, order
    // swapped per round.
    let mut on_ns = Vec::new();
    let mut off_ns = Vec::new();
    let mut plane = ServePlane::new(Arc::clone(&w.cell), ServeConfig::default());
    for round in 0..ROUNDS {
        let order = if round % 2 == 0 { [true, false] } else { [false, true] };
        let mut pair = [0.0f64; 2]; // [off, on]
        for rec in order {
            telemetry::set_recording(rec);
            let t0 = Instant::now();
            serve_run(
                &mut plane,
                &mut transport,
                &mut rx,
                &mut tx,
                &w.requests,
                64,
                &w.serve_tsc,
            );
            pair[rec as usize] = t0.elapsed().as_nanos() as f64;
        }
        telemetry::set_recording(true);
        if round > 0 {
            on_ns.push(pair[1]);
            off_ns.push(pair[0]);
        }
    }
    let on_med = median(on_ns.clone());
    let off_med = median(off_ns.clone());
    let overhead_pct = (on_med / off_med - 1.0) * 100.0;
    record_custom(
        &format!("serve_recording_{tag}/on"),
        on_ns.iter().sum::<f64>() / on_ns.len() as f64,
        on_med,
        on_ns.len() as u64,
        Some(Throughput::Elements(n_requests as u64)),
    );
    record_custom(
        &format!("serve_recording_{tag}/off"),
        off_ns.iter().sum::<f64>() / off_ns.len() as f64,
        off_med,
        off_ns.len() as u64,
        Some(Throughput::Elements(n_requests as u64)),
    );
    record_custom(
        &format!("serve_recording_{tag}/overhead_pct"),
        overhead_pct,
        overhead_pct,
        on_ns.len() as u64,
        None,
    );
    println!("serve_recording_{tag}: overhead {overhead_pct:.2} %");

    // Snapshot-read vs mutex-read A/B under the live republisher.
    {
        let mut g = c.benchmark_group(format!("snapshot_read_{tag}"));
        g.sample_size(20);
        let cell = Arc::clone(&w.cell);
        g.bench_function("seqlock", |b| {
            b.iter(|| criterion::black_box(cell.read()))
        });
        let mcell = Arc::clone(&w.mutex_cell);
        g.bench_function("mutex", |b| {
            b.iter(|| criterion::black_box(mcell.read()))
        });
        g.finish();
    }

    let sealed = w.republisher.stop();
    assert!(sealed > 100, "republisher only sealed {sealed} eras");
    println!("concurrent republisher sealed {sealed} snapshots during the bench");
}

criterion_group!(benches, bench_serve_plane);
criterion_main!(benches);
