//! Fleet replay benchmarks: aggregate packets/s for fleets of independent
//! clocks at 1/2/4/8 threads.
//!
//! Two families:
//!
//! * `fleet_replay_*` — the full engine: borrow-streamed scenario
//!   generation feeding the batched ingest path, as production fleet
//!   replay runs it. Generation (ChaCha-driven delay/oscillator sampling)
//!   and filtering share the budget.
//! * `fleet_ingest_*` — consumers only: every clock filters the same
//!   pre-generated exchange stream, isolating the per-packet cost of the
//!   clock pipeline itself at fleet scale.
//!
//! Thread scaling requires physical cores: on a single-core host the
//! multi-thread rows measure pool overhead (expect ≈1×), and aggregate
//! throughput equals single-thread throughput.
//!
//! Set `BENCH_JSON=BENCH_fleet.json` to write machine-readable results
//! (bench name, mean ns, packets/s) for cross-PR tracking.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tsc_fleet::{
    replay_fleet, replay_population, replay_population_sequential, replay_sequential,
    total_delivered, FleetConfig, Megabatch, PopulationConfig, WorkerPool,
};
use tsc_netsim::Scenario;
use tscclock::{ClockConfig, RawExchange, TscNtpClock};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Fleet of `clocks` clocks, each polling every 64 s for `polls` polls.
fn fleet_cfg(clocks: usize, polls: usize) -> FleetConfig {
    let scenario = Scenario::baseline(0)
        .with_poll_period(64.0)
        .with_duration(64.0 * polls as f64);
    FleetConfig::new(clocks, 1, scenario, ClockConfig::paper_defaults(64.0))
}

fn bench_fleet_replay(c: &mut Criterion) {
    // (fleet size, polls per clock): total work is held near 300k packets
    // so every row fits the measurement budget.
    for (clocks, polls) in [(100usize, 3000usize), (1000, 300), (10_000, 30)] {
        let cfg = fleet_cfg(clocks, polls);
        let delivered = total_delivered(&replay_sequential(&cfg));
        let mut g = c.benchmark_group(format!("fleet_replay_{clocks}clocks"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(delivered));
        for threads in THREAD_COUNTS {
            let cfg = cfg.clone();
            let mut pool = WorkerPool::new(threads);
            g.bench_function(format!("{threads}threads"), |b| {
                b.iter(|| {
                    let summaries = replay_fleet(&mut pool, &cfg);
                    std::hint::black_box(total_delivered(&summaries))
                })
            });
        }
        g.finish();
    }
}

/// Pre-generates one delivered-exchange stream for the ingest benches.
fn shared_stream(polls: usize, poll_period: f64) -> Vec<RawExchange> {
    Scenario::baseline(3)
        .with_poll_period(poll_period)
        .with_duration(poll_period * polls as f64)
        .stream()
        .raw()
        .collect()
}

/// Lanes per SoA megabatch stripe in the ingest benches (the fleet
/// engine's default stripe width).
const STRIPE: usize = 8;

fn bench_fleet_ingest(c: &mut Criterion) {
    let clocks = 1000usize;
    for (label, poll, polls) in [("poll64", 64.0, 300usize), ("poll1024", 1024.0, 300)] {
        let exchanges = std::sync::Arc::new(shared_stream(polls, poll));
        let total = (clocks * exchanges.len()) as u64;
        let mut g = c.benchmark_group(format!("fleet_ingest_{clocks}clocks_{label}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(total));
        for threads in THREAD_COUNTS {
            let mut pool = WorkerPool::new(threads);
            let exchanges = std::sync::Arc::clone(&exchanges);
            let cc = ClockConfig::paper_defaults(poll);
            let stripes = clocks.div_ceil(STRIPE);
            g.bench_function(format!("{threads}threads"), |b| {
                b.iter(|| {
                    let exchanges = std::sync::Arc::clone(&exchanges);
                    let produced =
                        pool.run(stripes, (stripes / (8 * threads)).max(1), move |s| {
                            let count = STRIPE.min(clocks - s * STRIPE);
                            let mut stripe_clocks: Vec<TscNtpClock> =
                                (0..count).map(|_| TscNtpClock::new(cc)).collect();
                            let lanes: Vec<&[RawExchange]> = vec![exchanges.as_slice(); count];
                            let mut mb = Megabatch::new();
                            let mut produced = 0u64;
                            mb.run(&mut stripe_clocks, &lanes, |_, _| produced += 1);
                            produced
                        });
                    std::hint::black_box(produced.iter().sum::<u64>())
                })
            });
        }
        g.finish();
    }
}

/// Lifecycle population replay: heterogeneous profiles, an outage, and
/// client-scheduled (on-demand) exchanges — the robustness engine's cost
/// relative to bare fixed-cadence fleet replay.
fn bench_population_replay(c: &mut Criterion) {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(4.0 * 3600.0)
        .with_outage(7200.0, 7200.0 + 600.0);
    let cfg = PopulationConfig::new(200, 1, scenario, ClockConfig::paper_defaults(16.0));
    let requests: u64 = replay_population_sequential(&cfg)
        .clients
        .iter()
        .map(|cl| cl.counters.0)
        .sum();
    let mut g = c.benchmark_group("population_replay_200clients");
    g.sample_size(10);
    g.throughput(Throughput::Elements(requests));
    for threads in THREAD_COUNTS {
        let cfg = cfg.clone();
        let mut pool = WorkerPool::new(threads);
        g.bench_function(format!("{threads}threads"), |b| {
            b.iter(|| {
                let summary = replay_population(&mut pool, &cfg);
                std::hint::black_box(summary.digest())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fleet_replay,
    bench_fleet_ingest,
    bench_population_replay
);
criterion_main!(benches);
