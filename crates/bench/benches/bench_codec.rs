//! Benches the NTP wire codec and the statistics kernels (Allan variance,
//! sliding minima) that the experiments lean on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tsc_ntp::{NtpPacket, NtpTimestamp};
use tsc_stats::{allan_variance, SlidingMin};

fn bench_codec(c: &mut Criterion) {
    let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(1.7e9), 4);
    let resp = NtpPacket::server_response(
        &req,
        NtpTimestamp::from_unix_seconds(1.7e9 + 0.5),
        NtpTimestamp::from_unix_seconds(1.7e9 + 0.50002),
        *b"GPS\0",
    );
    let bytes = resp.encode();
    let mut g = c.benchmark_group("ntp_codec");
    g.throughput(Throughput::Bytes(48));
    g.bench_function("encode", |b| {
        b.iter(|| std::hint::black_box(std::hint::black_box(&resp).encode()))
    });
    g.bench_function("decode", |b| {
        b.iter(|| NtpPacket::decode(std::hint::black_box(&bytes)).expect("valid"))
    });
    g.bench_function("validate_response", |b| {
        b.iter(|| std::hint::black_box(&resp).validate_response(std::hint::black_box(&req)))
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    // a week of 16 s phase samples
    let phase: Vec<f64> = (0..37_800)
        .map(|i| ((i as f64 * 0.618).fract() - 0.5) * 1e-6 + i as f64 * 50e-6)
        .collect();
    let mut g = c.benchmark_group("stats_kernels");
    g.bench_function("allan_variance_m64_week", |b| {
        b.iter(|| allan_variance(std::hint::black_box(&phase), 16.0, 64))
    });
    g.bench_function("sliding_min_push_156", |b| {
        let mut w = SlidingMin::new(156);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            w.push(((i as f64 * 0.754).fract()) * 1e-3);
            std::hint::black_box(w.get())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_stats);
criterion_main!(benches);
