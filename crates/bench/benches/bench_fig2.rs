//! Bench: regenerates Figure 2 end-to-end (reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use tsc_experiments::{run_by_id, ExpOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    let id = "fig2";
    {
        g.bench_function(id, |b| {
            b.iter(|| {
                let r = run_by_id(id, ExpOptions { seed: 42, full: false })
                    .expect("known id");
                std::hint::black_box(r.metrics.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
