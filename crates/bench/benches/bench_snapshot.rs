//! Snapshot codec benchmarks: what crash-safety costs.
//!
//! Two families:
//!
//! * `snapshot_seal_*` / `snapshot_restore_*` — per-component cost of
//!   sealing a warmed component into its envelope and of validating +
//!   rebuilding it from bytes (clock, 3-server quorum, lifecycle client).
//!   Throughput is envelope bytes/s; the interesting number for a
//!   checkpointing daemon is the per-call latency.
//! * `fleet_checkpointed_*` — the end-to-end checkpointing tax on fleet
//!   replay: the same 300k-packet fleet replayed through the
//!   crash-recovery engine at checkpoint cadences 0 (disabled), 1k and
//!   10k packets. Cadence 0 bounds the engine's wrapper overhead vs
//!   `replay_fleet`; the other rows price periodic `snapshot()` calls.
//!
//! Set `BENCH_JSON=BENCH_snapshot.json` to write machine-readable rows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tsc_fleet::{
    replay_fleet_checkpointed, total_delivered, CrashPlan, FleetConfig, LifecycleClient,
    LifecycleConfig, WorkerPool,
};
use tsc_netsim::{MultiServerScenario, OnDemandSim, RoundSample, Scenario};
use tsc_quorum::{QuorumClock, QuorumConfig};
use tscclock::{ClockConfig, RawExchange, TscNtpClock};

/// A clock warmed by a simulated day at 16 s polling — rings, deques and
/// rolling sums all populated, so the envelope is full-size.
fn warmed_clock() -> TscNtpClock {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(86_400.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    let mut stream = scenario.stream().raw();
    let mut buf = Vec::new();
    let mut out = Vec::new();
    while stream.fill_batch(&mut buf, 512) > 0 {
        clock.process_batch(&buf, &mut out);
        buf.clear();
    }
    clock
}

fn warmed_quorum() -> QuorumClock {
    let scenario = MultiServerScenario::baseline(3, 0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 500.0);
    let mut q = QuorumClock::new(3, QuorumConfig::paper_defaults(64.0));
    let mut stream = scenario.stream();
    let mut samples: Vec<RoundSample> = Vec::new();
    let mut round: Vec<Option<RawExchange>> = Vec::new();
    while stream.next_round(&mut samples) {
        round.clear();
        round.extend(samples.iter().map(|s| s.delivered.then_some(s.raw)));
        q.process_round(&round);
    }
    q
}

fn warmed_client() -> LifecycleClient {
    let scenario = Scenario::baseline(0)
        .with_poll_period(16.0)
        .with_duration(4.0 * 3600.0)
        .with_outage(7200.0, 7200.0 + 600.0);
    let lc = LifecycleConfig::defaults(16.0);
    let mut client = LifecycleClient::new(lc, ClockConfig::paper_defaults(16.0), 7, 0.0);
    let mut sim = OnDemandSim::new(&scenario);
    let nominal_period = 1.0 / sim.tsc_freq_hz();
    loop {
        let t = client.next_send().max(sim.earliest_next());
        if t >= scenario.duration {
            break;
        }
        client.end_cooldown(t);
        client.note_request();
        let e = sim.exchange_at(t);
        if e.lost || e.truth.tf - t > lc.timeout {
            client.on_timeout(t + lc.timeout);
        } else {
            let raw = RawExchange {
                ta_tsc: e.ta_tsc,
                tb: e.tb,
                te: e.te,
                tf_tsc: e.tf_tsc,
            };
            client.on_response(e.truth.tf, raw, nominal_period);
        }
    }
    client
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let clock = warmed_clock();
    let quorum = warmed_quorum();
    let client = warmed_client();

    let mut g = c.benchmark_group("snapshot_seal");
    for (name, blob_len, seal) in [
        ("clock", clock.snapshot().len(), &(|| clock.snapshot()) as &dyn Fn() -> Vec<u8>),
        ("quorum3", quorum.snapshot().len(), &(|| quorum.snapshot())),
        ("lifecycle", client.snapshot().len(), &(|| client.snapshot())),
    ] {
        g.throughput(Throughput::Bytes(blob_len as u64));
        g.bench_function(name, |b| b.iter(|| std::hint::black_box(seal().len())));
    }
    g.finish();

    let clock_blob = clock.snapshot();
    let quorum_blob = quorum.snapshot();
    let client_blob = client.snapshot();
    let mut g = c.benchmark_group("snapshot_restore");
    g.throughput(Throughput::Bytes(clock_blob.len() as u64));
    g.bench_function("clock", |b| {
        b.iter(|| std::hint::black_box(TscNtpClock::restore(&clock_blob).unwrap()))
    });
    g.throughput(Throughput::Bytes(quorum_blob.len() as u64));
    g.bench_function("quorum3", |b| {
        b.iter(|| std::hint::black_box(QuorumClock::restore(&quorum_blob).unwrap()))
    });
    g.throughput(Throughput::Bytes(client_blob.len() as u64));
    g.bench_function("lifecycle", |b| {
        b.iter(|| std::hint::black_box(LifecycleClient::restore(&client_blob).unwrap()))
    });
    g.finish();
}

/// The checkpointing tax on fleet replay: 20 clocks × 15k polls ≈ 300k
/// packets, replayed through the crash-recovery engine (no crashes) at
/// three checkpoint cadences.
fn bench_fleet_checkpointing(c: &mut Criterion) {
    let scenario = Scenario::baseline(0)
        .with_poll_period(64.0)
        .with_duration(64.0 * 15_000.0);
    let cfg = FleetConfig::new(20, 1, scenario, ClockConfig::paper_defaults(64.0));
    let mut pool = WorkerPool::new(4);
    let (summaries, _) = replay_fleet_checkpointed(&mut pool, &cfg, 0, &CrashPlan::none());
    let delivered = total_delivered(&summaries);
    let mut g = c.benchmark_group("fleet_checkpointed_20clocks");
    g.sample_size(10);
    g.throughput(Throughput::Elements(delivered));
    for (label, every) in [("cadence0", 0u64), ("cadence1k", 1_000), ("cadence10k", 10_000)] {
        let cfg = cfg.clone();
        g.bench_function(label, |b| {
            b.iter(|| {
                let (summaries, stats) =
                    replay_fleet_checkpointed(&mut pool, &cfg, every, &CrashPlan::none());
                std::hint::black_box((total_delivered(&summaries), stats.checkpoints))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_snapshot_codec, bench_fleet_checkpointing);
criterion_main!(benches);
