//! Benches the online clock pipeline itself: per-packet processing cost,
//! clock reads, and the component estimators — the numbers that matter for
//! a production daemon (one packet per 16–1024 s leaves enormous headroom,
//! but the library should still be cheap enough for dense offline replay of
//! months of traces).
//!
//! The `*_reference` benches run the preserved pre-optimization pipeline
//! (`tscclock::reference`, naive O(window) rescans) over identical inputs,
//! so the speedup of the O(1)-amortized rework is measured directly. The
//! month-long replays exercise the top-window slides and re-basing paths
//! that a single day at 16 s polling never reaches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tsc_netsim::Scenario;
use tscclock::reference::{RefHistory, ReferenceClock};
use tscclock::{ClockConfig, History, RawExchange, TscNtpClock};

/// Pre-generates `days` of exchanges (the simulator is not measured).
fn days_of_exchanges(seed: u64, poll: f64, days: f64) -> Vec<RawExchange> {
    Scenario::baseline(seed)
        .with_poll_period(poll)
        .with_duration(days * 86_400.0)
        .run()
        .into_iter()
        .filter(|e| !e.lost)
        .map(|e| RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        })
        .collect()
}

fn day_of_exchanges(seed: u64, poll: f64) -> Vec<RawExchange> {
    days_of_exchanges(seed, poll, 1.0)
}

fn bench_process(c: &mut Criterion) {
    let exchanges = day_of_exchanges(1, 16.0);
    let mut g = c.benchmark_group("clock_pipeline");
    g.throughput(Throughput::Elements(exchanges.len() as u64));
    g.bench_function("process_one_day_of_packets", |b| {
        b.iter_batched(
            || TscNtpClock::new(ClockConfig::paper_defaults(16.0)),
            |mut clock| {
                for e in &exchanges {
                    std::hint::black_box(clock.process(*e));
                }
                clock.status().packets
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("process_one_day_of_packets_reference", |b| {
        b.iter_batched(
            || ReferenceClock::new(ClockConfig::paper_defaults(16.0)),
            |mut clock| {
                let mut n = 0u64;
                for e in &exchanges {
                    if std::hint::black_box(clock.process(*e)).is_some() {
                        n += 1;
                    }
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Month-of-traces replay: 30 days of polling. At 16 s this is ~162k
/// packets against the paper-default one-week top window (37 800 packets),
/// so the window slides repeatedly and the minimum-maintenance / re-basing
/// machinery is fully engaged; at 1024 s it covers the coarse-polling
/// configuration of Figure 9(c).
fn bench_month_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_pipeline_month");
    g.sample_size(10);
    for (label, poll) in [("poll16", 16.0), ("poll1024", 1024.0)] {
        let exchanges = days_of_exchanges(11, poll, 30.0);
        g.throughput(Throughput::Elements(exchanges.len() as u64));
        g.bench_function(format!("process_one_month_{label}"), |b| {
            b.iter_batched(
                || TscNtpClock::new(ClockConfig::paper_defaults(poll)),
                |mut clock| {
                    for e in &exchanges {
                        std::hint::black_box(clock.process(*e));
                    }
                    clock.status().packets
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("process_one_month_{label}_reference"), |b| {
            b.iter_batched(
                || ReferenceClock::new(ClockConfig::paper_defaults(poll)),
                |mut clock| {
                    let mut n = 0u64;
                    for e in &exchanges {
                        if std::hint::black_box(clock.process(*e)).is_some() {
                            n += 1;
                        }
                    }
                    n
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// `History::push` in isolation, at full window with continuous slides and
/// a worst-case descending-RTT stream (every packet a new minimum: the
/// seed implementation swept the whole deque per packet here).
fn bench_history_push(c: &mut Criterion) {
    let cap = ClockConfig::paper_defaults(16.0).top_packets(); // 37 800
    let n = 8 * cap; // several slides per run
    let mk = |i: u64, rtt: u64| RawExchange {
        ta_tsc: i * 16_000_000_000,
        tb: i as f64 * 16.0 + 0.0005,
        te: i as f64 * 16.0 + 0.00052,
        tf_tsc: i * 16_000_000_000 + rtt,
    };
    let mut g = c.benchmark_group("history_push");
    g.throughput(Throughput::Elements(n as u64));
    // stationary RTTs: the common case
    g.bench_function("stationary", |b| {
        b.iter_batched(
            || History::new(cap),
            |mut h| {
                for i in 0..n as u64 {
                    let rtt = 900_000 + (i * 2_654_435_761) % 300_000; // noise
                    std::hint::black_box(h.push(mk(i, rtt), 0.0));
                }
                h.len()
            },
            BatchSize::SmallInput,
        )
    });
    // slowly descending minima: every ~16th packet improves r̂
    g.bench_function("descending_minima", |b| {
        b.iter_batched(
            || History::new(cap),
            |mut h| {
                for i in 0..n as u64 {
                    let base = 2_000_000u64.saturating_sub(i * 4);
                    let rtt = base + if i % 16 == 0 { 0 } else { 500_000 };
                    std::hint::black_box(h.push(mk(i, rtt), 0.0));
                }
                h.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("descending_minima_reference", |b| {
        b.iter_batched(
            || RefHistory::new(cap),
            |mut h| {
                for i in 0..n as u64 {
                    let base = 2_000_000u64.saturating_sub(i * 4);
                    let rtt = base + if i % 16 == 0 { 0 } else { 500_000 };
                    std::hint::black_box(h.push(mk(i, rtt), 0.0));
                }
                h.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_reads(c: &mut Criterion) {
    let exchanges = day_of_exchanges(2, 16.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    for e in &exchanges {
        clock.process(*e);
    }
    let tsc = exchanges.last().unwrap().tf_tsc;
    let mut g = c.benchmark_group("clock_reads");
    g.bench_function("absolute_time", |b| {
        b.iter(|| std::hint::black_box(clock.absolute_time(std::hint::black_box(tsc))))
    });
    g.bench_function("difference_seconds", |b| {
        b.iter(|| {
            std::hint::black_box(
                clock.difference_seconds(std::hint::black_box(tsc - 1_000_000), tsc),
            )
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.bench_function("one_simulated_day_poll16", |b| {
        b.iter(|| {
            let n = Scenario::baseline(3)
                .with_poll_period(16.0)
                .with_duration(86_400.0)
                .run()
                .len();
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_process,
    bench_month_replay,
    bench_history_push,
    bench_reads,
    bench_simulator
);
criterion_main!(benches);
