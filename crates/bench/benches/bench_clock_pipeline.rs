//! Benches the online clock pipeline itself: per-packet processing cost,
//! clock reads, and the component estimators — the numbers that matter for
//! a production daemon (one packet per 16–1024 s leaves enormous headroom,
//! but the library should still be cheap enough for dense offline replay of
//! months of traces).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tsc_netsim::Scenario;
use tscclock::{ClockConfig, RawExchange, TscNtpClock};

/// Pre-generates a day of exchanges (the simulator is not measured).
fn day_of_exchanges(seed: u64, poll: f64) -> Vec<RawExchange> {
    Scenario::baseline(seed)
        .with_poll_period(poll)
        .with_duration(86_400.0)
        .run()
        .into_iter()
        .filter(|e| !e.lost)
        .map(|e| RawExchange {
            ta_tsc: e.ta_tsc,
            tb: e.tb,
            te: e.te,
            tf_tsc: e.tf_tsc,
        })
        .collect()
}

fn bench_process(c: &mut Criterion) {
    let exchanges = day_of_exchanges(1, 16.0);
    let mut g = c.benchmark_group("clock_pipeline");
    g.throughput(Throughput::Elements(exchanges.len() as u64));
    g.bench_function("process_one_day_of_packets", |b| {
        b.iter_batched(
            || TscNtpClock::new(ClockConfig::paper_defaults(16.0)),
            |mut clock| {
                for e in &exchanges {
                    std::hint::black_box(clock.process(*e));
                }
                clock.status().packets
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_reads(c: &mut Criterion) {
    let exchanges = day_of_exchanges(2, 16.0);
    let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
    for e in &exchanges {
        clock.process(*e);
    }
    let tsc = exchanges.last().unwrap().tf_tsc;
    let mut g = c.benchmark_group("clock_reads");
    g.bench_function("absolute_time", |b| {
        b.iter(|| std::hint::black_box(clock.absolute_time(std::hint::black_box(tsc))))
    });
    g.bench_function("difference_seconds", |b| {
        b.iter(|| {
            std::hint::black_box(
                clock.difference_seconds(std::hint::black_box(tsc - 1_000_000), tsc),
            )
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.bench_function("one_simulated_day_poll16", |b| {
        b.iter(|| {
            let n = Scenario::baseline(3)
                .with_poll_period(16.0)
                .with_duration(86_400.0)
                .run()
                .len();
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_process, bench_reads, bench_simulator);
criterion_main!(benches);
