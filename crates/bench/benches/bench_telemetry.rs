//! Telemetry-plane cost benchmarks.
//!
//! Two families, both compile-state aware (bench ids carry a
//! `compiled_on` / `compiled_off` tag so rows from a `--features
//! telemetry` run and a default run can live in one JSON report):
//!
//! * `telemetry_prims_*` — the primitives in isolation: one relaxed
//!   counter add, one log₂ histogram record, one flight-recorder ring
//!   push. Compiled out these measure the no-op surface (≈0 ns).
//! * `fleet_ingest_1000clocks_poll64/…` — the acceptance A/B: the exact
//!   `bench_fleet` ingest workload (1000 clocks × 300 polls through the
//!   SoA megabatch engine) with recording **on** vs **off**, arms
//!   interleaved round-robin and the order swapped every round so drift
//!   (thermal, scheduler) cancels; round 0 is warm-up and discarded;
//!   medians are compared. The PR's bar is ≤2 % overhead with telemetry
//!   enabled and recording on.
//!
//! Set `BENCH_JSON=…` for machine-readable rows (`BENCH_telemetry.json`
//! commits one enabled + one compiled-out run, merged).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;
use tsc_fleet::{Megabatch, WorkerPool};
use tsc_netsim::Scenario;
use tsc_telemetry as telemetry;
use tscclock::{ClockConfig, RawExchange, TscNtpClock};

fn compiled_tag() -> &'static str {
    if telemetry::TELEMETRY_COMPILED {
        "compiled_on"
    } else {
        "compiled_off"
    }
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("telemetry_prims_{}", compiled_tag()));
    g.sample_size(20);
    g.bench_function("counter_add", |b| {
        b.iter(|| telemetry::add(telemetry::Ctr::PacketsIngested, 1))
    });
    g.bench_function("hist_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9e37_79b9);
            telemetry::record_ns(telemetry::Hist::IngestBatchNs, v)
        })
    });
    g.bench_function("ring_event_push", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            telemetry::event(telemetry::EventKind::WindowSlid, i, 1, 2)
        })
    });
    g.finish();
}

/// One run of the `fleet_ingest_1000clocks_poll64/1threads` workload from
/// `bench_fleet.rs`: every clock filters the same pre-generated stream
/// through the SoA megabatch engine.
fn ingest_run(
    pool: &mut WorkerPool,
    exchanges: &std::sync::Arc<Vec<RawExchange>>,
    clocks: usize,
    stripe: usize,
    cc: ClockConfig,
) -> u64 {
    let stripes = clocks.div_ceil(stripe);
    let exchanges = std::sync::Arc::clone(exchanges);
    let produced = pool.run(stripes, (stripes / 8).max(1), move |s| {
        let count = stripe.min(clocks - s * stripe);
        let mut stripe_clocks: Vec<TscNtpClock> = (0..count).map(|_| TscNtpClock::new(cc)).collect();
        let lanes: Vec<&[RawExchange]> = vec![exchanges.as_slice(); count];
        let mut mb = Megabatch::new();
        let mut produced = 0u64;
        mb.run(&mut stripe_clocks, &lanes, |_, _| produced += 1);
        produced
    });
    produced.iter().sum()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// The acceptance A/B. Interleaved by hand (the harness can't share one
/// workload across two arms), so the rows go to the JSON report through
/// [`criterion::record_custom`].
fn bench_ingest_ab(_c: &mut Criterion) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test" || a == "-t");
    let filter_blocks = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .any(|a| !"fleet_ingest_1000clocks_poll64".contains(a.as_str()));
    if filter_blocks {
        return;
    }
    let (clocks, polls) = if test_mode { (16, 10) } else { (1000, 300) };
    let stripe = 8;
    let exchanges: std::sync::Arc<Vec<RawExchange>> = std::sync::Arc::new(
        Scenario::baseline(3)
            .with_poll_period(64.0)
            .with_duration(64.0 * polls as f64)
            .stream()
            .raw()
            .collect(),
    );
    let cc = ClockConfig::paper_defaults(64.0);
    let mut pool = WorkerPool::new(1);
    if test_mode {
        let n = ingest_run(&mut pool, &exchanges, clocks, stripe, cc);
        std::hint::black_box(n);
        println!("test bench fleet_ingest_1000clocks_poll64/recording_ab ... ok");
        return;
    }

    let total_packets = (clocks * exchanges.len()) as u64;
    const ROUNDS: usize = 31; // round 0 is warm-up, 30 paired samples
    let mut on_ns: Vec<f64> = Vec::new();
    let mut off_ns: Vec<f64> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    for round in 0..ROUNDS {
        // Both arms inside every round (paired), order swapped per round:
        // scheduler/thermal drift hits both arms of a pair about equally,
        // so the per-round ratio is far less noisy than arm medians.
        let order = if round % 2 == 0 { [true, false] } else { [false, true] };
        let mut pair = [0.0f64; 2]; // [off, on]
        for rec in order {
            telemetry::set_recording(rec);
            let t0 = Instant::now();
            let n = ingest_run(&mut pool, &exchanges, clocks, stripe, cc);
            let dt = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(n);
            pair[usize::from(rec)] = dt;
            if round > 0 {
                if rec { &mut on_ns } else { &mut off_ns }.push(dt);
            }
        }
        if round > 0 {
            ratios.push(pair[1] / pair[0]);
        }
    }
    telemetry::set_recording(true);

    let (m_on, m_off) = (median(on_ns), median(off_ns));
    let overhead_pct = (median(ratios) - 1.0) * 100.0;
    let tag = compiled_tag();
    for (arm, ns) in [("recording_on", m_on), ("recording_off", m_off)] {
        criterion::record_custom(
            &format!("fleet_ingest_1000clocks_poll64/{tag}_{arm}"),
            ns,
            ns,
            (ROUNDS - 1) as u64,
            Some(Throughput::Elements(total_packets)),
        );
        println!(
            "fleet_ingest_1000clocks_poll64/{tag}_{arm:<13}  median {:.1} ms  ({:.3} M packets/s)",
            ns / 1e6,
            total_packets as f64 / ns * 1e3,
        );
    }
    // The acceptance number itself (median of per-round paired ratios,
    // as a percentage) goes into the report too; the row's "ns" fields
    // carry the percentage — the name says so.
    criterion::record_custom(
        &format!("fleet_ingest_1000clocks_poll64/{tag}_recording_overhead_pct"),
        overhead_pct,
        overhead_pct,
        (ROUNDS - 1) as u64,
        None,
    );
    println!(
        "fleet_ingest_1000clocks_poll64/{tag}: recording-on overhead {overhead_pct:+.2} % \
         (median paired ratio; acceptance bar: <= 2 %)"
    );
}

criterion_group!(benches, bench_primitives, bench_ingest_ab);
criterion_main!(benches);
