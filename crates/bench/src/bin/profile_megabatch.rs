//! Noise-resistant A/B comparison for the SoA megabatch ingest loop.
//!
//! The development host's clock frequency drifts in multi-minute windows,
//! so absolute packets/s numbers from separate runs are not comparable.
//! This binary interleaves the scalar per-lane `process_batch` path and
//! the fleet `Megabatch` driver over the `fleet_ingest` bench workload in
//! one process, printing the per-round pair and the ratio — the ratio is
//! stable under frequency drift because both sides of a round run
//! back-to-back.
use std::time::Instant;
use tsc_fleet::Megabatch;
use tsc_netsim::Scenario;
use tscclock::{ClockConfig, ProcessOutput, RawExchange, TscNtpClock};

fn stream(polls: usize, poll: f64) -> Vec<RawExchange> {
    Scenario::baseline(3)
        .with_poll_period(poll)
        .with_duration(poll * polls as f64)
        .stream()
        .raw()
        .collect()
}

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("stripe width"))
        .unwrap_or(8);
    let rounds: usize = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("round count"))
        .unwrap_or(6);
    let poll = 64.0;
    let exchanges = stream(300, poll);
    let cc = ClockConfig::paper_defaults(poll);
    let reps = 125; // 125 stripes of `width` ≈ the 1000-clock bench
    let total = (reps * width * exchanges.len()) as f64;
    let mut sink = 0u64;
    let mut ratios = Vec::new();

    println!("width {width}, {} packets/lane, {reps} stripes/round:", exchanges.len());
    for round in 0..=rounds {
        // Scalar: each lane independently via process_batch.
        let t0 = Instant::now();
        for _ in 0..reps {
            for _ in 0..width {
                let mut clock = TscNtpClock::new(cc);
                let mut out: Vec<ProcessOutput> = Vec::with_capacity(exchanges.len());
                clock.process_batch(&exchanges, &mut out);
                sink += out.len() as u64;
            }
        }
        let scalar = t0.elapsed();

        // Fleet Megabatch driver.
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut clocks: Vec<TscNtpClock> = (0..width).map(|_| TscNtpClock::new(cc)).collect();
            let lanes: Vec<&[RawExchange]> = vec![&exchanges; width];
            let mut mb = Megabatch::new();
            mb.run(&mut clocks, &lanes, |_, _| sink += 1);
        }
        let mega = t0.elapsed();

        if round > 0 {
            // round 0 is warm-up
            let s = scalar.as_nanos() as f64 / total;
            let m = mega.as_nanos() as f64 / total;
            ratios.push(s / m);
            println!("  scalar {s:6.1} ns/pkt   mega {m:6.1} ns/pkt   speedup {:5.3}x", s / m);
        }
    }
    ratios.sort_by(f64::total_cmp);
    println!("median speedup: {:.3}x  (sink {sink})", ratios[ratios.len() / 2]);
}
