//! Quick stage-level profiler for the per-packet pipeline cost.
//!
//! Prints full-pipeline and per-stage ns/packet rows for each polling
//! period (default: 16 s and 64 s — the paper's setting and the fleet
//! benches' setting; pass explicit periods as arguments to override).
//! The `bench_ingest` criterion target measures the same stages with the
//! harness's statistics; this binary is the one-shot stdout version.
use std::time::Instant;
use tsc_netsim::Scenario;
use tscclock::{
    ClockConfig, GlobalRate, History, LocalRate, OffsetEstimator, RawExchange, TscNtpClock,
};

fn profile(poll: f64) {
    let cfg = ClockConfig::paper_defaults(poll);
    let exchanges: Vec<RawExchange> = Scenario::baseline(1)
        .with_poll_period(poll)
        .with_duration(poll * 30_000.0)
        .stream()
        .raw()
        .collect();
    let n = exchanges.len();

    for round in 0..2 {
        // full pipeline
        let t0 = Instant::now();
        let mut clock = TscNtpClock::new(cfg);
        for e in &exchanges { std::hint::black_box(clock.process(*e)); }
        let full = t0.elapsed();

        // history only
        let t0 = Instant::now();
        let mut h = History::new(cfg.top_packets());
        for e in &exchanges { std::hint::black_box(h.push(*e, 0.0)); }
        let hist = t0.elapsed();

        // history + offset
        let p = 1.0000524e-9;
        let c_bar = exchanges[0].server_midpoint() - exchanges[0].host_midpoint_counts() * p;
        let t0 = Instant::now();
        let mut h = History::new(cfg.top_packets());
        let mut off = OffsetEstimator::new();
        for e in &exchanges {
            h.push(*e, 0.0);
            let k = h.last().unwrap();
            std::hint::black_box(off.process(&cfg, &h, &k, p, c_bar, None, false, false));
        }
        let offset = t0.elapsed();

        // history + local rate
        let t0 = Instant::now();
        let mut h = History::new(cfg.top_packets());
        let mut lr = LocalRate::new(cfg.tau_bar_packets(), cfg.w_split, cfg.gamma_star,
            cfg.rate_sanity, (cfg.warmup_packets + cfg.tau_bar_packets()) as u64, cfg.tau_bar / 2.0);
        for e in &exchanges {
            h.push(*e, 0.0);
            let k = h.last().unwrap();
            std::hint::black_box(lr.process(&h, &k, p));
        }
        let local = t0.elapsed();

        // history + global rate
        let t0 = Instant::now();
        let mut h = History::new(cfg.top_packets());
        let mut gr = GlobalRate::new(cfg.e_star, cfg.warmup_packets);
        for e in &exchanges {
            h.push(*e, 0.0);
            let k = h.last().unwrap();
            std::hint::black_box(gr.process(&h, &k));
        }
        let rate = t0.elapsed();

        if round == 1 {
            let per = |d: std::time::Duration| d.as_nanos() as f64 / n as f64;
            println!("poll{poll}:");
            println!("  full:          {:7.0} ns/packet", per(full));
            println!("  history only:  {:7.0} ns/packet", per(hist));
            println!("  hist+offset:   {:7.0} ns/packet (offset ≈ {:.0})", per(offset), per(offset) - per(hist));
            println!("  hist+local:    {:7.0} ns/packet (local ≈ {:.0})", per(local), per(local) - per(hist));
            println!("  hist+rate:     {:7.0} ns/packet (rate ≈ {:.0})", per(rate), per(rate) - per(hist));
        }
    }
}

fn main() {
    let polls: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("poll period in seconds"))
        .collect();
    for poll in if polls.is_empty() { vec![16.0, 64.0] } else { polls } {
        profile(poll);
    }
}
