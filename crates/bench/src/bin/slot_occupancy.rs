//! Kernel-slot occupancy census for the split-phase ingest pipeline.
//!
//! Drives one clock through the fleet-ingest bench workload via the
//! step phases and counts how many of the four round-one division slots
//! and the weight exponential are actually *live* per staged packet.
//! This bounds the SoA megabatch engine's batching margin: slots the
//! stamped fast paths leave dead are math the stripe never saves.
//! (Measured at poll64: ~2 of 4 division slots + 1 exponential live.)
use tsc_netsim::Scenario;
use tscclock::{ClockConfig, KernelOps, StepPhase, TscNtpClock};

fn main() {
    let poll = 64.0;
    let exchanges: Vec<_> = Scenario::baseline(3)
        .with_poll_period(poll)
        .with_duration(poll * 300.0)
        .stream()
        .raw()
        .collect();
    let cc = ClockConfig::paper_defaults(poll);
    let mut clock = TscNtpClock::new(cc);
    let (mut n, mut divs, mut exps, mut staged) = (0u64, [0u64; 4], 0u64, 0u64);
    for ex in &exchanges {
        n += 1;
        let mut ops = KernelOps::idle();
        match clock.step_prepare(*ex, &mut ops) {
            StepPhase::Done(_) => {}
            StepPhase::Staged(prep) => {
                staged += 1;
                for (s, d) in divs.iter_mut().enumerate() {
                    if ops.div_live & (1 << s) != 0 {
                        *d += 1;
                    }
                }
                if ops.exp_live {
                    exps += 1;
                }
                let vals = tscclock::apply_scalar(&ops);
                let mut ops2 = KernelOps::idle();
                let mid = clock.step_mid(prep, &vals, &mut ops2);
                let vals2 = tscclock::apply_scalar(&ops2);
                clock.step_finish(mid, &vals2.div);
            }
        }
    }
    println!("packets {n}, staged {staged}");
    println!(
        "K1 div slot live counts: quality {} fwd {} bwd {} bound {}",
        divs[0], divs[1], divs[2], divs[3]
    );
    println!("exp live: {exps}");
}
