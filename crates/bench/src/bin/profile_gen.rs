//! Quick stage-level profiler for the netsim generation cost.
use std::time::Instant;
use tsc_netsim::{CongestionParams, HostTimestamping, PathDelay, Scenario, ServerModel};
use tsc_osc::Environment;

fn main() {
    let polls = 200_000usize;
    for poll in [16.0f64, 64.0] {
        let sc = Scenario::baseline(1)
            .with_poll_period(poll)
            .with_duration(poll * polls as f64);

        for round in 0..2 {
            // full stream
            let t0 = Instant::now();
            let n = sc.stream().count();
            let full = t0.elapsed();

            // oscillator advance only
            let mut osc = Environment::MachineRoom.build(1);
            let t0 = Instant::now();
            for i in 1..=polls {
                std::hint::black_box(osc.advance_to(i as f64 * poll));
            }
            let osc_t = t0.elapsed();

            // path delay sampling only (two paths)
            let mut fwd = PathDelay::new(0.4e-3, 80e-6, CongestionParams::moderate(), 4);
            let mut back = PathDelay::new(0.4e-3, 45e-6, CongestionParams::moderate(), 5);
            let t0 = Instant::now();
            for i in 1..=polls {
                let t = i as f64 * poll;
                std::hint::black_box(fwd.sample(t));
                std::hint::black_box(back.sample(t + 0.5e-3));
            }
            let path_t = t0.elapsed();

            // host latencies
            let mut host = HostTimestamping::new(3);
            let t0 = Instant::now();
            for _ in 0..polls {
                std::hint::black_box(host.send_latency());
                std::hint::black_box(host.recv_latency());
            }
            let host_t = t0.elapsed();

            // server
            let mut server = ServerModel::new(2);
            let t0 = Instant::now();
            for i in 0..polls {
                let t = i as f64 * poll;
                std::hint::black_box(server.residence(t));
                std::hint::black_box(server.stamp_rx(t));
                std::hint::black_box(server.stamp_tx(t));
            }
            let server_t = t0.elapsed();

            if round == 1 {
                let per = |d: std::time::Duration| d.as_nanos() as f64 / n as f64;
                println!("--- poll {poll} ({n} packets) ---");
                println!("full stream:   {:7.0} ns/packet", per(full));
                println!("oscillator:    {:7.0} ns/packet", per(osc_t));
                println!("2x path delay: {:7.0} ns/packet", per(path_t));
                println!("host lats:     {:7.0} ns/packet", per(host_t));
                println!("server:        {:7.0} ns/packet", per(server_t));
            }
        }
    }
}
