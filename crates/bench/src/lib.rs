//! Criterion benchmark harness for the IMC'04 reproduction.
//!
//! One bench target per paper artifact (see DESIGN.md's experiment index):
//! each measures the wall-clock cost of regenerating that table/figure at a
//! reduced-but-representative scale, so `cargo bench` both exercises every
//! experiment end-to-end and tracks the performance of the simulator and
//! the synchronization algorithms themselves.
//!
//! The algorithm-level benches (`bench_clock_pipeline`, `bench_codec`)
//! measure the per-packet cost of the online clock and the NTP packet
//! codec — the numbers that matter for a production daemon.
