//! Property tests for the NTP packet codec: encode∘decode = id over
//! random valid headers, and a malformed-input sweep (truncations, random
//! bytes, every flag-byte combination) asserting the decoder returns
//! *typed* errors and never panics.

use proptest::prelude::*;
use tsc_ntp::packet::{LeapIndicator, Mode, NtpPacket, PacketError, PACKET_LEN};
use tsc_ntp::timestamp::{NtpShort, NtpTimestamp};

fn leap_from(bits: u8) -> LeapIndicator {
    match bits & 0x3 {
        0 => LeapIndicator::NoWarning,
        1 => LeapIndicator::LastMinute61,
        2 => LeapIndicator::LastMinute59,
        _ => LeapIndicator::Unsynchronized,
    }
}

fn mode_from(bits: u8) -> Mode {
    match bits & 0x7 {
        0 => Mode::Reserved,
        1 => Mode::SymmetricActive,
        2 => Mode::SymmetricPassive,
        3 => Mode::Client,
        4 => Mode::Server,
        5 => Mode::Broadcast,
        6 => Mode::Control,
        _ => Mode::Private,
    }
}

proptest! {
    /// Every representable valid header survives encode → decode intact,
    /// and `encode_into` writes the identical wire image.
    #[test]
    fn roundtrip_is_identity(
        leap_bits in 0u8..4,
        version in 1u8..5,
        mode_bits in 0u8..8,
        stratum in 0u8..=255,
        poll in -128i8..=127,
        precision in -128i8..=127,
        root_delay in any::<u32>(),
        root_dispersion in any::<u32>(),
        refid in any::<[u8; 4]>(),
        ts in any::<[u64; 4]>(),
    ) {
        let p = NtpPacket {
            leap: leap_from(leap_bits),
            version,
            mode: mode_from(mode_bits),
            stratum,
            poll,
            precision,
            root_delay: NtpShort(root_delay),
            root_dispersion: NtpShort(root_dispersion),
            reference_id: refid,
            reference_ts: NtpTimestamp::from_bits(ts[0]),
            origin_ts: NtpTimestamp::from_bits(ts[1]),
            receive_ts: NtpTimestamp::from_bits(ts[2]),
            transmit_ts: NtpTimestamp::from_bits(ts[3]),
        };
        let wire = p.encode();
        prop_assert_eq!(NtpPacket::decode(&wire).unwrap(), p);
        let mut buf = [0xAAu8; PACKET_LEN + 8];
        p.encode_into(&mut buf);
        prop_assert_eq!(&buf[..PACKET_LEN], &wire[..]);
        prop_assert_eq!(&buf[PACKET_LEN..], &[0xAAu8; 8][..]);
    }

    /// Truncations of a valid packet decode to `TooShort`, never panic.
    #[test]
    fn truncations_are_typed_errors(
        cut in 0usize..PACKET_LEN,
        ts in any::<u64>(),
    ) {
        let wire = NtpPacket::client_request(NtpTimestamp::from_bits(ts), 6).encode();
        prop_assert_eq!(
            NtpPacket::decode(&wire[..cut]),
            Err(PacketError::TooShort(cut))
        );
    }

    /// Arbitrary byte soup either decodes or fails with a typed error —
    /// decode() is total over `&[u8]`, and every success re-encodes to the
    /// same 48-byte prefix (decode is a retraction of encode).
    #[test]
    fn random_bytes_never_panic(
        len in 0usize..80,
        bytes in any::<[u8; 80]>(),
    ) {
        match NtpPacket::decode(&bytes[..len]) {
            Ok(p) => {
                prop_assert!(len >= PACKET_LEN);
                prop_assert_eq!(&p.encode()[..], &bytes[..PACKET_LEN]);
            }
            Err(PacketError::TooShort(n)) => prop_assert_eq!(n, len),
            Err(PacketError::BadVersion(v)) => {
                prop_assert_eq!(v, (bytes[0] >> 3) & 0x7);
                prop_assert!(v == 0 || v > 4);
            }
            Err(other) => prop_assert!(false, "unexpected decode error {other:?}"),
        }
    }

    /// `validate_response` over random response/request pairs is total and
    /// only ever returns the documented error taxonomy.
    #[test]
    fn validate_response_is_total(
        mode_bits in 0u8..8,
        stratum in 0u8..=255,
        origin in any::<u64>(),
        request_tx in any::<u64>(),
        refid in any::<[u8; 4]>(),
    ) {
        let req = NtpPacket::client_request(NtpTimestamp::from_bits(request_tx), 4);
        let resp = NtpPacket {
            mode: mode_from(mode_bits),
            stratum,
            reference_id: refid,
            origin_ts: NtpTimestamp::from_bits(origin),
            ..NtpPacket::default()
        };
        match resp.validate_response(&req) {
            Ok(()) => {
                prop_assert_eq!(resp.mode, Mode::Server);
                prop_assert!(stratum != 0);
                prop_assert_eq!(resp.origin_ts, req.transmit_ts);
                prop_assert!(!resp.origin_ts.is_zero());
            }
            Err(PacketError::UnexpectedMode(m)) => prop_assert!(m != Mode::Server),
            Err(PacketError::KissOfDeath(code)) => {
                prop_assert_eq!(stratum, 0);
                prop_assert_eq!(code, refid);
            }
            Err(PacketError::OriginMismatch) => prop_assert!(
                resp.origin_ts != req.transmit_ts || resp.origin_ts.is_zero()
            ),
            Err(other) => prop_assert!(false, "unexpected validate error {other:?}"),
        }
    }
}

/// Exhaustive flag-byte sweep: all 256 LI/VN/mode combinations over a
/// fixed valid tail. Versions 1–4 decode and roundtrip; 0 and 5–7 are
/// `BadVersion`. (Small enough to enumerate, so no sampling.)
#[test]
fn every_flag_byte_decodes_or_rejects() {
    let mut wire = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(1.5e9), 6).encode();
    for flags in 0u16..=255 {
        wire[0] = flags as u8;
        let version = (wire[0] >> 3) & 0x7;
        match NtpPacket::decode(&wire) {
            Ok(p) => {
                assert!((1..=4).contains(&version), "flags {flags:#04x}");
                assert_eq!(p.encode()[0], wire[0], "flags {flags:#04x}");
            }
            Err(PacketError::BadVersion(v)) => {
                assert_eq!(v, version, "flags {flags:#04x}");
                assert!(!(1..=4).contains(&v), "flags {flags:#04x}");
            }
            Err(other) => panic!("flags {flags:#04x}: unexpected error {other:?}"),
        }
    }
}
