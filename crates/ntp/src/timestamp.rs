//! NTP timestamp formats.
//!
//! NTP carries time as unsigned fixed-point values relative to the NTP epoch
//! (1 January 1900): the 64-bit *timestamp* format (32.32) used for the four
//! exchange timestamps, and the 32-bit *short* format (16.16) used for root
//! delay/dispersion. The paper's algorithms work in seconds; the conversions
//! here are careful to preserve sub-microsecond precision (the fraction LSB
//! of the 64-bit format is ~233 picoseconds).

/// Seconds between the NTP epoch (1900-01-01) and the Unix epoch (1970-01-01).
pub const NTP_UNIX_OFFSET: f64 = 2_208_988_800.0;

/// 64-bit NTP timestamp: 32-bit seconds since the NTP epoch, 32-bit fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct NtpTimestamp {
    /// Whole seconds since 1900-01-01 00:00:00 (era 0).
    pub seconds: u32,
    /// Binary fraction of a second (units of 2⁻³² s).
    pub fraction: u32,
}

impl NtpTimestamp {
    /// The all-zero timestamp, which NTP interprets as "unknown/invalid".
    pub const ZERO: Self = Self {
        seconds: 0,
        fraction: 0,
    };

    /// Builds from seconds since the *NTP* epoch. Values are clamped to the
    /// representable era-0 range `[0, 2³²)`.
    pub fn from_ntp_seconds(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Self::ZERO;
        }
        let s = s.min(u32::MAX as f64 + 0.999_999_999);
        let secs = s.floor();
        let frac = ((s - secs) * 4_294_967_296.0).round();
        let (secs, frac) = if frac >= 4_294_967_296.0 {
            (secs + 1.0, 0.0)
        } else {
            (secs, frac)
        };
        Self {
            seconds: secs as u32,
            fraction: frac as u32,
        }
    }

    /// Builds from seconds since the *Unix* epoch.
    pub fn from_unix_seconds(s: f64) -> Self {
        Self::from_ntp_seconds(s + NTP_UNIX_OFFSET)
    }

    /// Seconds since the NTP epoch as `f64` (resolution ≈ 2⁻³² s carried
    /// approximately; `f64` has 52 fraction bits so values up to 2³² s keep
    /// ~2⁻²⁰ s = µs-level exactness and the conversion roundtrips to <1 ns).
    pub fn to_ntp_seconds(self) -> f64 {
        self.seconds as f64 + self.fraction as f64 / 4_294_967_296.0
    }

    /// Seconds since the Unix epoch as `f64`.
    pub fn to_unix_seconds(self) -> f64 {
        self.to_ntp_seconds() - NTP_UNIX_OFFSET
    }

    /// `true` for the NTP "unknown" sentinel.
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Raw 64-bit big-endian wire representation.
    pub fn to_bits(self) -> u64 {
        ((self.seconds as u64) << 32) | self.fraction as u64
    }

    /// Parses the raw 64-bit representation.
    pub fn from_bits(bits: u64) -> Self {
        Self {
            seconds: (bits >> 32) as u32,
            fraction: bits as u32,
        }
    }

    /// Signed difference `self − other` in seconds, assuming the two
    /// timestamps are within half an era of each other (the standard NTP
    /// wraparound rule).
    pub fn diff_seconds(self, other: Self) -> f64 {
        let d = self.to_bits().wrapping_sub(other.to_bits()) as i64;
        d as f64 / 4_294_967_296.0
    }
}

/// 32-bit NTP short format (16.16 fixed point), used for root delay and
/// root dispersion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NtpShort(pub u32);

impl NtpShort {
    /// Converts from seconds (clamped to the representable range).
    pub fn from_seconds(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Self(0);
        }
        Self((s.min(65_535.999) * 65_536.0).round() as u32)
    }

    /// Value in seconds.
    pub fn to_seconds(self) -> f64 {
        self.0 as f64 / 65_536.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_roundtrip() {
        assert!(NtpTimestamp::ZERO.is_zero());
        assert_eq!(NtpTimestamp::from_ntp_seconds(0.0), NtpTimestamp::ZERO);
        assert_eq!(NtpTimestamp::from_ntp_seconds(-5.0), NtpTimestamp::ZERO);
        assert_eq!(NtpTimestamp::from_ntp_seconds(f64::NAN), NtpTimestamp::ZERO);
    }

    #[test]
    fn seconds_roundtrip_sub_nanosecond() {
        for s in [1.0, 123_456.789_012_345, 3_000_000_000.5, 2e9 + 1e-7] {
            let ts = NtpTimestamp::from_ntp_seconds(s);
            let back = ts.to_ntp_seconds();
            assert!(
                (back - s).abs() < 2e-9,
                "roundtrip error for {s}: {}",
                back - s
            );
        }
    }

    #[test]
    fn unix_offset_applied() {
        let ts = NtpTimestamp::from_unix_seconds(0.0);
        assert_eq!(ts.seconds, 2_208_988_800);
        assert!((ts.to_unix_seconds() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_carry_on_rounding() {
        // a value whose fraction rounds up to 1.0 must carry into seconds
        let s = 100.0 + (4_294_967_295.9 / 4_294_967_296.0);
        let ts = NtpTimestamp::from_ntp_seconds(s);
        assert_eq!(ts.seconds, 101);
        assert_eq!(ts.fraction, 0);
    }

    #[test]
    fn bits_roundtrip() {
        let ts = NtpTimestamp {
            seconds: 0xDEAD_BEEF,
            fraction: 0x0123_4567,
        };
        assert_eq!(NtpTimestamp::from_bits(ts.to_bits()), ts);
        assert_eq!(ts.to_bits(), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn diff_seconds_basic_and_wrap() {
        let a = NtpTimestamp::from_ntp_seconds(1000.25);
        let b = NtpTimestamp::from_ntp_seconds(1000.0);
        assert!((a.diff_seconds(b) - 0.25).abs() < 1e-9);
        assert!((b.diff_seconds(a) + 0.25).abs() < 1e-9);
        // wraparound: a just after era rollover, b just before
        let b = NtpTimestamp {
            seconds: u32::MAX,
            fraction: 0,
        };
        let a = NtpTimestamp {
            seconds: 1,
            fraction: 0,
        };
        assert!((a.diff_seconds(b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_format_roundtrip() {
        for s in [0.0, 0.001, 1.5, 1000.125] {
            let v = NtpShort::from_seconds(s);
            assert!((v.to_seconds() - s).abs() < 1.0 / 65_536.0);
        }
        assert_eq!(NtpShort::from_seconds(-1.0).0, 0);
        // non-finite values degrade to the zero sentinel
        assert_eq!(NtpShort::from_seconds(f64::INFINITY).0, 0);
        // large finite values clamp to the top of the 16.16 range
        assert_eq!(NtpShort::from_seconds(1e9).0, (65_535.999f64 * 65_536.0).round() as u32);
    }

    #[test]
    fn ordering_matches_time() {
        let a = NtpTimestamp::from_ntp_seconds(10.0);
        let b = NtpTimestamp::from_ntp_seconds(10.5);
        assert!(a < b);
    }

    #[test]
    fn clamping_at_era_end() {
        let ts = NtpTimestamp::from_ntp_seconds(1e20);
        assert_eq!(ts.seconds, u32::MAX);
    }
}
