//! The 48-byte NTP packet header (RFC 1305 / RFC 5905 layout).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |LI | VN  |Mode |    Stratum    |     Poll      |   Precision   |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                          Root Delay                           |
//! +---------------------------------------------------------------+
//! |                       Root Dispersion                         |
//! +---------------------------------------------------------------+
//! |                        Reference ID                           |
//! +---------------------------------------------------------------+
//! |                   Reference Timestamp (64)                    |
//! +---------------------------------------------------------------+
//! |                   Origin Timestamp (64)    ← Ta               |
//! +---------------------------------------------------------------+
//! |                   Receive Timestamp (64)   ← Tb               |
//! +---------------------------------------------------------------+
//! |                   Transmit Timestamp (64)  ← Te               |
//! +---------------------------------------------------------------+
//! ```
//!
//! The fourth timestamp of the exchange, `Tf`, is taken by the host on
//! arrival and never travels on the wire.

use crate::timestamp::{NtpShort, NtpTimestamp};
use bytes::{Buf, BufMut};

/// Wire size of the NTP header (the paper's "48 byte payload").
pub const PACKET_LEN: usize = 48;

/// Leap indicator field (2 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeapIndicator {
    /// No warning.
    NoWarning,
    /// Last minute of the day has 61 seconds.
    LastMinute61,
    /// Last minute of the day has 59 seconds.
    LastMinute59,
    /// Clock unsynchronized (also the Kiss-o'-Death marker state).
    Unsynchronized,
}

impl LeapIndicator {
    fn from_bits(b: u8) -> Self {
        match b & 0x3 {
            0 => Self::NoWarning,
            1 => Self::LastMinute61,
            2 => Self::LastMinute59,
            _ => Self::Unsynchronized,
        }
    }
    fn to_bits(self) -> u8 {
        match self {
            Self::NoWarning => 0,
            Self::LastMinute61 => 1,
            Self::LastMinute59 => 2,
            Self::Unsynchronized => 3,
        }
    }
}

/// Association mode field (3 bits). Only client/server matter here; the
/// others are parsed for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Reserved (0).
    Reserved,
    /// Symmetric active (1).
    SymmetricActive,
    /// Symmetric passive (2).
    SymmetricPassive,
    /// Client request (3) — what the host sends.
    Client,
    /// Server response (4) — what the stratum-1 server returns.
    Server,
    /// Broadcast (5).
    Broadcast,
    /// NTP control message (6).
    Control,
    /// Private use (7).
    Private,
}

impl Mode {
    fn from_bits(b: u8) -> Self {
        match b & 0x7 {
            0 => Self::Reserved,
            1 => Self::SymmetricActive,
            2 => Self::SymmetricPassive,
            3 => Self::Client,
            4 => Self::Server,
            5 => Self::Broadcast,
            6 => Self::Control,
            _ => Self::Private,
        }
    }
    fn to_bits(self) -> u8 {
        match self {
            Self::Reserved => 0,
            Self::SymmetricActive => 1,
            Self::SymmetricPassive => 2,
            Self::Client => 3,
            Self::Server => 4,
            Self::Broadcast => 5,
            Self::Control => 6,
            Self::Private => 7,
        }
    }
}

/// Errors from packet decoding / validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Datagram shorter than 48 bytes.
    TooShort(usize),
    /// Version outside the 1–4 range we accept.
    BadVersion(u8),
    /// Response's origin timestamp does not echo our request (possible
    /// spoof/cross-talk; the standard NTP loopback test).
    OriginMismatch,
    /// Response was not a server-mode packet.
    UnexpectedMode(Mode),
    /// Server signalled Kiss-o'-Death (stratum 0).
    KissOfDeath([u8; 4]),
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::TooShort(n) => write!(f, "datagram too short: {n} < {PACKET_LEN} bytes"),
            PacketError::BadVersion(v) => write!(f, "unsupported NTP version {v}"),
            PacketError::OriginMismatch => write!(f, "origin timestamp does not match request"),
            PacketError::UnexpectedMode(m) => write!(f, "unexpected packet mode {m:?}"),
            PacketError::KissOfDeath(code) => {
                write!(f, "kiss-o'-death: {}", String::from_utf8_lossy(code))
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// A decoded NTP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpPacket {
    /// Leap indicator.
    pub leap: LeapIndicator,
    /// Protocol version (1–4).
    pub version: u8,
    /// Association mode.
    pub mode: Mode,
    /// Stratum (1 = primary reference; 0 in requests / KoD).
    pub stratum: u8,
    /// log₂ of the poll interval in seconds.
    pub poll: i8,
    /// log₂ of the clock precision in seconds.
    pub precision: i8,
    /// Total round-trip delay to the reference clock.
    pub root_delay: NtpShort,
    /// Total dispersion to the reference clock.
    pub root_dispersion: NtpShort,
    /// Reference identifier (e.g. b"GPS\0" for a GPS-disciplined stratum-1).
    pub reference_id: [u8; 4],
    /// Time the system clock was last set or corrected.
    pub reference_ts: NtpTimestamp,
    /// Origin timestamp — the client's transmit time `Ta`, echoed by the server.
    pub origin_ts: NtpTimestamp,
    /// Receive timestamp — server arrival time `Tb`.
    pub receive_ts: NtpTimestamp,
    /// Transmit timestamp — client send time `Ta` (requests) or server
    /// departure time `Te` (responses).
    pub transmit_ts: NtpTimestamp,
}

impl Default for NtpPacket {
    fn default() -> Self {
        Self {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Client,
            stratum: 0,
            poll: 4,
            precision: -20,
            root_delay: NtpShort(0),
            root_dispersion: NtpShort(0),
            reference_id: [0; 4],
            reference_ts: NtpTimestamp::ZERO,
            origin_ts: NtpTimestamp::ZERO,
            receive_ts: NtpTimestamp::ZERO,
            transmit_ts: NtpTimestamp::ZERO,
        }
    }
}

impl NtpPacket {
    /// Builds a client (mode 3) request carrying `transmit` as the transmit
    /// timestamp — the value the server will echo back as `origin_ts`.
    pub fn client_request(transmit: NtpTimestamp, poll: i8) -> Self {
        Self {
            mode: Mode::Client,
            poll,
            transmit_ts: transmit,
            ..Self::default()
        }
    }

    /// Builds a server (mode 4) response to `request`: echoes the request's
    /// transmit timestamp into `origin_ts` and stamps `receive`/`transmit`
    /// with the server clock readings `Tb`/`Te`.
    pub fn server_response(
        request: &NtpPacket,
        receive: NtpTimestamp,
        transmit: NtpTimestamp,
        reference_id: [u8; 4],
    ) -> Self {
        Self {
            leap: LeapIndicator::NoWarning,
            version: request.version,
            mode: Mode::Server,
            stratum: 1,
            poll: request.poll,
            precision: -20,
            root_delay: NtpShort::from_seconds(0.0),
            root_dispersion: NtpShort::from_seconds(10e-6),
            reference_id,
            reference_ts: receive,
            origin_ts: request.transmit_ts,
            receive_ts: receive,
            transmit_ts: transmit,
        }
    }

    /// Builds a stratum-0 **refusal** (Kiss-o'-Death-style) response: the
    /// serving plane sends this instead of a timestamp when its published
    /// snapshot is missing, marked unsynchronized, or older than the
    /// staleness horizon — a refusal is honest, a stale timestamp is not.
    /// The leap indicator is [`LeapIndicator::Unsynchronized`] and
    /// `reference_id` carries the refusal code (e.g. `b"STAL"`); clients
    /// surface it as [`PacketError::KissOfDeath`].
    pub fn refusal_response(request: &NtpPacket, code: [u8; 4]) -> Self {
        Self {
            leap: LeapIndicator::Unsynchronized,
            version: request.version,
            mode: Mode::Server,
            stratum: 0,
            poll: request.poll,
            precision: -20,
            root_delay: NtpShort(0),
            root_dispersion: NtpShort(0),
            reference_id: code,
            reference_ts: NtpTimestamp::ZERO,
            origin_ts: request.transmit_ts,
            receive_ts: NtpTimestamp::ZERO,
            transmit_ts: NtpTimestamp::ZERO,
        }
    }

    /// Encodes into the first [`PACKET_LEN`] bytes of `buf` without
    /// allocating or copying through a temporary — the batched serving
    /// plane encodes straight into its contiguous transmit buffer.
    ///
    /// # Panics
    /// Panics when `buf` is shorter than [`PACKET_LEN`].
    pub fn encode_into(&self, buf: &mut [u8]) {
        let mut b = &mut buf[..PACKET_LEN];
        b.put_u8((self.leap.to_bits() << 6) | ((self.version & 0x7) << 3) | self.mode.to_bits());
        b.put_u8(self.stratum);
        b.put_i8(self.poll);
        b.put_i8(self.precision);
        b.put_u32(self.root_delay.0);
        b.put_u32(self.root_dispersion.0);
        b.put_slice(&self.reference_id);
        b.put_u64(self.reference_ts.to_bits());
        b.put_u64(self.origin_ts.to_bits());
        b.put_u64(self.receive_ts.to_bits());
        b.put_u64(self.transmit_ts.to_bits());
    }

    /// Encodes into exactly [`PACKET_LEN`] bytes.
    pub fn encode(&self) -> [u8; PACKET_LEN] {
        let mut buf = [0u8; PACKET_LEN];
        self.encode_into(&mut buf);
        buf
    }

    /// Decodes a datagram. Extension fields / MACs beyond the 48-byte header
    /// are ignored, as the algorithms only need the header timestamps.
    pub fn decode(data: &[u8]) -> Result<Self, PacketError> {
        if data.len() < PACKET_LEN {
            return Err(PacketError::TooShort(data.len()));
        }
        let mut b = data;
        let flags = b.get_u8();
        let version = (flags >> 3) & 0x7;
        if !(1..=4).contains(&version) {
            return Err(PacketError::BadVersion(version));
        }
        let stratum = b.get_u8();
        let poll = b.get_i8();
        let precision = b.get_i8();
        let root_delay = NtpShort(b.get_u32());
        let root_dispersion = NtpShort(b.get_u32());
        let mut reference_id = [0u8; 4];
        b.copy_to_slice(&mut reference_id);
        Ok(Self {
            leap: LeapIndicator::from_bits(flags >> 6),
            version,
            mode: Mode::from_bits(flags),
            stratum,
            poll,
            precision,
            root_delay,
            root_dispersion,
            reference_id,
            reference_ts: NtpTimestamp::from_bits(b.get_u64()),
            origin_ts: NtpTimestamp::from_bits(b.get_u64()),
            receive_ts: NtpTimestamp::from_bits(b.get_u64()),
            transmit_ts: NtpTimestamp::from_bits(b.get_u64()),
        })
    }

    /// Validates a server response against the request we sent: mode must be
    /// server, origin must echo our transmit (the anti-spoofing loopback
    /// test), and stratum 0 means Kiss-o'-Death.
    pub fn validate_response(&self, request: &NtpPacket) -> Result<(), PacketError> {
        if self.mode != Mode::Server {
            return Err(PacketError::UnexpectedMode(self.mode));
        }
        if self.stratum == 0 {
            return Err(PacketError::KissOfDeath(self.reference_id));
        }
        if self.origin_ts != request.transmit_ts || self.origin_ts.is_zero() {
            return Err(PacketError::OriginMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> NtpPacket {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Server,
            stratum: 1,
            poll: 4,
            precision: -20,
            root_delay: NtpShort::from_seconds(0.001),
            root_dispersion: NtpShort::from_seconds(0.002),
            reference_id: *b"GPS\0",
            reference_ts: NtpTimestamp::from_unix_seconds(1.7e9),
            origin_ts: NtpTimestamp::from_unix_seconds(1.7e9 + 1.0),
            receive_ts: NtpTimestamp::from_unix_seconds(1.7e9 + 1.0005),
            transmit_ts: NtpTimestamp::from_unix_seconds(1.7e9 + 1.00051),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample_packet();
        let bytes = p.encode();
        assert_eq!(bytes.len(), PACKET_LEN);
        let q = NtpPacket::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn first_byte_layout() {
        let p = NtpPacket {
            leap: LeapIndicator::Unsynchronized,
            version: 3,
            mode: Mode::Client,
            ..NtpPacket::default()
        };
        let bytes = p.encode();
        // LI=3 (11), VN=3 (011), Mode=3 (011) → 0b11_011_011
        assert_eq!(bytes[0], 0b1101_1011);
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(
            NtpPacket::decode(&[0u8; 47]),
            Err(PacketError::TooShort(47))
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_packet().encode();
        bytes[0] = (bytes[0] & !0b0011_1000) | (7 << 3);
        assert_eq!(NtpPacket::decode(&bytes), Err(PacketError::BadVersion(7)));
        let mut bytes0 = sample_packet().encode();
        bytes0[0] &= !0b0011_1000;
        assert_eq!(NtpPacket::decode(&bytes0), Err(PacketError::BadVersion(0)));
    }

    #[test]
    fn extension_bytes_ignored() {
        let p = sample_packet();
        let mut data = p.encode().to_vec();
        data.extend_from_slice(&[0xAA; 20]); // fake extension field
        assert_eq!(NtpPacket::decode(&data).unwrap(), p);
    }

    #[test]
    fn server_response_echoes_origin() {
        let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(100.0), 4);
        let resp = NtpPacket::server_response(
            &req,
            NtpTimestamp::from_unix_seconds(100.2),
            NtpTimestamp::from_unix_seconds(100.21),
            *b"GPS\0",
        );
        assert_eq!(resp.origin_ts, req.transmit_ts);
        assert_eq!(resp.mode, Mode::Server);
        assert_eq!(resp.stratum, 1);
        assert!(resp.validate_response(&req).is_ok());
    }

    #[test]
    fn validate_rejects_origin_mismatch() {
        let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(100.0), 4);
        let other = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(200.0), 4);
        let resp = NtpPacket::server_response(
            &other,
            NtpTimestamp::from_unix_seconds(200.2),
            NtpTimestamp::from_unix_seconds(200.21),
            *b"GPS\0",
        );
        assert_eq!(
            resp.validate_response(&req),
            Err(PacketError::OriginMismatch)
        );
    }

    #[test]
    fn validate_rejects_zero_origin() {
        let req = NtpPacket::client_request(NtpTimestamp::ZERO, 4);
        let resp = NtpPacket::server_response(
            &req,
            NtpTimestamp::from_unix_seconds(1.0),
            NtpTimestamp::from_unix_seconds(1.1),
            *b"GPS\0",
        );
        assert_eq!(
            resp.validate_response(&req),
            Err(PacketError::OriginMismatch)
        );
    }

    #[test]
    fn validate_rejects_wrong_mode() {
        let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(5.0), 4);
        let mut resp = NtpPacket::server_response(
            &req,
            NtpTimestamp::from_unix_seconds(5.1),
            NtpTimestamp::from_unix_seconds(5.2),
            *b"GPS\0",
        );
        resp.mode = Mode::Broadcast;
        assert!(matches!(
            resp.validate_response(&req),
            Err(PacketError::UnexpectedMode(Mode::Broadcast))
        ));
    }

    #[test]
    fn validate_detects_kiss_of_death() {
        let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(5.0), 4);
        let mut resp = NtpPacket::server_response(
            &req,
            NtpTimestamp::from_unix_seconds(5.1),
            NtpTimestamp::from_unix_seconds(5.2),
            *b"RATE",
        );
        resp.stratum = 0;
        assert!(matches!(
            resp.validate_response(&req),
            Err(PacketError::KissOfDeath(code)) if &code == b"RATE"
        ));
    }

    #[test]
    fn encode_into_matches_encode() {
        let p = sample_packet();
        let mut buf = [0u8; PACKET_LEN + 16];
        p.encode_into(&mut buf);
        assert_eq!(&buf[..PACKET_LEN], &p.encode()[..]);
        assert_eq!(&buf[PACKET_LEN..], &[0u8; 16][..], "tail untouched");
    }

    #[test]
    fn refusal_response_reads_as_kiss_of_death() {
        let req = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(9.0), 6);
        let r = NtpPacket::refusal_response(&req, *b"STAL");
        assert_eq!(r.stratum, 0);
        assert_eq!(r.leap, LeapIndicator::Unsynchronized);
        assert_eq!(r.origin_ts, req.transmit_ts);
        let wire = NtpPacket::decode(&r.encode()).unwrap();
        assert!(matches!(
            wire.validate_response(&req),
            Err(PacketError::KissOfDeath(code)) if &code == b"STAL"
        ));
    }

    #[test]
    fn all_modes_roundtrip() {
        for m in [
            Mode::Reserved,
            Mode::SymmetricActive,
            Mode::SymmetricPassive,
            Mode::Client,
            Mode::Server,
            Mode::Broadcast,
            Mode::Control,
            Mode::Private,
        ] {
            assert_eq!(Mode::from_bits(m.to_bits()), m);
        }
    }

    #[test]
    fn all_leap_indicators_roundtrip() {
        for l in [
            LeapIndicator::NoWarning,
            LeapIndicator::LastMinute61,
            LeapIndicator::LastMinute59,
            LeapIndicator::Unsynchronized,
        ] {
            assert_eq!(LeapIndicator::from_bits(l.to_bits()), l);
        }
    }

    #[test]
    fn error_display_messages() {
        assert!(PacketError::TooShort(3).to_string().contains("48"));
        assert!(PacketError::KissOfDeath(*b"DENY").to_string().contains("DENY"));
    }
}
