//! A minimal stratum-1 NTP/SNTP server over UDP.
//!
//! Serves mode-4 responses from a pluggable [`ServerClock`], which lets the
//! examples run a *simulated* stratum-1 server (its clock driven by a
//! `tsc-netsim` server model) on localhost, so the full client → network →
//! server → client loop is exercised over real sockets without touching the
//! public NTP pool.

use crate::packet::{Mode, NtpPacket, PACKET_LEN};
use crate::timestamp::NtpTimestamp;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The time source a server stamps packets with.
///
/// `now_unix` returns the server's idea of Unix time in seconds. It is
/// `&mut` because simulated clocks advance internal state when read.
pub trait ServerClock: Send {
    /// Current server time (Unix seconds).
    fn now_unix(&mut self) -> f64;

    /// Reference identifier to advertise (default: GPS, like the paper's
    /// ServerLoc/ServerInt).
    fn reference_id(&self) -> [u8; 4] {
        *b"GPS\0"
    }
}

/// A [`ServerClock`] backed by the operating-system clock.
#[derive(Debug, Default)]
pub struct SystemServerClock;

impl ServerClock for SystemServerClock {
    fn now_unix(&mut self) -> f64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }
}

/// Handle to a running server thread; dropping it (or calling
/// [`NtpServerHandle::shutdown`]) stops the serve loop.
pub struct NtpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl NtpServerHandle {
    /// Address the server is listening on (useful with port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the serve loop to exit and waits for the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NtpServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Spawns a server thread bound to `addr` (use port 0 for an ephemeral
/// port), answering every valid client request from `clock`.
///
/// The loop wakes every 50 ms to check the shutdown flag, so shutdown is
/// prompt; per the single-packet-per-poll workload there is no need for
/// anything fancier.
pub fn spawn<A: ToSocketAddrs, C: ServerClock + 'static>(
    addr: A,
    mut clock: C,
) -> io::Result<NtpServerHandle> {
    let socket = UdpSocket::bind(addr)?;
    socket.set_read_timeout(Some(Duration::from_millis(50)))?;
    let local = socket.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("ntp-server".into())
        .spawn(move || {
            let mut buf = [0u8; 512];
            while !stop2.load(Ordering::SeqCst) {
                let (len, from) = match socket.recv_from(&mut buf) {
                    Ok(x) => x,
                    Err(ref e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                };
                if len < PACKET_LEN {
                    continue;
                }
                let request = match NtpPacket::decode(&buf[..len]) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                if request.mode != Mode::Client {
                    continue;
                }
                let tb = NtpTimestamp::from_unix_seconds(clock.now_unix());
                let te = NtpTimestamp::from_unix_seconds(clock.now_unix());
                let resp = NtpPacket::server_response(&request, tb, te, clock.reference_id());
                let _ = socket.send_to(&resp.encode(), from);
            }
        })?;
    Ok(NtpServerHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SntpClient;

    /// A fixed-rate fake clock for deterministic server tests.
    struct FakeClock {
        t: f64,
    }
    impl ServerClock for FakeClock {
        fn now_unix(&mut self) -> f64 {
            self.t += 1e-6; // 1 µs residence per reading
            self.t
        }
        fn reference_id(&self) -> [u8; 4] {
            *b"SIM\0"
        }
    }

    #[test]
    fn end_to_end_exchange_over_loopback() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 1_000_000.0 }).unwrap();
        let mut client = SntpClient::connect(server.addr()).unwrap();
        client.set_timeout(Duration::from_secs(2)).unwrap();

        let mut host_t = 500.0;
        let ft = client
            .query(|| {
                host_t += 0.0001;
                host_t
            })
            .expect("exchange succeeds");
        // Server timestamps near 1e6; host timestamps near 500; both ordered.
        assert!(ft.tb > 999_999.0 && ft.te >= ft.tb);
        assert!(ft.tf > ft.ta);
        server.shutdown();
    }

    #[test]
    fn server_ignores_garbage_and_non_client_modes() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 1.0e6 }).unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        // garbage datagram → no reply
        sock.send_to(&[1, 2, 3], server.addr()).unwrap();
        let mut buf = [0u8; 64];
        assert!(sock.recv_from(&mut buf).is_err());
        // server-mode packet → no reply
        let mut p = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(5.0), 4);
        p.mode = Mode::Server;
        sock.send_to(&p.encode(), server.addr()).unwrap();
        assert!(sock.recv_from(&mut buf).is_err());
        server.shutdown();
    }

    #[test]
    fn multiple_sequential_queries() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 2.0e6 }).unwrap();
        let mut client = SntpClient::connect(server.addr()).unwrap();
        let mut t = 0.0;
        let mut last_tb = 0.0;
        for _ in 0..5 {
            let ft = client
                .query(|| {
                    t += 0.001;
                    t
                })
                .unwrap();
            assert!(ft.tb > last_tb, "server time must advance");
            last_tb = ft.tb;
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 0.0 }).unwrap();
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
