//! A minimal stratum-1 NTP/SNTP server over UDP.
//!
//! Serves mode-4 responses from a pluggable [`ServerClock`], which lets the
//! examples run a *simulated* stratum-1 server (its clock driven by a
//! `tsc-netsim` server model) on localhost, so the full client → network →
//! server → client loop is exercised over real sockets without touching the
//! public NTP pool.

use crate::packet::{Mode, NtpPacket, PACKET_LEN};
use crate::timestamp::NtpTimestamp;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tsc_telemetry as telemetry;

/// Nominal server residence `Te − Tb` assumed when a clock is read once
/// per request (seconds). The paper's servers answer in ~12 µs minimum
/// residence; a server that reads its clock a single time per request
/// derives `Te = Tb + residence` from this model instead of paying (and
/// serializing on) a second clock read.
pub const DEFAULT_RESIDENCE: f64 = 10e-6;

/// The time source a server stamps packets with.
///
/// `now_unix` returns the server's idea of Unix time in seconds. It is
/// `&mut` because simulated clocks advance internal state when read.
pub trait ServerClock: Send {
    /// Current server time (Unix seconds).
    fn now_unix(&mut self) -> f64;

    /// Reference identifier to advertise (default: GPS, like the paper's
    /// ServerLoc/ServerInt).
    fn reference_id(&self) -> [u8; 4] {
        *b"GPS\0"
    }

    /// Modeled residence time `Te − Tb` (seconds). The serve loop reads
    /// the clock **once** per request for `Tb` and derives
    /// `Te = Tb + residence()` — the same residence model the snapshot
    /// serving plane uses — so pure clocks aren't read twice mutably and
    /// both stamps come from one consistent reading.
    fn residence(&self) -> f64 {
        DEFAULT_RESIDENCE
    }
}

/// A [`ServerClock`] backed by the operating-system clock.
#[derive(Debug, Default)]
pub struct SystemServerClock;

impl ServerClock for SystemServerClock {
    fn now_unix(&mut self) -> f64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }
}

/// Shared serve-loop health state, readable through the handle.
#[derive(Debug, Default)]
struct ServerShared {
    served: AtomicU64,
    recv_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
}

/// Handle to a running server thread; dropping it (or calling
/// [`NtpServerHandle::shutdown`]) stops the serve loop.
pub struct NtpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<ServerShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl NtpServerHandle {
    /// Address the server is listening on (useful with port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Responses served so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Non-transient `recv_from` errors the loop survived. The loop never
    /// dies on an error — it counts here (and in the
    /// `serve_recv_errors` telemetry counter), keeps the last message for
    /// [`NtpServerHandle::last_error`], and continues.
    pub fn recv_errors(&self) -> u64 {
        self.shared.recv_errors.load(Ordering::Relaxed)
    }

    /// Message of the most recent non-transient receive error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.shared.last_error.lock().unwrap().clone()
    }

    /// Signals the serve loop to exit and waits for the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NtpServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Spawns a server thread bound to `addr` (use port 0 for an ephemeral
/// port), answering every valid client request from `clock`.
///
/// The loop wakes every 50 ms to check the shutdown flag, so shutdown is
/// prompt; per the single-packet-per-poll workload there is no need for
/// anything fancier.
pub fn spawn<A: ToSocketAddrs, C: ServerClock + 'static>(
    addr: A,
    mut clock: C,
) -> io::Result<NtpServerHandle> {
    let socket = UdpSocket::bind(addr)?;
    socket.set_read_timeout(Some(Duration::from_millis(50)))?;
    let local = socket.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let shared = Arc::new(ServerShared::default());
    let shared2 = Arc::clone(&shared);
    let join = std::thread::Builder::new()
        .name("ntp-server".into())
        .spawn(move || {
            let mut buf = [0u8; 512];
            while !stop2.load(Ordering::SeqCst) {
                let (len, from) = match socket.recv_from(&mut buf) {
                    Ok(x) => x,
                    Err(ref e) if recv_error_is_transient(e.kind()) => continue,
                    Err(e) => {
                        // Never die silently: count the error, remember it,
                        // back off briefly so a persistently broken socket
                        // doesn't busy-spin, and keep serving.
                        shared2.recv_errors.fetch_add(1, Ordering::Relaxed);
                        telemetry::add(telemetry::Ctr::ServeRecvErrors, 1);
                        *shared2.last_error.lock().unwrap() = Some(e.to_string());
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                };
                if len < PACKET_LEN {
                    continue;
                }
                let request = match NtpPacket::decode(&buf[..len]) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                if request.mode != Mode::Client {
                    continue;
                }
                // One clock read per request; Te derives from the residence
                // model (see ServerClock::residence) so a pure clock isn't
                // read twice and both stamps are mutually consistent.
                let now = clock.now_unix();
                let tb = NtpTimestamp::from_unix_seconds(now);
                let te = NtpTimestamp::from_unix_seconds(now + clock.residence());
                let resp = NtpPacket::server_response(&request, tb, te, clock.reference_id());
                let _ = socket.send_to(&resp.encode(), from);
                shared2.served.fetch_add(1, Ordering::Relaxed);
            }
        })?;
    Ok(NtpServerHandle {
        addr: local,
        stop,
        shared,
        join: Some(join),
    })
}

/// Receive-error classification for the serve loops: timeouts and
/// spurious wakeups are the normal idle path; everything else is counted
/// as a survived error. `ConnectionReset`/`ConnectionRefused` show up on
/// connectionless UDP sockets on some platforms when a *previous send*
/// bounced (ICMP port unreachable) — transient by definition.
pub fn recv_error_is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionRefused
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SntpClient;

    /// A fixed-rate fake clock for deterministic server tests.
    struct FakeClock {
        t: f64,
    }
    impl ServerClock for FakeClock {
        fn now_unix(&mut self) -> f64 {
            self.t += 1e-6; // 1 µs residence per reading
            self.t
        }
        fn reference_id(&self) -> [u8; 4] {
            *b"SIM\0"
        }
    }

    #[test]
    fn end_to_end_exchange_over_loopback() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 1_000_000.0 }).unwrap();
        let mut client = SntpClient::connect(server.addr()).unwrap();
        client.set_timeout(Duration::from_secs(2)).unwrap();

        let mut host_t = 500.0;
        let ft = client
            .query(|| {
                host_t += 0.0001;
                host_t
            })
            .expect("exchange succeeds");
        // Server timestamps near 1e6; host timestamps near 500; both ordered.
        assert!(ft.tb > 999_999.0 && ft.te >= ft.tb);
        assert!(ft.tf > ft.ta);
        server.shutdown();
    }

    #[test]
    fn server_ignores_garbage_and_non_client_modes() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 1.0e6 }).unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        // garbage datagram → no reply
        sock.send_to(&[1, 2, 3], server.addr()).unwrap();
        let mut buf = [0u8; 64];
        assert!(sock.recv_from(&mut buf).is_err());
        // server-mode packet → no reply
        let mut p = NtpPacket::client_request(NtpTimestamp::from_unix_seconds(5.0), 4);
        p.mode = Mode::Server;
        sock.send_to(&p.encode(), server.addr()).unwrap();
        assert!(sock.recv_from(&mut buf).is_err());
        server.shutdown();
    }

    #[test]
    fn multiple_sequential_queries() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 2.0e6 }).unwrap();
        let mut client = SntpClient::connect(server.addr()).unwrap();
        let mut t = 0.0;
        let mut last_tb = 0.0;
        for _ in 0..5 {
            let ft = client
                .query(|| {
                    t += 0.001;
                    t
                })
                .unwrap();
            assert!(ft.tb > last_tb, "server time must advance");
            last_tb = ft.tb;
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 0.0 }).unwrap();
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn te_derives_from_the_residence_model() {
        let server = spawn("127.0.0.1:0", FakeClock { t: 3.0e6 }).unwrap();
        let mut client = SntpClient::connect(server.addr()).unwrap();
        client.set_timeout(Duration::from_secs(2)).unwrap();
        let mut t = 0.0;
        let ft = client
            .query(|| {
                t += 0.001;
                t
            })
            .unwrap();
        // One clock read per request: Te − Tb is the modeled residence
        // (within f64 ULP noise near the NTP epoch offset), not the +1 µs a
        // second FakeClock read would have added.
        assert!(
            (ft.te - ft.tb - DEFAULT_RESIDENCE).abs() < 5e-7,
            "te - tb = {}",
            ft.te - ft.tb
        );
        // The response can arrive before the serve loop bumps its counter;
        // give the increment a moment to land.
        let t0 = std::time::Instant::now();
        while server.served() < 1 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::yield_now();
        }
        assert_eq!(server.served(), 1);
        assert_eq!(server.recv_errors(), 0);
        assert!(server.last_error().is_none());
        server.shutdown();
    }

    #[test]
    fn transient_error_classification() {
        for k in [
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
            io::ErrorKind::Interrupted,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionRefused,
        ] {
            assert!(recv_error_is_transient(k), "{k:?}");
        }
        for k in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::InvalidInput,
            io::ErrorKind::Other,
        ] {
            assert!(!recv_error_is_transient(k), "{k:?}");
        }
    }
}
