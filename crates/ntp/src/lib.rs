//! NTP wire protocol: timestamp formats, the 48-byte packet codec, and a
//! blocking UDP client/server pair.
//!
//! §2.3 of the paper describes the data source: "NTP packets ... are User
//! Datagram Packets (UDP) with a 48 byte payload including four 8-byte Unix
//! timestamp fields". Each host↔server exchange yields the four timestamps
//! `{Ta, Tb, Te, Tf}` of Figure 1 — the only remote input the synchronization
//! algorithms consume. This crate implements that packet format faithfully
//! (NTP v3/v4 header layout), plus a small client and server so the clock can
//! be driven over real sockets (see the `live_ntp` example) as well as from
//! the discrete-event simulator.
//!
//! Design per the project guides: the codec is a plain, allocation-free,
//! state-less transformation over byte slices; the client and server are
//! simple blocking state machines with explicit timeouts — no async runtime
//! is required for a 1-packet-per-16-seconds protocol.

pub mod client;
pub mod packet;
pub mod server;
pub mod timestamp;

pub use client::{FourTimestamps, SntpClient};
pub use packet::{LeapIndicator, Mode, NtpPacket, PacketError};
pub use server::{NtpServerHandle, ServerClock, SystemServerClock};
pub use timestamp::{NtpShort, NtpTimestamp, NTP_UNIX_OFFSET};
