//! A blocking SNTP client over UDP.
//!
//! Performs the host side of the Figure-1 exchange: send a mode-3 request
//! carrying `Ta`, receive the mode-4 response carrying `{Ta, Tb, Te}`, and
//! timestamp the arrival as `Tf`. The raw timestamps — *not* any derived
//! offset — are handed to the caller, because the paper's whole point is
//! that filtering and estimation happen elsewhere, against raw data.

use crate::packet::{NtpPacket, PacketError, PACKET_LEN};
use crate::timestamp::NtpTimestamp;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// The four timestamps of one completed exchange (Figure 1), plus the raw
/// host counter readings when the caller supplied a raw timestamper.
///
/// `ta`/`tf` are in the *host clock's* units (seconds of whatever clock the
/// caller reads — for the TSC-NTP clock these are raw counter readings
/// converted by the caller); `tb`/`te` are the server's NTP timestamps in
/// Unix seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourTimestamps {
    /// Host send timestamp `Ta` (host clock units).
    pub ta: f64,
    /// Server receive timestamp `Tb` (Unix seconds).
    pub tb: f64,
    /// Server transmit timestamp `Te` (Unix seconds).
    pub te: f64,
    /// Host receive timestamp `Tf` (host clock units).
    pub tf: f64,
}

/// Errors from an SNTP query.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (including receive timeout).
    Io(io::Error),
    /// Protocol-level failure.
    Packet(PacketError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Packet(e) => write!(f, "packet: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<PacketError> for ClientError {
    fn from(e: PacketError) -> Self {
        ClientError::Packet(e)
    }
}

/// Blocking SNTP client bound to one server address.
pub struct SntpClient {
    socket: UdpSocket,
    server: SocketAddr,
    timeout: Duration,
    poll_exponent: i8,
}

impl SntpClient {
    /// Creates a client talking to `server` (e.g. `"127.0.0.1:12300"`),
    /// with a 2-second receive timeout by default.
    pub fn connect<A: ToSocketAddrs>(server: A) -> io::Result<Self> {
        let server = server
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let bind_addr: SocketAddr = if server.is_ipv4() {
            "0.0.0.0:0".parse().expect("static addr parses")
        } else {
            "[::]:0".parse().expect("static addr parses")
        };
        let socket = UdpSocket::bind(bind_addr)?;
        socket.set_read_timeout(Some(Duration::from_secs(2)))?;
        Ok(Self {
            socket,
            server,
            timeout: Duration::from_secs(2),
            poll_exponent: 4,
        })
    }

    /// Sets the receive timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.timeout = timeout;
        self.socket.set_read_timeout(Some(timeout))
    }

    /// Sets the advertised poll exponent (log₂ seconds).
    pub fn set_poll_exponent(&mut self, poll: i8) {
        self.poll_exponent = poll;
    }

    /// The server this client queries.
    pub fn server(&self) -> SocketAddr {
        self.server
    }

    /// Performs one exchange. `now` is the host's raw clock — it is read
    /// immediately before send (`Ta`) and immediately after receive (`Tf`),
    /// mirroring the paper's driver-adjacent timestamping discipline (the
    /// closer to the wire, the smaller the "system noise" of §2.2.1).
    ///
    /// Responses that fail the origin/mode/KoD validation are *discarded
    /// silently* and the receive loop continues until the timeout, so stray
    /// datagrams cannot poison an exchange.
    pub fn query<F: FnMut() -> f64>(&mut self, mut now: F) -> Result<FourTimestamps, ClientError> {
        // A nonce in the transmit field: NTP only requires that the server
        // echo it. We use the host's own reading (standard practice).
        let ta = now();
        let nonce = NtpTimestamp::from_unix_seconds(ta.max(1.0));
        let request = NtpPacket::client_request(nonce, self.poll_exponent);
        self.socket.send_to(&request.encode(), self.server)?;

        let deadline = std::time::Instant::now() + self.timeout;
        let mut buf = [0u8; 512];
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "ntp receive timeout"))?;
            self.socket
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            let (len, from) = self.socket.recv_from(&mut buf)?;
            let tf = now();
            if from != self.server || len < PACKET_LEN {
                continue; // unrelated datagram
            }
            let packet = match NtpPacket::decode(&buf[..len]) {
                Ok(p) => p,
                Err(_) => continue,
            };
            match packet.validate_response(&request) {
                Ok(()) => {
                    return Ok(FourTimestamps {
                        ta,
                        tb: packet.receive_ts.to_unix_seconds(),
                        te: packet.transmit_ts.to_unix_seconds(),
                        tf,
                    })
                }
                // KoD must abort, not retry: the server asked us to stop.
                Err(e @ PacketError::KissOfDeath(_)) => return Err(e.into()),
                Err(_) => continue,
            }
        }
    }
}

impl FourTimestamps {
    /// Round-trip time as seen by the host clock: `r = Tf − Ta − (Te − Tb)`
    /// removes the server residence time `d↑` when desired; the paper's
    /// filtering uses the *full* RTT `Tf − Ta` (§5.1 argues the server's
    /// timestamps only add noise), so both are provided.
    pub fn rtt_full(&self) -> f64 {
        self.tf - self.ta
    }

    /// RTT minus server residence time (the classical NTP delay).
    pub fn rtt_less_server(&self) -> f64 {
        (self.tf - self.ta) - (self.te - self.tb)
    }

    /// The classical NTP midpoint offset estimate (equation (19) of the
    /// paper): `θ̂ = ½(Ta + Tf) − ½(Tb + Te)`. Only meaningful when `ta`/`tf`
    /// are in seconds of a comparable clock.
    pub fn naive_offset(&self) -> f64 {
        0.5 * (self.ta + self.tf) - 0.5 * (self.tb + self.te)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_timestamps_arithmetic() {
        let ft = FourTimestamps {
            ta: 10.0,
            tb: 10.4,
            te: 10.45,
            tf: 11.0,
        };
        assert!((ft.rtt_full() - 1.0).abs() < 1e-12);
        assert!((ft.rtt_less_server() - 0.95).abs() < 1e-12);
        // midpoints: host 10.5, server 10.425 → offset +0.075
        assert!((ft.naive_offset() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn connect_rejects_unresolvable() {
        assert!(SntpClient::connect("no-such-host.invalid:123").is_err());
    }

    #[test]
    fn timeout_error_when_no_server() {
        // Bind a socket, learn a port with nobody listening, expect timeout.
        let dead = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let mut c = SntpClient::connect(addr).unwrap();
        c.set_timeout(Duration::from_millis(50)).unwrap();
        let t0 = std::time::Instant::now();
        let r = c.query(|| 100.0);
        assert!(r.is_err());
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
