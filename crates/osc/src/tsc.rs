//! The simulated TSC (TimeStamp Counter) register.
//!
//! §2.2 defines the clock in terms of the raw counter: `C(t) = TSC(t)·p̂ + C̄`
//! where `p` is the true (slowly varying) cycle period. The counter is a
//! 64-bit hardware register incremented every CPU cycle; reading it is the
//! host's raw timestamping primitive. The paper warns that manipulating it
//! through a 32-bit value overflows within seconds on a GHz machine — we
//! keep the full 64 bits throughout.

use crate::oscillator::Oscillator;

/// A simulated 64-bit cycle counter driven by an [`Oscillator`].
///
/// `TSC(t) = TSC0 + round(f_nom · (t + x(t)))` where `x(t)` is the
/// oscillator's accumulated time error — i.e. the counter counts actual
/// oscillator cycles, including skew and drift.
#[derive(Debug)]
pub struct TscCounter {
    freq_hz: f64,
    tsc0: u64,
    osc: Oscillator,
}

impl TscCounter {
    /// Creates a counter of nominal frequency `freq_hz` (cycles per second of
    /// *oscillator* time) starting at counter value `tsc0` at `t = 0`.
    pub fn new(freq_hz: f64, tsc0: u64, osc: Oscillator) -> Self {
        assert!(freq_hz > 0.0, "counter frequency must be positive");
        Self { freq_hz, tsc0, osc }
    }

    /// Nominal counter frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Nominal cycle period in seconds (1 / frequency). This is what a naive
    /// user might assume for `p`; the *true* effective period differs by the
    /// skew, which is exactly what the rate-synchronization algorithm must
    /// estimate.
    pub fn nominal_period(&self) -> f64 {
        1.0 / self.freq_hz
    }

    /// Initial counter value.
    pub fn tsc0(&self) -> u64 {
        self.tsc0
    }

    /// Reads the counter at true time `t` (monotone in `t`).
    pub fn read(&mut self, t: f64) -> u64 {
        let local = self.osc.local_time_at(t);
        debug_assert!(local >= 0.0, "negative oscillator time");
        self.tsc0.wrapping_add((self.freq_hz * local).round() as u64)
    }

    /// The oscillator's accumulated time error at the last read instant —
    /// ground truth the reference monitor uses, never visible to the
    /// algorithms under test.
    pub fn time_error(&self) -> f64 {
        self.osc.time_error()
    }

    /// Current true time of the underlying oscillator.
    pub fn now(&self) -> f64 {
        self.osc.now()
    }

    /// Immutable access to the oscillator (diagnostics).
    pub fn oscillator(&self) -> &Oscillator {
        &self.osc
    }
}

/// Converts a difference of counter readings into seconds given a period
/// estimate: `Δ(t) = Δ(TSC) · p̂` (§1). Uses signed arithmetic so the caller
/// can take differences in either order.
pub fn counter_diff_to_seconds(later: u64, earlier: u64, period: f64) -> f64 {
    (later.wrapping_sub(earlier) as i64) as f64 * period
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ConstantSkew;
    use crate::oscillator::Oscillator;

    fn counter(ppm: f64) -> TscCounter {
        let osc = Oscillator::new(vec![ConstantSkew::from_ppm(ppm).into()], 3);
        TscCounter::new(1e9, 1_000_000, osc)
    }

    #[test]
    fn perfect_counter_counts_nominal() {
        let mut c = counter(0.0);
        assert_eq!(c.read(0.0), 1_000_000);
        assert_eq!(c.read(1.0), 1_000_000 + 1_000_000_000);
    }

    #[test]
    fn skewed_counter_runs_fast() {
        let mut c = counter(50.0);
        let v = c.read(1000.0);
        // 1000 s at 1 GHz + 50 PPM → 10^12 + 5·10^7 cycles
        let expect = 1_000_000u64 + 1_000_000_000_000 + 50_000_000;
        assert_eq!(v, expect);
    }

    #[test]
    fn reads_are_monotone() {
        let mut c = counter(50.0);
        let mut last = 0;
        for i in 0..1000 {
            let v = c.read(i as f64 * 0.5);
            assert!(v >= last, "counter went backwards at i={i}");
            last = v;
        }
    }

    #[test]
    fn diff_to_seconds_recovers_interval() {
        let mut c = counter(0.0);
        let a = c.read(10.0);
        let b = c.read(25.5);
        let dt = counter_diff_to_seconds(b, a, c.nominal_period());
        assert!((dt - 15.5).abs() < 1e-9);
    }

    #[test]
    fn diff_handles_wraparound() {
        // Values straddling u64 wrap still give correct small difference.
        let a = u64::MAX - 5;
        let b = 10u64;
        let dt = counter_diff_to_seconds(b, a, 1e-9);
        assert!((dt - 16e-9).abs() < 1e-18);
    }

    #[test]
    fn diff_negative_direction() {
        let dt = counter_diff_to_seconds(100, 200, 1e-9);
        assert!((dt + 100e-9).abs() < 1e-18);
    }

    #[test]
    fn time_error_tracks_skew() {
        let mut c = counter(100.0);
        c.read(1000.0);
        assert!((c.time_error() - 1e-4 * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn period_estimate_error_shows_up_as_rate_error() {
        // Using the nominal period on a skewed counter misestimates
        // intervals by exactly the skew — the core premise of §4.1.
        let mut c = counter(50.0);
        let a = c.read(0.0);
        let b = c.read(1000.0);
        let measured = counter_diff_to_seconds(b, a, c.nominal_period());
        let rel_err = (measured - 1000.0) / 1000.0;
        assert!((rel_err - 50e-6).abs() < 1e-9);
    }
}
