//! Environment presets matching the paper's three temperature settings.
//!
//! §3.1 characterizes the host oscillator in a *laboratory* (open-plan, no
//! air-conditioning), a *machine-room* (temperature controlled to a 2 °C
//! band) and, citing \[5\], a building-wide *air-conditioned* office. All three
//! share the same small-scale behaviour (SKM + white timestamping noise) but
//! differ at large scales, where temperature drives rate wander — always
//! bounded by 0.1 PPM. The machine-room traces additionally showed "a low
//! amplitude (≈0.05 PPM) but distinct oscillatory noise component of variable
//! period between 100 to 200 minutes".

use crate::components::{Aging, Component, ConstantSkew, FrequencyRandomWalk, Sinusoid, WhiteFm};
use crate::oscillator::Oscillator;
use serde::{Deserialize, Serialize};

/// The paper's 0.1 PPM universal rate-error bound (§3.1).
pub const RATE_BOUND: f64 = 1e-7;

/// The SKM validity scale τ* ≈ 1000 s (§3.1).
pub const SKM_SCALE: f64 = 1000.0;

/// Fully parameterized oscillator description. Serializable so experiment
/// configurations can be recorded alongside their outputs.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct OscillatorSpec {
    /// Constant skew in PPM (CPU oscillators are typically ~50 PPM off
    /// nominal, §2.1).
    pub skew_ppm: f64,
    /// Frequency random-walk diffusion (fraction / √s).
    pub rw_sigma: f64,
    /// Reflecting bound on the random-walk component (fraction).
    pub rw_bound: f64,
    /// Amplitude of the machine-room oscillatory component (fraction).
    pub osc_amplitude: f64,
    /// Period range of the oscillatory component (seconds).
    pub osc_period: (f64, f64),
    /// Amplitude of the diurnal temperature cycle (fraction).
    pub diurnal_amplitude: f64,
    /// Linear aging rate (fraction per second).
    pub aging: f64,
    /// White FM level σ_y(1 s) (fraction).
    pub white_fm: f64,
}

impl OscillatorSpec {
    /// The component set in canonical order (shared by the fast and
    /// reference constructors, so their RNG streams line up).
    pub fn components(&self) -> Vec<Component> {
        let mut comps: Vec<Component> = Vec::new();
        comps.push(ConstantSkew::from_ppm(self.skew_ppm).into());
        if self.rw_sigma > 0.0 {
            comps.push(FrequencyRandomWalk::new(self.rw_sigma, self.rw_bound).into());
        }
        if self.osc_amplitude > 0.0 {
            comps.push(
                Sinusoid::wandering(
                    self.osc_amplitude,
                    self.osc_period.0,
                    self.osc_period.1,
                    0.7,
                )
                .into(),
            );
        }
        if self.diurnal_amplitude > 0.0 {
            comps.push(Sinusoid::fixed(self.diurnal_amplitude, 86_400.0, 1.3).into());
        }
        if self.aging != 0.0 {
            comps.push(Aging { rate: self.aging }.into());
        }
        if self.white_fm > 0.0 {
            comps.push(
                WhiteFm {
                    sigma_at_1s: self.white_fm,
                }
                .into(),
            );
        }
        comps
    }

    /// Builds the oscillator with a deterministic seed.
    pub fn build(&self, seed: u64) -> Oscillator {
        Oscillator::new(self.components(), seed)
    }

    /// Builds the pre-optimization (reference-formulation) oscillator —
    /// bit-identical to the original implementation for this spec and seed.
    #[cfg(feature = "reference")]
    pub fn build_reference(&self, seed: u64) -> Oscillator {
        Oscillator::new_reference(self.components(), seed)
    }
}

/// The three host environments of §3.1 / Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Open-plan area, building not air-conditioned: strongest diurnal
    /// temperature swing, largest large-scale Allan deviation.
    Laboratory,
    /// Closed, temperature-controlled (±1 °C) room: smallest diurnal term
    /// but carries the distinct 100–200 min oscillatory component.
    MachineRoom,
    /// Building-wide air-conditioning (the environment of \[5\]): intermediate.
    Airconditioned,
}

impl Environment {
    /// Parameter set for this environment, tuned so the resulting Allan
    /// deviation reproduces the shape of Figure 3: ~1/τ at small scales
    /// (once host timestamping noise is added by the exchange simulator), a
    /// minimum of order 0.01 PPM near τ* = 1000 s, and a rise bounded by
    /// 0.1 PPM at day/week scales.
    pub fn spec(self) -> OscillatorSpec {
        match self {
            Environment::Laboratory => OscillatorSpec {
                skew_ppm: 52.4,
                rw_sigma: 2.5e-10,
                rw_bound: 9e-8,
                osc_amplitude: 1.5e-8,
                osc_period: (6_000.0, 12_000.0),
                diurnal_amplitude: 5.5e-8,
                aging: 2e-14,
                white_fm: 1e-9,
            },
            Environment::MachineRoom => OscillatorSpec {
                skew_ppm: 52.4,
                rw_sigma: 1.2e-10,
                rw_bound: 7e-8,
                osc_amplitude: 4.5e-8,
                osc_period: (6_000.0, 12_000.0),
                diurnal_amplitude: 1.2e-8,
                aging: 1e-14,
                white_fm: 1e-9,
            },
            Environment::Airconditioned => OscillatorSpec {
                skew_ppm: 52.4,
                rw_sigma: 1.8e-10,
                rw_bound: 8e-8,
                osc_amplitude: 2.5e-8,
                osc_period: (6_000.0, 12_000.0),
                diurnal_amplitude: 3.0e-8,
                aging: 1.5e-14,
                white_fm: 1e-9,
            },
        }
    }

    /// Builds the environment's oscillator with a deterministic seed.
    pub fn build(self, seed: u64) -> Oscillator {
        self.spec().build(seed)
    }

    /// Builds the environment's reference-formulation oscillator.
    #[cfg(feature = "reference")]
    pub fn build_reference(self, seed: u64) -> Oscillator {
        self.spec().build_reference(seed)
    }

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Environment::Laboratory => "laboratory",
            Environment::MachineRoom => "machine-room",
            Environment::Airconditioned => "airconditioned",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc_stats::allan::{allan_deviation, allan_sweep};

    /// Samples the oscillator's time error every `tau0` seconds for `n`
    /// samples (pure oscillator phase, no timestamping noise).
    fn phase_trace(env: Environment, seed: u64, tau0: f64, n: usize) -> Vec<f64> {
        let mut osc = env.build(seed);
        (0..n).map(|i| osc.advance_to(i as f64 * tau0)).collect()
    }

    #[test]
    fn rate_error_bounded_by_0_1_ppm_at_all_scales() {
        // The paper's fundamental hardware characterization: remove the
        // constant skew (which is calibrated away) and check y_τ ≤ 0.1 PPM.
        for env in [
            Environment::Laboratory,
            Environment::MachineRoom,
            Environment::Airconditioned,
        ] {
            let tau0 = 64.0;
            let n = (7.0 * 86_400.0 / tau0) as usize; // one week
            let phase = phase_trace(env, 11, tau0, n);
            let gamma = env.spec().skew_ppm * 1e-6;
            for m in [1usize, 16, 64, 256, 1024] {
                let tau = m as f64 * tau0;
                for i in (0..n.saturating_sub(m)).step_by(m.max(1)) {
                    let y = (phase[i + m] - phase[i]) / tau - gamma;
                    // Worst-case component sum for the widest spec
                    // (Laboratory): rw bound 9e-8 + sinusoid amplitudes
                    // 1.5e-8 + 5.5e-8 + week-end aging 1.2e-8 ≈ 1.73e-7.
                    // The margin must admit that ceiling — a tighter one
                    // only holds for lucky draw sequences (the old 1.6×
                    // failed whenever the walk grazed its bound while both
                    // sinusoids peaked).
                    assert!(
                        y.abs() < RATE_BOUND * 1.75,
                        "{}: rate error {y:.3e} at tau={tau} exceeds bound",
                        env.name()
                    );
                }
            }
        }
    }

    #[test]
    fn allan_minimum_near_skm_scale_is_order_0_01_ppm() {
        let tau0 = 16.0;
        let n = (3.0 * 86_400.0 / tau0) as usize;
        let phase = phase_trace(Environment::MachineRoom, 21, tau0, n);
        // near τ = 1000 s the intrinsic oscillator ADEV must be small:
        // between 1e-9 and 4e-8 (the measured total in the paper is ~1e-8,
        // including timestamping noise).
        let a = allan_deviation(&phase, tau0, (SKM_SCALE / tau0) as usize).unwrap();
        assert!(
            a > 1e-10 && a < 4e-8,
            "machine-room ADEV(1000s) = {a:.3e} out of expected band"
        );
    }

    #[test]
    fn allan_rises_then_stays_below_bound_at_large_scales() {
        let tau0 = 64.0;
        let n = (14.0 * 86_400.0 / tau0) as usize; // two weeks
        let phase = phase_trace(Environment::Laboratory, 31, tau0, n);
        let sweep = allan_sweep(&phase, tau0, 3);
        let small = sweep
            .iter()
            .find(|p| p.tau >= 900.0)
            .expect("sweep covers 1000s");
        let large = sweep
            .iter()
            .filter(|p| p.tau >= 40_000.0 && p.tau <= 200_000.0)
            .map(|p| p.adev)
            .fold(0.0f64, f64::max);
        assert!(
            large > small.adev,
            "large-scale ADEV should exceed the SKM-scale value ({large:.2e} vs {:.2e})",
            small.adev
        );
        assert!(
            large < 1.2e-7,
            "large-scale ADEV {large:.3e} must stay ~below 0.1 PPM"
        );
    }

    #[test]
    fn laboratory_is_more_variable_than_machine_room_at_large_scales() {
        let tau0 = 64.0;
        let n = (10.0 * 86_400.0 / tau0) as usize;
        let lab = phase_trace(Environment::Laboratory, 41, tau0, n);
        let mr = phase_trace(Environment::MachineRoom, 41, tau0, n);
        let m = (43_200.0 / tau0) as usize; // half-day scale
        let a_lab = allan_deviation(&lab, tau0, m).unwrap();
        let a_mr = allan_deviation(&mr, tau0, m).unwrap();
        assert!(
            a_lab > a_mr,
            "laboratory ({a_lab:.2e}) must exceed machine-room ({a_mr:.2e}) at day scales"
        );
    }

    #[test]
    fn spec_clone_and_eq() {
        let spec = Environment::MachineRoom.spec();
        let clone = spec.clone();
        assert_eq!(spec, clone);
        assert_ne!(spec, Environment::Laboratory.spec());
    }

    #[test]
    fn machine_room_oscillatory_component_visible_at_mid_scales() {
        // The ≈0.05 PPM 100–200 min oscillation should make the
        // machine-room ADEV near τ = T/2 ≈ 4500 s larger than at 1000 s.
        let tau0 = 64.0;
        let n = (5.0 * 86_400.0 / tau0) as usize;
        let phase = phase_trace(Environment::MachineRoom, 51, tau0, n);
        let a_1000 = allan_deviation(&phase, tau0, (1000.0 / tau0) as usize).unwrap();
        let a_4500 = allan_deviation(&phase, tau0, (4500.0 / tau0) as usize).unwrap();
        assert!(
            a_4500 > a_1000,
            "oscillation bump expected: ADEV(4500)={a_4500:.2e} vs ADEV(1000)={a_1000:.2e}"
        );
    }
}
