//! The composite oscillator: integrates frequency components into time error.

use crate::components::Component;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use rand_distr::StandardNormal;

/// A simulated oscillator whose accumulated time error is the integral of a
/// sum of [`Component`]s.
///
/// The oscillator exposes *oscillator time* `t + x(t)` where `x(t)` is the
/// accumulated error. A perfect oscillator has `x(t) = 0`; the paper's
/// general model (equation (3)) is `x(t) = θ0 + γ·t + ω(t)` and the
/// components provide `γ` and `ω`.
///
/// Time only moves forward. [`Oscillator::advance_to`] integrates the
/// *deterministic* components (constant skew, aging, fixed-period sinusoid)
/// in closed form over the whole requested interval, and sub-steps only the
/// *stochastic* components (bounded random walk, wandering-period sinusoid,
/// white FM) at `max_step` seconds, so that their noise is sampled finely
/// enough even when the caller polls rarely (e.g. a 1024 s NTP period).
/// All randomness of a long stochastic advance — ziggurat Gaussian words
/// and the wandering sinusoid's uniforms — is pre-drawn in one batched
/// keystream read (`ChaCha12Rng::fill_u64`).
///
/// The pre-optimization formulation — every component stepped every
/// sub-step, Box-Muller Gaussians — is retained behind the `reference`
/// feature ([`Oscillator::new_reference`]) and is bit-identical to the
/// original implementation; differential tests prove the fast path agrees
/// (bit-near for deterministic component sets, statistically for
/// stochastic ones).
pub struct Oscillator {
    components: Vec<Component>,
    rng: ChaCha12Rng,
    t: f64,
    x: f64,
    max_step: f64,
    /// Indices into `components` of the stochastic members — the fast
    /// integration loop touches only these.
    stoch_idx: Vec<u32>,
    /// Σ of constant-skew `γ` terms (folded at construction; a constant
    /// contributes `γ·dt` per advance with no per-component dispatch).
    gamma_total: f64,
    /// Σ of linear-aging rates (contributes `rate·(t₀ + dt/2)·dt`).
    aging_total: f64,
    /// Indices of fixed-period sinusoids — the only deterministic
    /// components with per-advance state.
    fixed_sin_idx: Vec<u32>,
    /// Reusable buffer for the batched keystream pre-draw.
    words: Vec<u64>,
    #[cfg(feature = "reference")]
    reference: bool,
}

impl std::fmt::Debug for Oscillator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oscillator")
            .field("t", &self.t)
            .field("x", &self.x)
            .field("max_step", &self.max_step)
            .field(
                "components",
                &self.components.iter().map(|c| c.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Pre-draw keystream words in one batched read only when a single
/// `advance_to` needs at least this many (short advances — the per-poll
/// common case — draw inline; the buffer costs more than it saves there).
const BATCH_THRESHOLD: usize = 8;

impl Oscillator {
    /// Default integration sub-step (seconds). 16 s matches the paper's
    /// densest polling period, so stochastic components are always sampled
    /// at least that finely.
    pub const DEFAULT_MAX_STEP: f64 = 16.0;

    /// Creates an oscillator from components and a deterministic seed.
    pub fn new(components: Vec<Component>, seed: u64) -> Self {
        let stoch_idx = components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_stochastic())
            .map(|(i, _)| i as u32)
            .collect();
        let gamma_total = components
            .iter()
            .filter_map(|c| match c {
                Component::Skew(s) => Some(s.gamma),
                _ => None,
            })
            .sum();
        let aging_total = components
            .iter()
            .filter_map(|c| match c {
                Component::Aging(a) => Some(a.rate),
                _ => None,
            })
            .sum();
        let fixed_sin_idx = components
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Component::Sinusoid(s) if !s.is_wandering()))
            .map(|(i, _)| i as u32)
            .collect();
        Self {
            components,
            rng: ChaCha12Rng::seed_from_u64(seed),
            t: 0.0,
            x: 0.0,
            max_step: Self::DEFAULT_MAX_STEP,
            stoch_idx,
            gamma_total,
            aging_total,
            fixed_sin_idx,
            words: Vec::new(),
            #[cfg(feature = "reference")]
            reference: false,
        }
    }

    /// The pre-optimization oscillator: every component is stepped every
    /// sub-step with Box-Muller Gaussians — bit-identical to the original
    /// implementation for the same components and seed. Exists so the
    /// differential tests can compare the fast path against it.
    #[cfg(feature = "reference")]
    pub fn new_reference(components: Vec<Component>, seed: u64) -> Self {
        Self {
            reference: true,
            ..Self::new(components, seed)
        }
    }

    /// Overrides the integration sub-step (mainly for tests/benches).
    pub fn with_max_step(mut self, max_step: f64) -> Self {
        assert!(max_step > 0.0, "max_step must be positive");
        self.max_step = max_step;
        self
    }

    /// Advances true time to `t` (no-op when `t` is in the past) and returns
    /// the accumulated time error `x(t)`.
    pub fn advance_to(&mut self, t: f64) -> f64 {
        #[cfg(feature = "reference")]
        if self.reference {
            return self.advance_to_reference(t);
        }
        if t <= self.t {
            return self.x;
        }
        let t0 = self.t;
        let dt_total = t - t0;

        // Deterministic components: exact closed-form integral over the
        // whole interval (the per-sub-step means of the reference loop
        // telescope to the same value). Skew and aging terms were folded
        // into two constants at construction — one fused expression, no
        // component scan; only fixed sinusoids carry per-advance state.
        // ∫ rate·s ds over [t0, t] = rate·(t0 + dt/2)·dt.
        self.x += (self.gamma_total + self.aging_total * (t0 + 0.5 * dt_total)) * dt_total;
        for &ci in &self.fixed_sin_idx {
            if let Component::Sinusoid(s) = &mut self.components[ci as usize] {
                self.x += s.integrate_fixed(dt_total);
            }
        }

        // Stochastic components, integrated component-major over the whole
        // advance. The reference sub-steps everything at `max_step`; here
        // only the wandering sinusoid still walks sub-step by sub-step
        // (its period state enters nonlinearly) — the white-FM and
        // random-walk integrals over the sub-stepped interval are jointly
        // Gaussian with closed-form (co)variances, so they are drawn
        // exactly with 1 and ≤3 Gaussians per advance respectively,
        // regardless of the number of sub-steps. All keystream words for
        // the advance come from one batched read; rare ziggurat
        // wedge/tail cases complete with direct draws.
        if !self.stoch_idx.is_empty() {
            let ratio = dt_total / self.max_step;
            let substeps = (ratio.ceil() as usize).max(1);
            // Full/partial sub-step decomposition for the bridge draws.
            let m_full = ratio.floor() as usize;
            let dt_p = dt_total - m_full as f64 * self.max_step;
            // `substeps · |stoch|` over-counts (bridged components use ≤3
            // words however long the advance) but is free to compute; the
            // exact per-component count is only needed when it decides to
            // batch.
            if substeps * self.stoch_idx.len() >= BATCH_THRESHOLD {
                let rw_words = if substeps == 1 {
                    1
                } else {
                    1 + usize::from(m_full >= 2) + usize::from(dt_p > 0.0)
                };
                let needed: usize = self
                    .components
                    .iter()
                    .map(|c| match c {
                        Component::RandomWalk(_) => rw_words,
                        Component::WhiteFm(_) => 1,
                        Component::Sinusoid(s) if s.is_wandering() => substeps,
                        _ => 0,
                    })
                    .sum();
                self.words.resize(needed, 0);
                self.rng.fill_u64(&mut self.words);
            } else {
                self.words.clear();
            }
            // Disjoint field borrows so the hot loop indexes straight
            // slices (no repeated bounds/option plumbing through `self`).
            let Self {
                components,
                rng,
                words,
                stoch_idx,
                max_step,
                ..
            } = self;
            let words: &[u64] = words;
            let mut wi = 0usize; // consumed prefix of `words`
            macro_rules! word {
                () => {
                    if wi < words.len() {
                        let w = words[wi];
                        wi += 1;
                        w
                    } else {
                        rng.next_u64()
                    }
                };
            }
            let sqrt_total = dt_total.sqrt();
            let mut x_acc = 0.0;
            for &ci in stoch_idx.iter() {
                match &mut components[ci as usize] {
                    Component::RandomWalk(w) => {
                        if substeps == 1 || w.near_bound(dt_total) {
                            // Single sub-step, or within the 4σ margin of
                            // the reflecting bound: exact per-sub-step
                            // dynamics (reflection included).
                            let mut cur = t0;
                            let (mut last_dt, mut sqrt_dt) = (-1.0f64, 0.0f64);
                            while cur < t {
                                let dt = (t - cur).min(*max_step);
                                if dt != last_dt {
                                    last_dt = dt;
                                    sqrt_dt = dt.sqrt();
                                }
                                let bits = word!();
                                let z = StandardNormal.sample_with_word(rng, bits);
                                x_acc += w.apply_z(sqrt_dt, z) * dt;
                                cur += dt;
                            }
                        } else {
                            let bits = word!();
                            let za = StandardNormal.sample_with_word(rng, bits);
                            let zb = if m_full >= 2 {
                                let bits = word!();
                                StandardNormal.sample_with_word(rng, bits)
                            } else {
                                0.0
                            };
                            let zp = if dt_p > 0.0 {
                                let bits = word!();
                                StandardNormal.sample_with_word(rng, bits)
                            } else {
                                0.0
                            };
                            x_acc += w.advance_bridge(*max_step, m_full, dt_p, za, zb, zp);
                        }
                    }
                    Component::WhiteFm(w) => {
                        // Independent increments: the sub-stepped integral
                        // is N(0, σ²·Δt) however it is chopped — one draw.
                        let bits = word!();
                        let z = StandardNormal.sample_with_word(rng, bits);
                        x_acc += w.apply_z(sqrt_total, z) * dt_total;
                    }
                    Component::Sinusoid(s) => {
                        // Period state is nonlinear: walk the reference
                        // sub-step geometry, one uniform per sub-step.
                        let mut cur = t0;
                        let (mut last_dt, mut sqrt_dt) = (-1.0f64, 0.0f64);
                        while cur < t {
                            let dt = (t - cur).min(*max_step);
                            if dt != last_dt {
                                last_dt = dt;
                                sqrt_dt = dt.sqrt();
                            }
                            let word = word!();
                            let u = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                            x_acc += s.step_wander_fast(dt, sqrt_dt, u) * dt;
                            cur += dt;
                        }
                    }
                    _ => unreachable!("stoch_idx holds only stochastic components"),
                }
            }
            self.x += x_acc;
        }
        self.t = t;
        self.x
    }

    /// The original integration loop: every component stepped every
    /// sub-step (deterministic ones included), Gaussian increments from
    /// inline Box-Muller pairs.
    #[cfg(feature = "reference")]
    fn advance_to_reference(&mut self, t: f64) -> f64 {
        while self.t < t {
            let dt = (t - self.t).min(self.max_step);
            let mut y = 0.0;
            for c in &mut self.components {
                y += c.step_reference(self.t, dt, &mut self.rng);
            }
            self.x += y * dt;
            self.t += dt;
        }
        self.x
    }

    /// Current true simulation time.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Accumulated time error `x(t)` at the current instant.
    pub fn time_error(&self) -> f64 {
        self.x
    }

    /// Oscillator-local time `t + x(t)` at the current instant.
    pub fn local_time(&self) -> f64 {
        self.t + self.x
    }

    /// Convenience: advance to `t` and return oscillator-local time.
    pub fn local_time_at(&mut self, t: f64) -> f64 {
        self.advance_to(t);
        self.local_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ConstantSkew, FrequencyRandomWalk, Sinusoid, WhiteFm};

    #[test]
    fn pure_skew_integrates_linearly() {
        let mut o = Oscillator::new(vec![ConstantSkew::from_ppm(50.0).into()], 1);
        let x = o.advance_to(1000.0);
        assert!((x - 50e-6 * 1000.0).abs() < 1e-12);
        assert!((o.local_time() - 1000.05).abs() < 1e-9);
    }

    #[test]
    fn advance_is_monotone_and_idempotent_backwards() {
        let mut o = Oscillator::new(vec![ConstantSkew::from_ppm(10.0).into()], 1);
        o.advance_to(100.0);
        let x100 = o.time_error();
        let x_again = o.advance_to(50.0); // going backwards must be a no-op
        assert_eq!(x100, x_again);
        assert_eq!(o.now(), 100.0);
    }

    #[test]
    fn substeps_match_single_steps_for_deterministic_components() {
        // For deterministic components, coarse and fine stepping must agree.
        let make = || {
            Oscillator::new(
                vec![
                    ConstantSkew::from_ppm(30.0).into(),
                    Sinusoid::fixed(5e-8, 9000.0, 0.3).into(),
                ],
                9,
            )
        };
        let mut fine = make().with_max_step(1.0);
        let mut coarse = make().with_max_step(16.0);
        let xf = fine.advance_to(5000.0);
        let xc = coarse.advance_to(5000.0);
        // exact sinusoid integral is used per step, so they agree closely
        assert!((xf - xc).abs() < 1e-12, "fine {xf} vs coarse {xc}");
    }

    #[test]
    fn deterministic_closed_form_independent_of_advance_granularity() {
        // Closed-form integration must telescope: advancing in many small
        // calls or one big call gives the same deterministic trajectory.
        let make = || {
            Oscillator::new(
                vec![
                    ConstantSkew::from_ppm(52.4).into(),
                    crate::components::Aging { rate: 2e-14 }.into(),
                    Sinusoid::fixed(5.5e-8, 86_400.0, 1.3).into(),
                ],
                3,
            )
        };
        let mut steps = make();
        for i in 1..=1000 {
            steps.advance_to(i as f64 * 100.0);
        }
        let mut one = make();
        one.advance_to(100_000.0);
        let (a, b) = (steps.time_error(), one.time_error());
        assert!(
            (a - b).abs() < 1e-10,
            "granularity changed deterministic integral: {a} vs {b}"
        );
    }

    #[test]
    fn stochastic_trace_is_reproducible() {
        let run = |seed| {
            let mut o = Oscillator::new(vec![FrequencyRandomWalk::new(1e-10, 1e-7).into()], seed);
            (1..100)
                .map(|i| o.advance_to(i as f64 * 16.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn long_advance_batched_draws_are_reproducible() {
        // poll-1024-style advances cross the BATCH_THRESHOLD and use the
        // batched keystream path; determinism per seed must hold there too.
        let run = |seed| {
            let mut o = Oscillator::new(
                vec![
                    FrequencyRandomWalk::new(1.2e-10, 7e-8).into(),
                    WhiteFm { sigma_at_1s: 1e-9 }.into(),
                ],
                seed,
            );
            (1..50)
                .map(|i| o.advance_to(i as f64 * 1024.0).to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn empty_oscillator_is_perfect() {
        let mut o = Oscillator::new(vec![], 0);
        assert_eq!(o.advance_to(1e6), 0.0);
        assert_eq!(o.local_time(), 1e6);
    }

    #[test]
    fn local_time_at_advances() {
        let mut o = Oscillator::new(vec![ConstantSkew::from_ppm(100.0).into()], 0);
        let lt = o.local_time_at(10.0);
        assert!((lt - 10.001).abs() < 1e-9);
    }
}
