//! The composite oscillator: integrates frequency components into time error.

use crate::components::FrequencyComponent;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A simulated oscillator whose accumulated time error is the integral of a
/// sum of [`FrequencyComponent`]s.
///
/// The oscillator exposes *oscillator time* `t + x(t)` where `x(t)` is the
/// accumulated error. A perfect oscillator has `x(t) = 0`; the paper's
/// general model (equation (3)) is `x(t) = θ0 + γ·t + ω(t)` and the
/// components provide `γ` and `ω`.
///
/// Time only moves forward: [`Oscillator::advance_to`] integrates from the
/// current simulation time to the requested instant in sub-steps of at most
/// `max_step` seconds, so that the stochastic components are sampled finely
/// enough even when the caller polls rarely (e.g. a 256 s NTP period).
pub struct Oscillator {
    components: Vec<Box<dyn FrequencyComponent>>,
    rng: ChaCha12Rng,
    t: f64,
    x: f64,
    max_step: f64,
}

impl std::fmt::Debug for Oscillator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oscillator")
            .field("t", &self.t)
            .field("x", &self.x)
            .field("max_step", &self.max_step)
            .field(
                "components",
                &self.components.iter().map(|c| c.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Oscillator {
    /// Default integration sub-step (seconds). 16 s matches the paper's
    /// densest polling period, so stochastic components are always sampled
    /// at least that finely.
    pub const DEFAULT_MAX_STEP: f64 = 16.0;

    /// Creates an oscillator from components and a deterministic seed.
    pub fn new(components: Vec<Box<dyn FrequencyComponent>>, seed: u64) -> Self {
        Self {
            components,
            rng: ChaCha12Rng::seed_from_u64(seed),
            t: 0.0,
            x: 0.0,
            max_step: Self::DEFAULT_MAX_STEP,
        }
    }

    /// Overrides the integration sub-step (mainly for tests/benches).
    pub fn with_max_step(mut self, max_step: f64) -> Self {
        assert!(max_step > 0.0, "max_step must be positive");
        self.max_step = max_step;
        self
    }

    /// Advances true time to `t` (no-op when `t` is in the past) and returns
    /// the accumulated time error `x(t)`.
    pub fn advance_to(&mut self, t: f64) -> f64 {
        while self.t < t {
            let dt = (t - self.t).min(self.max_step);
            let mut y = 0.0;
            for c in &mut self.components {
                y += c.step(self.t, dt, &mut self.rng);
            }
            self.x += y * dt;
            self.t += dt;
        }
        self.x
    }

    /// Current true simulation time.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Accumulated time error `x(t)` at the current instant.
    pub fn time_error(&self) -> f64 {
        self.x
    }

    /// Oscillator-local time `t + x(t)` at the current instant.
    pub fn local_time(&self) -> f64 {
        self.t + self.x
    }

    /// Convenience: advance to `t` and return oscillator-local time.
    pub fn local_time_at(&mut self, t: f64) -> f64 {
        self.advance_to(t);
        self.local_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ConstantSkew, FrequencyRandomWalk, Sinusoid};

    #[test]
    fn pure_skew_integrates_linearly() {
        let mut o = Oscillator::new(vec![Box::new(ConstantSkew::from_ppm(50.0))], 1);
        let x = o.advance_to(1000.0);
        assert!((x - 50e-6 * 1000.0).abs() < 1e-12);
        assert!((o.local_time() - 1000.05).abs() < 1e-9);
    }

    #[test]
    fn advance_is_monotone_and_idempotent_backwards() {
        let mut o = Oscillator::new(vec![Box::new(ConstantSkew::from_ppm(10.0))], 1);
        o.advance_to(100.0);
        let x100 = o.time_error();
        let x_again = o.advance_to(50.0); // going backwards must be a no-op
        assert_eq!(x100, x_again);
        assert_eq!(o.now(), 100.0);
    }

    #[test]
    fn substeps_match_single_steps_for_deterministic_components() {
        // For deterministic components, coarse and fine stepping must agree.
        let make = || {
            Oscillator::new(
                vec![
                    Box::new(ConstantSkew::from_ppm(30.0)) as Box<dyn crate::FrequencyComponent>,
                    Box::new(Sinusoid::fixed(5e-8, 9000.0, 0.3)),
                ],
                9,
            )
        };
        let mut fine = make().with_max_step(1.0);
        let mut coarse = make().with_max_step(16.0);
        let xf = fine.advance_to(5000.0);
        let xc = coarse.advance_to(5000.0);
        // exact sinusoid integral is used per step, so they agree closely
        assert!(
            (xf - xc).abs() < 1e-12,
            "fine {xf} vs coarse {xc}"
        );
    }

    #[test]
    fn stochastic_trace_is_reproducible() {
        let run = |seed| {
            let mut o = Oscillator::new(
                vec![Box::new(FrequencyRandomWalk::new(1e-10, 1e-7))
                    as Box<dyn crate::FrequencyComponent>],
                seed,
            );
            (1..100).map(|i| o.advance_to(i as f64 * 16.0)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn empty_oscillator_is_perfect() {
        let mut o = Oscillator::new(vec![], 0);
        assert_eq!(o.advance_to(1e6), 0.0);
        assert_eq!(o.local_time(), 1e6);
    }

    #[test]
    fn local_time_at_advances() {
        let mut o = Oscillator::new(vec![Box::new(ConstantSkew::from_ppm(100.0))], 0);
        let lt = o.local_time_at(10.0);
        assert!((lt - 10.001).abs() < 1e-9);
    }
}
