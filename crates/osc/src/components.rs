//! Composable fractional-frequency noise components.
//!
//! Each component contributes to the oscillator's instantaneous fractional
//! frequency error `y(t)` (equation (4) of the paper interprets `y_τ(t)` as
//! the rate error at scale τ; here we model the underlying continuous-time
//! process). The [`crate::Oscillator`] integrates the sum of components into
//! the accumulated time error `x(t) = ∫ y(s) ds`.
//!
//! Components are held in the devirtualized [`Component`] enum. The
//! deterministic members (skew, aging, fixed-period sinusoid) are
//! integrated in closed form over whole `advance_to` intervals by the fast
//! oscillator; only the stochastic members (bounded frequency random walk,
//! wandering-period sinusoid, white FM) are sub-stepped. The
//! [`FrequencyComponent`] trait keeps the original per-sub-step
//! formulation — Box-Muller draws and all — alive for the `reference`
//! feature's differential tests.

use rand::RngExt;
use rand_chacha::ChaCha12Rng;

/// A source of fractional frequency error.
///
/// `step` must return the *mean* fractional frequency error over the
/// interval `[t, t + dt)`. Components may hold state (e.g. a random walk)
/// which is advanced by the call; `dt` is guaranteed positive and bounded by
/// the oscillator's maximum integration step.
///
/// These implementations are the *reference* formulation: every component
/// is stepped every sub-step, and Gaussian increments come from inline
/// Box-Muller pairs. The fast path in [`crate::Oscillator`] integrates the
/// deterministic components in closed form and draws its Gaussians from
/// the ziggurat instead; `reference`-gated differential tests prove the two
/// agree (bit-near for deterministic sets, statistically for stochastic
/// ones).
pub trait FrequencyComponent: Send {
    /// Mean fractional frequency error over `[t, t + dt)`.
    fn step(&mut self, t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64;

    /// A short human-readable tag for diagnostics.
    fn name(&self) -> &'static str;
}

/// Constant skew `γ`: the deterministic linear part of the SKM
/// (equation (2)). Typical CPU oscillators sit ~50 PPM from nominal (§2.1).
#[derive(Debug, Clone, Copy)]
pub struct ConstantSkew {
    /// Fractional frequency offset (dimensionless; 50e-6 = 50 PPM).
    pub gamma: f64,
}

impl ConstantSkew {
    /// Creates a constant-skew component of `ppm` parts per million.
    pub fn from_ppm(ppm: f64) -> Self {
        Self { gamma: ppm * 1e-6 }
    }
}

impl FrequencyComponent for ConstantSkew {
    fn step(&mut self, _t: f64, _dt: f64, _rng: &mut ChaCha12Rng) -> f64 {
        self.gamma
    }
    fn name(&self) -> &'static str {
        "constant-skew"
    }
}

/// Linear frequency aging: `y(t) = rate · t`.
///
/// §4.1 notes "ultimately, the CPU oscillator is also subject to aging" as
/// one reason the rate estimate must eventually forget the past. Quartz
/// aging is tiny (≲1e-13/s) but nonzero; modelling it lets the windowing
/// logic be exercised against a drifting truth.
#[derive(Debug, Clone, Copy)]
pub struct Aging {
    /// Fractional frequency change per second.
    pub rate: f64,
}

impl FrequencyComponent for Aging {
    fn step(&mut self, t: f64, dt: f64, _rng: &mut ChaCha12Rng) -> f64 {
        // Mean of rate·s over [t, t+dt).
        self.rate * (t + 0.5 * dt)
    }
    fn name(&self) -> &'static str {
        "aging"
    }
}

/// Sinusoidal frequency modulation — the periodic "temperature" terms of
/// §3.1: the low-amplitude (≈0.05 PPM) machine-room oscillation with a
/// 100–200-minute period, and the diurnal cycle in the laboratory traces.
///
/// The period can wander slowly between `period_min` and `period_max`
/// (the paper observed "variable period between 100 to 200 minutes");
/// when the two are equal the component is strictly periodic.
#[derive(Debug, Clone)]
pub struct Sinusoid {
    /// Peak fractional-frequency amplitude (5e-8 = 0.05 PPM).
    pub amplitude: f64,
    /// Minimum modulation period in seconds.
    pub period_min: f64,
    /// Maximum modulation period in seconds.
    pub period_max: f64,
    /// Initial phase in radians.
    pub phase: f64,
    current_period: f64,
    /// `(sin φ, cos φ)` carried across fast sub-steps: the hot loop
    /// advances the phase by rotating this pair with a tiny-angle Taylor
    /// rotation instead of calling libm trig per sub-step.
    sin_cos: (f64, f64),
    /// The `phase` value `sin_cos` was computed for (NaN = not primed).
    /// Guarding on it keeps the cache coherent even if `phase` — a public
    /// field — is mutated externally between steps.
    sc_phase: f64,
}

impl Sinusoid {
    /// Strictly periodic sinusoidal FM.
    pub fn fixed(amplitude: f64, period: f64, phase: f64) -> Self {
        assert!(period > 0.0, "sinusoid period must be positive");
        Self {
            amplitude,
            period_min: period,
            period_max: period,
            phase,
            current_period: period,
            sin_cos: (f64::NAN, f64::NAN),
            sc_phase: f64::NAN,
        }
    }

    /// Sinusoid whose period wanders within `[period_min, period_max]`.
    pub fn wandering(amplitude: f64, period_min: f64, period_max: f64, phase: f64) -> Self {
        assert!(
            period_min > 0.0 && period_max >= period_min,
            "invalid sinusoid period range"
        );
        Self {
            amplitude,
            period_min,
            period_max,
            phase,
            current_period: 0.5 * (period_min + period_max),
            sin_cos: (f64::NAN, f64::NAN),
            sc_phase: f64::NAN,
        }
    }

    /// Whether the period wanders (consumes randomness) or is fixed
    /// (deterministic, closed-form integrable).
    pub fn is_wandering(&self) -> bool {
        self.period_max > self.period_min
    }

    /// Advances the phase by angle `a`, maintaining the cached
    /// `(sin φ, cos φ)` pair with a degree-7 Taylor rotation — below 1 ulp
    /// of truncation error for the sub-0.05-rad angles of the fast paths'
    /// sub-steps — and exact libm trig at phase wraps (the natural
    /// re-priming point, bounding rotation round-off to one period) or for
    /// large angles. The pair is re-primed whenever `phase` (a public
    /// field) was mutated externally since the cache was written. Returns
    /// `((sin φ₀, cos φ₀), (sin φ₁, cos φ₁))`.
    fn rotate_phase(&mut self, a: f64) -> ((f64, f64), (f64, f64)) {
        let p0 = self.phase;
        let p1 = p0 + a;
        let wrapped = p1 >= std::f64::consts::TAU;
        self.phase = p1 % std::f64::consts::TAU;
        if self.sc_phase != p0 {
            // Not primed, or `phase` was mutated externally since the
            // cached pair was computed.
            self.sin_cos = p0.sin_cos();
        }
        let (s0, c0) = self.sin_cos;
        let (s1, c1) = if wrapped || a > 0.05 {
            self.phase.sin_cos()
        } else {
            let a2 = a * a;
            let ca = 1.0 - a2 * (0.5 - a2 * (1.0 / 24.0 - a2 / 720.0));
            let sa = a * (1.0 - a2 * (1.0 / 6.0 - a2 * (1.0 / 120.0 - a2 / 5040.0)));
            (s0 * ca + c0 * sa, c0 * ca - s0 * sa)
        };
        self.sin_cos = (s1, c1);
        self.sc_phase = self.phase;
        ((s0, c0), (s1, c1))
    }

    /// Fast wandering sub-step: identical period-walk dynamics to the
    /// reference [`FrequencyComponent::step`], with the uniform increment
    /// `u` pre-drawn by the oscillator's batched keystream read, the
    /// `√(dt/3600)` factor folded into the caller-supplied `sqrt_dt`, and
    /// the phase tracked as a `(sin, cos)` pair rotated by a degree-7
    /// Taylor rotation — for the sub-degree angles of a ≥100-minute-period
    /// sinusoid sub-stepped at ≤16 s the truncation error is below 1 ulp,
    /// and the sub-step loop runs with no libm call at all. The pair is
    /// re-primed from the exact phase once per wrap of `φ` past `τ`, so
    /// rotation round-off cannot accumulate beyond one period.
    pub(crate) fn step_wander_fast(&mut self, dt: f64, sqrt_dt: f64, u: f64) -> f64 {
        let span = self.period_max - self.period_min;
        // span · 0.01 · √(dt/3600) · 2√3, with √dt hoisted by the caller.
        let sigma = span * (0.01 / 60.0) * sqrt_dt;
        let delta = (u - 0.5) * 2.0 * sigma * 3.0f64.sqrt();
        self.current_period += delta;
        if self.current_period > self.period_max {
            self.current_period = 2.0 * self.period_max - self.current_period;
        }
        if self.current_period < self.period_min {
            self.current_period = 2.0 * self.period_min - self.current_period;
        }
        self.current_period = self.current_period.clamp(self.period_min, self.period_max);
        let a = std::f64::consts::TAU / self.current_period * dt;
        let ((s0, c0), (_, c1)) = self.rotate_phase(a);
        if a < 1e-9 {
            self.amplitude * s0
        } else {
            self.amplitude * (c0 - c1) / a
        }
    }

    /// Exact integral `∫ A·sin(φ + ω·s) ds` over `[0, dt]` for the
    /// fixed-period case, advancing the phase — the closed-form equivalent
    /// of summing per-sub-step means (they telescope). Uses the same
    /// Taylor-rotated `(sin, cos)` pair as the wandering fast path for
    /// small phase increments (re-primed exactly at every `τ` wrap or
    /// large step), so typical per-poll advances cost no libm trig.
    pub(crate) fn integrate_fixed(&mut self, dt: f64) -> f64 {
        let w = std::f64::consts::TAU / self.current_period;
        let a = w * dt;
        let ((s0, c0), (_, c1)) = self.rotate_phase(a);
        if a < 1e-9 {
            self.amplitude * s0 * dt
        } else {
            self.amplitude * (c0 - c1) / w
        }
    }
}

impl FrequencyComponent for Sinusoid {
    fn step(&mut self, _t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64 {
        // Advance phase by the current instantaneous period; wander the
        // period with a small reflected random walk when a range is given.
        if self.period_max > self.period_min {
            let span = self.period_max - self.period_min;
            // ~1% of the span per hour of simulated time.
            let sigma = span * 0.01 * (dt / 3600.0).sqrt();
            let delta = (rng.random::<f64>() - 0.5) * 2.0 * sigma * 3.0f64.sqrt();
            self.current_period += delta;
            if self.current_period > self.period_max {
                self.current_period = 2.0 * self.period_max - self.current_period;
            }
            if self.current_period < self.period_min {
                self.current_period = 2.0 * self.period_min - self.current_period;
            }
            self.current_period = self.current_period.clamp(self.period_min, self.period_max);
        }
        let w = std::f64::consts::TAU / self.current_period;
        let p0 = self.phase;
        self.phase = (self.phase + w * dt) % std::f64::consts::TAU;
        // Mean of A·sin over the step (exact integral to keep phase smooth).
        if w * dt < 1e-9 {
            self.amplitude * p0.sin()
        } else {
            self.amplitude * (p0.cos() - (p0 + w * dt).cos()) / (w * dt)
        }
    }
    fn name(&self) -> &'static str {
        "sinusoid"
    }
}

/// Bounded random-walk frequency modulation: the slow, environment-driven
/// wander of the oscillator rate. The reflecting bound enforces the paper's
/// fundamental characterization that "the rate error remains bounded by
/// 0.1 PPM ... over all time scales" (§3.1).
#[derive(Debug, Clone)]
pub struct FrequencyRandomWalk {
    /// Diffusion strength: Var[y(t+dt) − y(t)] = sigma²·dt.
    pub sigma: f64,
    /// Reflecting bound on |y|.
    pub bound: f64,
    y: f64,
}

impl FrequencyRandomWalk {
    /// New random walk starting at `y = 0`.
    pub fn new(sigma: f64, bound: f64) -> Self {
        assert!(sigma >= 0.0 && bound > 0.0, "invalid random walk params");
        Self { sigma, bound, y: 0.0 }
    }

    /// Current frequency deviation.
    pub fn current(&self) -> f64 {
        self.y
    }

    /// Whether an advance of total length `span` seconds could plausibly
    /// (within 4σ of the increment spread) carry the walk into its
    /// reflecting bound — callers then take the exact per-sub-step path
    /// instead of the bridge, so reflection dynamics are only ever
    /// approximated in the ≲3·10⁻⁵ tail beyond the 4σ margin.
    pub(crate) fn near_bound(&self, span: f64) -> bool {
        self.bound - self.y.abs() < 4.0 * self.sigma * span.sqrt()
    }

    /// Advance-level bridge: integrates the walk over `m` equal sub-steps
    /// of `dt` seconds plus an optional partial sub-step `dt_p`, from
    /// `1 + (m > 1) + (dt_p > 0)` Gaussian draws instead of one per
    /// sub-step, returning the trapezoid *phase* integral `∫y ds` and
    /// advancing the level. Exact in distribution: over the sub-stepped
    /// walk, the pair `(Δy, ∫y)` is jointly Gaussian with
    /// `Var[Δy] = m s²`, `Var[Σcᵢzᵢ] = m³/3 − m/12` and
    /// `Cov = m²/2` (`cᵢ = m − i + ½` is increment `i`'s trapezoid
    /// weight), which `za`/`zb` reproduce via the Cholesky factors below.
    /// The reflecting bound is applied to the end level; *interior*
    /// reflections are not replayed — with per-sub-step σ√dt orders of
    /// magnitude below the bound they occur on ≪1% of sub-steps, and the
    /// caller's single-sub-step case ([`FrequencyRandomWalk::apply_z`])
    /// keeps the exact per-step dynamics where it matters most.
    pub(crate) fn advance_bridge(
        &mut self,
        dt: f64,
        m: usize,
        dt_p: f64,
        za: f64,
        zb: f64,
        zp: f64,
    ) -> f64 {
        let s = self.sigma * dt.sqrt();
        let mf = m as f64;
        let sqrt_m = mf.sqrt();
        let dw1 = sqrt_m * za;
        let s1 = 0.5 * mf * sqrt_m * za + (mf * (mf * mf - 1.0) / 12.0).sqrt() * zb;
        let span = mf * dt + dt_p;
        let mut integral = self.y * span + s * (dt * s1 + dt_p * dw1);
        let mut y_end = self.y + s * dw1;
        if dt_p > 0.0 {
            let sp = self.sigma * dt_p.sqrt();
            integral += 0.5 * sp * dt_p * zp;
            y_end += sp * zp;
        }
        // A path that respects the reflecting bound satisfies |∫y| ≤
        // bound·T; the unreflected bridge can overshoot in the rare
        // boundary-grazing cases, so restore the model's fundamental
        // bounded-rate invariant explicitly.
        integral = integral.clamp(-self.bound * span, self.bound * span);
        if y_end > self.bound {
            y_end = 2.0 * self.bound - y_end;
        }
        if y_end < -self.bound {
            y_end = -2.0 * self.bound - y_end;
        }
        self.y = y_end.clamp(-self.bound, self.bound);
        integral
    }

    /// The sub-step dynamics given an externally drawn `N(0,1)` increment
    /// `z` and a pre-computed `√dt` — the hook the oscillator's batched
    /// keystream path uses (same reflecting dynamics as the reference
    /// [`FrequencyComponent::step`], ziggurat Gaussian instead of
    /// Box-Muller, `sqrt` hoisted out of the sub-step loop).
    pub(crate) fn apply_z(&mut self, sqrt_dt: f64, z: f64) -> f64 {
        let y0 = self.y;
        self.y += z * self.sigma * sqrt_dt;
        if self.y > self.bound {
            self.y = 2.0 * self.bound - self.y;
        }
        if self.y < -self.bound {
            self.y = -2.0 * self.bound - self.y;
        }
        self.y = self.y.clamp(-self.bound, self.bound);
        0.5 * (y0 + self.y)
    }
}

impl FrequencyComponent for FrequencyRandomWalk {
    fn step(&mut self, _t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64 {
        let y0 = self.y;
        // Gaussian increment via Box-Muller on the deterministic stream.
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.y += z * self.sigma * dt.sqrt();
        // Reflect at the bounds.
        if self.y > self.bound {
            self.y = 2.0 * self.bound - self.y;
        }
        if self.y < -self.bound {
            self.y = -2.0 * self.bound - self.y;
        }
        self.y = self.y.clamp(-self.bound, self.bound);
        0.5 * (y0 + self.y)
    }
    fn name(&self) -> &'static str {
        "freq-random-walk"
    }
}

/// White frequency modulation: independent Gaussian rate error each step.
/// Contributes ADEV(τ) ∝ τ^{-1/2}; kept small, it fills in the transition
/// region of the Allan plot between the white-phase-noise slope and the
/// large-scale drift floor.
#[derive(Debug, Clone, Copy)]
pub struct WhiteFm {
    /// ADEV contribution at τ = 1 s (σ_y(1s)).
    pub sigma_at_1s: f64,
}

impl WhiteFm {
    /// Sub-step given an externally drawn `N(0,1)` increment and a
    /// pre-computed `√dt` (mean over dt of white FM scales as `1/√dt`).
    pub(crate) fn apply_z(&mut self, sqrt_dt: f64, z: f64) -> f64 {
        z * self.sigma_at_1s / sqrt_dt
    }
}

impl FrequencyComponent for WhiteFm {
    fn step(&mut self, _t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        // Mean over dt of white FM scales as 1/sqrt(dt).
        z * self.sigma_at_1s / dt.sqrt()
    }
    fn name(&self) -> &'static str {
        "white-fm"
    }
}

/// The devirtualized component set: one enum instead of
/// `Box<dyn FrequencyComponent>`, so the oscillator's sub-step loop is a
/// jump table over concrete types (inlineable, no heap indirection) and the
/// deterministic variants can be recognized for closed-form integration.
#[derive(Debug, Clone)]
pub enum Component {
    /// Constant skew γ (deterministic).
    Skew(ConstantSkew),
    /// Linear aging (deterministic).
    Aging(Aging),
    /// Sinusoidal FM; deterministic when the period is fixed, stochastic
    /// when it wanders.
    Sinusoid(Sinusoid),
    /// Bounded frequency random walk (stochastic).
    RandomWalk(FrequencyRandomWalk),
    /// White FM (stochastic).
    WhiteFm(WhiteFm),
}

impl Component {
    /// Diagnostic tag (mirrors [`FrequencyComponent::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Component::Skew(c) => c.name(),
            Component::Aging(c) => c.name(),
            Component::Sinusoid(c) => c.name(),
            Component::RandomWalk(c) => c.name(),
            Component::WhiteFm(c) => c.name(),
        }
    }

    /// Whether the component consumes randomness (and therefore must be
    /// sub-stepped rather than integrated in closed form).
    pub fn is_stochastic(&self) -> bool {
        match self {
            Component::Skew(_) | Component::Aging(_) => false,
            Component::Sinusoid(s) => s.is_wandering(),
            Component::RandomWalk(_) | Component::WhiteFm(_) => true,
        }
    }

    /// The original per-sub-step formulation (every component stepped every
    /// sub-step, Box-Muller Gaussians) — the reference oscillator's step.
    pub fn step_reference(&mut self, t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64 {
        match self {
            Component::Skew(c) => c.step(t, dt, rng),
            Component::Aging(c) => c.step(t, dt, rng),
            Component::Sinusoid(c) => c.step(t, dt, rng),
            Component::RandomWalk(c) => c.step(t, dt, rng),
            Component::WhiteFm(c) => c.step(t, dt, rng),
        }
    }
}

impl From<ConstantSkew> for Component {
    fn from(c: ConstantSkew) -> Self {
        Component::Skew(c)
    }
}
impl From<Aging> for Component {
    fn from(c: Aging) -> Self {
        Component::Aging(c)
    }
}
impl From<Sinusoid> for Component {
    fn from(c: Sinusoid) -> Self {
        Component::Sinusoid(c)
    }
}
impl From<FrequencyRandomWalk> for Component {
    fn from(c: FrequencyRandomWalk) -> Self {
        Component::RandomWalk(c)
    }
}
impl From<WhiteFm> for Component {
    fn from(c: WhiteFm) -> Self {
        Component::WhiteFm(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(42)
    }

    #[test]
    fn constant_skew_is_constant() {
        let mut c = ConstantSkew::from_ppm(50.0);
        let mut r = rng();
        let y0 = c.step(0.0, 1.0, &mut r);
        let y1 = c.step(100.0, 16.0, &mut r);
        assert!((y0 - 50e-6).abs() < 1e-18);
        assert!((y1 - 50e-6).abs() < 1e-18);
    }

    #[test]
    fn aging_grows_linearly() {
        let mut a = Aging { rate: 1e-13 };
        let mut r = rng();
        let y0 = a.step(0.0, 2.0, &mut r);
        let y1 = a.step(1000.0, 2.0, &mut r);
        assert!((y0 - 1e-13).abs() < 1e-25);
        assert!((y1 - 1e-13 * 1001.0).abs() < 1e-22);
    }

    #[test]
    fn fixed_sinusoid_integrates_to_zero_over_full_period() {
        let period = 9000.0;
        let mut s = Sinusoid::fixed(5e-8, period, 0.0);
        let mut r = rng();
        let steps = 900;
        let dt = period / steps as f64;
        let mut phase_err = 0.0;
        for i in 0..steps {
            phase_err += s.step(i as f64 * dt, dt, &mut r) * dt;
        }
        // ∫A·sin over a full period is 0.
        assert!(
            phase_err.abs() < 1e-12,
            "full-period integral should vanish, got {phase_err}"
        );
    }

    #[test]
    fn sinusoid_mean_value_matches_analytic() {
        let mut s = Sinusoid::fixed(1.0, std::f64::consts::TAU, 0.0); // ω = 1
        let mut r = rng();
        let y = s.step(0.0, 1.0, &mut r);
        // mean of sin over [0,1] = 1 − cos(1)
        let expect = 1.0 - 1.0f64.cos();
        assert!((y - expect).abs() < 1e-12);
    }

    #[test]
    fn wandering_period_stays_in_range() {
        let mut s = Sinusoid::wandering(5e-8, 6000.0, 12000.0, 0.0);
        let mut r = rng();
        for i in 0..10_000 {
            s.step(i as f64 * 16.0, 16.0, &mut r);
            assert!(
                s.current_period >= 6000.0 && s.current_period <= 12000.0,
                "period escaped range: {}",
                s.current_period
            );
        }
    }

    #[test]
    fn random_walk_respects_bound() {
        let mut w = FrequencyRandomWalk::new(1e-9, 1e-7);
        let mut r = rng();
        for i in 0..100_000 {
            let y = w.step(i as f64, 16.0, &mut r);
            assert!(y.abs() <= 1e-7 + 1e-15, "rw exceeded bound: {y}");
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut w = FrequencyRandomWalk::new(1e-10, 1e-7);
        let mut r = rng();
        let mut seen_nonzero = false;
        for i in 0..100 {
            if w.step(i as f64, 16.0, &mut r).abs() > 1e-12 {
                seen_nonzero = true;
            }
        }
        assert!(seen_nonzero, "random walk never moved");
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut w = FrequencyRandomWalk::new(1e-10, 1e-7);
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            (0..50).map(|i| w.step(i as f64, 1.0, &mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn white_fm_has_zero_mean() {
        let mut w = WhiteFm { sigma_at_1s: 1e-8 };
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| w.step(i as f64, 1.0, &mut r)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 1e-9, "white FM mean too large: {mean}");
    }
}
