//! Composable fractional-frequency noise components.
//!
//! Each component contributes to the oscillator's instantaneous fractional
//! frequency error `y(t)` (equation (4) of the paper interprets `y_τ(t)` as
//! the rate error at scale τ; here we model the underlying continuous-time
//! process). The [`crate::Oscillator`] integrates the sum of components into
//! the accumulated time error `x(t) = ∫ y(s) ds`.

use rand::RngExt;
use rand_chacha::ChaCha12Rng;

/// A source of fractional frequency error.
///
/// `step` must return the *mean* fractional frequency error over the
/// interval `[t, t + dt)`. Components may hold state (e.g. a random walk)
/// which is advanced by the call; `dt` is guaranteed positive and bounded by
/// the oscillator's maximum integration step.
pub trait FrequencyComponent: Send {
    /// Mean fractional frequency error over `[t, t + dt)`.
    fn step(&mut self, t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64;

    /// A short human-readable tag for diagnostics.
    fn name(&self) -> &'static str;
}

/// Constant skew `γ`: the deterministic linear part of the SKM
/// (equation (2)). Typical CPU oscillators sit ~50 PPM from nominal (§2.1).
#[derive(Debug, Clone, Copy)]
pub struct ConstantSkew {
    /// Fractional frequency offset (dimensionless; 50e-6 = 50 PPM).
    pub gamma: f64,
}

impl ConstantSkew {
    /// Creates a constant-skew component of `ppm` parts per million.
    pub fn from_ppm(ppm: f64) -> Self {
        Self { gamma: ppm * 1e-6 }
    }
}

impl FrequencyComponent for ConstantSkew {
    fn step(&mut self, _t: f64, _dt: f64, _rng: &mut ChaCha12Rng) -> f64 {
        self.gamma
    }
    fn name(&self) -> &'static str {
        "constant-skew"
    }
}

/// Linear frequency aging: `y(t) = rate · t`.
///
/// §4.1 notes "ultimately, the CPU oscillator is also subject to aging" as
/// one reason the rate estimate must eventually forget the past. Quartz
/// aging is tiny (≲1e-13/s) but nonzero; modelling it lets the windowing
/// logic be exercised against a drifting truth.
#[derive(Debug, Clone, Copy)]
pub struct Aging {
    /// Fractional frequency change per second.
    pub rate: f64,
}

impl FrequencyComponent for Aging {
    fn step(&mut self, t: f64, dt: f64, _rng: &mut ChaCha12Rng) -> f64 {
        // Mean of rate·s over [t, t+dt).
        self.rate * (t + 0.5 * dt)
    }
    fn name(&self) -> &'static str {
        "aging"
    }
}

/// Sinusoidal frequency modulation — the periodic "temperature" terms of
/// §3.1: the low-amplitude (≈0.05 PPM) machine-room oscillation with a
/// 100–200-minute period, and the diurnal cycle in the laboratory traces.
///
/// The period can wander slowly between `period_min` and `period_max`
/// (the paper observed "variable period between 100 to 200 minutes");
/// when the two are equal the component is strictly periodic.
#[derive(Debug, Clone)]
pub struct Sinusoid {
    /// Peak fractional-frequency amplitude (5e-8 = 0.05 PPM).
    pub amplitude: f64,
    /// Minimum modulation period in seconds.
    pub period_min: f64,
    /// Maximum modulation period in seconds.
    pub period_max: f64,
    /// Initial phase in radians.
    pub phase: f64,
    current_period: f64,
}

impl Sinusoid {
    /// Strictly periodic sinusoidal FM.
    pub fn fixed(amplitude: f64, period: f64, phase: f64) -> Self {
        assert!(period > 0.0, "sinusoid period must be positive");
        Self {
            amplitude,
            period_min: period,
            period_max: period,
            phase,
            current_period: period,
        }
    }

    /// Sinusoid whose period wanders within `[period_min, period_max]`.
    pub fn wandering(amplitude: f64, period_min: f64, period_max: f64, phase: f64) -> Self {
        assert!(
            period_min > 0.0 && period_max >= period_min,
            "invalid sinusoid period range"
        );
        Self {
            amplitude,
            period_min,
            period_max,
            phase,
            current_period: 0.5 * (period_min + period_max),
        }
    }
}

impl FrequencyComponent for Sinusoid {
    fn step(&mut self, _t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64 {
        // Advance phase by the current instantaneous period; wander the
        // period with a small reflected random walk when a range is given.
        if self.period_max > self.period_min {
            let span = self.period_max - self.period_min;
            // ~1% of the span per hour of simulated time.
            let sigma = span * 0.01 * (dt / 3600.0).sqrt();
            let delta = (rng.random::<f64>() - 0.5) * 2.0 * sigma * 3.0f64.sqrt();
            self.current_period += delta;
            if self.current_period > self.period_max {
                self.current_period = 2.0 * self.period_max - self.current_period;
            }
            if self.current_period < self.period_min {
                self.current_period = 2.0 * self.period_min - self.current_period;
            }
            self.current_period = self.current_period.clamp(self.period_min, self.period_max);
        }
        let w = std::f64::consts::TAU / self.current_period;
        let p0 = self.phase;
        self.phase = (self.phase + w * dt) % std::f64::consts::TAU;
        // Mean of A·sin over the step (exact integral to keep phase smooth).
        if w * dt < 1e-9 {
            self.amplitude * p0.sin()
        } else {
            self.amplitude * (p0.cos() - (p0 + w * dt).cos()) / (w * dt)
        }
    }
    fn name(&self) -> &'static str {
        "sinusoid"
    }
}

/// Bounded random-walk frequency modulation: the slow, environment-driven
/// wander of the oscillator rate. The reflecting bound enforces the paper's
/// fundamental characterization that "the rate error remains bounded by
/// 0.1 PPM ... over all time scales" (§3.1).
#[derive(Debug, Clone)]
pub struct FrequencyRandomWalk {
    /// Diffusion strength: Var[y(t+dt) − y(t)] = sigma²·dt.
    pub sigma: f64,
    /// Reflecting bound on |y|.
    pub bound: f64,
    y: f64,
}

impl FrequencyRandomWalk {
    /// New random walk starting at `y = 0`.
    pub fn new(sigma: f64, bound: f64) -> Self {
        assert!(sigma >= 0.0 && bound > 0.0, "invalid random walk params");
        Self { sigma, bound, y: 0.0 }
    }

    /// Current frequency deviation.
    pub fn current(&self) -> f64 {
        self.y
    }
}

impl FrequencyComponent for FrequencyRandomWalk {
    fn step(&mut self, _t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64 {
        let y0 = self.y;
        // Gaussian increment via Box-Muller on the deterministic stream.
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.y += z * self.sigma * dt.sqrt();
        // Reflect at the bounds.
        if self.y > self.bound {
            self.y = 2.0 * self.bound - self.y;
        }
        if self.y < -self.bound {
            self.y = -2.0 * self.bound - self.y;
        }
        self.y = self.y.clamp(-self.bound, self.bound);
        0.5 * (y0 + self.y)
    }
    fn name(&self) -> &'static str {
        "freq-random-walk"
    }
}

/// White frequency modulation: independent Gaussian rate error each step.
/// Contributes ADEV(τ) ∝ τ^{-1/2}; kept small, it fills in the transition
/// region of the Allan plot between the white-phase-noise slope and the
/// large-scale drift floor.
#[derive(Debug, Clone, Copy)]
pub struct WhiteFm {
    /// ADEV contribution at τ = 1 s (σ_y(1s)).
    pub sigma_at_1s: f64,
}

impl FrequencyComponent for WhiteFm {
    fn step(&mut self, _t: f64, dt: f64, rng: &mut ChaCha12Rng) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        // Mean over dt of white FM scales as 1/sqrt(dt).
        z * self.sigma_at_1s / dt.sqrt()
    }
    fn name(&self) -> &'static str {
        "white-fm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(42)
    }

    #[test]
    fn constant_skew_is_constant() {
        let mut c = ConstantSkew::from_ppm(50.0);
        let mut r = rng();
        let y0 = c.step(0.0, 1.0, &mut r);
        let y1 = c.step(100.0, 16.0, &mut r);
        assert!((y0 - 50e-6).abs() < 1e-18);
        assert!((y1 - 50e-6).abs() < 1e-18);
    }

    #[test]
    fn aging_grows_linearly() {
        let mut a = Aging { rate: 1e-13 };
        let mut r = rng();
        let y0 = a.step(0.0, 2.0, &mut r);
        let y1 = a.step(1000.0, 2.0, &mut r);
        assert!((y0 - 1e-13).abs() < 1e-25);
        assert!((y1 - 1e-13 * 1001.0).abs() < 1e-22);
    }

    #[test]
    fn fixed_sinusoid_integrates_to_zero_over_full_period() {
        let period = 9000.0;
        let mut s = Sinusoid::fixed(5e-8, period, 0.0);
        let mut r = rng();
        let steps = 900;
        let dt = period / steps as f64;
        let mut phase_err = 0.0;
        for i in 0..steps {
            phase_err += s.step(i as f64 * dt, dt, &mut r) * dt;
        }
        // ∫A·sin over a full period is 0.
        assert!(
            phase_err.abs() < 1e-12,
            "full-period integral should vanish, got {phase_err}"
        );
    }

    #[test]
    fn sinusoid_mean_value_matches_analytic() {
        let mut s = Sinusoid::fixed(1.0, std::f64::consts::TAU, 0.0); // ω = 1
        let mut r = rng();
        let y = s.step(0.0, 1.0, &mut r);
        // mean of sin over [0,1] = 1 − cos(1)
        let expect = 1.0 - 1.0f64.cos();
        assert!((y - expect).abs() < 1e-12);
    }

    #[test]
    fn wandering_period_stays_in_range() {
        let mut s = Sinusoid::wandering(5e-8, 6000.0, 12000.0, 0.0);
        let mut r = rng();
        for i in 0..10_000 {
            s.step(i as f64 * 16.0, 16.0, &mut r);
            assert!(
                s.current_period >= 6000.0 && s.current_period <= 12000.0,
                "period escaped range: {}",
                s.current_period
            );
        }
    }

    #[test]
    fn random_walk_respects_bound() {
        let mut w = FrequencyRandomWalk::new(1e-9, 1e-7);
        let mut r = rng();
        for i in 0..100_000 {
            let y = w.step(i as f64, 16.0, &mut r);
            assert!(y.abs() <= 1e-7 + 1e-15, "rw exceeded bound: {y}");
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut w = FrequencyRandomWalk::new(1e-10, 1e-7);
        let mut r = rng();
        let mut seen_nonzero = false;
        for i in 0..100 {
            if w.step(i as f64, 16.0, &mut r).abs() > 1e-12 {
                seen_nonzero = true;
            }
        }
        assert!(seen_nonzero, "random walk never moved");
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut w = FrequencyRandomWalk::new(1e-10, 1e-7);
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            (0..50).map(|i| w.step(i as f64, 1.0, &mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn white_fm_has_zero_mean() {
        let mut w = WhiteFm { sigma_at_1s: 1e-8 };
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| w.step(i as f64, 1.0, &mut r)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 1e-9, "white FM mean too large: {mean}");
    }
}
