//! Oscillator and TSC-counter simulation for the IMC'04 reproduction.
//!
//! The paper's synchronization algorithms rest on a *hardware abstraction*
//! established in §3.1: the CPU oscillator obeys the Simple Skew Model (SKM)
//! up to a critical scale `τ* ≈ 1000 s`, and beyond it the rate error stays
//! bounded by `0.1 PPM` (Figure 3). This crate builds oscillators with
//! exactly that statistical signature so that the algorithms can be
//! exercised and characterized without the original 600 MHz lab machine.
//!
//! An oscillator is a composition of [`components`]: a constant skew
//! (typically ~50 PPM, §2.1), a bounded frequency random walk (slow drift),
//! periodic "temperature" terms (the 100–200-minute machine-room oscillation
//! and the diurnal cycle observed in §3.1), and linear aging. Integrating the
//! instantaneous fractional frequency `y(t)` yields the oscillator's time
//! error `x(t)`, and the [`tsc::TscCounter`] turns that into the 64-bit cycle
//! counts the host timestamps with.
//!
//! All randomness is driven by a caller-supplied seed through `ChaCha12`,
//! so traces are bit-for-bit reproducible.

pub mod components;
pub mod environment;
pub mod oscillator;
pub mod tsc;

pub use components::{
    Aging, Component, ConstantSkew, FrequencyComponent, FrequencyRandomWalk, Sinusoid, WhiteFm,
};
pub use environment::{Environment, OscillatorSpec};
pub use oscillator::Oscillator;
pub use tsc::TscCounter;
