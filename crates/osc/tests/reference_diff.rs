//! Differential tests: fast oscillator vs the retained pre-optimization
//! reference formulation (`--features reference`).
//!
//! The fast path integrates deterministic components in closed form and
//! draws its Gaussians from the ziggurat, so for stochastic components the
//! keystream consumption differs from the reference — sample paths are not
//! comparable bit-for-bit. What must hold instead:
//!
//! * deterministic component sets: bit-near agreement (the closed forms
//!   telescope to exactly what the per-sub-step means sum to);
//! * stochastic component sets: statistical equivalence — matching
//!   increment moments and Allan-style error growth across scales.

#![cfg(feature = "reference")]

use tsc_osc::{Aging, Component, ConstantSkew, Environment, FrequencyRandomWalk, Oscillator, Sinusoid, WhiteFm};
use tsc_stats::allan::allan_deviation;

fn deterministic_set() -> Vec<Component> {
    vec![
        ConstantSkew::from_ppm(52.4).into(),
        Sinusoid::fixed(5.5e-8, 86_400.0, 1.3).into(),
        Aging { rate: 2e-14 }.into(),
    ]
}

#[test]
fn deterministic_sets_agree_bit_near() {
    let mut fast = Oscillator::new(deterministic_set(), 11);
    let mut reference = Oscillator::new_reference(deterministic_set(), 11);
    // Irregular advance schedule, including sub-max_step and multi-day hops.
    let mut t = 0.0;
    for (i, step) in [0.3, 16.0, 1.0, 1024.0, 7.5, 86_400.0, 16.0, 200_000.0]
        .iter()
        .cycle()
        .take(200)
        .enumerate()
    {
        t += step;
        let xf = fast.advance_to(t);
        let xr = reference.advance_to(t);
        let scale = xr.abs().max(1.0);
        assert!(
            (xf - xr).abs() / scale < 1e-12,
            "step {i} (t={t}): fast {xf} vs reference {xr}"
        );
    }
}

/// Phase trace sampled every `tau0` seconds.
fn trace(mut osc: Oscillator, tau0: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| osc.advance_to(i as f64 * tau0)).collect()
}

#[test]
fn random_walk_increment_moments_match() {
    // Compare the mean squared *second* difference of the phase — the
    // diffusion term sigma²·dt, an i.i.d.-dominated statistic that
    // concentrates (the raw path variance of a random walk does not).
    // The reflecting bound must also hold on both paths.
    let tau0 = 16.0;
    let n = 4000;
    let spec = || -> Vec<Component> { vec![FrequencyRandomWalk::new(2.5e-10, 9e-8).into()] };
    let (mut d2_f, mut d2_r) = (0.0, 0.0);
    let (mut max_f, mut max_r) = (0.0f64, 0.0f64);
    for seed in 0..8u64 {
        let xf = trace(Oscillator::new(spec(), seed), tau0, n);
        let xr = trace(Oscillator::new_reference(spec(), seed), tau0, n);
        for (xs, d2, max) in [(&xf, &mut d2_f, &mut max_f), (&xr, &mut d2_r, &mut max_r)] {
            for w in xs.windows(3) {
                let d = (w[2] - 2.0 * w[1] + w[0]) / tau0;
                *d2 += d * d;
            }
            for w in xs.windows(2) {
                *max = max.max(((w[1] - w[0]) / tau0).abs());
            }
        }
    }
    let ratio = d2_f / d2_r;
    assert!(
        (0.9..1.12).contains(&ratio),
        "second-difference moment ratio fast/reference = {ratio}"
    );
    assert!(max_f <= 9e-8 * (1.0 + 1e-9), "fast exceeded bound: {max_f}");
    assert!(max_r <= 9e-8 * (1.0 + 1e-9), "reference exceeded bound: {max_r}");
}

#[test]
fn white_fm_increment_moments_match() {
    let tau0 = 16.0;
    let n = 6000;
    let spec = || -> Vec<Component> { vec![WhiteFm { sigma_at_1s: 1e-9 }.into()] };
    let (mut var_f, mut var_r, mut mean_f, mut mean_r) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..6u64 {
        for (xs, var, mean) in [
            (trace(Oscillator::new(spec(), seed), tau0, n), &mut var_f, &mut mean_f),
            (
                trace(Oscillator::new_reference(spec(), seed), tau0, n),
                &mut var_r,
                &mut mean_r,
            ),
        ] {
            for w in xs.windows(2) {
                let y = (w[1] - w[0]) / tau0;
                *mean += y;
                *var += y * y;
            }
        }
    }
    let ratio = var_f / var_r;
    assert!(
        (0.85..1.18).contains(&ratio),
        "white-FM variance ratio fast/reference = {ratio}"
    );
    let norm = (6 * (n - 1)) as f64;
    assert!((mean_f / norm).abs() < 2e-11, "fast mean {}", mean_f / norm);
    assert!((mean_r / norm).abs() < 2e-11, "reference mean {}", mean_r / norm);
}

#[test]
fn environment_allan_error_growth_matches() {
    // Full machine-room component set: the Allan deviation — the paper's
    // own metric for oscillator quality — must agree between fast and
    // reference across small, SKM and large scales.
    let tau0 = 64.0;
    let n = (4.0 * 86_400.0 / tau0) as usize;
    let spec = Environment::MachineRoom.spec();
    // average ADEV over seeds to tame single-path wander
    for m in [4usize, 16, 64, 512] {
        let (mut af, mut ar) = (0.0, 0.0);
        for seed in 0..4u64 {
            let xf = trace(spec.build(seed), tau0, n);
            let xr = trace(spec.build_reference(seed), tau0, n);
            af += allan_deviation(&xf, tau0, m).unwrap();
            ar += allan_deviation(&xr, tau0, m).unwrap();
        }
        let ratio = af / ar;
        assert!(
            (0.6..1.6).contains(&ratio),
            "ADEV ratio fast/reference at m={m}: {ratio}"
        );
    }
}

#[test]
fn poll1024_batched_path_statistically_equivalent() {
    // Coarse polling exercises the batched keystream path (64 sub-steps per
    // advance); the time-error growth must match the reference.
    let spec = Environment::Laboratory.spec();
    let horizon = 2.0 * 86_400.0;
    let (mut ef, mut er) = (0.0, 0.0);
    for seed in 0..6u64 {
        let mut f = spec.build(seed);
        let mut r = spec.build_reference(seed);
        let mut t = 0.0;
        while t < horizon {
            t += 1024.0;
            f.advance_to(t);
            r.advance_to(t);
        }
        ef += f.time_error().abs();
        er += r.time_error().abs();
    }
    let ratio = ef / er;
    assert!(
        (0.5..2.0).contains(&ratio),
        "|x(2d)| ratio fast/reference = {ratio} (fast {ef}, reference {er})"
    );
}
