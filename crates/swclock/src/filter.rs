//! The NTP clock filter: an 8-stage shift register selecting the sample
//! with minimum delay, on the principle that low-delay exchanges suffer the
//! least queueing asymmetry.

/// One offset/delay measurement derived from an NTP exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterSample {
    /// Measured clock offset θ (seconds).
    pub offset: f64,
    /// Measured round-trip delay δ (seconds).
    pub delay: f64,
    /// Local receive time of the sample (seconds, any monotone base).
    pub time: f64,
}

/// The classic 8-stage minimum-delay clock filter.
///
/// Each new sample shifts into the register; the filter output is the
/// sample with the smallest `delay + age-penalty`, where the small penalty
/// (`dispersion_rate` per second of age) prefers fresh samples among
/// near-equal candidates. A sample is only *used* once (popcorn-suppressor
/// style): repeated selection of the same stale sample is reported.
#[derive(Debug, Clone)]
pub struct ClockFilter {
    stages: Vec<FilterSample>,
    capacity: usize,
    dispersion_rate: f64,
    last_used_time: f64,
}

impl ClockFilter {
    /// Standard 8-stage filter with the ntpd dispersion rate (15 PPM).
    pub fn new() -> Self {
        Self::with_params(8, 15e-6)
    }

    /// Filter with explicit register size and age-penalty rate.
    pub fn with_params(capacity: usize, dispersion_rate: f64) -> Self {
        assert!(capacity >= 1, "filter needs at least one stage");
        Self {
            stages: Vec::with_capacity(capacity),
            capacity,
            dispersion_rate,
            last_used_time: f64::NEG_INFINITY,
        }
    }

    /// Shifts in a new sample and returns the selected (best) sample, or
    /// `None` when the best sample is older than one already consumed (the
    /// anti-replay rule: never apply the same information twice).
    pub fn update(&mut self, sample: FilterSample) -> Option<FilterSample> {
        if self.stages.len() == self.capacity {
            self.stages.remove(0);
        }
        self.stages.push(sample);
        let now = sample.time;
        let best = self
            .stages
            .iter()
            .copied()
            .min_by(|a, b| {
                let score =
                    |s: &FilterSample| s.delay + self.dispersion_rate * (now - s.time).max(0.0);
                score(a).partial_cmp(&score(b)).expect("finite scores")
            })?;
        if best.time <= self.last_used_time {
            return None;
        }
        self.last_used_time = best.time;
        Some(best)
    }

    /// Number of samples currently in the register.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Clears the register (used after a clock step invalidates history).
    pub fn clear(&mut self) {
        self.stages.clear();
        self.last_used_time = f64::NEG_INFINITY;
    }
}

impl Default for ClockFilter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(offset: f64, delay: f64, time: f64) -> FilterSample {
        FilterSample {
            offset,
            delay,
            time,
        }
    }

    #[test]
    fn selects_minimum_delay() {
        let mut f = ClockFilter::new();
        f.update(s(1e-3, 10e-3, 0.0));
        f.update(s(2e-3, 5e-3, 16.0));
        let best = f.update(s(3e-3, 20e-3, 32.0));
        // the 5 ms-delay sample wins, but it was already consumed at t=16
        // when it was itself the best → returns None now
        assert!(best.is_none());
    }

    #[test]
    fn fresh_better_sample_is_used() {
        let mut f = ClockFilter::new();
        f.update(s(1e-3, 10e-3, 0.0));
        let best = f.update(s(2e-3, 5e-3, 16.0)).unwrap();
        assert_eq!(best.offset, 2e-3);
    }

    #[test]
    fn register_is_bounded() {
        let mut f = ClockFilter::with_params(4, 0.0);
        for k in 0..10 {
            f.update(s(0.0, 1e-3 + k as f64 * 1e-4, k as f64 * 16.0));
        }
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn old_minimum_ages_out_of_register() {
        let mut f = ClockFilter::with_params(3, 0.0);
        f.update(s(9e-3, 1e-3, 0.0)); // great delay, will age out
        f.update(s(1e-3, 8e-3, 16.0));
        f.update(s(2e-3, 7e-3, 32.0));
        // pushes the t=0 sample out of the 3-stage register
        let best = f.update(s(3e-3, 6e-3, 48.0)).unwrap();
        assert_eq!(best.offset, 3e-3);
    }

    #[test]
    fn dispersion_prefers_fresh_among_equals() {
        let mut f = ClockFilter::with_params(8, 15e-6);
        f.update(s(1e-3, 5e-3, 0.0));
        // same delay much later: age penalty makes the new one win
        let best = f.update(s(2e-3, 5e-3, 1000.0)).unwrap();
        assert_eq!(best.offset, 2e-3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = ClockFilter::new();
        f.update(s(1e-3, 1e-3, 0.0));
        f.clear();
        assert!(f.is_empty());
        // after clear, an older-timestamped sample can be used again
        let best = f.update(s(5e-4, 2e-3, 0.0)).unwrap();
        assert_eq!(best.offset, 5e-4);
    }
}
