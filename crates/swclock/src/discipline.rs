//! The feedback clock discipline (miniature ntpd PLL/FLL).
//!
//! The disciplined clock reads `C(t) = raw(t) + correction(t)`, where `raw`
//! is the host's free-running (skewed, drifting) clock and the correction
//! evolves under feedback: each filtered offset sample nudges the
//! correction *rate* (frequency steering) and slews a fraction of the
//! phase error per time constant. Offsets beyond the step threshold
//! (128 ms) step the clock outright — the "occasional larger reset
//! adjustments" of §1 that the TSC-NTP clock is designed never to need.
//!
//! Crucially, timestamps for later exchanges are read from the *disciplined*
//! clock, closing the feedback loop — the design choice the paper contrasts
//! with its own feed-forward architecture.

use crate::filter::{ClockFilter, FilterSample};

/// Configuration of the discipline loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisciplineConfig {
    /// PLL time constant τc (seconds): phase errors are slewed at `θ/τc`.
    pub time_constant: f64,
    /// Frequency integration gain divisor (larger = gentler steering).
    pub freq_gain: f64,
    /// Step threshold (ntpd default 128 ms).
    pub step_threshold: f64,
    /// Maximum |frequency correction| (ntpd: 500 PPM).
    pub max_freq: f64,
}

impl Default for DisciplineConfig {
    fn default() -> Self {
        Self {
            time_constant: 512.0,
            freq_gain: 4.0,
            step_threshold: 0.128,
            max_freq: 500e-6,
        }
    }
}

/// Events from one discipline update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisciplineEvent {
    /// Offset absorbed by the feedback loop.
    Slewed,
    /// Offset exceeded the step threshold; the clock was stepped.
    Stepped,
    /// The clock filter suppressed the sample (stale best).
    FilterSuppressed,
}

/// The feedback-disciplined software clock (the SW-NTP baseline).
#[derive(Debug, Clone)]
pub struct DisciplinedClock {
    cfg: DisciplineConfig,
    filter: ClockFilter,
    /// Correction value at `corr_time` (seconds).
    corr: f64,
    /// Raw time the correction state refers to.
    corr_time: f64,
    /// Current correction slope: frequency steering + phase slew.
    corr_rate: f64,
    /// The persistent frequency part of the slope.
    freq_adj: f64,
    /// Raw time of the previous accepted update.
    last_update: Option<f64>,
    /// Number of step events so far.
    steps: u64,
}

impl DisciplinedClock {
    /// New discipline with the given configuration.
    pub fn new(cfg: DisciplineConfig) -> Self {
        Self {
            cfg,
            filter: ClockFilter::new(),
            corr: 0.0,
            corr_time: 0.0,
            corr_rate: 0.0,
            freq_adj: 0.0,
            last_update: None,
            steps: 0,
        }
    }

    /// The disciplined clock reading at raw host time `raw`.
    pub fn now(&self, raw: f64) -> f64 {
        raw + self.corr + self.corr_rate * (raw - self.corr_time)
    }

    /// Current frequency correction (fraction) being applied.
    pub fn freq_adjustment(&self) -> f64 {
        self.freq_adj
    }

    /// Instantaneous total rate correction (frequency + phase slew) — the
    /// quantity whose variability makes the SW-NTP *rate* erratic.
    pub fn rate_correction(&self) -> f64 {
        self.corr_rate
    }

    /// Number of step (reset) events so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Processes one completed exchange. `ta_raw`/`tf_raw` are *raw* host
    /// clock readings around the exchange; `tb`/`te` are the server
    /// timestamps. Returns what the discipline did.
    pub fn process(&mut self, ta_raw: f64, tb: f64, te: f64, tf_raw: f64) -> DisciplineEvent {
        // Timestamps as the daemon would have made them: disciplined clock.
        let ta = self.now(ta_raw);
        let tf = self.now(tf_raw);
        // Classical NTP offset/delay (positive offset = we are behind).
        let offset = 0.5 * ((tb - ta) + (te - tf));
        let delay = (tf - ta) - (te - tb);
        // Commit the correction accumulated so far, then decide.
        self.corr = self.now(tf_raw) - tf_raw;
        self.corr_time = tf_raw;

        let sample = FilterSample {
            offset,
            delay,
            time: tf_raw,
        };
        let Some(best) = self.filter.update(sample) else {
            return DisciplineEvent::FilterSuppressed;
        };

        if best.offset.abs() > self.cfg.step_threshold {
            // Step: apply instantly, clear history (ntpd semantics).
            self.corr += best.offset;
            self.corr_rate = self.freq_adj;
            self.filter.clear();
            self.steps += 1;
            self.last_update = Some(tf_raw);
            return DisciplineEvent::Stepped;
        }

        // Hybrid PLL/FLL: integrate frequency from the offset history and
        // slew the phase over the time constant.
        let mu = self
            .last_update
            .map(|t| (tf_raw - t).max(1.0))
            .unwrap_or(self.cfg.time_constant);
        let tc = self.cfg.time_constant;
        self.freq_adj += best.offset * mu / (self.cfg.freq_gain * tc * tc);
        self.freq_adj = self.freq_adj.clamp(-self.cfg.max_freq, self.cfg.max_freq);
        self.corr_rate = self.freq_adj + best.offset / tc;
        self.last_update = Some(tf_raw);
        DisciplineEvent::Slewed
    }
}

impl Default for DisciplinedClock {
    fn default() -> Self {
        Self::new(DisciplineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates a host whose raw clock runs fast by `skew` against a
    /// perfect server over a symmetric path, feeding the discipline, and
    /// returns (final absolute offset, series of rate corrections).
    fn run(skew: f64, n: usize, poll: f64, queue: impl Fn(usize) -> f64) -> (f64, Vec<f64>) {
        let mut c = DisciplinedClock::default();
        let mut rates = Vec::new();
        let d = 450e-6;
        let mut final_offset = 0.0;
        for k in 0..n {
            let t = (k + 1) as f64 * poll; // true time of send
            let q = queue(k);
            let raw = |tt: f64| tt * (1.0 + skew);
            let ta_raw = raw(t);
            let tb = t + d + q;
            let te = tb + 20e-6;
            let tf_raw = raw(te + d);
            c.process(ta_raw, tb, te, tf_raw);
            rates.push(c.rate_correction());
            // measure the disciplined clock against truth at tf
            final_offset = c.now(tf_raw) - (te + d);
        }
        (final_offset, rates)
    }

    #[test]
    fn converges_on_clean_data() {
        let (off, _) = run(50e-6, 3000, 16.0, |_| 0.0);
        assert!(
            off.abs() < 2e-3,
            "SW-NTP should converge to ms-level: {off}"
        );
    }

    #[test]
    fn rate_is_erratic_compared_to_skew() {
        // the paper's criticism: rate corrections wander by much more than
        // the 0.1 PPM hardware stability
        let (_, rates) = run(50e-6, 2000, 16.0, |k| {
            if k % 7 == 0 {
                3e-3
            } else {
                30e-6
            }
        });
        let tail = &rates[500..];
        let min = tail.iter().copied().fold(f64::INFINITY, f64::min);
        let max = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.1e-6,
            "rate corrections should wander beyond the 0.1 PPM hardware \
             stability: spread {}",
            max - min
        );
    }

    #[test]
    fn large_initial_offset_causes_step() {
        let mut c = DisciplinedClock::default();
        // raw clock 10 s ahead of the server
        let t = 16.0;
        let raw = t + 10.0;
        let ev = c.process(raw, t + 450e-6, t + 470e-6, raw + 920e-6);
        assert_eq!(ev, DisciplineEvent::Stepped);
        assert_eq!(c.steps(), 1);
        // after the step the clock reads near server time
        let now = c.now(raw + 1.0);
        assert!((now - (t + 1.0)).abs() < 0.05, "post-step error {}", now - (t + 1.0));
    }

    #[test]
    fn congestion_can_cause_spurious_steps() {
        // the §1 complaint: offsets "in extreme cases ... of the order of
        // seconds" — a 400 ms asymmetric queueing burst that defeats the
        // 8-stage filter forces a reset
        let mut c = DisciplinedClock::default();
        let d = 450e-6;
        for k in 0..200 {
            let t = (k + 1) as f64 * 16.0;
            let q = if k >= 100 { 0.4 } else { 0.0 }; // sustained congestion
            let ta_raw = t;
            let tb = t + d + q;
            let te = tb + 20e-6;
            let tf_raw = te + d;
            c.process(ta_raw, tb, te, tf_raw);
        }
        assert!(
            c.steps() > 0,
            "sustained 400 ms asymmetric congestion should step SW-NTP"
        );
    }

    #[test]
    fn freq_clamped_to_500_ppm() {
        let mut c = DisciplinedClock::default();
        // absurd 100 ms offsets every poll, same sign
        let d = 450e-6;
        for k in 0..5000 {
            let t = (k + 1) as f64 * 16.0;
            c.process(t, t + d + 0.1, t + d + 0.1 + 2e-5, t + 2.0 * d + 2e-5);
        }
        assert!(c.freq_adjustment().abs() <= 500e-6 + 1e-12);
    }

    #[test]
    fn now_is_continuous_between_updates() {
        let mut c = DisciplinedClock::default();
        let d = 450e-6;
        for k in 0..50 {
            let t = (k + 1) as f64 * 16.0;
            c.process(t, t + d, t + d + 2e-5, t + 2.0 * d + 2e-5);
        }
        let a = c.now(1000.0);
        let b = c.now(1000.1);
        assert!((b - a - 0.1).abs() < 1e-4, "clock step between reads: {}", b - a);
    }
}
