//! The SW-NTP baseline: an ntpd-style feedback-disciplined software clock.
//!
//! The paper's motivation (§1) is that the standard SW-NTP solution — the
//! system clock disciplined by the NTP daemon's feedback loop — "is not
//! reliable enough and lacks robustness": offset errors exceed RTTs in
//! practice, occasional resets reach seconds, and because "the rate or
//! frequency of the clock is deliberately varied as a means to adjust
//! offset", its rate is erratic.
//!
//! To *compare* against that baseline, this crate implements a faithful
//! miniature of the classic Mills clock discipline:
//!
//! * per-exchange offset/delay computation from the four timestamps;
//! * the 8-stage **clock filter** (minimum-delay sample selection with a
//!   dispersion-style freshness preference);
//! * a hybrid **PLL/FLL feedback loop** that steers the clock frequency
//!   from the filtered offset;
//! * the **step threshold** (128 ms): larger offsets step the clock
//!   outright — the paper's dreaded "larger reset adjustments".
//!
//! The result is a clock whose *offset* behaviour is reasonable under calm
//! conditions but whose *rate* is deliberately perturbed — exactly the
//! trade-off the TSC-NTP clock refuses to make. The `baseline` experiment
//! runs both on identical traces.

pub mod discipline;
pub mod filter;

pub use discipline::{DisciplinedClock, DisciplineConfig};
pub use filter::{ClockFilter, FilterSample};
