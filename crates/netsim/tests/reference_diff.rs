//! Statistical-equivalence differential tests: the generation fast path
//! (`--features reference` builds both) against the retained
//! pre-optimization pipeline.
//!
//! The fast path changes RNG *consumption order* in several samplers —
//! cached Box-Muller pairs in the host and server, cadence-precomputed
//! burst transitions in the paths, bridged/batched oscillator draws — so
//! traces are not bit-comparable. What must hold instead:
//!
//! * the **loss pattern** is bit-identical (the loss RNG is an independent
//!   stream no sampler change touches);
//! * per-sampler distributions match (host latency mode masses);
//! * trace-level statistics match: min-RTT approach, RTT moments, burst
//!   (congestion) fraction, delivered count.

#![cfg(feature = "reference")]

use tsc_netsim::{HostTimestamping, Scenario, SimExchange};

fn fast_and_reference(sc: &Scenario) -> (Vec<SimExchange>, Vec<SimExchange>) {
    (sc.run(), sc.run_reference())
}

fn scenario(seed: u64, poll: f64, polls: usize) -> Scenario {
    Scenario::baseline(seed)
        .with_poll_period(poll)
        .with_duration(poll * polls as f64)
}

#[test]
fn loss_pattern_is_bit_identical() {
    // Loss comes from a dedicated RNG stream keyed only by the scenario
    // seed; none of the fast-path sampler changes may perturb it.
    let sc = Scenario {
        loss_prob: 0.01,
        ..scenario(3, 16.0, 20_000)
    };
    let (fast, reference) = fast_and_reference(&sc);
    assert_eq!(fast.len(), reference.len());
    for (f, r) in fast.iter().zip(&reference) {
        assert_eq!(f.lost, r.lost, "loss divergence at packet {}", f.i);
        assert_eq!(f.poll_time, r.poll_time);
    }
}

#[test]
fn min_rtt_approach_matches() {
    // §5.1 rests on RTT minima being approached closely; both pipelines
    // must approach the same floor, and the floors must agree to the
    // host-latency scale (µs), far below the paper's δ = 15 µs.
    let sc = scenario(5, 16.0, 50_000);
    let (fast, reference) = fast_and_reference(&sc);
    let min_rtt = |ex: &[SimExchange]| {
        ex.iter()
            .filter(|e| !e.lost)
            .map(|e| e.truth.rtt())
            .fold(f64::INFINITY, f64::min)
    };
    let (mf, mr) = (min_rtt(&fast), min_rtt(&reference));
    assert!(
        (mf - mr).abs() < 5e-6,
        "min-RTT floors diverged: fast {mf}, reference {mr}"
    );
}

#[test]
fn rtt_moments_match() {
    let sc = scenario(7, 16.0, 50_000);
    let (fast, reference) = fast_and_reference(&sc);
    let stats = |ex: &[SimExchange]| {
        let rtts: Vec<f64> = ex.iter().filter(|e| !e.lost).map(|e| e.truth.rtt()).collect();
        let n = rtts.len() as f64;
        let mean = rtts.iter().sum::<f64>() / n;
        let var = rtts.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    };
    let (mean_f, var_f) = stats(&fast);
    let (mean_r, var_r) = stats(&reference);
    let mean_ratio = mean_f / mean_r;
    assert!(
        (0.95..1.05).contains(&mean_ratio),
        "mean RTT ratio fast/reference = {mean_ratio}"
    );
    // Variance is dominated by rare heavy-tailed congestion spikes, so a
    // single path realization concentrates slowly: compare within 3×.
    let var_ratio = var_f / var_r;
    assert!(
        (1.0 / 3.0..3.0).contains(&var_ratio),
        "RTT variance ratio fast/reference = {var_ratio}"
    );
}

#[test]
fn burst_fraction_matches() {
    // The two-state congestion chain's stationary occupancy must survive
    // the precomputed-cadence transition probabilities. Class a packet as
    // congested when its forward queueing excess is implausible for the
    // background Exp(80 µs) alone.
    let sc = scenario(11, 16.0, 200_000);
    let (fast, reference) = fast_and_reference(&sc);
    let frac = |ex: &[SimExchange]| {
        let min = ex
            .iter()
            .map(|e| e.truth.d_fwd)
            .fold(f64::INFINITY, f64::min);
        ex.iter().filter(|e| e.truth.d_fwd > min + 0.8e-3).count() as f64 / ex.len() as f64
    };
    let (ff, fr) = (frac(&fast), frac(&reference));
    assert!(ff > 0.0 && fr > 0.0, "both must see congestion: {ff} vs {fr}");
    let ratio = ff / fr;
    assert!(
        (0.5..2.0).contains(&ratio),
        "burst fraction ratio fast/reference = {ratio} ({ff} vs {fr})"
    );
}

#[test]
fn host_latency_mode_masses_match() {
    // §2.4's three-mode mixture, fast (cached pair, no wasted draw) vs
    // reference (fresh pair per call, wasted draw on the scheduling
    // branch): the mode masses are structural and must agree tightly.
    let n = 400_000;
    let mut fast = HostTimestamping::new(13);
    let mut reference = HostTimestamping::new(13);
    let masses = |lats: &[f64]| {
        let m = |lo: f64, hi: f64| lats.iter().filter(|&&l| l >= lo && l < hi).count() as f64;
        [
            m(0.0, 7e-6) / n as f64,            // dominant mode
            m(7e-6, 20e-6) / n as f64,          // +10 µs side mode
            m(20e-6, 40e-6) / n as f64,         // +31 µs side mode
            m(100e-6, f64::INFINITY) / n as f64, // scheduling tail
        ]
    };
    let lf: Vec<f64> = (0..n).map(|_| fast.recv_latency()).collect();
    let lr: Vec<f64> = (0..n).map(|_| reference.recv_latency_reference()).collect();
    let (mf, mr) = (masses(&lf), masses(&lr));
    for (k, (a, b)) in mf.iter().zip(&mr).enumerate() {
        let tol = match k {
            0 => 0.01,      // ~0.95 mass
            3 => 1.5e-4,    // ~1e-4 mass
            _ => 0.005,     // ~0.01–0.03 masses
        };
        assert!(
            (a - b).abs() < tol,
            "mode {k} mass diverged: fast {a} vs reference {b}"
        );
    }
    // Send side: half-normal either way.
    let sf: f64 = (0..n).map(|_| fast.send_latency()).sum::<f64>() / n as f64;
    let sr: f64 = (0..n)
        .map(|_| reference.send_latency_reference())
        .sum::<f64>()
        / n as f64;
    assert!(
        ((sf / sr) - 1.0).abs() < 0.02,
        "send-latency means diverged: {sf} vs {sr}"
    );
}

#[test]
fn delivered_observables_stay_causal_and_close() {
    // End-to-end sanity at a coarse cadence (exercises the oscillator's
    // bridged long advances): per-packet observables of the fast path stay
    // causally ordered and within the same noise envelope as the
    // reference's.
    let sc = scenario(17, 1024.0, 3_000);
    let (fast, reference) = fast_and_reference(&sc);
    let spread = |ex: &[SimExchange]| {
        ex.iter()
            .filter(|e| !e.lost)
            .map(|e| e.te - e.tb)
            .sum::<f64>()
            / ex.iter().filter(|e| !e.lost).count() as f64
    };
    for e in fast.iter().filter(|e| !e.lost) {
        assert!(e.tb < e.te, "server stamps out of order at {}", e.i);
        assert!(e.tf_tsc > e.ta_tsc, "counter reads out of order at {}", e.i);
    }
    let ratio = spread(&fast) / spread(&reference);
    assert!(
        (0.8..1.25).contains(&ratio),
        "mean server residence ratio fast/reference = {ratio}"
    );
}

mod proptest_equivalence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Statistical equivalence across randomized scenario geometry:
        /// for arbitrary seeds, cadences and loss rates, the fast path's
        /// loss pattern is bit-identical and its delivered-trace summary
        /// statistics (min RTT, mean RTT) track the reference formulation.
        #[test]
        fn trace_statistics_track_reference(
            seed in 0u64..1000,
            poll_idx in 0usize..3,
            loss_prob in 0.0f64..0.02,
        ) {
            let poll = [16.0, 64.0, 256.0][poll_idx];
            let polls = (8192.0 / (poll / 16.0)) as usize; // constant CPU budget
            let sc = Scenario {
                loss_prob,
                ..scenario(seed, poll, polls)
            };
            let (fast, reference) = fast_and_reference(&sc);
            prop_assert_eq!(fast.len(), reference.len());
            let mut min_f = f64::INFINITY;
            let mut min_r = f64::INFINITY;
            let (mut sum_f, mut sum_r, mut n) = (0.0, 0.0, 0usize);
            for (f, r) in fast.iter().zip(&reference) {
                prop_assert_eq!(f.lost, r.lost, "loss divergence at {}", f.i);
                if !f.lost {
                    min_f = min_f.min(f.truth.rtt());
                    min_r = min_r.min(r.truth.rtt());
                    sum_f += f.truth.rtt();
                    sum_r += r.truth.rtt();
                    n += 1;
                }
            }
            if n > 100 {
                prop_assert!((min_f - min_r).abs() < 50e-6,
                    "min RTT diverged: {} vs {}", min_f, min_r);
                let ratio = (sum_f / n as f64) / (sum_r / n as f64);
                prop_assert!((0.8..1.25).contains(&ratio),
                    "mean RTT ratio {}", ratio);
            }
        }
    }
}
