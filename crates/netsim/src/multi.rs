//! Multi-server polling: K independent server paths from **one** host
//! timeline.
//!
//! The paper synchronizes against a single NTP server and repeatedly flags
//! server-side quality — upward RTT shifts, path asymmetry, outages — as
//! the dominant error source. A production host polls *several* servers
//! and must detect and exclude the bad ones. This module supplies the
//! measurement side of that setup: a [`MultiServerScenario`] describes one
//! host (one TSC counter, one oscillator, one timestamping model) polling
//! K servers, each with its own path delays, congestion, loss, outages,
//! route shifts and clock faults; a [`MultiServerStream`] steps it one
//! *round* (one poll of every server) at a time.
//!
//! ## Seed derivation contract
//!
//! Every stochastic element derives its stream from the scenario's master
//! seed, with **documented, collision-free derivation** so that streams
//! are independent (no cross-correlation between servers) and stable under
//! fleet reseeding:
//!
//! * Host oscillator: `seed · 0x9E37_79B9 + 1` (wrapping) — *identical to
//!   the single-server [`crate::Scenario`] derivation*, so the host
//!   timeline for a given master seed does not depend on how many servers
//!   are polled.
//! * Host timestamping: `seed + 3` — also the single-server derivation.
//! * Server `k = 0`: sub-master `b₀ = seed`; server `k ≥ 1`: sub-master
//!   `bₖ = splitmix64(seed XOR k·0x9E37_79B9_7F4A_7C15)`. From the
//!   sub-master, the per-server streams reuse the single-server offsets:
//!   server model `bₖ+2`, forward path `bₖ+4`, backward path `bₖ+5`, loss
//!   `bₖ+7`. Keeping `b₀ = seed` makes a 1-server scenario with no shared
//!   bottleneck **bit-identical** to the single-server
//!   [`crate::Scenario::stream`] raw path (tested), anchoring the whole
//!   multi-server layer to the validated single-server generator.
//! * Shared bottleneck: `splitmix64(seed XOR 0xB0_77_1E_5E_C4_0F_6E_57)`.
//!
//! `splitmix64` is a full-avalanche permutation, so distinct `(seed, k)`
//! pairs yield distinct ChaCha12 seeds except with probability `2⁻⁶⁴` —
//! there is no structural correlation between server streams.
//!
//! ## Shared-bottleneck correlated congestion
//!
//! Real multi-server deployments share the host's access link: congestion
//! there inflates the delays of *every* server path at once, which is
//! precisely the failure mode a quorum must not misread as "all servers
//! disagree". [`MultiServerScenario::with_bottleneck`] adds a two-state
//! congestion chain (same episode model as [`crate::delay::PathDelay`])
//! whose on/off state is **shared by all K paths** in both directions;
//! the per-packet excess draws inside an episode stay independent.
//!
//! ## Counter-read ordering
//!
//! All K polls of a round read the one shared TSC counter. Reads are
//! performed in true-time order (send reads at `t + k·stagger`, receive
//! reads sorted by arrival), so the oscillator is advanced monotonically
//! within a round exactly as the single-server simulator advances it.

use crate::delay::{CongestionParams, PathDelay};
use crate::host::HostTimestamping;
use crate::scenario::ServerKind;
use crate::server::{ServerFault, ServerModel};
use crate::shifts::{LevelShift, ShiftSchedule};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use rand_distr::{Distribution, Pareto};
use tsc_osc::{Environment, TscCounter};
use tscclock::RawExchange;

/// Maximum servers per scenario (quorum layers pack per-server flags into
/// `u32` masks).
pub const MAX_SERVERS: usize = 32;

/// SplitMix64 finalizer: the documented sub-seed derivation primitive.
/// Public because fleet engines must use it too — *additive* reseeding
/// (`base + i`) would collide with the additive per-stream offsets of
/// the contract above (entry `i`'s backward path `bᵢ+5` = entry `i+1`'s
/// forward path `bᵢ₊₁+4`, etc.), handing adjacent entries bit-identical
/// keystreams in different roles.
#[inline]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sub-master seed of server `k` (see the module docs for the contract).
pub fn server_sub_seed(master: u64, k: usize) -> u64 {
    if k == 0 {
        master
    } else {
        splitmix64(master ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// One server path of a multi-server scenario: which Table-2 server it is,
/// plus its private anomaly schedules.
#[derive(Debug, Clone)]
pub struct ServerPath {
    /// Which Table 2 server preset shapes the path (minima, queueing,
    /// congestion severity).
    pub kind: ServerKind,
    /// Independent per-packet loss probability on this path.
    pub loss_prob: f64,
    /// Server unavailability windows `(start, end)`.
    pub outages: Vec<(f64, f64)>,
    /// Route-change level shifts on this path (including
    /// [`LevelShift::asymmetric`] steps).
    pub shifts: ShiftSchedule,
    /// Server clock faults.
    pub faults: Vec<ServerFault>,
}

impl ServerPath {
    /// A clean path to the given server with the baseline loss rate.
    pub fn new(kind: ServerKind) -> Self {
        Self {
            kind,
            loss_prob: 1.5e-3,
            outages: Vec::new(),
            shifts: ShiftSchedule::none(),
            faults: Vec::new(),
        }
    }

    /// Sets the loss probability (chainable).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_prob = p;
        self
    }

    /// Adds an outage window (chainable).
    pub fn with_outage(mut self, start: f64, end: f64) -> Self {
        self.outages.push((start, end));
        self
    }

    /// Adds a level shift (chainable).
    pub fn with_shift(mut self, shift: LevelShift) -> Self {
        self.shifts.push(shift);
        self
    }

    /// Adds a server clock fault (chainable).
    pub fn with_fault(mut self, fault: ServerFault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// A complete multi-server experiment: one host timeline, K server paths.
#[derive(Debug, Clone)]
pub struct MultiServerScenario {
    /// Host temperature environment (selects the oscillator model).
    pub environment: Environment,
    /// Master seed; see the module docs for the derivation contract.
    pub seed: u64,
    /// Polling period of each server in seconds (every server is polled
    /// once per period).
    pub poll_period: f64,
    /// Total simulated duration in seconds.
    pub duration: f64,
    /// Nominal TSC frequency in Hz.
    pub tsc_freq_hz: f64,
    /// Spacing between the K send timestamps of one round (seconds): the
    /// host fires its polls back-to-back, not simultaneously.
    pub poll_stagger: f64,
    /// The server paths (1 ..= [`MAX_SERVERS`]).
    pub servers: Vec<ServerPath>,
    /// Shared access-link congestion applied to every path when present.
    pub bottleneck: Option<CongestionParams>,
}

impl MultiServerScenario {
    /// A machine-room host polling `k` ServerInt paths every 16 s — the
    /// multi-server analogue of [`crate::Scenario::baseline`].
    pub fn baseline(k: usize, seed: u64) -> Self {
        Self {
            environment: Environment::MachineRoom,
            seed,
            poll_period: 16.0,
            duration: 86_400.0,
            tsc_freq_hz: 1e9,
            poll_stagger: 10e-6,
            servers: (0..k).map(|_| ServerPath::new(ServerKind::Int)).collect(),
            bottleneck: None,
        }
    }

    /// The paper's actual three-server testbed: one host polling
    /// **ServerLoc** (same LAN, GPS-referenced), **ServerInt** (same
    /// organization, the paper's recommended "nearby" server) and
    /// **ServerExt** (another city, ~1000 km, atomic-clock referenced)
    /// every 16 s — the configuration behind Table 2 and the §7 robustness
    /// experiments. Server index 0 = Loc, 1 = Int, 2 = Ext.
    pub fn paper_testbed(seed: u64) -> Self {
        Self {
            servers: vec![
                ServerPath::new(ServerKind::Loc),
                ServerPath::new(ServerKind::Int),
                ServerPath::new(ServerKind::Ext),
            ],
            ..Self::baseline(3, seed)
        }
    }

    /// Sets the duration (chainable).
    pub fn with_duration(mut self, seconds: f64) -> Self {
        self.duration = seconds;
        self
    }

    /// Sets the polling period (chainable).
    pub fn with_poll_period(mut self, seconds: f64) -> Self {
        self.poll_period = seconds;
        self
    }

    /// Enables shared-bottleneck congestion (chainable).
    pub fn with_bottleneck(mut self, params: CongestionParams) -> Self {
        self.bottleneck = Some(params);
        self
    }

    /// Replaces server path `k` (chainable).
    pub fn with_server_path(mut self, k: usize, path: ServerPath) -> Self {
        self.servers[k] = path;
        self
    }

    /// Number of servers polled per round.
    pub fn k(&self) -> usize {
        self.servers.len()
    }

    /// Builds a borrowing round stream.
    ///
    /// # Panics
    /// Panics on an invalid scenario (no servers, more than
    /// [`MAX_SERVERS`], non-positive period/duration, negative stagger, or
    /// a stagger so large the K sends of a round would not fit the period).
    pub fn stream(&self) -> MultiServerStream<'_> {
        MultiServerStream::new(self, self.seed)
    }

    /// A borrowing stream with the master seed overridden — the fleet
    /// path, deriving thousands of distinct streams from one shared
    /// template without cloning it.
    pub fn stream_with_seed(&self, seed: u64) -> MultiServerStream<'_> {
        MultiServerStream::new(self, seed)
    }

    /// Polls per server over the whole duration.
    pub fn rounds(&self) -> usize {
        (self.duration / self.poll_period) as usize
    }

    /// Flags level shifts that the per-path [`crate::PathDelay`] floor
    /// would clamp — the multi-server twin of
    /// [`crate::Scenario::clamp_warnings`]. On short paths an
    /// [`LevelShift::asymmetric`] step's negative leg can exceed the
    /// backward minimum; the floor snaps the leg to zero and the
    /// "RTT-silent" fault leaks into the RTT, injecting a *different*
    /// fault than the preset claims. Presets must assert this is empty.
    pub fn clamp_warnings(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        for (k, path) in self.servers.iter().enumerate() {
            let (fwd_min, back_min) = path.kind.min_delays();
            for (idx, s) in path.shifts.events().iter().enumerate() {
                let (df, db) = path.shifts.deltas_at(s.at);
                if fwd_min + df < 0.0 {
                    warnings.push(format!(
                        "server {k} shift {idx} at t={}: forward min {fwd_min}s \
                         + delta {df}s < 0 — clamped, shift half-applied",
                        s.at
                    ));
                }
                if back_min + db < 0.0 {
                    warnings.push(format!(
                        "server {k} shift {idx} at t={}: backward min {back_min}s \
                         + delta {db}s < 0 — clamped, shift half-applied",
                        s.at
                    ));
                }
            }
        }
        warnings
    }
}

/// What one round produced for one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSample {
    /// `false` when the poll was lost (path loss or outage window). Lost
    /// samples still carry a real `raw.ta_tsc` — the host always reads
    /// the counter on send — but the remaining observables are NaN/0 and
    /// the truth fields NaN; test `delivered`, not the field values.
    pub delivered: bool,
    /// The observables a real client would hand to its per-server clock.
    pub raw: RawExchange,
    /// Ground truth: the true time at the instant of the `Tf` counter
    /// read — `raw.tf_tsc` is the counter's value at exactly this time, so
    /// `|Ca(raw.tf_tsc) − tf_read|` is a clock's exact absolute error.
    pub tf_read: f64,
    /// Ground truth: the oscillator's accumulated time error at the read.
    pub host_err: f64,
}

impl RoundSample {
    fn lost() -> Self {
        Self {
            delivered: false,
            raw: RawExchange {
                ta_tsc: 0,
                tb: f64::NAN,
                te: f64::NAN,
                tf_tsc: 0,
            },
            tf_read: f64::NAN,
            host_err: f64::NAN,
        }
    }
}

/// Per-server stochastic state inside the stream.
struct ServerState {
    fwd: PathDelay,
    back: PathDelay,
    server: ServerModel,
    loss_rng: ChaCha12Rng,
    loss_prob: f64,
    /// End (exclusive) of the current anomaly segment (see
    /// [`MultiServerStream::refresh_segment`]); `-inf` forces a refresh.
    seg_until: f64,
    seg_outage: bool,
}

/// Shared access-link congestion: one on/off chain for all K paths.
struct Bottleneck {
    burst: Pareto<f64>,
    in_burst: bool,
    /// Cadenced flip probabilities (one round = one tick).
    p_on: f64,
    p_off: f64,
    rng: ChaCha12Rng,
}

/// Scratch entry of the per-round counter-read schedule.
#[derive(Clone, Copy)]
struct ReadReq {
    /// True time of the read.
    t: f64,
    /// Server index.
    k: usize,
    /// `true` for the `Tf` read, `false` for the `Ta` read.
    is_tf: bool,
}

/// The borrowing multi-server round stream; see the module docs.
pub struct MultiServerStream<'a> {
    sc: &'a MultiServerScenario,
    counter: TscCounter,
    host: HostTimestamping,
    servers: Vec<ServerState>,
    bottleneck: Option<Bottleneck>,
    t_next: f64,
    round: u64,
    /// Reused per-round scratch (event times, read schedule).
    events: Vec<PollEvents>,
    reads: Vec<ReadReq>,
}

/// Per-server event record of one round: true event times after phase 1,
/// observable stamps and the read instant after phase 2.
#[derive(Clone, Copy, Default)]
struct PollEvents {
    lost: bool,
    tb: f64,
    te: f64,
    tf_read: f64,
}

impl<'a> MultiServerStream<'a> {
    fn new(sc: &'a MultiServerScenario, seed: u64) -> Self {
        assert!(!sc.servers.is_empty(), "scenario needs at least one server");
        assert!(
            sc.servers.len() <= MAX_SERVERS,
            "at most {MAX_SERVERS} servers per scenario"
        );
        assert!(sc.poll_period > 0.0, "poll period must be positive");
        assert!(sc.duration > 0.0, "duration must be positive");
        assert!(
            sc.poll_stagger >= 0.0
                && sc.poll_stagger * (sc.servers.len() as f64) < sc.poll_period,
            "poll stagger must be non-negative and fit the period"
        );
        let osc = sc.environment.build(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let servers = sc
            .servers
            .iter()
            .enumerate()
            .map(|(k, path)| {
                let base = server_sub_seed(seed, k);
                let (fwd_min, back_min) = path.kind.min_delays();
                let (qf, qb) = path.kind.queue_means();
                let (cf, cb) = path.kind.congestion();
                let mut server = ServerModel::new(base.wrapping_add(2));
                for f in &path.faults {
                    server.add_fault(*f);
                }
                let mut fwd = PathDelay::new(fwd_min, qf, cf, base.wrapping_add(4));
                let mut back = PathDelay::new(back_min, qb, cb, base.wrapping_add(5));
                fwd.set_cadence(sc.poll_period);
                back.set_cadence(sc.poll_period);
                ServerState {
                    fwd,
                    back,
                    server,
                    loss_rng: ChaCha12Rng::seed_from_u64(base.wrapping_add(7)),
                    loss_prob: path.loss_prob,
                    seg_until: f64::NEG_INFINITY,
                    seg_outage: false,
                }
            })
            .collect();
        let bottleneck = sc.bottleneck.map(|params| {
            assert!(
                params.shape > 1.0 && params.scale > 0.0,
                "invalid bottleneck congestion params"
            );
            Bottleneck {
                burst: Pareto::new(params.scale, params.shape).expect("valid pareto"),
                in_burst: false,
                p_on: 1.0 - (-sc.poll_period / params.mean_on).exp(),
                p_off: 1.0 - (-sc.poll_period / params.mean_off).exp(),
                rng: ChaCha12Rng::seed_from_u64(splitmix64(
                    seed ^ 0xB0_77_1E_5E_C4_0F_6E_57,
                )),
            }
        });
        let k = sc.servers.len();
        Self {
            sc,
            counter: TscCounter::new(sc.tsc_freq_hz, 0, osc),
            host: HostTimestamping::new(seed.wrapping_add(3)),
            servers,
            bottleneck,
            t_next: sc.poll_period,
            round: 0,
            events: vec![PollEvents::default(); k],
            reads: Vec::with_capacity(2 * k),
        }
    }

    /// Number of servers polled per round.
    pub fn k(&self) -> usize {
        self.servers.len()
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Nominal TSC frequency of the simulated host.
    pub fn tsc_freq_hz(&self) -> f64 {
        self.counter.freq_hz()
    }

    /// Recomputes server `k`'s piecewise-constant anomaly state (shift
    /// deltas, outage flag) for the segment containing `t` — the same
    /// segment cache the single-server fast path uses, per server.
    #[cold]
    fn refresh_segment(&mut self, k: usize, t: f64) {
        let path = &self.sc.servers[k];
        let (df, db) = path.shifts.deltas_at(t);
        let s = &mut self.servers[k];
        s.fwd.set_shift(df);
        s.back.set_shift(db);
        s.seg_outage = path.outages.iter().any(|&(a, b)| t >= a && t < b);
        let mut until = f64::INFINITY;
        for ev in path.shifts.events() {
            if ev.at > t {
                until = until.min(ev.at);
            }
            if let Some(u) = ev.until {
                if u > t {
                    until = until.min(u);
                }
            }
        }
        for &(a, b) in &path.outages {
            if a > t {
                until = until.min(a);
            }
            if b > t {
                until = until.min(b);
            }
        }
        s.seg_until = until;
    }

    /// Runs one round (one poll of every server), overwriting `out` with
    /// exactly K [`RoundSample`]s. Returns `false` (leaving `out` empty)
    /// when the scenario duration is exhausted.
    ///
    /// Draw order is fixed per round — host send latencies and path/server
    /// draws for server 0..K−1 in index order, then stamps and the host
    /// receive latency for each *delivered* server in index order, with
    /// counter reads performed separately in true-time order — so the
    /// streams of different servers never interleave data-dependently.
    pub fn next_round(&mut self, out: &mut Vec<RoundSample>) -> bool {
        out.clear();
        if self.t_next > self.sc.duration {
            return false;
        }
        let t = self.t_next;
        self.t_next += self.sc.poll_period;
        self.round += 1;
        let k_total = self.servers.len();

        // Shared bottleneck: advance the chain one round-tick, then draw
        // the per-path excesses (independent inside the shared episode).
        // Draws happen for every path every round the chain is on, so the
        // bottleneck stream never depends on per-server loss outcomes.
        let mut shared_excess = [0.0f64; 2 * MAX_SERVERS];
        if let Some(b) = &mut self.bottleneck {
            let p_flip = if b.in_burst { b.p_on } else { b.p_off };
            if b.rng.random::<f64>() < p_flip {
                b.in_burst = !b.in_burst;
            }
            if b.in_burst {
                for e in shared_excess[..2 * k_total].iter_mut() {
                    *e = b.burst.sample(&mut b.rng);
                }
            }
        }

        // Phase 1: per-server event times (no counter reads yet).
        self.reads.clear();
        for k in 0..k_total {
            if t >= self.servers[k].seg_until {
                self.refresh_segment(k, t);
            }
            let t_send = t + self.sc.poll_stagger * k as f64;
            self.reads.push(ReadReq {
                t: t_send,
                k,
                is_tf: false,
            });
            let ta = t_send + self.host.send_latency();
            let s = &mut self.servers[k];
            let d_fwd = s.fwd.sample_cadenced() + shared_excess[2 * k];
            let tb = ta + d_fwd;
            let d_srv = s.server.residence(tb);
            let te = tb + d_srv;
            let d_back = s.back.sample_cadenced() + shared_excess[2 * k + 1];
            let tf = te + d_back;
            // Same short-circuit as the single-server path: inside an
            // outage the loss stream is not drawn.
            let lost = s.seg_outage || s.loss_rng.random::<f64>() < s.loss_prob;
            self.events[k] = PollEvents {
                lost,
                tb,
                te,
                tf_read: tf,
            };
        }

        // Phase 2: delivered-packet observables — server stamps and the
        // host receive latency — in server order.
        for k in 0..k_total {
            if self.events[k].lost {
                continue;
            }
            let ev = self.events[k];
            let s = &mut self.servers[k];
            let tb = s.server.stamp_rx(ev.tb);
            let te = s.server.stamp_tx(ev.te);
            let tf_read = ev.tf_read + self.host.recv_latency();
            self.events[k] = PollEvents {
                lost: false,
                tb,
                te,
                tf_read,
            };
            self.reads.push(ReadReq {
                t: tf_read,
                k,
                is_tf: true,
            });
        }

        // Phase 3: counter reads in true-time order, advancing the shared
        // oscillator monotonically within the round. Lost packets keep
        // their `Ta` read (the host always reads on send) but expose no
        // other observables.
        self.reads
            .sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite read times"));
        out.resize(k_total, RoundSample::lost());
        for req in &self.reads {
            let tsc = self.counter.read(req.t);
            let sample = &mut out[req.k];
            if req.is_tf {
                sample.delivered = true;
                sample.raw.tf_tsc = tsc;
                sample.raw.tb = self.events[req.k].tb;
                sample.raw.te = self.events[req.k].te;
                sample.tf_read = req.t;
                sample.host_err = self.counter.time_error();
            } else {
                sample.raw.ta_tsc = tsc;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn short(k: usize, seed: u64) -> MultiServerScenario {
        MultiServerScenario::baseline(k, seed).with_duration(4.0 * 3600.0)
    }

    /// Collects every round of a scenario.
    fn run(sc: &MultiServerScenario) -> Vec<Vec<RoundSample>> {
        let mut stream = sc.stream();
        let mut rounds = Vec::new();
        let mut buf = Vec::new();
        while stream.next_round(&mut buf) {
            rounds.push(buf.clone());
        }
        rounds
    }

    /// Bit pattern of a sample (lost samples carry NaNs, so `==` on the
    /// floats would be always-false).
    fn bits(s: &RoundSample) -> [u64; 7] {
        [
            u64::from(s.delivered),
            s.raw.ta_tsc,
            s.raw.tf_tsc,
            s.raw.tb.to_bits(),
            s.raw.te.to_bits(),
            s.tf_read.to_bits(),
            s.host_err.to_bits(),
        ]
    }

    fn all_bits(rounds: &[Vec<RoundSample>]) -> Vec<[u64; 7]> {
        rounds.iter().flatten().map(bits).collect()
    }

    #[test]
    fn one_server_no_bottleneck_is_bit_identical_to_single_server_raw() {
        // The K=1 anchor of the seed-derivation contract: identical host
        // timeline, identical per-stream seeds, identical draw order ⇒ the
        // multi-server stream reproduces Scenario::stream().raw() exactly.
        for seed in [1u64, 99, 0xDEAD_BEEF] {
            let multi = short(1, seed);
            let single = Scenario::baseline(seed).with_duration(multi.duration);
            let raws: Vec<RawExchange> = single.stream().raw().collect();
            let rounds = run(&multi);
            let delivered: Vec<RawExchange> = rounds
                .iter()
                .filter(|r| r[0].delivered)
                .map(|r| r[0].raw)
                .collect();
            assert_eq!(delivered.len(), raws.len(), "seed {seed}");
            for (i, (m, s)) in delivered.iter().zip(&raws).enumerate() {
                assert_eq!(m.ta_tsc, s.ta_tsc, "seed {seed} packet {i}");
                assert_eq!(m.tf_tsc, s.tf_tsc, "seed {seed} packet {i}");
                assert_eq!(m.tb.to_bits(), s.tb.to_bits(), "seed {seed} packet {i}");
                assert_eq!(m.te.to_bits(), s.te.to_bits(), "seed {seed} packet {i}");
            }
        }
    }

    #[test]
    fn rounds_poll_every_server_and_are_causal() {
        let sc = short(3, 2);
        let rounds = run(&sc);
        assert_eq!(rounds.len(), sc.rounds());
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.len(), 3);
            for (k, s) in r.iter().enumerate() {
                if s.delivered {
                    assert!(s.raw.is_causal(), "round {i} server {k} not causal");
                    assert!(s.raw.tb <= s.raw.te);
                    assert!(s.tf_read.is_finite() && s.host_err.is_finite());
                }
            }
        }
    }

    #[test]
    fn server_streams_are_independent() {
        // Distinct sub-seeds: per-server RTT series must be uncorrelated.
        // (Identical streams would give correlation ≈ 1.)
        let sc = short(2, 7);
        let rounds = run(&sc);
        let rtt = |k: usize| {
            rounds
                .iter()
                .filter(|r| r[0].delivered && r[1].delivered)
                .map(|r| (r[k].raw.tf_tsc - r[k].raw.ta_tsc) as f64 * 1e-9)
                .collect::<Vec<f64>>()
        };
        let (a, b) = (rtt(0), rtt(1));
        let n = a.len() as f64;
        assert!(n > 500.0);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ma, mb) = (mean(&a), mean(&b));
        let cov = a.iter().zip(&b).map(|(x, y)| (x - ma) * (y - mb)).sum::<f64>() / n;
        let var = |v: &[f64], m: f64| v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        let corr = cov / (var(&a, ma) * var(&b, mb)).sqrt();
        assert!(corr.abs() < 0.2, "independent paths correlated: r = {corr}");
    }

    #[test]
    fn shared_bottleneck_correlates_paths() {
        // With a heavy shared bottleneck, congested rounds inflate every
        // server's delay at once. The excesses are heavy-tailed (infinite
        // variance at shape 1.6), so test co-occurrence of inflated RTTs
        // instead of a Pearson correlation: P(both high) must far exceed
        // the product of the marginals.
        let sc = short(2, 7).with_bottleneck(CongestionParams {
            mean_off: 600.0,
            mean_on: 300.0,
            scale: 5e-3,
            shape: 1.6,
        });
        let rounds = run(&sc);
        let high: Vec<(bool, bool)> = rounds
            .iter()
            .filter(|r| r[0].delivered && r[1].delivered)
            .map(|r| {
                let rtt = |k: usize| (r[k].raw.tf_tsc - r[k].raw.ta_tsc) as f64 * 1e-9;
                (rtt(0) > 4e-3, rtt(1) > 4e-3)
            })
            .collect();
        let n = high.len() as f64;
        let p0 = high.iter().filter(|h| h.0).count() as f64 / n;
        let p1 = high.iter().filter(|h| h.1).count() as f64 / n;
        let both = high.iter().filter(|h| h.0 && h.1).count() as f64 / n;
        assert!(p0 > 0.05 && p1 > 0.05, "bottleneck episodes absent: {p0}, {p1}");
        // shared episodes: inflated rounds coincide almost surely
        // (P(1|0) ≈ 1), far above the independent-path baseline (≈ p1)
        assert!(
            both / p0 > 0.8 && both / p0 > 2.0 * p1,
            "shared bottleneck must co-inflate paths: P(1|0)={} vs marginal {p1}",
            both / p0
        );
    }

    #[test]
    fn per_server_outage_hits_only_that_server() {
        let mut sc = short(3, 4);
        sc.servers[1] = ServerPath::new(ServerKind::Int).with_outage(3600.0, 7200.0);
        let mut stream = sc.stream();
        let mut buf = Vec::new();
        let mut t = 0.0;
        let (mut in_outage, mut others_delivered) = (0usize, 0usize);
        while stream.next_round(&mut buf) {
            t += sc.poll_period;
            if (3600.0..7200.0).contains(&t) {
                assert!(!buf[1].delivered, "server 1 must be out at t={t}");
                in_outage += 1;
                others_delivered += usize::from(buf[0].delivered) + usize::from(buf[2].delivered);
            }
        }
        assert!(in_outage > 200);
        // other servers keep delivering through server 1's outage
        assert!(others_delivered as f64 > 1.9 * in_outage as f64);
    }

    #[test]
    fn asymmetry_step_preserves_rtt_but_biases_offset() {
        // The silent fault: RTT statistics unchanged, per-server naive
        // offset biased by delta/2. Host clock drift swamps any absolute
        // offset median, so measure the *differential* offset between the
        // faulted server and a clean one — same-round differences cancel
        // the host clock exactly (this is also precisely the signal the
        // quorum combiner keys on).
        // ServerExt: its backward minimum (≈6.8 ms) has room for the
        // −delta/2 leg — on short LAN paths the PathDelay floor would clamp
        // it and the step would leak into the RTT.
        let delta = 2e-3;
        let mut sc = short(2, 11);
        sc.servers[0] = ServerPath::new(ServerKind::Ext).with_loss(0.0);
        sc.servers[1] = ServerPath::new(ServerKind::Ext)
            .with_loss(0.0)
            .with_shift(LevelShift::asymmetric(7200.0, None, delta));
        let rounds = run(&sc);
        let p = 1e-9;
        let theta = |s: &RoundSample| {
            (s.raw.tb + s.raw.te) / 2.0
                - (s.raw.ta_tsc as f64 + s.raw.tf_tsc as f64) / 2.0 * p
        };
        let rtt =
            |s: &RoundSample| (s.raw.tf_tsc - s.raw.ta_tsc) as f64 * p - (s.raw.te - s.raw.tb);
        let window = |lo: f64, hi: f64| {
            let in_window: Vec<&Vec<RoundSample>> = rounds
                .iter()
                .enumerate()
                .filter(|(i, r)| {
                    let t = (*i as f64 + 1.0) * sc.poll_period;
                    t >= lo && t < hi && r[0].delivered && r[1].delivered
                })
                .map(|(_, r)| r)
                .collect();
            let min_rtt = |k: usize| {
                in_window
                    .iter()
                    .map(|r| rtt(&r[k]))
                    .fold(f64::INFINITY, f64::min)
            };
            let (m0, m1) = (min_rtt(0), min_rtt(1));
            // Heavy Ext congestion swamps a plain median; restrict to
            // uncongested rounds (both RTTs near their window minima),
            // where the remaining noise is tens of µs.
            let mut diffs: Vec<f64> = in_window
                .iter()
                .filter(|r| rtt(&r[0]) - m0 < 1.5e-3 && rtt(&r[1]) - m1 < 1.5e-3)
                .map(|r| theta(&r[1]) - theta(&r[0]))
                .collect();
            assert!(diffs.len() > 50, "too few uncongested rounds");
            diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            (m1, diffs[diffs.len() / 2])
        };
        let (rtt_before, diff_before) = window(0.0, 7200.0);
        let (rtt_after, diff_after) = window(7200.0, 14_400.0);
        assert!(
            (rtt_after - rtt_before).abs() < 100e-6,
            "asymmetry step must not move the RTT minimum: {rtt_before} vs {rtt_after}"
        );
        assert!(
            ((diff_after - diff_before) - delta / 2.0).abs() < 300e-6,
            "differential offset must shift by delta/2: {}",
            diff_after - diff_before
        );
    }

    #[test]
    fn paper_testbed_matches_table2_paths() {
        // Loc + Int + Ext in index order, each path carrying its Table-2
        // RTT floor (observed min RTT within queueing slack of the preset
        // minimum) and the default 16 s polling.
        let sc = MultiServerScenario::paper_testbed(5).with_duration(6.0 * 3600.0);
        assert_eq!(sc.k(), 3);
        assert_eq!(sc.poll_period, 16.0);
        let kinds = [ServerKind::Loc, ServerKind::Int, ServerKind::Ext];
        for (k, kind) in kinds.iter().enumerate() {
            assert_eq!(sc.servers[k].kind, *kind, "server {k}");
        }
        let rounds = run(&sc);
        for (k, kind) in kinds.iter().enumerate() {
            let min_rtt = rounds
                .iter()
                .filter(|r| r[k].delivered)
                .map(|r| (r[k].raw.tf_tsc - r[k].raw.ta_tsc) as f64 * 1e-9)
                .fold(f64::INFINITY, f64::min);
            let (fwd, back) = kind.min_delays();
            let floor = fwd + back;
            assert!(
                min_rtt >= floor && min_rtt < floor + 1e-3,
                "server {k} min RTT {min_rtt} vs floor {floor}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let sc = short(3, 21);
        let a = run(&sc);
        let b = run(&sc);
        assert_eq!(all_bits(&a), all_bits(&b));
        let c = run(&short(3, 22));
        assert_ne!(all_bits(&a), all_bits(&c));
    }

    #[test]
    fn seed_override_equals_reseeded_scenario() {
        let template = short(2, 30);
        let reseeded = run(&MultiServerScenario { seed: 31, ..template.clone() });
        let mut overridden = Vec::new();
        let mut stream = template.stream_with_seed(31);
        let mut buf = Vec::new();
        while stream.next_round(&mut buf) {
            overridden.push(buf.clone());
        }
        assert_eq!(all_bits(&reseeded), all_bits(&overridden));
    }

    #[test]
    fn sub_seed_derivation_is_stable_and_collision_free() {
        // the documented contract: k=0 passes the master through; k≥1 are
        // splitmix-derived and all distinct
        assert_eq!(server_sub_seed(42, 0), 42);
        let seeds: Vec<u64> = (0..MAX_SERVERS).map(|k| server_sub_seed(42, k)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), MAX_SERVERS, "sub-seed collision");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_scenario_rejected() {
        MultiServerScenario::baseline(0, 1).stream();
    }
}
