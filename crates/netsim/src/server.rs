//! The stratum-1 NTP server model.
//!
//! §2.3/§3.2: the server's clock "should be synchronized" but "timestamping
//! errors nonetheless make these unequal even for the server. Indeed, as
//! servers are often just PC's, their timestamping may not have the quality
//! of the driver based TSC timestamping of our host." The server delay `d↑`
//! has "a minimum processing time and a variable time due to timestamping
//! issues both in the µs range, and rare delays due to scheduling in the
//! millisecond range." §4.2 additionally observes rare `Te > te` errors
//! "by as much as 1 ms, larger even than the RTT!"
//!
//! §6.1 exercises an outright *server error* in which `Tb` and `Te` were
//! each offset by 150 ms for a few minutes (Figure 11b) — injectable here
//! through [`ServerFault`].

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// A gross server-clock fault: both `Tb` and `Te` are offset by `offset`
/// seconds during `[start, end)` of true time — the Figure 11(b) event.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct ServerFault {
    /// Fault onset (true time, seconds).
    pub start: f64,
    /// Fault end (true time, seconds).
    pub end: f64,
    /// Clock error during the fault (seconds; the paper's event was 150 ms).
    pub offset: f64,
}

/// Parameters of the server model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct ServerParams {
    /// Minimum processing/residence time `d↑` (seconds).
    pub min_residence: f64,
    /// Mean of the variable residence component (seconds).
    pub residence_mean: f64,
    /// Probability of a millisecond-scale scheduling delay in residence.
    pub p_residence_spike: f64,
    /// Mean of such a spike (seconds).
    pub residence_spike_mean: f64,
    /// Std-dev of ordinary server timestamping error (seconds).
    pub stamp_sigma: f64,
    /// Probability that `Te` carries a large positive error.
    pub p_te_outlier: f64,
    /// Mean of the large `Te` error (paper: up to 1 ms).
    pub te_outlier_mean: f64,
}

impl Default for ServerParams {
    fn default() -> Self {
        Self {
            min_residence: 12e-6,
            residence_mean: 8e-6,
            p_residence_spike: 1e-3,
            residence_spike_mean: 0.8e-3,
            stamp_sigma: 2e-6,
            p_te_outlier: 4e-4,
            te_outlier_mean: 0.5e-3,
        }
    }
}

/// A stratum-1 server: perfectly GPS-synchronized truth, imperfect
/// timestamping, plus injectable faults.
///
/// The timestamping-noise Gaussians use Box-Muller with the second value
/// of each pair cached (`sin_cos` computes both for one argument
/// reduction), exactly as [`crate::HostTimestamping`] does — a server
/// stamps two Gaussians per delivered packet (`Tb`, `Te`), so the pair
/// cache halves the draw cost. The original draw-per-call formulation is
/// retained behind the `reference` feature for the differential tests.
#[derive(Debug)]
pub struct ServerModel {
    params: ServerParams,
    faults: Vec<ServerFault>,
    exp_res: Exp<f64>,
    rng: ChaCha12Rng,
    /// Cached second half of the last Box-Muller pair.
    spare: Option<f64>,
}

impl ServerModel {
    /// Server with default (paper-like) imperfections and no faults.
    pub fn new(seed: u64) -> Self {
        Self::with_params(ServerParams::default(), seed)
    }

    /// Server with explicit parameters.
    pub fn with_params(params: ServerParams, seed: u64) -> Self {
        assert!(params.residence_mean > 0.0, "invalid residence mean");
        Self {
            params,
            faults: Vec::new(),
            exp_res: Exp::new(1.0 / params.residence_mean).expect("valid rate"),
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x5E4B_E401),
            spare: None,
        }
    }

    /// Registers a clock fault window.
    pub fn add_fault(&mut self, fault: ServerFault) {
        assert!(fault.end > fault.start, "fault window must be non-empty");
        self.faults.push(fault);
    }

    /// Model parameters.
    pub fn params(&self) -> &ServerParams {
        &self.params
    }

    fn gauss(&mut self) -> f64 {
        if let Some(g) = self.spare.take() {
            return g;
        }
        let u1: f64 = self.rng.random::<f64>().max(1e-300);
        let u2: f64 = self.rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        self.spare = Some(r * s);
        r * c
    }

    fn fault_offset(&self, t: f64) -> f64 {
        self.faults
            .iter()
            .filter(|f| t >= f.start && t < f.end)
            .map(|f| f.offset)
            .sum()
    }

    /// Samples the residence time `d↑` for a packet arriving at true time
    /// `t` (equation (13)).
    pub fn residence(&mut self, _t: f64) -> f64 {
        let mut d = self.params.min_residence + self.exp_res.sample(&mut self.rng);
        if self.rng.random::<f64>() < self.params.p_residence_spike {
            let e: f64 = self.rng.random::<f64>().max(1e-300);
            d += self.params.residence_spike_mean * (-e.ln());
        }
        d
    }

    /// The server's receive timestamp `Tb` for a packet arriving at true
    /// time `tb`. The error is bounded below by the truth (the server
    /// cannot stamp before the packet exists) and includes any active fault.
    pub fn stamp_rx(&mut self, tb: f64) -> f64 {
        let noise = (self.gauss() * self.params.stamp_sigma).abs();
        tb + noise + self.fault_offset(tb)
    }

    /// The server's transmit timestamp `Te` for a packet departing at true
    /// time `te`. Unlike `Tb`, `Te` can err *late* by as much as 1 ms
    /// (the a-priori-unknown `Te` vs `te` relationship of §4.2).
    pub fn stamp_tx(&mut self, te: f64) -> f64 {
        let mut noise = (self.gauss() * self.params.stamp_sigma).abs();
        if self.rng.random::<f64>() < self.params.p_te_outlier {
            let e: f64 = self.rng.random::<f64>().max(1e-300);
            noise += self.params.te_outlier_mean * (-e.ln());
        }
        te + noise + self.fault_offset(te)
    }
}

/// The pre-optimization formulation: a fresh Box-Muller pair per stamp,
/// second value discarded — bit-identical to the original implementation.
#[cfg(feature = "reference")]
impl ServerModel {
    fn gauss_reference(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-300);
        let u2: f64 = self.rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Original [`ServerModel::stamp_rx`].
    pub fn stamp_rx_reference(&mut self, tb: f64) -> f64 {
        let noise = (self.gauss_reference() * self.params.stamp_sigma).abs();
        tb + noise + self.fault_offset(tb)
    }

    /// Original [`ServerModel::stamp_tx`].
    pub fn stamp_tx_reference(&mut self, te: f64) -> f64 {
        let mut noise = (self.gauss_reference() * self.params.stamp_sigma).abs();
        if self.rng.random::<f64>() < self.params.p_te_outlier {
            let e: f64 = self.rng.random::<f64>().max(1e-300);
            noise += self.params.te_outlier_mean * (-e.ln());
        }
        te + noise + self.fault_offset(te)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residence_respects_minimum() {
        let mut s = ServerModel::new(1);
        for i in 0..50_000 {
            assert!(s.residence(i as f64) >= 12e-6);
        }
    }

    #[test]
    fn residence_spikes_are_rare() {
        let mut s = ServerModel::new(2);
        let n = 100_000;
        let spikes = (0..n)
            .map(|i| s.residence(i as f64))
            .filter(|&d| d > 0.3e-3)
            .count();
        let rate = spikes as f64 / n as f64;
        assert!(rate > 1e-4 && rate < 1e-2, "spike rate {rate}");
    }

    #[test]
    fn rx_stamp_never_precedes_truth() {
        let mut s = ServerModel::new(3);
        for i in 0..10_000 {
            let t = i as f64;
            assert!(s.stamp_rx(t) >= t);
        }
    }

    #[test]
    fn tx_outliers_reach_hundreds_of_us() {
        let mut s = ServerModel::new(4);
        let n = 200_000;
        let max_err = (0..n)
            .map(|i| {
                let t = i as f64;
                s.stamp_tx(t) - t
            })
            .fold(0.0f64, f64::max);
        assert!(
            max_err > 100e-6,
            "Te outliers should reach 0.1+ ms, max {max_err}"
        );
        assert!(max_err < 20e-3, "Te outliers unreasonably large: {max_err}");
    }

    #[test]
    fn fault_window_applies_exactly() {
        let mut s = ServerModel::new(5);
        s.add_fault(ServerFault {
            start: 100.0,
            end: 300.0,
            offset: 0.150,
        });
        let before = s.stamp_rx(99.0) - 99.0;
        let during = s.stamp_rx(200.0) - 200.0;
        let after = s.stamp_rx(301.0) - 301.0;
        assert!(before < 1e-3, "no fault before window");
        assert!(
            (during - 0.150).abs() < 1e-3,
            "fault active inside window: {during}"
        );
        assert!(after < 1e-3, "no fault after window");
    }

    #[test]
    fn overlapping_faults_sum() {
        let mut s = ServerModel::new(6);
        s.add_fault(ServerFault {
            start: 0.0,
            end: 10.0,
            offset: 0.1,
        });
        s.add_fault(ServerFault {
            start: 5.0,
            end: 10.0,
            offset: 0.05,
        });
        let err = s.stamp_tx(7.0) - 7.0;
        assert!(err > 0.149, "overlapping faults should sum: {err}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_fault_window_panics() {
        let mut s = ServerModel::new(7);
        s.add_fault(ServerFault {
            start: 10.0,
            end: 10.0,
            offset: 0.1,
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ServerModel::new(8);
        let mut b = ServerModel::new(8);
        for i in 0..100 {
            let t = i as f64;
            assert_eq!(a.residence(t), b.residence(t));
            assert_eq!(a.stamp_rx(t), b.stamp_rx(t));
            assert_eq!(a.stamp_tx(t), b.stamp_tx(t));
        }
    }
}
