//! Scenario presets: Table 2's three servers and full experiment configs.

use crate::delay::CongestionParams;
use crate::server::ServerFault;
use crate::shifts::ShiftSchedule;
use crate::sim::ExchangeSimulator;
use serde::{Deserialize, Serialize};
use tsc_osc::Environment;

/// The three stratum-1 servers of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerKind {
    /// In the host's laboratory, same local network: 3 m, RTT 0.38 ms,
    /// 2 hops, Δ ≈ 50 µs, GPS-referenced.
    Loc,
    /// Same organization, distinct network: 300 m, RTT 0.89 ms, 5 hops,
    /// Δ ≈ 50 µs, GPS-referenced. The paper's recommended "nearby" server.
    Int,
    /// Another city, ~1000 km: RTT 14.2 ms, ~10 hops, Δ ≈ 500 µs,
    /// atomic-clock referenced.
    Ext,
}

/// Static per-server facts (for reproducing Table 2's fixed columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerFacts {
    /// Reference source name.
    pub reference: &'static str,
    /// Physical distance description.
    pub distance: &'static str,
    /// Minimum round-trip time (seconds).
    pub rtt: f64,
    /// IP hop count.
    pub hops: u32,
    /// Path asymmetry Δ = d→ − d← (seconds).
    pub asymmetry: f64,
}

impl ServerKind {
    /// Table 2's row for this server.
    pub fn facts(self) -> ServerFacts {
        match self {
            ServerKind::Loc => ServerFacts {
                reference: "GPS",
                distance: "3 m",
                rtt: 0.38e-3,
                hops: 2,
                asymmetry: 50e-6,
            },
            ServerKind::Int => ServerFacts {
                reference: "GPS",
                distance: "300 m",
                rtt: 0.89e-3,
                hops: 5,
                asymmetry: 50e-6,
            },
            ServerKind::Ext => ServerFacts {
                reference: "Atomic",
                distance: "1000 km",
                rtt: 14.2e-3,
                hops: 10,
                asymmetry: 500e-6,
            },
        }
    }

    /// Minimum one-way delays `(d→, d←)` consistent with Table 2's RTT and
    /// Δ, after accounting for the server's 12 µs minimum residence:
    /// `d→ + d← = RTT − d↑` and `d→ − d← = Δ`.
    pub fn min_delays(self) -> (f64, f64) {
        let f = self.facts();
        let paths = f.rtt - crate::server::ServerParams::default().min_residence;
        let fwd = (paths + f.asymmetry) / 2.0;
        let back = (paths - f.asymmetry) / 2.0;
        (fwd, back)
    }

    /// Background queueing means `(fwd, back)`; the forward path is more
    /// heavily utilised (§4.2 observes the naive offset histogram "is biased
    /// towards negative values ... because the forward path is more heavily
    /// utilised than the backward one"), and noise grows with hop count.
    pub fn queue_means(self) -> (f64, f64) {
        match self {
            ServerKind::Loc => (45e-6, 25e-6),
            ServerKind::Int => (80e-6, 45e-6),
            ServerKind::Ext => (300e-6, 180e-6),
        }
    }

    /// Congestion-episode parameters `(fwd, back)`.
    pub fn congestion(self) -> (CongestionParams, CongestionParams) {
        let scale_back = |c: CongestionParams| CongestionParams {
            scale: c.scale * 0.6,
            ..c
        };
        match self {
            ServerKind::Loc => (CongestionParams::light(), scale_back(CongestionParams::light())),
            ServerKind::Int => (
                CongestionParams::moderate(),
                scale_back(CongestionParams::moderate()),
            ),
            ServerKind::Ext => (CongestionParams::heavy(), scale_back(CongestionParams::heavy())),
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Loc => "ServerLoc",
            ServerKind::Int => "ServerInt",
            ServerKind::Ext => "ServerExt",
        }
    }
}

/// A complete experiment configuration: host environment, server, schedule
/// of anomalies, polling parameters. `build()` yields the event simulator.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Host temperature environment (selects the oscillator model).
    pub environment: Environment,
    /// Which Table 2 server to talk to.
    pub server: ServerKind,
    /// Explicit path parameterisation overriding the server's Table-2
    /// derived one — how heterogeneous access profiles
    /// ([`crate::PathProfile`]) reshape the path while keeping the same
    /// server model. `None` = derive from `server` as always.
    pub path: Option<crate::profile::PathParams>,
    /// Master seed; every stochastic element derives its stream from it.
    pub seed: u64,
    /// NTP polling period in seconds (paper uses 16 for analysis, 64/256 as
    /// standard defaults).
    pub poll_period: f64,
    /// Total simulated duration in seconds.
    pub duration: f64,
    /// Independent per-packet loss probability.
    pub loss_prob: f64,
    /// Trace-collection gaps / server unavailability windows `(start, end)`.
    pub outages: Vec<(f64, f64)>,
    /// Route-change level shifts.
    pub shifts: ShiftSchedule,
    /// Server clock faults (Figure 11b-style).
    pub server_faults: Vec<ServerFault>,
    /// Nominal TSC frequency in Hz.
    pub tsc_freq_hz: f64,
}

impl Scenario {
    /// A machine-room host polling ServerInt every 16 s — the paper's main
    /// data-collection configuration (§2.3).
    pub fn baseline(seed: u64) -> Self {
        Self {
            environment: Environment::MachineRoom,
            server: ServerKind::Int,
            path: None,
            seed,
            poll_period: 16.0,
            duration: 86_400.0,
            loss_prob: 1.5e-3,
            outages: Vec::new(),
            shifts: ShiftSchedule::none(),
            server_faults: Vec::new(),
            tsc_freq_hz: 1e9,
        }
    }

    /// Sets the duration (chainable).
    pub fn with_duration(mut self, seconds: f64) -> Self {
        self.duration = seconds;
        self
    }

    /// Sets the polling period (chainable).
    pub fn with_poll_period(mut self, seconds: f64) -> Self {
        self.poll_period = seconds;
        self
    }

    /// Sets the server (chainable).
    pub fn with_server(mut self, server: ServerKind) -> Self {
        self.server = server;
        self
    }

    /// Sets the host environment (chainable).
    pub fn with_environment(mut self, environment: Environment) -> Self {
        self.environment = environment;
        self
    }

    /// Adds an outage window (chainable).
    pub fn with_outage(mut self, start: f64, end: f64) -> Self {
        self.outages.push((start, end));
        self
    }

    /// Adds a level shift (chainable).
    pub fn with_shift(mut self, shift: crate::shifts::LevelShift) -> Self {
        self.shifts.push(shift);
        self
    }

    /// Adds a server fault (chainable).
    pub fn with_server_fault(mut self, fault: ServerFault) -> Self {
        self.server_faults.push(fault);
        self
    }

    /// Applies an access-path profile (chainable): overrides the path
    /// parameterisation and loss rate, and appends the profile's
    /// generated shift schedule (mobile handovers) derived from the
    /// scenario's current seed. See [`crate::PathProfile::apply`].
    pub fn with_profile(self, profile: crate::profile::PathProfile) -> Self {
        let seed = self.seed;
        profile.apply(&self, seed)
    }

    /// The effective path parameterisation: the explicit override when
    /// present, otherwise the server's Table-2 derived parameters.
    pub fn effective_path(&self) -> crate::profile::PathParams {
        self.path.unwrap_or_else(|| {
            let (fwd_min, back_min) = self.server.min_delays();
            let (fwd_queue_mean, back_queue_mean) = self.server.queue_means();
            let (fwd_congestion, back_congestion) = self.server.congestion();
            crate::profile::PathParams {
                fwd_min,
                back_min,
                fwd_queue_mean,
                back_queue_mean,
                fwd_congestion,
                back_congestion,
            }
        })
    }

    /// Checks every level shift in the schedule against the path minima
    /// and reports the ones that would be clamped by the [`PathDelay`]
    /// floor (effective minimum < 0 snaps to 0) — a *half-applied* fault:
    /// an [`LevelShift::asymmetric`] step relies on both legs moving by
    /// ±delta/2, and a clamped leg leaks the step into the RTT, silently
    /// changing what the fault injects. Presets and fleet configs should
    /// assert this is empty; the regression tests pin both the clamped
    /// sample floor and this warning path.
    ///
    /// [`PathDelay`]: crate::PathDelay
    /// [`LevelShift::asymmetric`]: crate::LevelShift::asymmetric
    pub fn clamp_warnings(&self) -> Vec<String> {
        let path = self.effective_path();
        let mut warnings = Vec::new();
        for (idx, s) in self.shifts.events().iter().enumerate() {
            // cumulative deltas at the event's onset (all overlapping
            // shifts included — clamping applies to the *total* shift)
            let (df, db) = self.shifts.deltas_at(s.at);
            if path.fwd_min + df < 0.0 {
                warnings.push(format!(
                    "shift {idx} at t={}: forward min {}s + delta {df}s < 0 — \
                     clamped to 0, shift half-applied",
                    s.at, path.fwd_min
                ));
            }
            if path.back_min + db < 0.0 {
                warnings.push(format!(
                    "shift {idx} at t={}: backward min {}s + delta {db}s < 0 — \
                     clamped to 0, shift half-applied",
                    s.at, path.back_min
                ));
            }
        }
        warnings
    }

    /// Builds the exchange simulator.
    pub fn build(&self) -> ExchangeSimulator {
        ExchangeSimulator::new(self)
    }

    /// Builds a borrowing exchange stream (bit-identical output to
    /// [`Scenario::build`], without cloning the anomaly schedules) — the
    /// fleet-replay generation path.
    pub fn stream(&self) -> crate::sim::ExchangeStream<'_> {
        crate::sim::ExchangeStream::new(self)
    }

    /// A borrowing stream with the master seed overridden — what a fleet
    /// uses to derive thousands of distinct streams from one shared
    /// template without cloning it.
    pub fn stream_with_seed(&self, seed: u64) -> crate::sim::ExchangeStream<'_> {
        crate::sim::ExchangeStream::with_seed(self, seed)
    }

    /// Runs the whole scenario, returning every exchange record (including
    /// lost ones, flagged).
    pub fn run(&self) -> Vec<crate::sim::SimExchange> {
        self.build().collect()
    }

    /// Runs the whole scenario through the pre-optimization pipeline
    /// (draw-per-call samplers, exact-time burst evolution, reference
    /// oscillator) — the ground truth of the statistical-equivalence
    /// differential tests.
    #[cfg(feature = "reference")]
    pub fn run_reference(&self) -> Vec<crate::sim::SimExchange> {
        ExchangeSimulator::new_reference(self).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_delays_reconstruct_table2() {
        for k in [ServerKind::Loc, ServerKind::Int, ServerKind::Ext] {
            let f = k.facts();
            let (fwd, back) = k.min_delays();
            let r = fwd + back + crate::server::ServerParams::default().min_residence;
            assert!(
                (r - f.rtt).abs() < 1e-12,
                "{}: RTT mismatch {r} vs {}",
                k.name(),
                f.rtt
            );
            assert!(
                (fwd - back - f.asymmetry).abs() < 1e-12,
                "{}: asymmetry mismatch",
                k.name()
            );
            assert!(back > 0.0);
        }
    }

    #[test]
    fn forward_paths_are_busier() {
        for k in [ServerKind::Loc, ServerKind::Int, ServerKind::Ext] {
            let (f, b) = k.queue_means();
            assert!(f > b, "{}: forward must be busier", k.name());
        }
    }

    #[test]
    fn builder_chains() {
        let s = Scenario::baseline(1)
            .with_duration(3600.0)
            .with_poll_period(64.0)
            .with_server(ServerKind::Loc)
            .with_environment(Environment::Laboratory)
            .with_outage(100.0, 200.0);
        assert_eq!(s.duration, 3600.0);
        assert_eq!(s.poll_period, 64.0);
        assert_eq!(s.server, ServerKind::Loc);
        assert_eq!(s.environment, Environment::Laboratory);
        assert_eq!(s.outages.len(), 1);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ServerKind::Loc.name(), "ServerLoc");
        assert_eq!(ServerKind::Int.name(), "ServerInt");
        assert_eq!(ServerKind::Ext.name(), "ServerExt");
    }
}
