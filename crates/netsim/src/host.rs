//! Host-side timestamping model.
//!
//! §2.2.1: timestamping "early in the driver-code" gives almost no
//! scheduling problems ("1 timestamp per 10,000, and then usually with an
//! error under 1 ms") and noise "dominated by interrupt latency" of at
//! worst ~15 µs — the paper's calibration unit `δ = 15 µs`. §2.4 resolves
//! this noise into a dominant mode at zero of width 5 µs plus side modes at
//! +10 µs and +31 µs.
//!
//! [`HostTimestamping`] reproduces that structure: on send, the raw `Ta`
//! TSC read happens slightly *before* the frame leaves; on receive, the
//! `Tf` read happens an interrupt latency *after* full arrival, with the
//! latency drawn from the three-mode mixture plus rare scheduling outliers.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the host timestamping latency mixture.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct HostParams {
    /// Minimum driver/DMA latency common to all packets (seconds).
    pub base: f64,
    /// Width (std-dev) of the dominant latency mode (seconds).
    pub main_width: f64,
    /// Probability of the +10 µs interrupt-latency side mode.
    pub p_mode_10us: f64,
    /// Probability of the +31 µs interrupt-latency side mode.
    pub p_mode_31us: f64,
    /// Probability of a gross scheduling error (paper: ~1 / 10 000).
    pub p_scheduling: f64,
    /// Mean size of a scheduling error (seconds; paper: "usually under 1 ms").
    pub scheduling_mean: f64,
}

impl Default for HostParams {
    fn default() -> Self {
        Self {
            base: 1.5e-6,
            main_width: 1.8e-6,
            p_mode_10us: 0.030,
            p_mode_31us: 0.012,
            p_scheduling: 1e-4,
            scheduling_mean: 0.4e-3,
        }
    }
}

/// Draws send and receive timestamping latencies for the host.
///
/// The Gaussian draws use Box-Muller with the otherwise-discarded second
/// value of each pair cached (`sin_cos` computes both for the price of
/// one), so the marginal distribution is exactly the classic formulation's
/// while half the draws cost nothing. The original draw-per-call
/// formulation — including its wasted Gaussian on the scheduling-error
/// branch of [`HostTimestamping::recv_latency`] — is retained behind the
/// `reference` feature for the statistical-equivalence differential tests.
#[derive(Debug)]
pub struct HostTimestamping {
    params: HostParams,
    rng: ChaCha12Rng,
    /// Cached second half of the last Box-Muller pair.
    spare: Option<f64>,
}

impl HostTimestamping {
    /// Host with the default driver-level timestamping quality of the paper.
    pub fn new(seed: u64) -> Self {
        Self::with_params(HostParams::default(), seed)
    }

    /// Host with explicit latency parameters.
    pub fn with_params(params: HostParams, seed: u64) -> Self {
        Self {
            params,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x1057_57A3),
            spare: None,
        }
    }

    fn gauss(&mut self) -> f64 {
        if let Some(g) = self.spare.take() {
            return g;
        }
        let u1: f64 = self.rng.random::<f64>().max(1e-300);
        let u2: f64 = self.rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        self.spare = Some(r * s);
        r * c
    }

    /// Positive latency from the three-mode mixture. The Gaussian width
    /// term is only drawn on the branches that use it (the original
    /// formulation burned a pair on the scheduling-error path too).
    fn interrupt_latency(&mut self) -> f64 {
        let p = self.params;
        let u: f64 = self.rng.random();
        let centre = if u < p.p_scheduling {
            // gross scheduling error: exponential-ish, up to ~1 ms
            let e: f64 = self.rng.random::<f64>().max(1e-300);
            return p.base + p.scheduling_mean * (-e.ln());
        } else if u < p.p_scheduling + p.p_mode_31us {
            31e-6
        } else if u < p.p_scheduling + p.p_mode_31us + p.p_mode_10us {
            10e-6
        } else {
            0.0
        };
        (p.base + centre + self.gauss() * p.main_width).max(0.2e-6)
    }

    /// Latency between the raw `Ta` read and the frame's true departure.
    /// (Reading happens first, so `ta_true = t_read + send_latency`.)
    pub fn send_latency(&mut self) -> f64 {
        // Sending has no interrupt in the path: just driver + NIC queueing.
        let p = self.params;
        let g = self.gauss().abs();
        p.base + g * p.main_width
    }

    /// Latency between true full arrival and the raw `Tf` read
    /// (`tf_read = tf_true + recv_latency`): the §2.4 mixture.
    pub fn recv_latency(&mut self) -> f64 {
        self.interrupt_latency()
    }

    /// The calibration unit δ: the paper's bound on host timestamping error
    /// (15 µs).
    pub const DELTA: f64 = 15e-6;
}

/// The pre-optimization formulation, bit-identical to the original
/// implementation: a fresh Box-Muller pair per call (second value
/// discarded) and the Gaussian drawn before the mixture branch.
#[cfg(feature = "reference")]
impl HostTimestamping {
    fn gauss_reference(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-300);
        let u2: f64 = self.rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Original [`HostTimestamping::send_latency`].
    pub fn send_latency_reference(&mut self) -> f64 {
        let p = self.params;
        let g = self.gauss_reference().abs();
        p.base + g * p.main_width
    }

    /// Original [`HostTimestamping::recv_latency`], wasted draw included.
    pub fn recv_latency_reference(&mut self) -> f64 {
        let p = self.params;
        let u: f64 = self.rng.random();
        let g = self.gauss_reference();
        let centre = if u < p.p_scheduling {
            let e: f64 = self.rng.random::<f64>().max(1e-300);
            return p.base + p.scheduling_mean * (-e.ln());
        } else if u < p.p_scheduling + p.p_mode_31us {
            31e-6
        } else if u < p.p_scheduling + p.p_mode_31us + p.p_mode_10us {
            10e-6
        } else {
            0.0
        };
        (p.base + centre + g * p.main_width).max(0.2e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_positive() {
        let mut h = HostTimestamping::new(1);
        for _ in 0..50_000 {
            assert!(h.send_latency() > 0.0);
            assert!(h.recv_latency() > 0.0);
        }
    }

    #[test]
    fn dominant_mode_is_small() {
        let mut h = HostTimestamping::new(2);
        let lats: Vec<f64> = (0..50_000).map(|_| h.recv_latency()).collect();
        let below_7us = lats.iter().filter(|&&l| l < 7e-6).count() as f64 / lats.len() as f64;
        assert!(
            below_7us > 0.9,
            "dominant mode should hold >90% of mass, got {below_7us}"
        );
    }

    #[test]
    fn side_modes_present_at_expected_rates() {
        let mut h = HostTimestamping::new(3);
        let n = 200_000;
        let lats: Vec<f64> = (0..n).map(|_| h.recv_latency()).collect();
        let near = |c: f64| {
            lats.iter()
                .filter(|&&l| (l - (c + HostParams::default().base)).abs() < 4e-6)
                .count() as f64
                / n as f64
        };
        let at10 = near(10e-6);
        let at31 = near(31e-6);
        assert!(
            (at10 - 0.030).abs() < 0.01,
            "10µs mode rate {at10} (expected ~0.03)"
        );
        assert!(
            (at31 - 0.012).abs() < 0.006,
            "31µs mode rate {at31} (expected ~0.012)"
        );
    }

    #[test]
    fn scheduling_errors_are_rare_and_large() {
        let mut h = HostTimestamping::new(4);
        let n = 400_000;
        let big = (0..n)
            .map(|_| h.recv_latency())
            .filter(|&l| l > 100e-6)
            .count();
        let rate = big as f64 / n as f64;
        assert!(
            rate > 1e-5 && rate < 1e-3,
            "scheduling error rate {rate} (expected ~1e-4)"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = HostTimestamping::new(5);
        let mut b = HostTimestamping::new(5);
        for _ in 0..100 {
            assert_eq!(a.recv_latency(), b.recv_latency());
            assert_eq!(a.send_latency(), b.send_latency());
        }
    }

    #[test]
    fn delta_constant_matches_paper() {
        assert_eq!(HostTimestamping::DELTA, 15e-6);
    }
}
