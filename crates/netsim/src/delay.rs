//! One-way path delay models.
//!
//! §3.2 decomposes each delay into a deterministic minimum plus a positive
//! variable component (equations (12)–(15)): `d→ = d→_min + q→`, etc. The
//! minimum "could correspond to propagation delay, and the random component
//! to queueing in network switching elements, which ... can take 10's of
//! milliseconds during periods of congestion."
//!
//! [`PathDelay`] implements exactly that: a (shiftable) minimum plus
//! queueing noise drawn from a light-tailed background component and a
//! bursty congestion component — a two-state modulated process so that
//! congestion arrives in *episodes*, as it does on real paths, rather than
//! i.i.d. spikes.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use rand_distr::{Distribution, Exp, Pareto};
use serde::{Deserialize, Serialize};

/// Parameters of the bursty congestion component.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct CongestionParams {
    /// Mean time between congestion episodes (seconds of off time).
    pub mean_off: f64,
    /// Mean episode duration (seconds).
    pub mean_on: f64,
    /// Pareto scale of episode queueing delay (seconds).
    pub scale: f64,
    /// Pareto tail index (1 < shape; smaller = heavier tail).
    pub shape: f64,
}

impl CongestionParams {
    /// A lightly loaded LAN-like path.
    pub fn light() -> Self {
        Self {
            mean_off: 1800.0,
            mean_on: 60.0,
            scale: 0.2e-3,
            shape: 1.8,
        }
    }

    /// A busier multi-hop path.
    pub fn moderate() -> Self {
        Self {
            mean_off: 900.0,
            mean_on: 120.0,
            scale: 0.8e-3,
            shape: 1.5,
        }
    }

    /// A long, congested WAN path.
    pub fn heavy() -> Self {
        Self {
            mean_off: 600.0,
            mean_on: 240.0,
            scale: 2.0e-3,
            shape: 1.4,
        }
    }
}

/// A one-way path: deterministic minimum + positive queueing noise.
///
/// Two sampling front-ends share the same stochastic state:
///
/// * [`PathDelay::sample`] — exact-time evolution: the two-state congestion
///   chain is advanced by the true elapsed time, which costs one `exp()`
///   per sample. This is the original formulation and the reference for
///   the differential tests.
/// * [`PathDelay::sample_cadenced`] — the generation fast path: the chain
///   advances by one *fixed* cadence tick whose transition probabilities
///   were precomputed once by [`PathDelay::set_cadence`]. NTP polling is
///   periodic, so the elapsed time between samples differs from the poll
///   period only by µs-scale latency jitter — utterly negligible against
///   episode time constants of minutes — and the per-sample `exp()` opens
///   disappears. Statistically equivalent, not bit-identical (the flip
///   thresholds differ in the ~1e-7 relative digit).
#[derive(Debug)]
pub struct PathDelay {
    base_min: f64,
    shift: f64,
    /// Deficit of the last `set_shift` (0 when it applied unclamped).
    shift_clamped_by: f64,
    congestion: CongestionParams,
    bg: Exp<f64>,
    burst: Pareto<f64>,
    in_burst: bool,
    last_t: f64,
    /// The fixed cadence tick length (seconds); NaN until `set_cadence`.
    cad_dt: f64,
    /// Precomputed `1 − exp(−dt/mean_on)` for the fixed cadence.
    cad_p_on: f64,
    /// Precomputed `1 − exp(−dt/mean_off)` for the fixed cadence.
    cad_p_off: f64,
    rng: ChaCha12Rng,
}

impl PathDelay {
    /// Creates a path with minimum delay `min_delay` seconds, background
    /// (always-present) queueing with exponential mean `bg_mean`, and the
    /// given congestion episode parameters.
    pub fn new(min_delay: f64, bg_mean: f64, congestion: CongestionParams, seed: u64) -> Self {
        assert!(min_delay >= 0.0 && bg_mean > 0.0, "invalid path params");
        assert!(
            congestion.shape > 1.0 && congestion.scale > 0.0,
            "invalid congestion params"
        );
        Self {
            base_min: min_delay,
            shift: 0.0,
            shift_clamped_by: 0.0,
            congestion,
            bg: Exp::new(1.0 / bg_mean).expect("valid rate"),
            burst: Pareto::new(congestion.scale, congestion.shape).expect("valid pareto"),
            in_burst: false,
            last_t: 0.0,
            cad_dt: f64::NAN,
            cad_p_on: f64::NAN,
            cad_p_off: f64::NAN,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x9A7D_E1A9),
        }
    }

    /// Precomputes the two-state Markov transition probabilities for a
    /// fixed inter-sample cadence of `dt` seconds, enabling
    /// [`PathDelay::sample_cadenced`].
    pub fn set_cadence(&mut self, dt: f64) {
        assert!(dt > 0.0, "cadence must be positive");
        self.cad_dt = dt;
        self.cad_p_on = 1.0 - (-dt / self.congestion.mean_on).exp();
        self.cad_p_off = 1.0 - (-dt / self.congestion.mean_off).exp();
    }

    /// Samples the one-way delay for the next packet of a fixed-cadence
    /// schedule, advancing the congestion chain by one precomputed tick
    /// ([`PathDelay::set_cadence`] must have been called). Same RNG draw
    /// order as [`PathDelay::sample`]: one uniform for the chain, one
    /// exponential for background queueing, plus a Pareto excess inside
    /// congestion episodes.
    pub fn sample_cadenced(&mut self) -> f64 {
        // Hard assert: with NaN probabilities the `<` below would be
        // always-false and the chain would silently never enter
        // congestion — a model-breaking failure worth one predictable
        // branch per sample.
        assert!(
            !self.cad_p_on.is_nan(),
            "set_cadence must be called before sample_cadenced"
        );
        let p_flip = if self.in_burst { self.cad_p_on } else { self.cad_p_off };
        if self.rng.random::<f64>() < p_flip {
            self.in_burst = !self.in_burst;
        }
        // Keep the exact-time front-end's clock coherent, so interleaving
        // `sample(t)` after cadenced sampling sees the true elapsed time
        // rather than a stale origin.
        self.last_t += self.cad_dt;
        let mut q = self.bg.sample(&mut self.rng);
        if self.in_burst {
            q += self.burst.sample(&mut self.rng);
        }
        self.current_min() + q
    }

    /// Current effective minimum delay (base + any active level shift).
    pub fn current_min(&self) -> f64 {
        self.base_min + self.shift
    }

    /// Applies a level shift of `delta` seconds (may be negative; the
    /// effective minimum is floored at zero). A floored shift is recorded
    /// as *clamped* — [`PathDelay::shift_clamped_by`] reports the deficit
    /// so schedule validators ([`crate::Scenario::clamp_warnings`]) can
    /// flag half-applied faults instead of shipping them silently.
    pub fn set_shift(&mut self, delta: f64) {
        self.shift = delta.max(-self.base_min);
        self.shift_clamped_by = self.shift - delta;
    }

    /// How much of the last requested shift the zero floor swallowed
    /// (≥ 0; `0` when the shift applied in full). An asymmetric fault
    /// whose negative leg is clamped leaks exactly this amount into the
    /// RTT — the regression tests pin that value.
    pub fn shift_clamped_by(&self) -> f64 {
        self.shift_clamped_by
    }

    /// Evolves the two-state congestion chain from `last_t` to `t`.
    fn update_burst_state(&mut self, t: f64) {
        let dt = (t - self.last_t).max(0.0);
        self.last_t = t;
        // Transition probabilities over dt for a two-state Markov chain.
        let p_flip = if self.in_burst {
            1.0 - (-dt / self.congestion.mean_on).exp()
        } else {
            1.0 - (-dt / self.congestion.mean_off).exp()
        };
        if self.rng.random::<f64>() < p_flip {
            self.in_burst = !self.in_burst;
        }
    }

    /// Samples the one-way delay for a packet entering the path at true
    /// time `t` (must be non-decreasing across calls).
    pub fn sample(&mut self, t: f64) -> f64 {
        self.update_burst_state(t);
        let mut q = self.bg.sample(&mut self.rng);
        if self.in_burst {
            // Pareto(scale, shape) samples are ≥ scale: a heavy-tailed
            // excess on top of an elevated (`scale`) base for the episode.
            q += self.burst.sample(&mut self.rng);
        }
        self.current_min() + q
    }

    /// Whether the path is currently inside a congestion episode.
    pub fn in_congestion(&self) -> bool {
        self.in_burst
    }
}

/// The pre-optimization sampler, preserving the original floating-point
/// arithmetic exactly: the burst excess was accumulated as
/// `(q + (burst − scale)) + scale`, which differs from the simplified
/// `q + burst` in the last ulp on ~9% of congested draws — enough to
/// break the reference pipeline's bit-identity claim if shared.
#[cfg(feature = "reference")]
impl PathDelay {
    /// Original [`PathDelay::sample`], bit-identical to the pre-PR
    /// implementation for the same seed and call sequence.
    pub fn sample_reference(&mut self, t: f64) -> f64 {
        self.update_burst_state(t);
        let mut q = self.bg.sample(&mut self.rng);
        if self.in_burst {
            q += self.burst.sample(&mut self.rng) - self.congestion.scale;
            q += self.congestion.scale;
        }
        self.current_min() + q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(seed: u64) -> PathDelay {
        PathDelay::new(1e-3, 50e-6, CongestionParams::moderate(), seed)
    }

    #[test]
    fn delay_never_below_minimum() {
        let mut p = path(1);
        for i in 0..50_000 {
            let d = p.sample(i as f64 * 16.0);
            assert!(d >= 1e-3, "delay {d} below minimum");
        }
    }

    #[test]
    fn minimum_is_approached() {
        let mut p = path(2);
        let mut min_seen = f64::INFINITY;
        for i in 0..20_000 {
            min_seen = min_seen.min(p.sample(i as f64 * 16.0));
        }
        // with Exp(50µs) background the minimum should be approached closely
        assert!(
            min_seen - 1e-3 < 10e-6,
            "minimum not approached: excess {}",
            min_seen - 1e-3
        );
    }

    #[test]
    fn congestion_episodes_occur_and_are_heavy() {
        let mut p = path(3);
        let mut burst_samples = Vec::new();
        let mut calm_samples = Vec::new();
        for i in 0..200_000 {
            let d = p.sample(i as f64 * 16.0);
            if p.in_congestion() {
                burst_samples.push(d);
            } else {
                calm_samples.push(d);
            }
        }
        assert!(
            !burst_samples.is_empty() && !calm_samples.is_empty(),
            "both regimes must occur"
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&burst_samples) > 3.0 * mean(&calm_samples),
            "congestion should inflate delays: {} vs {}",
            mean(&burst_samples),
            mean(&calm_samples)
        );
        // episodes are sustained: fraction in burst should be near
        // mean_on/(mean_on+mean_off) ≈ 0.12, not ~0 or ~1
        let frac = burst_samples.len() as f64 / 200_000.0;
        assert!(frac > 0.02 && frac < 0.4, "burst fraction {frac}");
    }

    #[test]
    fn level_shift_moves_minimum() {
        let mut p = path(4);
        p.set_shift(0.9e-3);
        assert!((p.current_min() - 1.9e-3).abs() < 1e-12);
        for i in 0..1000 {
            assert!(p.sample(i as f64) >= 1.9e-3);
        }
        p.set_shift(-0.36e-3);
        assert!((p.current_min() - 0.64e-3).abs() < 1e-12);
    }

    #[test]
    fn shift_cannot_make_negative_minimum() {
        let mut p = path(5);
        p.set_shift(-10.0);
        assert_eq!(p.current_min(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = path(6);
        let mut b = path(6);
        for i in 0..100 {
            assert_eq!(a.sample(i as f64 * 16.0), b.sample(i as f64 * 16.0));
        }
    }

    #[test]
    fn cadenced_sampling_matches_exact_time_statistics() {
        // The precomputed-cadence fast path must reproduce the exact-time
        // formulation's stationary behaviour: same burst occupancy, same
        // delay mean, same minimum, to within sampling error over 200k
        // draws at the matching fixed cadence.
        let n = 200_000;
        let stats = |samples: Vec<(f64, bool)>| {
            let mean = samples.iter().map(|(d, _)| d).sum::<f64>() / n as f64;
            let burst = samples.iter().filter(|(_, b)| *b).count() as f64 / n as f64;
            let min = samples.iter().map(|(d, _)| *d).fold(f64::INFINITY, f64::min);
            (mean, burst, min)
        };
        let mut exact = path(8);
        let exact_samples: Vec<_> = (0..n)
            .map(|i| {
                let d = exact.sample(i as f64 * 16.0);
                (d, exact.in_congestion())
            })
            .collect();
        let mut cad = path(9);
        cad.set_cadence(16.0);
        let cad_samples: Vec<_> = (0..n)
            .map(|_| {
                let d = cad.sample_cadenced();
                (d, cad.in_congestion())
            })
            .collect();
        let (mean_e, burst_e, min_e) = stats(exact_samples);
        let (mean_c, burst_c, min_c) = stats(cad_samples);
        assert!(
            (mean_c / mean_e - 1.0).abs() < 0.25,
            "mean delay diverged: cadenced {mean_c} vs exact {mean_e}"
        );
        assert!(
            (burst_c / burst_e - 1.0).abs() < 0.35,
            "burst occupancy diverged: cadenced {burst_c} vs exact {burst_e}"
        );
        assert!((min_c - min_e).abs() < 5e-6, "minima diverged: {min_c} vs {min_e}");
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn zero_cadence_rejected() {
        path(10).set_cadence(0.0);
    }

    #[test]
    fn cadenced_sampling_advances_the_exact_time_clock() {
        // Interleaving the two front-ends must not hand the exact-time
        // chain a stale origin: after N cadenced ticks the internal clock
        // sits at N·dt, so a following `sample(t)` evolves by the true
        // remaining elapsed time only.
        let mut mixed = path(11);
        mixed.set_cadence(16.0);
        for _ in 0..10 {
            mixed.sample_cadenced();
        }
        // Must behave like a path whose chain was advanced to t = 160 s;
        // sampling at 176 s is one further 16 s step either way.
        let d = mixed.sample(176.0);
        assert!(d >= mixed.current_min());
    }

    #[test]
    fn presets_are_ordered_by_severity() {
        let l = CongestionParams::light();
        let m = CongestionParams::moderate();
        let h = CongestionParams::heavy();
        assert!(l.scale < m.scale && m.scale < h.scale);
        assert!(l.mean_on < m.mean_on && m.mean_on < h.mean_on);
        assert!(l.shape > m.shape && m.shape > h.shape);
    }
}
