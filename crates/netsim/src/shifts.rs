//! Route-change level shifts.
//!
//! §6.2: "By level shift we mean principally a change in any of the minimum
//! delays d→, d↑ or d← ... which results in a change in minimum level in
//! some or all of the observed" series. Figure 11(c) injects artificial
//! +0.9 ms shifts in the host→server direction only (one temporary, one
//! permanent — changing the asymmetry Δ); Figure 11(d) shows a natural
//! −0.36 ms shift occurring equally in both directions (Δ unchanged).

use serde::{Deserialize, Serialize};

/// One level-shift event on the path minima.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct LevelShift {
    /// Onset (true time, seconds).
    pub at: f64,
    /// End of the shift, or `None` for a permanent change.
    pub until: Option<f64>,
    /// Change to the forward (host→server) minimum (seconds; may be negative).
    pub fwd: f64,
    /// Change to the backward (server→host) minimum (seconds).
    pub back: f64,
}

impl LevelShift {
    /// A permanent shift applied equally in both directions (asymmetry Δ
    /// preserved) — the Figure 11(d) pattern.
    pub fn symmetric(at: f64, delta: f64) -> Self {
        Self {
            at,
            until: None,
            fwd: delta / 2.0,
            back: delta / 2.0,
        }
    }

    /// A shift in the forward direction only (changes Δ by `delta`) — the
    /// Figure 11(c) pattern.
    pub fn forward_only(at: f64, until: Option<f64>, delta: f64) -> Self {
        Self {
            at,
            until,
            fwd: delta,
            back: 0.0,
        }
    }

    /// An **asymmetry step**: `+delta/2` forward, `−delta/2` backward, so
    /// the RTT (and every RTT-derived quality signal) is unchanged while
    /// the asymmetry Δ moves by `delta` — a route change that silently
    /// biases the server's apparent offset by `delta/2`. §4.3 proves this
    /// is unobservable from the exchanges of the affected server alone
    /// ("the error due to path asymmetry cannot be measured"); only
    /// disagreement with *other* servers can expose it, which is exactly
    /// what the quorum combiner's exclusion rule tests against.
    pub fn asymmetric(at: f64, until: Option<f64>, delta: f64) -> Self {
        Self {
            at,
            until,
            fwd: delta / 2.0,
            back: -delta / 2.0,
        }
    }

    fn active_at(&self, t: f64) -> bool {
        t >= self.at && self.until.is_none_or(|u| t < u)
    }
}

/// A set of level shifts; queries return the total active deltas at a time.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct ShiftSchedule {
    shifts: Vec<LevelShift>,
}

impl ShiftSchedule {
    /// Empty schedule (no route changes).
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule from a list of events.
    pub fn new(shifts: Vec<LevelShift>) -> Self {
        Self { shifts }
    }

    /// Adds an event.
    pub fn push(&mut self, s: LevelShift) {
        self.shifts.push(s);
    }

    /// Total (forward, backward) minimum-delay deltas active at true time `t`.
    pub fn deltas_at(&self, t: f64) -> (f64, f64) {
        let mut fwd = 0.0;
        let mut back = 0.0;
        for s in &self.shifts {
            if s.active_at(t) {
                fwd += s.fwd;
                back += s.back;
            }
        }
        (fwd, back)
    }

    /// Change in path asymmetry Δ = d→ − d← at time `t` relative to the
    /// unshifted configuration.
    pub fn asymmetry_change_at(&self, t: f64) -> f64 {
        let (f, b) = self.deltas_at(t);
        f - b
    }

    /// All registered events.
    pub fn events(&self) -> &[LevelShift] {
        &self.shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_identity() {
        let s = ShiftSchedule::none();
        assert_eq!(s.deltas_at(1e6), (0.0, 0.0));
        assert_eq!(s.asymmetry_change_at(0.0), 0.0);
    }

    #[test]
    fn symmetric_shift_preserves_asymmetry() {
        let s = ShiftSchedule::new(vec![LevelShift::symmetric(100.0, -0.36e-3)]);
        assert_eq!(s.deltas_at(50.0), (0.0, 0.0));
        let (f, b) = s.deltas_at(150.0);
        assert!((f + 0.18e-3).abs() < 1e-12 && (b + 0.18e-3).abs() < 1e-12);
        assert_eq!(s.asymmetry_change_at(150.0), 0.0);
    }

    #[test]
    fn forward_only_shift_changes_asymmetry() {
        let s = ShiftSchedule::new(vec![LevelShift::forward_only(100.0, None, 0.9e-3)]);
        assert!((s.asymmetry_change_at(200.0) - 0.9e-3).abs() < 1e-12);
        assert_eq!(s.asymmetry_change_at(99.0), 0.0);
    }

    #[test]
    fn asymmetric_shift_preserves_rtt_and_moves_delta() {
        let s = ShiftSchedule::new(vec![LevelShift::asymmetric(100.0, None, 2e-3)]);
        let (f, b) = s.deltas_at(150.0);
        assert!((f - 1e-3).abs() < 1e-12 && (b + 1e-3).abs() < 1e-12);
        // RTT delta is f + b = 0: invisible to RTT-based detectors
        assert!((f + b).abs() < 1e-15);
        assert!((s.asymmetry_change_at(150.0) - 2e-3).abs() < 1e-12);
        assert_eq!(s.deltas_at(50.0), (0.0, 0.0));
    }

    #[test]
    fn temporary_shift_expires() {
        let s = ShiftSchedule::new(vec![LevelShift::forward_only(
            100.0,
            Some(200.0),
            0.9e-3,
        )]);
        assert_eq!(s.deltas_at(99.9).0, 0.0);
        assert!((s.deltas_at(150.0).0 - 0.9e-3).abs() < 1e-12);
        assert_eq!(s.deltas_at(200.0).0, 0.0, "until is exclusive");
    }

    #[test]
    fn overlapping_shifts_accumulate() {
        let mut s = ShiftSchedule::none();
        s.push(LevelShift::forward_only(0.0, None, 1e-3));
        s.push(LevelShift::forward_only(10.0, Some(20.0), 2e-3));
        assert!((s.deltas_at(15.0).0 - 3e-3).abs() < 1e-12);
        assert!((s.deltas_at(25.0).0 - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn onset_is_inclusive() {
        let s = ShiftSchedule::new(vec![LevelShift::forward_only(100.0, None, 1e-3)]);
        assert!((s.deltas_at(100.0).0 - 1e-3).abs() < 1e-12);
    }
}
