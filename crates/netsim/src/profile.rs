//! Heterogeneous access-path profiles.
//!
//! The paper's testbed measures three well-provisioned paths (Table 2);
//! a production time service faces *populations* of clients behind very
//! different last miles. [`PathProfile`] names five canonical access
//! technologies as presets over the same §3.2 delay decomposition the
//! Table-2 servers use (minimum + background queueing + bursty
//! congestion episodes), plus per-profile loss rates and — for the
//! mobile profile — generated handover level-shifts.
//!
//! Profiles compose with the existing anomaly machinery: applying a
//! profile to a [`Scenario`] overrides the *path* (minima, queueing,
//! congestion, loss) and appends generated shifts, while the scenario's
//! own outage/shift/fault schedules (the fault-injection axis) are kept
//! untouched.
//!
//! # Determinism
//!
//! Everything derives from seeds via the same `splitmix64` contract as
//! [`crate::multi`]: profile assignment for client `i` of a fleet is
//! `splitmix64(entry_seed ^ PROFILE_SALT)` reduced onto the mix weights,
//! and mobile handover schedules are generated from
//! `splitmix64(seed ^ HANDOVER_SALT)` — so the same `(base_seed, i)`
//! always yields the same profile and the same handover times, no matter
//! which thread replays the client.

use crate::delay::CongestionParams;
use crate::multi::splitmix64;
use crate::scenario::Scenario;
use crate::shifts::LevelShift;
use serde::{Deserialize, Serialize};

/// Salt for per-client profile assignment (see [`ProfileMix::assign`]).
const PROFILE_SALT: u64 = 0x9E2E_5F0C_AB4D_71D3;
/// Salt for the mobile handover schedule generator.
const HANDOVER_SALT: u64 = 0x51C6_1235_7E0F_88AD;

/// The full path parameterisation a [`Scenario`] needs beyond its server:
/// one-way minima and the two queueing components per direction. This is
/// what [`crate::ServerKind`] encodes implicitly for the Table-2 servers,
/// made explicit so profiles (and tests) can override it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathParams {
    /// Forward (host→server) minimum one-way delay (seconds).
    pub fwd_min: f64,
    /// Backward (server→host) minimum one-way delay (seconds).
    pub back_min: f64,
    /// Forward background queueing mean (seconds).
    pub fwd_queue_mean: f64,
    /// Backward background queueing mean (seconds).
    pub back_queue_mean: f64,
    /// Forward congestion-episode parameters.
    pub fwd_congestion: CongestionParams,
    /// Backward congestion-episode parameters.
    pub back_congestion: CongestionParams,
}

impl PathParams {
    /// Nominal minimum RTT of this path against a server with the default
    /// minimum residence.
    pub fn nominal_rtt(&self) -> f64 {
        self.fwd_min + self.back_min + crate::server::ServerParams::default().min_residence
    }
}

/// Named access-path presets, ordered roughly by path quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathProfile {
    /// Server in the same facility: sub-ms RTT, tiny queues, rare light
    /// congestion, negligible loss.
    Datacenter,
    /// Wired consumer broadband: ~20 ms RTT, asymmetric (slow upstream),
    /// moderate queueing, buffer-bloat congestion episodes.
    Dsl,
    /// Last-hop 802.11: ~8 ms RTT, MAC-contention queueing that is large
    /// relative to the minimum, frequent short congestion bursts, and the
    /// highest background loss of the wired-ish profiles.
    Wifi,
    /// Cellular with mobility: ~50 ms RTT, deep buffers, heavy episodes,
    /// and **handover level-shifts** — crossing cells re-routes the
    /// bearer, moving both one-way minima (often asymmetrically) in the
    /// way §6.2 describes for route changes. Applied via generated
    /// [`LevelShift`]s (see [`PathProfile::handover_shifts`]).
    Mobile,
    /// Geostationary satellite: ~560 ms propagation floor, long but
    /// shallow congestion episodes, weather-driven loss.
    Satellite,
}

/// All five profiles in display order.
pub const ALL_PROFILES: [PathProfile; 5] = [
    PathProfile::Datacenter,
    PathProfile::Dsl,
    PathProfile::Wifi,
    PathProfile::Mobile,
    PathProfile::Satellite,
];

impl PathProfile {
    /// The path parameterisation of this profile.
    pub fn params(self) -> PathParams {
        match self {
            PathProfile::Datacenter => PathParams {
                fwd_min: 120e-6,
                back_min: 110e-6,
                fwd_queue_mean: 15e-6,
                back_queue_mean: 10e-6,
                fwd_congestion: CongestionParams {
                    mean_off: 3600.0,
                    mean_on: 30.0,
                    scale: 0.1e-3,
                    shape: 2.0,
                },
                back_congestion: CongestionParams {
                    mean_off: 3600.0,
                    mean_on: 30.0,
                    scale: 0.06e-3,
                    shape: 2.0,
                },
            },
            PathProfile::Dsl => PathParams {
                // upstream (host→server) is the slow direction
                fwd_min: 12e-3,
                back_min: 7e-3,
                fwd_queue_mean: 1.2e-3,
                back_queue_mean: 0.5e-3,
                fwd_congestion: CongestionParams {
                    mean_off: 1200.0,
                    mean_on: 180.0,
                    scale: 4e-3, // buffer bloat: episodes add ms-scale queues
                    shape: 1.6,
                },
                back_congestion: CongestionParams {
                    mean_off: 1800.0,
                    mean_on: 120.0,
                    scale: 1.5e-3,
                    shape: 1.7,
                },
            },
            PathProfile::Wifi => PathParams {
                fwd_min: 4e-3,
                back_min: 3.5e-3,
                // MAC contention: background queueing comparable to the minimum
                fwd_queue_mean: 2.0e-3,
                back_queue_mean: 1.5e-3,
                fwd_congestion: CongestionParams {
                    mean_off: 600.0,
                    mean_on: 45.0,
                    scale: 3e-3,
                    shape: 1.5,
                },
                back_congestion: CongestionParams {
                    mean_off: 600.0,
                    mean_on: 45.0,
                    scale: 2e-3,
                    shape: 1.5,
                },
            },
            PathProfile::Mobile => PathParams {
                fwd_min: 28e-3,
                back_min: 22e-3,
                fwd_queue_mean: 5e-3,
                back_queue_mean: 3e-3,
                fwd_congestion: CongestionParams {
                    mean_off: 700.0,
                    mean_on: 200.0,
                    scale: 8e-3, // deep RLC buffers
                    shape: 1.4,
                },
                back_congestion: CongestionParams {
                    mean_off: 900.0,
                    mean_on: 150.0,
                    scale: 4e-3,
                    shape: 1.5,
                },
            },
            PathProfile::Satellite => PathParams {
                fwd_min: 275e-3,
                back_min: 272e-3,
                fwd_queue_mean: 8e-3,
                back_queue_mean: 6e-3,
                fwd_congestion: CongestionParams {
                    mean_off: 1500.0,
                    mean_on: 400.0,
                    scale: 6e-3,
                    shape: 1.6,
                },
                back_congestion: CongestionParams {
                    mean_off: 1500.0,
                    mean_on: 400.0,
                    scale: 5e-3,
                    shape: 1.6,
                },
            },
        }
    }

    /// Background packet-loss probability of this profile.
    pub fn loss_prob(self) -> f64 {
        match self {
            PathProfile::Datacenter => 1e-4,
            PathProfile::Dsl => 1.5e-3,
            PathProfile::Wifi => 8e-3,
            PathProfile::Mobile => 1.2e-2,
            PathProfile::Satellite => 5e-3,
        }
    }

    /// Mean time between handovers for [`PathProfile::Mobile`] (`None`
    /// for the stationary profiles).
    pub fn handover_mean_interval(self) -> Option<f64> {
        match self {
            PathProfile::Mobile => Some(900.0),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PathProfile::Datacenter => "datacenter",
            PathProfile::Dsl => "dsl",
            PathProfile::Wifi => "wifi",
            PathProfile::Mobile => "mobile",
            PathProfile::Satellite => "satellite",
        }
    }

    /// Generates this profile's handover level-shift schedule over
    /// `[0, duration)` — empty for every profile but
    /// [`PathProfile::Mobile`]. Handovers arrive on a deterministic
    /// quasi-Poisson schedule (exponential gaps via inverse CDF on
    /// `splitmix64` words); each one *replaces* the previous cell's route
    /// (shifts are emitted with `until` = next handover), moving the two
    /// minima by a few ms — asymmetrically, so Δ moves too, the §6.2
    /// route-change pattern. Deltas are clamped to ±60 % of the minima so
    /// a generated schedule can never trip the half-applied-shift clamp
    /// (see [`Scenario::clamp_warnings`]).
    pub fn handover_shifts(self, seed: u64, duration: f64) -> Vec<LevelShift> {
        let Some(mean) = self.handover_mean_interval() else {
            return Vec::new();
        };
        let params = self.params();
        let mut out = Vec::new();
        let mut z = seed ^ HANDOVER_SALT;
        let mut word = move || {
            z = splitmix64(z);
            z
        };
        let unit = |w: u64| (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut t = 0.0;
        // event times first (their stream must not depend on the deltas)
        let mut times = Vec::new();
        loop {
            // Exp(mean) gap, floored: two consecutive handovers within
            // 30 s would model flapping, not mobility.
            let gap = (-mean * (1.0 - unit(word())).ln()).max(30.0);
            t += gap;
            if t >= duration {
                break;
            }
            times.push(t);
        }
        for (i, &at) in times.iter().enumerate() {
            let until = times.get(i + 1).copied();
            // New cell: both minima move within ±60 % of the base minima,
            // independently per direction (asymmetry changes).
            let fwd = (unit(word()) - 0.5) * 1.2 * params.fwd_min;
            let back = (unit(word()) - 0.5) * 1.2 * params.back_min;
            out.push(LevelShift { at, until, fwd, back });
        }
        out
    }

    /// Applies this profile to a scenario template: overrides the path
    /// parameterisation and loss rate, and appends the generated handover
    /// schedule (mobile only, derived from `seed`). The template's own
    /// outages, shifts and server faults are preserved — profiles compose
    /// with the fault-injection schedules rather than replacing them.
    pub fn apply(self, template: &Scenario, seed: u64) -> Scenario {
        let mut sc = template.clone();
        sc.path = Some(self.params());
        sc.loss_prob = self.loss_prob();
        sc.seed = seed;
        for shift in self.handover_shifts(seed, sc.duration) {
            sc.shifts.push(shift);
        }
        sc
    }
}

/// A weighted mix of profiles with deterministic per-client assignment —
/// the fleet-level heterogeneity knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileMix {
    /// Relative weights in [`ALL_PROFILES`] order; at least one non-zero.
    pub weights: [u32; 5],
}

impl ProfileMix {
    /// Every profile equally likely.
    pub fn uniform() -> Self {
        Self { weights: [1; 5] }
    }

    /// All clients on one profile.
    pub fn single(profile: PathProfile) -> Self {
        let mut weights = [0; 5];
        let idx = ALL_PROFILES.iter().position(|&p| p == profile).unwrap();
        weights[idx] = 1;
        Self { weights }
    }

    /// A plausible consumer-heavy population: mostly DSL and Wi-Fi, some
    /// mobile, a little datacenter and satellite.
    pub fn consumer() -> Self {
        Self {
            weights: [5, 35, 30, 25, 5],
        }
    }

    /// Deterministically assigns a profile to client `i` of the fleet
    /// seeded by `base_seed`. The entry seed is hashed (salted splitmix64,
    /// same contract as [`crate::multi::server_sub_seed`]) and reduced
    /// onto the cumulative weights, so assignment is a pure function of
    /// `(base_seed, i)` — independent of replay order and thread count.
    pub fn assign(&self, base_seed: u64, i: usize) -> PathProfile {
        let total: u64 = self.weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "ProfileMix needs at least one non-zero weight");
        let h = splitmix64(
            base_seed ^ PROFILE_SALT ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut pick = h % total;
        for (k, &w) in self.weights.iter().enumerate() {
            if pick < w as u64 {
                return ALL_PROFILES[k];
            }
            pick -= w as u64;
        }
        unreachable!("pick < total by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_positive_params() {
        for p in ALL_PROFILES {
            let params = p.params();
            assert!(params.fwd_min > 0.0 && params.back_min > 0.0, "{}", p.name());
            assert!(
                params.fwd_queue_mean > 0.0 && params.back_queue_mean > 0.0,
                "{}",
                p.name()
            );
            assert!(params.fwd_congestion.shape > 1.0 && params.back_congestion.shape > 1.0);
            assert!(p.loss_prob() > 0.0 && p.loss_prob() < 0.05);
        }
    }

    #[test]
    fn rtts_are_ordered_by_technology() {
        let rtt = |p: PathProfile| p.params().nominal_rtt();
        assert!(rtt(PathProfile::Datacenter) < rtt(PathProfile::Wifi));
        assert!(rtt(PathProfile::Wifi) < rtt(PathProfile::Dsl));
        assert!(rtt(PathProfile::Dsl) < rtt(PathProfile::Mobile));
        assert!(rtt(PathProfile::Mobile) < rtt(PathProfile::Satellite));
        // satellite is dominated by the geostationary propagation floor
        assert!(rtt(PathProfile::Satellite) > 0.5);
    }

    #[test]
    fn only_mobile_generates_handovers() {
        for p in ALL_PROFILES {
            let shifts = p.handover_shifts(7, 86_400.0);
            if p == PathProfile::Mobile {
                assert!(
                    shifts.len() > 50,
                    "a day of mobility should hand over many times: {}",
                    shifts.len()
                );
            } else {
                assert!(shifts.is_empty(), "{} must not hand over", p.name());
            }
        }
    }

    #[test]
    fn handover_schedule_is_deterministic_and_seed_sensitive() {
        let a = PathProfile::Mobile.handover_shifts(1, 86_400.0);
        let b = PathProfile::Mobile.handover_shifts(1, 86_400.0);
        assert_eq!(a, b);
        let c = PathProfile::Mobile.handover_shifts(2, 86_400.0);
        assert_ne!(a, c);
    }

    #[test]
    fn handovers_supersede_rather_than_accumulate() {
        let shifts = PathProfile::Mobile.handover_shifts(3, 86_400.0);
        for w in shifts.windows(2) {
            assert_eq!(
                w[0].until,
                Some(w[1].at),
                "each handover must end when the next begins"
            );
        }
        assert_eq!(shifts.last().unwrap().until, None);
        // deltas stay inside the clamp-safe envelope
        let p = PathProfile::Mobile.params();
        for s in &shifts {
            assert!(s.fwd.abs() <= 0.6 * p.fwd_min + 1e-12);
            assert!(s.back.abs() <= 0.6 * p.back_min + 1e-12);
        }
    }

    #[test]
    fn apply_composes_with_template_schedules() {
        let template = crate::Scenario::baseline(9)
            .with_duration(7200.0)
            .with_outage(100.0, 200.0)
            .with_shift(LevelShift::forward_only(500.0, None, 1e-3));
        let sc = PathProfile::Satellite.apply(&template, 1234);
        assert_eq!(sc.seed, 1234);
        assert_eq!(sc.outages, vec![(100.0, 200.0)], "outages preserved");
        assert_eq!(sc.shifts.events().len(), 1, "template shift preserved");
        assert_eq!(sc.path, Some(PathProfile::Satellite.params()));
        assert_eq!(sc.loss_prob, PathProfile::Satellite.loss_prob());
        let mob = PathProfile::Mobile.apply(&template, 1234);
        assert!(
            mob.shifts.events().len() > 1,
            "mobile appends handovers to the template shift"
        );
    }

    #[test]
    fn assignment_is_deterministic_and_respects_weights() {
        let mix = ProfileMix::consumer();
        let n = 20_000;
        let mut counts = [0usize; 5];
        for i in 0..n {
            let p = mix.assign(42, i);
            assert_eq!(p, mix.assign(42, i), "assignment must be pure");
            let idx = ALL_PROFILES.iter().position(|&q| q == p).unwrap();
            counts[idx] += 1;
        }
        let total: u32 = mix.weights.iter().sum();
        for (k, &c) in counts.iter().enumerate() {
            let expect = n as f64 * mix.weights[k] as f64 / total as f64;
            if mix.weights[k] == 0 {
                assert_eq!(c, 0);
            } else {
                assert!(
                    (c as f64 - expect).abs() < 5.0 * expect.sqrt() + 5.0,
                    "profile {k}: {c} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn single_mix_assigns_only_that_profile() {
        for p in ALL_PROFILES {
            let mix = ProfileMix::single(p);
            for i in 0..100 {
                assert_eq!(mix.assign(7, i), p);
            }
        }
    }
}
