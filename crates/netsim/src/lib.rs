//! Discrete-event simulation of the host ↔ NTP-server measurement setup.
//!
//! This crate reproduces, as a simulator, the entire experimental apparatus
//! of the paper's evaluation (§2.3–§3.2): a host whose TSC counter is driven
//! by a realistic oscillator (`tsc-osc`), Internet paths with deterministic
//! minimum delays plus positive queueing noise (equations (12)–(15)), a
//! stratum-1 NTP server with its own µs-scale timestamping imperfections and
//! injectable gross faults, a DAG reference monitor on the return path
//! (`tsc-refmon`), packet loss, outages, and route-change level shifts.
//!
//! One call to [`sim::ExchangeSimulator::step`] produces everything the
//! paper records for packet *i*: the host's raw TSC timestamps `Ta, Tf`,
//! the server timestamps `Tb, Te`, the reference timestamp `Tg`, and —
//! because this is a simulation — the exact truth behind all of them.
//!
//! The three server presets reproduce Table 2:
//!
//! | Server    | Reference | RTT     | Hops | Δ (asymmetry) |
//! |-----------|-----------|---------|------|----------------|
//! | ServerLoc | GPS       | 0.38 ms | 2    | 50 µs          |
//! | ServerInt | GPS       | 0.89 ms | 5    | 50 µs          |
//! | ServerExt | Atomic    | 14.2 ms | ~10  | 500 µs         |

//!
//! The multi-server layer ([`multi`]) drives K server paths from one host
//! timeline — the measurement side of quorum synchronization (see
//! `crates/quorum`).

pub mod delay;
pub mod host;
pub mod multi;
pub mod profile;
pub mod scenario;
pub mod server;
pub mod shifts;
pub mod sim;

pub use delay::{CongestionParams, PathDelay};
pub use host::HostTimestamping;
pub use multi::{MultiServerScenario, MultiServerStream, RoundSample, ServerPath, MAX_SERVERS};
pub use profile::{PathParams, PathProfile, ProfileMix, ALL_PROFILES};
pub use scenario::{Scenario, ServerKind};
pub use server::{ServerFault, ServerModel};
pub use shifts::{LevelShift, ShiftSchedule};
pub use sim::{
    ExchangeSimulator, ExchangeStream, OnDemandSim, RawExchanges, SimExchange, Truth,
};
