//! The exchange simulator: one NTP poll at a time, end to end.
//!
//! Implements the Figure-1 timeline. For poll `i` at true time `t`:
//!
//! 1. the host reads its TSC (`Ta`), then the frame departs at
//!    `ta = t + send_latency`;
//! 2. the frame crosses the forward path, arriving at `tb = ta + d→`; the
//!    server stamps `Tb` with its own (imperfect, possibly faulted) clock;
//! 3. the server holds the packet for its residence time, departing at
//!    `te = tb + d↑` and stamping `Te`;
//! 4. the frame crosses the backward path, arriving at the DAG tap and then
//!    the host NIC at `tf = te + d←`; the DAG records `Tg` (first-bit
//!    corrected); the host's interrupt fires after `recv_latency` and the
//!    raw `Tf` TSC read happens;
//! 5. loss and outage windows may make the exchange yield no data.
//!
//! Every record carries the complete ground truth, so experiments can
//! compute both the paper's DAG-mediated "actual performance" metrics and
//! exact errors.

use crate::delay::PathDelay;
use crate::host::HostTimestamping;
use crate::scenario::Scenario;
use crate::server::ServerModel;
use crate::shifts::ShiftSchedule;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use tsc_osc::TscCounter;
use tsc_refmon::DagCard;
use tscclock::RawExchange;

/// Ground truth behind one exchange (never visible to the algorithms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truth {
    /// True departure time from the host.
    pub ta: f64,
    /// True arrival time at the server.
    pub tb: f64,
    /// True departure time from the server.
    pub te: f64,
    /// True full-arrival time at the host NIC.
    pub tf: f64,
    /// Forward one-way delay `d→`.
    pub d_fwd: f64,
    /// Server residence `d↑`.
    pub d_srv: f64,
    /// Backward one-way delay `d←`.
    pub d_back: f64,
    /// Host oscillator time error `x(t)` at the moment of the `Tf` read.
    pub host_err_at_tf: f64,
}

impl Truth {
    /// True round-trip time `r_i = d→ + d↑ + d←` (equation (11)).
    pub fn rtt(&self) -> f64 {
        self.d_fwd + self.d_srv + self.d_back
    }
}

/// One simulated NTP exchange: the observables plus the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimExchange {
    /// Packet index.
    pub i: usize,
    /// Scheduled poll time (true seconds since scenario start).
    pub poll_time: f64,
    /// `true` when the packet (or its response) never arrived — lost,
    /// or inside an outage window. Observables are NaN/0 in that case.
    pub lost: bool,
    /// Host raw send timestamp `Ta` (TSC counts).
    pub ta_tsc: u64,
    /// Host raw receive timestamp `Tf` (TSC counts).
    pub tf_tsc: u64,
    /// Server receive timestamp `Tb` (server clock seconds).
    pub tb: f64,
    /// Server transmit timestamp `Te` (server clock seconds).
    pub te: f64,
    /// Reference (DAG, first-bit corrected) timestamp of host arrival.
    pub tg: f64,
    /// Ground truth.
    pub truth: Truth,
}

/// The owned stepping state shared by the two simulator front-ends: every
/// stochastic element and the poll schedule, but *not* the anomaly
/// schedules (level shifts, outages), which the front-ends either own
/// ([`ExchangeSimulator`]) or borrow from the scenario ([`ExchangeStream`]).
struct SimCore {
    counter: TscCounter,
    host: HostTimestamping,
    fwd: PathDelay,
    back: PathDelay,
    server: ServerModel,
    dag: DagCard,
    loss_prob: f64,
    poll_period: f64,
    duration: f64,
    t_next: f64,
    i: usize,
    loss_rng: ChaCha12Rng,
}

impl SimCore {
    fn new(sc: &Scenario) -> Self {
        Self::new_seeded(sc, sc.seed)
    }

    /// Like [`SimCore::new`] with the master seed overridden — the fleet
    /// path, where thousands of streams differ from a shared template
    /// only by seed and must not clone it.
    fn new_seeded(sc: &Scenario, seed: u64) -> Self {
        assert!(sc.poll_period > 0.0, "poll period must be positive");
        assert!(sc.duration > 0.0, "duration must be positive");
        let (fwd_min, back_min) = sc.server.min_delays();
        let (qf, qb) = sc.server.queue_means();
        let (cf, cb) = sc.server.congestion();
        let osc = sc.environment.build(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut server = ServerModel::new(seed.wrapping_add(2));
        for f in &sc.server_faults {
            server.add_fault(*f);
        }
        Self {
            counter: TscCounter::new(sc.tsc_freq_hz, 0, osc),
            host: HostTimestamping::new(seed.wrapping_add(3)),
            fwd: PathDelay::new(fwd_min, qf, cf, seed.wrapping_add(4)),
            back: PathDelay::new(back_min, qb, cb, seed.wrapping_add(5)),
            server,
            dag: DagCard::dag32e(seed.wrapping_add(6)),
            loss_prob: sc.loss_prob,
            poll_period: sc.poll_period,
            duration: sc.duration,
            t_next: sc.poll_period, // first poll after one period
            i: 0,
            loss_rng: ChaCha12Rng::seed_from_u64(seed.wrapping_add(7)),
        }
    }

    /// One poll against the given anomaly schedules; `None` when the
    /// scenario duration is exhausted. Allocation-free.
    fn step(&mut self, shifts: &ShiftSchedule, outages: &[(f64, f64)]) -> Option<SimExchange> {
        if self.t_next > self.duration {
            return None;
        }
        let t = self.t_next;
        self.t_next += self.poll_period;
        let i = self.i;
        self.i += 1;

        // Route changes active at this instant.
        let (df, db) = shifts.deltas_at(t);
        self.fwd.set_shift(df);
        self.back.set_shift(db);

        // Host sends: raw read first, then true departure.
        let ta_tsc = self.counter.read(t);
        let ta = t + self.host.send_latency();

        let d_fwd = self.fwd.sample(ta);
        let tb = ta + d_fwd;
        let d_srv = self.server.residence(tb);
        let te = tb + d_srv;
        let d_back = self.back.sample(te);
        let tf = te + d_back;

        let lost = outages.iter().any(|&(a, b)| t >= a && t < b)
            || self.loss_rng.random::<f64>() < self.loss_prob;
        if lost {
            // Advance the server/DAG state deterministically even for lost
            // packets? No: a lost packet never reaches them. The host's
            // counter already advanced via the `Ta` read; nothing else did.
            return Some(SimExchange {
                i,
                poll_time: t,
                lost: true,
                ta_tsc,
                tf_tsc: 0,
                tb: f64::NAN,
                te: f64::NAN,
                tg: f64::NAN,
                truth: Truth {
                    ta,
                    tb,
                    te,
                    tf,
                    d_fwd,
                    d_srv,
                    d_back,
                    host_err_at_tf: f64::NAN,
                },
            });
        }

        let tb_stamp = self.server.stamp_rx(tb);
        let te_stamp = self.server.stamp_tx(te);

        // DAG taps the wire just before the host NIC: first bit passes the
        // tap one frame-time before full arrival.
        let tg = self
            .dag
            .timestamp_corrected(tf - tsc_refmon::FIRST_BIT_CORRECTION);

        let tf_read = tf + self.host.recv_latency();
        let tf_tsc = self.counter.read(tf_read);
        let host_err = self.counter.time_error();

        Some(SimExchange {
            i,
            poll_time: t,
            lost: false,
            ta_tsc,
            tf_tsc,
            tb: tb_stamp,
            te: te_stamp,
            tg,
            truth: Truth {
                ta,
                tb,
                te,
                tf,
                d_fwd,
                d_srv,
                d_back,
                host_err_at_tf: host_err,
            },
        })
    }
}

/// Iterator-style simulator; see the module docs for the event pipeline.
///
/// Owns copies of the scenario's anomaly schedules, so it can outlive the
/// [`Scenario`] it was built from. When driving many simulators (fleet
/// replay), prefer [`ExchangeStream`] via [`Scenario::stream`]: it borrows
/// the schedules instead of cloning them, making per-stream construction
/// allocation-free for fault-less scenarios.
pub struct ExchangeSimulator {
    core: SimCore,
    shifts: ShiftSchedule,
    outages: Vec<(f64, f64)>,
}

impl ExchangeSimulator {
    /// Builds the simulator from a [`Scenario`].
    pub fn new(sc: &Scenario) -> Self {
        Self {
            core: SimCore::new(sc),
            shifts: sc.shifts.clone(),
            outages: sc.outages.clone(),
        }
    }

    /// Runs one poll; `None` when the scenario duration is exhausted.
    pub fn step(&mut self) -> Option<SimExchange> {
        self.core.step(&self.shifts, &self.outages)
    }

    /// Nominal TSC frequency of the simulated host.
    pub fn tsc_freq_hz(&self) -> f64 {
        self.core.counter.freq_hz()
    }
}

impl Iterator for ExchangeSimulator {
    type Item = SimExchange;
    fn next(&mut self) -> Option<SimExchange> {
        self.step()
    }
}

/// A borrowing exchange stream: identical output to [`ExchangeSimulator`]
/// (bit-for-bit, same seed derivation), but the anomaly schedules are read
/// straight out of the scenario — no per-stream clones, no allocations in
/// steady-state stepping. This is the fleet-replay generation path, where
/// thousands of streams are built against shared scenario templates and
/// generation must never bottleneck the consumers.
pub struct ExchangeStream<'a> {
    core: SimCore,
    scenario: &'a Scenario,
}

impl<'a> ExchangeStream<'a> {
    /// Builds a stream borrowing `sc`'s schedules.
    pub fn new(sc: &'a Scenario) -> Self {
        Self {
            core: SimCore::new(sc),
            scenario: sc,
        }
    }

    /// Builds a stream for `sc` with its master seed replaced by `seed` —
    /// equivalent to (but cheaper than) cloning the scenario with a new
    /// seed: nothing is copied, so a fleet can fan thousands of distinct
    /// streams out of one shared template.
    pub fn with_seed(sc: &'a Scenario, seed: u64) -> Self {
        Self {
            core: SimCore::new_seeded(sc, seed),
            scenario: sc,
        }
    }

    /// Runs one poll; `None` when the scenario duration is exhausted.
    pub fn step(&mut self) -> Option<SimExchange> {
        self.core
            .step(&self.scenario.shifts, &self.scenario.outages)
    }

    /// Nominal TSC frequency of the simulated host.
    pub fn tsc_freq_hz(&self) -> f64 {
        self.core.counter.freq_hz()
    }

    /// Adapts the stream to yield only the observables of *delivered*
    /// exchanges — the [`RawExchange`]s a real client would hand to the
    /// clock — skipping lost packets.
    pub fn raw(self) -> RawExchanges<'a> {
        RawExchanges { inner: self }
    }
}

impl Iterator for ExchangeStream<'_> {
    type Item = SimExchange;
    fn next(&mut self) -> Option<SimExchange> {
        self.step()
    }
}

/// See [`ExchangeStream::raw`].
pub struct RawExchanges<'a> {
    inner: ExchangeStream<'a>,
}

impl Iterator for RawExchanges<'_> {
    type Item = RawExchange;
    fn next(&mut self) -> Option<RawExchange> {
        loop {
            let e = self.inner.step()?;
            if !e.lost {
                return Some(RawExchange {
                    ta_tsc: e.ta_tsc,
                    tb: e.tb,
                    te: e.te,
                    tf_tsc: e.tf_tsc,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{Scenario, ServerKind};
    use crate::server::ServerFault;
    use crate::shifts::LevelShift;

    fn short_scenario(seed: u64) -> Scenario {
        Scenario::baseline(seed).with_duration(4.0 * 3600.0)
    }

    #[test]
    fn produces_expected_packet_count() {
        let sc = short_scenario(1);
        let ex = sc.run();
        let expect = (sc.duration / sc.poll_period) as usize;
        assert!(ex.len() == expect, "{} vs {expect}", ex.len());
    }

    #[test]
    fn event_times_are_causally_ordered() {
        for e in short_scenario(2).run().iter().filter(|e| !e.lost) {
            let t = &e.truth;
            assert!(t.ta < t.tb && t.tb < t.te && t.te < t.tf, "ordering at {}", e.i);
            // server stamps never precede the events
            assert!(e.tb >= t.tb);
            assert!(e.te >= t.te);
            // TSC reads bracket the true interval: Ta read before departure,
            // Tf read after arrival.
            assert!(e.tf_tsc > e.ta_tsc);
        }
    }

    #[test]
    fn rtt_matches_table2_minimum() {
        let ex = short_scenario(3).run();
        let p = 1e-9; // nominal period of the 1 GHz counter
        let min_rtt = ex
            .iter()
            .filter(|e| !e.lost)
            .map(|e| (e.tf_tsc - e.ta_tsc) as f64 * p)
            .fold(f64::INFINITY, f64::min);
        let expect = ServerKind::Int.facts().rtt;
        // minimum observed RTT should be within ~60 µs above the true
        // minimum (host latencies add a few µs; skew adds ~50 PPM)
        assert!(
            min_rtt > expect && min_rtt < expect + 100e-6,
            "min rtt {min_rtt} vs {expect}"
        );
    }

    #[test]
    fn dag_reference_tracks_truth() {
        for e in short_scenario(4).run().iter().filter(|e| !e.lost) {
            assert!(
                (e.tg - e.truth.tf).abs() < 1e-6,
                "DAG ref must track truth to µs: {}",
                e.tg - e.truth.tf
            );
        }
    }

    #[test]
    fn loss_probability_is_respected() {
        let sc = Scenario {
            loss_prob: 0.1,
            ..short_scenario(5)
        }
        .with_duration(16.0 * 20_000.0);
        let ex = sc.run();
        let lost = ex.iter().filter(|e| e.lost).count() as f64 / ex.len() as f64;
        assert!((lost - 0.1).abs() < 0.02, "loss rate {lost}");
    }

    #[test]
    fn outage_window_loses_everything_inside() {
        let sc = short_scenario(6).with_outage(3600.0, 7200.0);
        for e in sc.run() {
            if e.poll_time >= 3600.0 && e.poll_time < 7200.0 {
                assert!(e.lost, "packet inside outage must be lost");
            }
        }
    }

    #[test]
    fn server_fault_offsets_stamps() {
        let sc = short_scenario(7).with_server_fault(ServerFault {
            start: 3600.0,
            end: 3900.0,
            offset: 0.150,
        });
        let ex = sc.run();
        let in_fault: Vec<_> = ex
            .iter()
            .filter(|e| !e.lost && e.poll_time >= 3600.0 && e.poll_time < 3890.0)
            .collect();
        assert!(!in_fault.is_empty());
        for e in in_fault {
            assert!(
                e.tb - e.truth.tb > 0.149,
                "fault must offset Tb: {}",
                e.tb - e.truth.tb
            );
        }
    }

    #[test]
    fn level_shift_raises_min_rtt() {
        let p = 1e-9;
        let sc = short_scenario(8).with_shift(LevelShift::forward_only(7200.0, None, 0.9e-3));
        let ex = sc.run();
        let min_rtt = |lo: f64, hi: f64| {
            ex.iter()
                .filter(|e| !e.lost && e.poll_time >= lo && e.poll_time < hi)
                .map(|e| (e.tf_tsc - e.ta_tsc) as f64 * p)
                .fold(f64::INFINITY, f64::min)
        };
        let before = min_rtt(0.0, 7200.0);
        let after = min_rtt(7200.0, 14_400.0);
        assert!(
            (after - before - 0.9e-3).abs() < 100e-6,
            "shift not visible: before {before}, after {after}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = short_scenario(9).run();
        let b = short_scenario(9).run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn borrowing_stream_matches_owning_simulator() {
        // same seed derivation, same stepping: the stream must be
        // bit-identical to the simulator, including across anomalies
        let sc = short_scenario(13)
            .with_outage(3600.0, 4000.0)
            .with_shift(LevelShift::forward_only(7200.0, None, 0.9e-3));
        let owned: Vec<_> = sc.build().collect();
        let streamed: Vec<_> = sc.stream().collect();
        assert_eq!(owned.len(), streamed.len());
        // lost packets carry NaN observables, so compare bit patterns
        let bits = |e: &crate::SimExchange| {
            (
                e.i,
                e.lost,
                e.poll_time.to_bits(),
                e.ta_tsc,
                e.tf_tsc,
                e.tb.to_bits(),
                e.te.to_bits(),
                e.tg.to_bits(),
                [
                    e.truth.ta.to_bits(),
                    e.truth.tb.to_bits(),
                    e.truth.te.to_bits(),
                    e.truth.tf.to_bits(),
                    e.truth.d_fwd.to_bits(),
                    e.truth.d_srv.to_bits(),
                    e.truth.d_back.to_bits(),
                    e.truth.host_err_at_tf.to_bits(),
                ],
            )
        };
        for (x, y) in owned.iter().zip(&streamed) {
            assert_eq!(bits(x), bits(y), "divergence at packet {}", x.i);
        }
    }

    #[test]
    fn seed_override_stream_equals_reseeded_scenario() {
        // loss-free so delivered records are NaN-free and directly
        // comparable; the loss RNG derivation is still seed-dependent and
        // covered by borrowing_stream_matches_owning_simulator
        let template = Scenario {
            loss_prob: 0.0,
            ..short_scenario(20)
        };
        for seed in [0u64, 21, u64::MAX] {
            let reseeded: Vec<_> = Scenario { seed, ..template.clone() }.stream().collect();
            let overridden: Vec<_> = template.stream_with_seed(seed).collect();
            assert_eq!(reseeded.len(), overridden.len());
            for (x, y) in reseeded.iter().zip(&overridden) {
                assert_eq!(x, y, "seed {seed} diverged at packet {}", x.i);
            }
        }
    }

    #[test]
    fn raw_adapter_skips_lost_and_keeps_observables() {
        let sc = crate::scenario::Scenario {
            loss_prob: 0.05,
            ..short_scenario(14)
        };
        let all: Vec<_> = sc.stream().collect();
        let raw: Vec<_> = sc.stream().raw().collect();
        let delivered: Vec<_> = all.iter().filter(|e| !e.lost).collect();
        assert_eq!(raw.len(), delivered.len());
        assert!(raw.len() < all.len(), "some packets must have been lost");
        for (r, e) in raw.iter().zip(&delivered) {
            assert_eq!(r.ta_tsc, e.ta_tsc);
            assert_eq!(r.tf_tsc, e.tf_tsc);
            assert_eq!(r.tb, e.tb);
            assert_eq!(r.te, e.te);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = short_scenario(10).run();
        let b = short_scenario(11).run();
        assert!(a.iter().zip(&b).any(|(x, y)| x != y));
    }

    #[test]
    fn host_error_truth_is_recorded() {
        let ex = short_scenario(12).run();
        let last = ex.iter().rev().find(|e| !e.lost).unwrap();
        // machine-room skew 52.4 PPM over ~4 h ≈ 0.75 s of accumulated error
        let expect = 52.4e-6 * last.truth.tf;
        assert!(
            (last.truth.host_err_at_tf - expect).abs() < 0.05 * expect,
            "host error truth {} vs ~{expect}",
            last.truth.host_err_at_tf
        );
    }
}
