//! The exchange simulator: one NTP poll at a time, end to end.
//!
//! Implements the Figure-1 timeline. For poll `i` at true time `t`:
//!
//! 1. the host reads its TSC (`Ta`), then the frame departs at
//!    `ta = t + send_latency`;
//! 2. the frame crosses the forward path, arriving at `tb = ta + d→`; the
//!    server stamps `Tb` with its own (imperfect, possibly faulted) clock;
//! 3. the server holds the packet for its residence time, departing at
//!    `te = tb + d↑` and stamping `Te`;
//! 4. the frame crosses the backward path, arriving at the DAG tap and then
//!    the host NIC at `tf = te + d←`; the DAG records `Tg` (first-bit
//!    corrected); the host's interrupt fires after `recv_latency` and the
//!    raw `Tf` TSC read happens;
//! 5. loss and outage windows may make the exchange yield no data.
//!
//! Every record carries the complete ground truth, so experiments can
//! compute both the paper's DAG-mediated "actual performance" metrics and
//! exact errors.

use crate::delay::PathDelay;
use crate::host::HostTimestamping;
use crate::scenario::Scenario;
use crate::server::ServerModel;
use crate::shifts::ShiftSchedule;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use tsc_osc::TscCounter;
use tsc_refmon::DagCard;
use tscclock::RawExchange;

/// Ground truth behind one exchange (never visible to the algorithms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truth {
    /// True departure time from the host.
    pub ta: f64,
    /// True arrival time at the server.
    pub tb: f64,
    /// True departure time from the server.
    pub te: f64,
    /// True full-arrival time at the host NIC.
    pub tf: f64,
    /// Forward one-way delay `d→`.
    pub d_fwd: f64,
    /// Server residence `d↑`.
    pub d_srv: f64,
    /// Backward one-way delay `d←`.
    pub d_back: f64,
    /// Host oscillator time error `x(t)` at the moment of the `Tf` read.
    pub host_err_at_tf: f64,
}

impl Truth {
    /// True round-trip time `r_i = d→ + d↑ + d←` (equation (11)).
    pub fn rtt(&self) -> f64 {
        self.d_fwd + self.d_srv + self.d_back
    }
}

/// One simulated NTP exchange: the observables plus the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimExchange {
    /// Packet index.
    pub i: usize,
    /// Scheduled poll time (true seconds since scenario start).
    pub poll_time: f64,
    /// `true` when the packet (or its response) never arrived — lost,
    /// or inside an outage window. Observables are NaN/0 in that case.
    pub lost: bool,
    /// Host raw send timestamp `Ta` (TSC counts).
    pub ta_tsc: u64,
    /// Host raw receive timestamp `Tf` (TSC counts).
    pub tf_tsc: u64,
    /// Server receive timestamp `Tb` (server clock seconds).
    pub tb: f64,
    /// Server transmit timestamp `Te` (server clock seconds).
    pub te: f64,
    /// Reference (DAG, first-bit corrected) timestamp of host arrival.
    pub tg: f64,
    /// Ground truth.
    pub truth: Truth,
}

/// The owned stepping state shared by the two simulator front-ends: every
/// stochastic element and the poll schedule, but *not* the anomaly
/// schedules (level shifts, outages), which the front-ends either own
/// ([`ExchangeSimulator`]) or borrow from the scenario ([`ExchangeStream`]).
struct SimCore {
    counter: TscCounter,
    host: HostTimestamping,
    fwd: PathDelay,
    back: PathDelay,
    server: ServerModel,
    dag: DagCard,
    loss_prob: f64,
    poll_period: f64,
    duration: f64,
    t_next: f64,
    i: usize,
    loss_rng: ChaCha12Rng,
    /// End (exclusive) of the current anomaly segment: the anomaly
    /// schedules are piecewise-constant, so shift deltas and the outage
    /// flag are recomputed only when the poll time crosses this boundary
    /// instead of on every packet. `-inf` forces a refresh on first use.
    seg_until: f64,
    /// Whether polls in the current segment fall inside an outage window.
    seg_outage: bool,
    /// Run every sampler in its original (pre-optimization) formulation.
    #[cfg(feature = "reference")]
    reference: bool,
}

/// Everything one poll produces before the loss decision branches the
/// pipeline (see [`SimCore::poll_core`]).
struct PollCore {
    t: f64,
    i: usize,
    ta_tsc: u64,
    ta: f64,
    d_fwd: f64,
    tb: f64,
    d_srv: f64,
    te: f64,
    d_back: f64,
    tf: f64,
    lost: bool,
}

impl SimCore {
    fn new(sc: &Scenario) -> Self {
        Self::new_seeded(sc, sc.seed)
    }

    /// Like [`SimCore::new`] with the master seed overridden — the fleet
    /// path, where thousands of streams differ from a shared template
    /// only by seed and must not clone it.
    fn new_seeded(sc: &Scenario, seed: u64) -> Self {
        assert!(sc.poll_period > 0.0, "poll period must be positive");
        assert!(sc.duration > 0.0, "duration must be positive");
        let path = sc.effective_path();
        let osc = sc.environment.build(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut server = ServerModel::new(seed.wrapping_add(2));
        for f in &sc.server_faults {
            server.add_fault(*f);
        }
        let mut fwd = PathDelay::new(
            path.fwd_min,
            path.fwd_queue_mean,
            path.fwd_congestion,
            seed.wrapping_add(4),
        );
        let mut back = PathDelay::new(
            path.back_min,
            path.back_queue_mean,
            path.back_congestion,
            seed.wrapping_add(5),
        );
        fwd.set_cadence(sc.poll_period);
        back.set_cadence(sc.poll_period);
        Self {
            counter: TscCounter::new(sc.tsc_freq_hz, 0, osc),
            host: HostTimestamping::new(seed.wrapping_add(3)),
            fwd,
            back,
            server,
            dag: DagCard::dag32e(seed.wrapping_add(6)),
            loss_prob: sc.loss_prob,
            poll_period: sc.poll_period,
            duration: sc.duration,
            t_next: sc.poll_period, // first poll after one period
            i: 0,
            loss_rng: ChaCha12Rng::seed_from_u64(seed.wrapping_add(7)),
            seg_until: f64::NEG_INFINITY,
            seg_outage: false,
            #[cfg(feature = "reference")]
            reference: false,
        }
    }

    /// Recomputes the piecewise-constant anomaly state (shift deltas,
    /// outage flag) for the segment containing poll time `t`, and finds
    /// the next boundary after which it must be recomputed again. Between
    /// boundaries, [`SimCore::step`] pays one float compare per packet
    /// instead of a schedule scan.
    #[cold]
    fn refresh_segment(&mut self, shifts: &ShiftSchedule, outages: &[(f64, f64)], t: f64) {
        let (df, db) = shifts.deltas_at(t);
        self.fwd.set_shift(df);
        self.back.set_shift(db);
        self.seg_outage = outages.iter().any(|&(a, b)| t >= a && t < b);
        let mut until = f64::INFINITY;
        for s in shifts.events() {
            if s.at > t {
                until = until.min(s.at);
            }
            if let Some(u) = s.until {
                if u > t {
                    until = until.min(u);
                }
            }
        }
        for &(a, b) in outages {
            if a > t {
                until = until.min(a);
            }
            if b > t {
                until = until.min(b);
            }
        }
        self.seg_until = until;
    }

    /// Shared per-poll pipeline up to the loss decision: schedule/segment
    /// bookkeeping, the `Ta` counter read, and the send/path/server delay
    /// draws. Both [`SimCore::step`] and [`SimCore::step_raw`] consume
    /// this, so their sampler draw order is lockstep *by construction* —
    /// the bit-identity of the raw path's observables cannot silently
    /// drift. `None` when the scenario duration is exhausted.
    #[inline]
    fn poll_core(&mut self, shifts: &ShiftSchedule, outages: &[(f64, f64)]) -> Option<PollCore> {
        if self.t_next > self.duration {
            return None;
        }
        let t = self.t_next;
        self.t_next += self.poll_period;
        let i = self.i;
        self.i += 1;

        // Route changes / outages active in this segment.
        if t >= self.seg_until {
            self.refresh_segment(shifts, outages, t);
        }

        // Host sends: raw read first, then true departure.
        let ta_tsc = self.counter.read(t);
        let ta = t + self.host.send_latency();

        let d_fwd = self.fwd.sample_cadenced();
        let tb = ta + d_fwd;
        let d_srv = self.server.residence(tb);
        let te = tb + d_srv;
        let d_back = self.back.sample_cadenced();
        let tf = te + d_back;

        // A lost packet never reaches the server's stamping, the DAG or
        // the host receive path; the host's counter already advanced via
        // the `Ta` read and nothing else did.
        let lost = self.seg_outage || self.loss_rng.random::<f64>() < self.loss_prob;
        Some(PollCore {
            t,
            i,
            ta_tsc,
            ta,
            d_fwd,
            tb,
            d_srv,
            te,
            d_back,
            tf,
            lost,
        })
    }

    /// Shared delivered-packet observables: server stamps, host receive
    /// latency and the `Tf` counter read (everything a [`RawExchange`]
    /// carries beyond `Ta`). Returns `(Tb, Te, Tf_tsc)`.
    #[inline]
    fn deliver_observables(&mut self, tb: f64, te: f64, tf: f64) -> (f64, f64, u64) {
        let tb_stamp = self.server.stamp_rx(tb);
        let te_stamp = self.server.stamp_tx(te);
        let tf_read = tf + self.host.recv_latency();
        let tf_tsc = self.counter.read(tf_read);
        (tb_stamp, te_stamp, tf_tsc)
    }

    /// One poll against the given anomaly schedules; `None` when the
    /// scenario duration is exhausted. Allocation-free.
    fn step(&mut self, shifts: &ShiftSchedule, outages: &[(f64, f64)]) -> Option<SimExchange> {
        #[cfg(feature = "reference")]
        if self.reference {
            return self.step_reference(shifts, outages);
        }
        let core = self.poll_core(shifts, outages)?;
        if core.lost {
            return Some(SimExchange {
                i: core.i,
                poll_time: core.t,
                lost: true,
                ta_tsc: core.ta_tsc,
                tf_tsc: 0,
                tb: f64::NAN,
                te: f64::NAN,
                tg: f64::NAN,
                truth: Truth {
                    ta: core.ta,
                    tb: core.tb,
                    te: core.te,
                    tf: core.tf,
                    d_fwd: core.d_fwd,
                    d_srv: core.d_srv,
                    d_back: core.d_back,
                    host_err_at_tf: f64::NAN,
                },
            });
        }

        let (tb_stamp, te_stamp, tf_tsc) =
            self.deliver_observables(core.tb, core.te, core.tf);
        let host_err = self.counter.time_error();

        // DAG taps the wire just before the host NIC: first bit passes the
        // tap one frame-time before full arrival. (Its jitter is an
        // independent RNG stream, so sampling it after the host-side
        // observables changes nothing.)
        let tg = self
            .dag
            .timestamp_corrected(core.tf - tsc_refmon::FIRST_BIT_CORRECTION);

        Some(SimExchange {
            i: core.i,
            poll_time: core.t,
            lost: false,
            ta_tsc: core.ta_tsc,
            tf_tsc,
            tb: tb_stamp,
            te: te_stamp,
            tg,
            truth: Truth {
                ta: core.ta,
                tb: core.tb,
                te: core.te,
                tf: core.tf,
                d_fwd: core.d_fwd,
                d_srv: core.d_srv,
                d_back: core.d_back,
                host_err_at_tf: host_err,
            },
        })
    }

    /// One poll, observables only: the [`RawExchange`] a delivered packet
    /// hands to the clock, `Some(None)` for a lost packet, `None` at end
    /// of scenario. Runs the same [`SimCore::poll_core`] and
    /// [`SimCore::deliver_observables`] as the full step but *skips* the
    /// DAG reference card: its jitter lives on an independent RNG stream
    /// that nothing else reads, so the emitted observables are
    /// bit-identical to the full step's — the raw-path tests prove it.
    /// This is the fleet generation path, where no consumer looks at `Tg`
    /// or the truth.
    #[allow(clippy::option_option)]
    fn step_raw(
        &mut self,
        shifts: &ShiftSchedule,
        outages: &[(f64, f64)],
    ) -> Option<Option<RawExchange>> {
        #[cfg(feature = "reference")]
        if self.reference {
            return self.step_reference(shifts, outages).map(|e| {
                (!e.lost).then_some(RawExchange {
                    ta_tsc: e.ta_tsc,
                    tb: e.tb,
                    te: e.te,
                    tf_tsc: e.tf_tsc,
                })
            });
        }
        let core = self.poll_core(shifts, outages)?;
        if core.lost {
            return Some(None);
        }
        let (tb, te, tf_tsc) = self.deliver_observables(core.tb, core.te, core.tf);
        Some(Some(RawExchange {
            ta_tsc: core.ta_tsc,
            tb,
            te,
            tf_tsc,
        }))
    }

    /// One poll at a *caller-chosen* send time `t` — the client-driven
    /// front-end behind [`OnDemandSim`]. Uses the exact-time samplers
    /// ([`PathDelay::sample`]) because on-demand schedules are irregular
    /// (backoff, jitter), so the precomputed-cadence fast path does not
    /// apply. Returns the full record; `t` must be ≥ the previous
    /// exchange's true arrival time (enforced by the wrapper).
    fn poll_at(
        &mut self,
        t: f64,
        shifts: &ShiftSchedule,
        outages: &[(f64, f64)],
    ) -> SimExchange {
        let i = self.i;
        self.i += 1;
        if t >= self.seg_until {
            self.refresh_segment(shifts, outages, t);
        }
        let ta_tsc = self.counter.read(t);
        let ta = t + self.host.send_latency();
        let d_fwd = self.fwd.sample(ta);
        let tb = ta + d_fwd;
        let d_srv = self.server.residence(tb);
        let te = tb + d_srv;
        let d_back = self.back.sample(te);
        let tf = te + d_back;
        let lost = self.seg_outage || self.loss_rng.random::<f64>() < self.loss_prob;
        if lost {
            return SimExchange {
                i,
                poll_time: t,
                lost: true,
                ta_tsc,
                tf_tsc: 0,
                tb: f64::NAN,
                te: f64::NAN,
                tg: f64::NAN,
                truth: Truth {
                    ta,
                    tb,
                    te,
                    tf,
                    d_fwd,
                    d_srv,
                    d_back,
                    host_err_at_tf: f64::NAN,
                },
            };
        }
        let (tb_stamp, te_stamp, tf_tsc) = self.deliver_observables(tb, te, tf);
        let host_err = self.counter.time_error();
        let tg = self
            .dag
            .timestamp_corrected(tf - tsc_refmon::FIRST_BIT_CORRECTION);
        SimExchange {
            i,
            poll_time: t,
            lost: false,
            ta_tsc,
            tf_tsc,
            tb: tb_stamp,
            te: te_stamp,
            tg,
            truth: Truth {
                ta,
                tb,
                te,
                tf,
                d_fwd,
                d_srv,
                d_back,
                host_err_at_tf: host_err,
            },
        }
    }

    /// Runs up to `max` polls, appending the records to `out`; returns how
    /// many were produced (fewer only when the duration ran out). Output is
    /// bit-identical to `max` calls of [`SimCore::step`] — the batch only
    /// amortizes the per-call dispatch; all per-packet state (anomaly
    /// segment cache, cadenced burst chains) is shared with the stepwise
    /// path, so any interleaving of `step` and `step_batch` agrees.
    fn step_batch(
        &mut self,
        shifts: &ShiftSchedule,
        outages: &[(f64, f64)],
        max: usize,
        out: &mut Vec<SimExchange>,
    ) -> usize {
        let remaining = if self.t_next > self.duration {
            0
        } else {
            ((self.duration - self.t_next) / self.poll_period) as usize + 1
        };
        out.reserve(max.min(remaining));
        let mut n = 0;
        while n < max {
            match self.step(shifts, outages) {
                Some(e) => {
                    out.push(e);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// The pre-optimization pipeline, end to end: per-packet schedule
    /// scans, exact-time burst evolution, draw-per-call Box-Muller
    /// samplers, and the reference oscillator stepping — bit-identical to
    /// the original implementation for the same scenario and seed.
    #[cfg(feature = "reference")]
    fn new_reference(sc: &Scenario, seed: u64) -> Self {
        let osc = sc
            .environment
            .build_reference(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut core = Self::new_seeded(sc, seed);
        core.counter = TscCounter::new(sc.tsc_freq_hz, 0, osc);
        core.reference = true;
        core
    }

    /// Original [`SimCore::step`]: the exact formulation at the time the
    /// generation fast path was introduced.
    #[cfg(feature = "reference")]
    fn step_reference(
        &mut self,
        shifts: &ShiftSchedule,
        outages: &[(f64, f64)],
    ) -> Option<SimExchange> {
        if self.t_next > self.duration {
            return None;
        }
        let t = self.t_next;
        self.t_next += self.poll_period;
        let i = self.i;
        self.i += 1;

        // Route changes active at this instant.
        let (df, db) = shifts.deltas_at(t);
        self.fwd.set_shift(df);
        self.back.set_shift(db);

        // Host sends: raw read first, then true departure.
        let ta_tsc = self.counter.read(t);
        let ta = t + self.host.send_latency_reference();

        let d_fwd = self.fwd.sample_reference(ta);
        let tb = ta + d_fwd;
        let d_srv = self.server.residence(tb);
        let te = tb + d_srv;
        let d_back = self.back.sample_reference(te);
        let tf = te + d_back;

        let lost = outages.iter().any(|&(a, b)| t >= a && t < b)
            || self.loss_rng.random::<f64>() < self.loss_prob;
        if lost {
            return Some(SimExchange {
                i,
                poll_time: t,
                lost: true,
                ta_tsc,
                tf_tsc: 0,
                tb: f64::NAN,
                te: f64::NAN,
                tg: f64::NAN,
                truth: Truth {
                    ta,
                    tb,
                    te,
                    tf,
                    d_fwd,
                    d_srv,
                    d_back,
                    host_err_at_tf: f64::NAN,
                },
            });
        }

        let tb_stamp = self.server.stamp_rx_reference(tb);
        let te_stamp = self.server.stamp_tx_reference(te);

        let tg = self
            .dag
            .timestamp_corrected(tf - tsc_refmon::FIRST_BIT_CORRECTION);

        let tf_read = tf + self.host.recv_latency_reference();
        let tf_tsc = self.counter.read(tf_read);
        let host_err = self.counter.time_error();

        Some(SimExchange {
            i,
            poll_time: t,
            lost: false,
            ta_tsc,
            tf_tsc,
            tb: tb_stamp,
            te: te_stamp,
            tg,
            truth: Truth {
                ta,
                tb,
                te,
                tf,
                d_fwd,
                d_srv,
                d_back,
                host_err_at_tf: host_err,
            },
        })
    }
}

/// Iterator-style simulator; see the module docs for the event pipeline.
///
/// Owns copies of the scenario's anomaly schedules, so it can outlive the
/// [`Scenario`] it was built from. When driving many simulators (fleet
/// replay), prefer [`ExchangeStream`] via [`Scenario::stream`]: it borrows
/// the schedules instead of cloning them, making per-stream construction
/// allocation-free for fault-less scenarios.
pub struct ExchangeSimulator {
    core: SimCore,
    shifts: ShiftSchedule,
    outages: Vec<(f64, f64)>,
}

impl ExchangeSimulator {
    /// Builds the simulator from a [`Scenario`].
    pub fn new(sc: &Scenario) -> Self {
        Self {
            core: SimCore::new(sc),
            shifts: sc.shifts.clone(),
            outages: sc.outages.clone(),
        }
    }

    /// Builds the pre-optimization simulator: every sampler and the
    /// oscillator run their original formulation. The differential tests
    /// compare its traces against the fast path statistically.
    #[cfg(feature = "reference")]
    pub fn new_reference(sc: &Scenario) -> Self {
        Self {
            core: SimCore::new_reference(sc, sc.seed),
            shifts: sc.shifts.clone(),
            outages: sc.outages.clone(),
        }
    }

    /// Runs one poll; `None` when the scenario duration is exhausted.
    pub fn step(&mut self) -> Option<SimExchange> {
        self.core.step(&self.shifts, &self.outages)
    }

    /// Nominal TSC frequency of the simulated host.
    pub fn tsc_freq_hz(&self) -> f64 {
        self.core.counter.freq_hz()
    }
}

impl Iterator for ExchangeSimulator {
    type Item = SimExchange;
    fn next(&mut self) -> Option<SimExchange> {
        self.step()
    }
}

/// A borrowing exchange stream: identical output to [`ExchangeSimulator`]
/// (bit-for-bit, same seed derivation), but the anomaly schedules are read
/// straight out of the scenario — no per-stream clones, no allocations in
/// steady-state stepping. This is the fleet-replay generation path, where
/// thousands of streams are built against shared scenario templates and
/// generation must never bottleneck the consumers.
pub struct ExchangeStream<'a> {
    core: SimCore,
    scenario: &'a Scenario,
}

impl<'a> ExchangeStream<'a> {
    /// Builds a stream borrowing `sc`'s schedules.
    pub fn new(sc: &'a Scenario) -> Self {
        Self {
            core: SimCore::new(sc),
            scenario: sc,
        }
    }

    /// Builds a stream for `sc` with its master seed replaced by `seed` —
    /// equivalent to (but cheaper than) cloning the scenario with a new
    /// seed: nothing is copied, so a fleet can fan thousands of distinct
    /// streams out of one shared template.
    pub fn with_seed(sc: &'a Scenario, seed: u64) -> Self {
        Self {
            core: SimCore::new_seeded(sc, seed),
            scenario: sc,
        }
    }

    /// Runs one poll; `None` when the scenario duration is exhausted.
    pub fn step(&mut self) -> Option<SimExchange> {
        self.core
            .step(&self.scenario.shifts, &self.scenario.outages)
    }

    /// Runs up to `max` polls, appending to `out`; returns the count
    /// produced. Bit-identical to calling [`ExchangeStream::step`] `max`
    /// times — the batch amortizes per-call dispatch, nothing else.
    pub fn next_batch(&mut self, out: &mut Vec<SimExchange>, max: usize) -> usize {
        self.core
            .step_batch(&self.scenario.shifts, &self.scenario.outages, max, out)
    }

    /// Nominal TSC frequency of the simulated host.
    pub fn tsc_freq_hz(&self) -> f64 {
        self.core.counter.freq_hz()
    }

    /// Adapts the stream to yield only the observables of *delivered*
    /// exchanges — the [`RawExchange`]s a real client would hand to the
    /// clock — skipping lost packets.
    pub fn raw(self) -> RawExchanges<'a> {
        RawExchanges { inner: self }
    }
}

impl Iterator for ExchangeStream<'_> {
    type Item = SimExchange;
    fn next(&mut self) -> Option<SimExchange> {
        self.step()
    }
}

/// See [`ExchangeStream::raw`].
pub struct RawExchanges<'a> {
    inner: ExchangeStream<'a>,
}

impl RawExchanges<'_> {
    /// Appends up to `max` *delivered* exchanges to `buf`, skipping lost
    /// packets; returns the count produced (fewer only at end of
    /// scenario). The fleet ingest path: one call fills a whole
    /// `process_batch` buffer without per-item iterator dispatch, on the
    /// observables-only step (no DAG sampling, no truth record).
    pub fn fill_batch(&mut self, buf: &mut Vec<RawExchange>, max: usize) -> usize {
        let sc = self.inner.scenario;
        let mut n = 0;
        while n < max {
            match self.inner.core.step_raw(&sc.shifts, &sc.outages) {
                Some(Some(r)) => {
                    buf.push(r);
                    n += 1;
                }
                Some(None) => {}
                None => break,
            }
        }
        n
    }
}

impl Iterator for RawExchanges<'_> {
    type Item = RawExchange;
    fn next(&mut self) -> Option<RawExchange> {
        let sc = self.inner.scenario;
        loop {
            match self.inner.core.step_raw(&sc.shifts, &sc.outages)? {
                Some(r) => return Some(r),
                None => continue,
            }
        }
    }
}

/// A client-driven simulator: the caller picks every send time, as a real
/// client with its own sync cadence, retry backoff and failure cooldown
/// does — the measurement substrate of the fleet lifecycle layer.
///
/// Unlike [`ExchangeSimulator`] there is no fixed poll grid and no
/// duration cutoff (the caller owns the horizon). The stochastic state is
/// the same [`SimCore`], so loss, outages, level shifts, server faults
/// and the oscillator all behave identically; the path queueing uses the
/// exact-time samplers since the schedule is irregular.
///
/// # Determinism
///
/// Every draw is consumed in call order, so the exchange stream is a pure
/// function of `(scenario, seed, sequence of requested send times)`. A
/// deterministic client schedule therefore yields a bit-reproducible
/// trace — the property the fleet population parity tests pin.
///
/// Send times must be non-decreasing and past the previous exchange's
/// true arrival; [`OnDemandSim::exchange_at`] clamps to
/// [`OnDemandSim::earliest_next`] (a client cannot transmit a new request
/// while the previous response is still in flight — and the underlying
/// counter and path states are monotone in time).
pub struct OnDemandSim {
    core: SimCore,
    shifts: ShiftSchedule,
    outages: Vec<(f64, f64)>,
    duration: f64,
    /// Earliest admissible next send time (previous true arrival).
    t_floor: f64,
}

impl OnDemandSim {
    /// Builds the simulator from a scenario (its `poll_period` is unused;
    /// the caller schedules).
    pub fn new(sc: &Scenario) -> Self {
        Self::with_seed(sc, sc.seed)
    }

    /// Like [`OnDemandSim::new`] with the master seed overridden.
    pub fn with_seed(sc: &Scenario, seed: u64) -> Self {
        Self {
            core: SimCore::new_seeded(sc, seed),
            shifts: sc.shifts.clone(),
            outages: sc.outages.clone(),
            duration: sc.duration,
            t_floor: 0.0,
        }
    }

    /// One exchange with the request sent at true time `t` (clamped to
    /// [`OnDemandSim::earliest_next`]). A `lost` record means the client
    /// will learn nothing until its own timeout fires.
    pub fn exchange_at(&mut self, t: f64) -> SimExchange {
        let t = t.max(self.t_floor);
        let e = self.core.poll_at(t, &self.shifts, &self.outages);
        // Even a lost packet's delay draws happened (the frame travelled
        // until it was dropped); the path/counter clocks sit at tf.
        self.t_floor = e.truth.tf + 1e-9;
        e
    }

    /// Earliest send time the next exchange may use.
    pub fn earliest_next(&self) -> f64 {
        self.t_floor
    }

    /// The scenario duration this simulator was built from (a convenience
    /// horizon for replay drivers; nothing enforces it).
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Nominal TSC frequency of the simulated host.
    pub fn tsc_freq_hz(&self) -> f64 {
        self.core.counter.freq_hz()
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{Scenario, ServerKind};
    use crate::server::ServerFault;
    use crate::shifts::LevelShift;

    fn short_scenario(seed: u64) -> Scenario {
        Scenario::baseline(seed).with_duration(4.0 * 3600.0)
    }

    #[test]
    fn produces_expected_packet_count() {
        let sc = short_scenario(1);
        let ex = sc.run();
        let expect = (sc.duration / sc.poll_period) as usize;
        assert!(ex.len() == expect, "{} vs {expect}", ex.len());
    }

    #[test]
    fn event_times_are_causally_ordered() {
        for e in short_scenario(2).run().iter().filter(|e| !e.lost) {
            let t = &e.truth;
            assert!(t.ta < t.tb && t.tb < t.te && t.te < t.tf, "ordering at {}", e.i);
            // server stamps never precede the events
            assert!(e.tb >= t.tb);
            assert!(e.te >= t.te);
            // TSC reads bracket the true interval: Ta read before departure,
            // Tf read after arrival.
            assert!(e.tf_tsc > e.ta_tsc);
        }
    }

    #[test]
    fn rtt_matches_table2_minimum() {
        let ex = short_scenario(3).run();
        let p = 1e-9; // nominal period of the 1 GHz counter
        let min_rtt = ex
            .iter()
            .filter(|e| !e.lost)
            .map(|e| (e.tf_tsc - e.ta_tsc) as f64 * p)
            .fold(f64::INFINITY, f64::min);
        let expect = ServerKind::Int.facts().rtt;
        // minimum observed RTT should be within ~60 µs above the true
        // minimum (host latencies add a few µs; skew adds ~50 PPM)
        assert!(
            min_rtt > expect && min_rtt < expect + 100e-6,
            "min rtt {min_rtt} vs {expect}"
        );
    }

    #[test]
    fn dag_reference_tracks_truth() {
        for e in short_scenario(4).run().iter().filter(|e| !e.lost) {
            assert!(
                (e.tg - e.truth.tf).abs() < 1e-6,
                "DAG ref must track truth to µs: {}",
                e.tg - e.truth.tf
            );
        }
    }

    #[test]
    fn loss_probability_is_respected() {
        let sc = Scenario {
            loss_prob: 0.1,
            ..short_scenario(5)
        }
        .with_duration(16.0 * 20_000.0);
        let ex = sc.run();
        let lost = ex.iter().filter(|e| e.lost).count() as f64 / ex.len() as f64;
        assert!((lost - 0.1).abs() < 0.02, "loss rate {lost}");
    }

    #[test]
    fn outage_window_loses_everything_inside() {
        let sc = short_scenario(6).with_outage(3600.0, 7200.0);
        for e in sc.run() {
            if e.poll_time >= 3600.0 && e.poll_time < 7200.0 {
                assert!(e.lost, "packet inside outage must be lost");
            }
        }
    }

    #[test]
    fn server_fault_offsets_stamps() {
        let sc = short_scenario(7).with_server_fault(ServerFault {
            start: 3600.0,
            end: 3900.0,
            offset: 0.150,
        });
        let ex = sc.run();
        let in_fault: Vec<_> = ex
            .iter()
            .filter(|e| !e.lost && e.poll_time >= 3600.0 && e.poll_time < 3890.0)
            .collect();
        assert!(!in_fault.is_empty());
        for e in in_fault {
            assert!(
                e.tb - e.truth.tb > 0.149,
                "fault must offset Tb: {}",
                e.tb - e.truth.tb
            );
        }
    }

    #[test]
    fn level_shift_raises_min_rtt() {
        let p = 1e-9;
        let sc = short_scenario(8).with_shift(LevelShift::forward_only(7200.0, None, 0.9e-3));
        let ex = sc.run();
        let min_rtt = |lo: f64, hi: f64| {
            ex.iter()
                .filter(|e| !e.lost && e.poll_time >= lo && e.poll_time < hi)
                .map(|e| (e.tf_tsc - e.ta_tsc) as f64 * p)
                .fold(f64::INFINITY, f64::min)
        };
        let before = min_rtt(0.0, 7200.0);
        let after = min_rtt(7200.0, 14_400.0);
        assert!(
            (after - before - 0.9e-3).abs() < 100e-6,
            "shift not visible: before {before}, after {after}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = short_scenario(9).run();
        let b = short_scenario(9).run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn borrowing_stream_matches_owning_simulator() {
        // same seed derivation, same stepping: the stream must be
        // bit-identical to the simulator, including across anomalies
        let sc = short_scenario(13)
            .with_outage(3600.0, 4000.0)
            .with_shift(LevelShift::forward_only(7200.0, None, 0.9e-3));
        let owned: Vec<_> = sc.build().collect();
        let streamed: Vec<_> = sc.stream().collect();
        assert_eq!(owned.len(), streamed.len());
        // lost packets carry NaN observables, so compare bit patterns
        let bits = |e: &crate::SimExchange| {
            (
                e.i,
                e.lost,
                e.poll_time.to_bits(),
                e.ta_tsc,
                e.tf_tsc,
                e.tb.to_bits(),
                e.te.to_bits(),
                e.tg.to_bits(),
                [
                    e.truth.ta.to_bits(),
                    e.truth.tb.to_bits(),
                    e.truth.te.to_bits(),
                    e.truth.tf.to_bits(),
                    e.truth.d_fwd.to_bits(),
                    e.truth.d_srv.to_bits(),
                    e.truth.d_back.to_bits(),
                    e.truth.host_err_at_tf.to_bits(),
                ],
            )
        };
        for (x, y) in owned.iter().zip(&streamed) {
            assert_eq!(bits(x), bits(y), "divergence at packet {}", x.i);
        }
    }

    #[test]
    fn seed_override_stream_equals_reseeded_scenario() {
        // loss-free so delivered records are NaN-free and directly
        // comparable; the loss RNG derivation is still seed-dependent and
        // covered by borrowing_stream_matches_owning_simulator
        let template = Scenario {
            loss_prob: 0.0,
            ..short_scenario(20)
        };
        for seed in [0u64, 21, u64::MAX] {
            let reseeded: Vec<_> = Scenario { seed, ..template.clone() }.stream().collect();
            let overridden: Vec<_> = template.stream_with_seed(seed).collect();
            assert_eq!(reseeded.len(), overridden.len());
            for (x, y) in reseeded.iter().zip(&overridden) {
                assert_eq!(x, y, "seed {seed} diverged at packet {}", x.i);
            }
        }
    }

    #[test]
    fn raw_adapter_skips_lost_and_keeps_observables() {
        let sc = crate::scenario::Scenario {
            loss_prob: 0.05,
            ..short_scenario(14)
        };
        let all: Vec<_> = sc.stream().collect();
        let raw: Vec<_> = sc.stream().raw().collect();
        let delivered: Vec<_> = all.iter().filter(|e| !e.lost).collect();
        assert_eq!(raw.len(), delivered.len());
        assert!(raw.len() < all.len(), "some packets must have been lost");
        for (r, e) in raw.iter().zip(&delivered) {
            assert_eq!(r.ta_tsc, e.ta_tsc);
            assert_eq!(r.tf_tsc, e.tf_tsc);
            assert_eq!(r.tb, e.tb);
            assert_eq!(r.te, e.te);
        }
    }

    #[test]
    fn batched_stepping_matches_stepwise_bit_for_bit() {
        // step_batch must be pure dispatch amortization: any chunking —
        // including chunk boundaries landing inside anomaly segments —
        // yields the records a step() loop yields.
        let sc = short_scenario(15)
            .with_outage(3600.0, 4000.0)
            .with_shift(LevelShift::forward_only(7200.0, Some(9000.0), 0.9e-3));
        let stepwise: Vec<_> = sc.stream().collect();
        for chunk in [1usize, 7, 64, 4096, usize::MAX] {
            let mut stream = sc.stream();
            let mut batched = Vec::new();
            while stream.next_batch(&mut batched, chunk.min(8192)) > 0 {}
            assert_eq!(stepwise.len(), batched.len(), "chunk {chunk}");
            for (x, y) in stepwise.iter().zip(&batched) {
                assert!(
                    x.i == y.i
                        && x.lost == y.lost
                        && x.ta_tsc == y.ta_tsc
                        && x.tf_tsc == y.tf_tsc
                        && x.tb.to_bits() == y.tb.to_bits()
                        && x.te.to_bits() == y.te.to_bits()
                        && x.tg.to_bits() == y.tg.to_bits(),
                    "chunk {chunk}: divergence at packet {}",
                    x.i
                );
            }
        }
    }

    #[test]
    fn raw_fill_batch_matches_iterator() {
        let sc = crate::scenario::Scenario {
            loss_prob: 0.05,
            ..short_scenario(16)
        };
        let via_iter: Vec<_> = sc.stream().raw().collect();
        let mut via_fill = Vec::new();
        let mut raw = sc.stream().raw();
        while raw.fill_batch(&mut via_fill, 100) > 0 {}
        assert_eq!(via_iter.len(), via_fill.len());
        for (x, y) in via_iter.iter().zip(&via_fill) {
            assert_eq!((x.ta_tsc, x.tf_tsc), (y.ta_tsc, y.tf_tsc));
            assert_eq!(x.tb.to_bits(), y.tb.to_bits());
            assert_eq!(x.te.to_bits(), y.te.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = short_scenario(10).run();
        let b = short_scenario(11).run();
        assert!(a.iter().zip(&b).any(|(x, y)| x != y));
    }

    #[test]
    fn on_demand_is_deterministic_and_causal() {
        let sc = short_scenario(30);
        let schedule: Vec<f64> = (1..200).map(|i| i as f64 * 16.0).collect();
        let run = |sc: &Scenario| {
            let mut sim = crate::sim::OnDemandSim::new(sc);
            schedule.iter().map(|&t| sim.exchange_at(t)).collect::<Vec<_>>()
        };
        let a = run(&sc);
        let b = run(&sc);
        assert_eq!(a, b, "same schedule, same seed ⇒ bit-identical trace");
        for e in a.iter().filter(|e| !e.lost) {
            let t = &e.truth;
            assert!(t.ta < t.tb && t.tb < t.te && t.te < t.tf);
            assert!(e.tf_tsc > e.ta_tsc);
        }
        // irregular schedules work too, and respect the in-flight floor
        let mut sim = crate::sim::OnDemandSim::new(&sc);
        let first = sim.exchange_at(16.0);
        let second = sim.exchange_at(0.0); // before the response: clamped
        assert!(second.poll_time >= first.truth.tf, "in-flight clamp");
    }

    #[test]
    fn on_demand_respects_outages_and_shifts() {
        let sc = short_scenario(31)
            .with_outage(1000.0, 2000.0)
            .with_shift(LevelShift::forward_only(3000.0, None, 0.9e-3));
        let mut sim = crate::sim::OnDemandSim::new(&sc);
        let inside = sim.exchange_at(1500.0);
        assert!(inside.lost, "requests inside the outage are lost");
        let before_min = sc.effective_path().fwd_min;
        let after = sim.exchange_at(3500.0);
        assert!(
            after.truth.d_fwd >= before_min + 0.9e-3,
            "shift applies to on-demand paths"
        );
    }

    #[test]
    fn on_demand_profile_changes_path() {
        let sc = short_scenario(32).with_profile(crate::PathProfile::Satellite);
        let mut sim = crate::sim::OnDemandSim::new(&sc);
        let e = sim.exchange_at(100.0);
        assert!(!e.lost || e.truth.rtt() > 0.5);
        assert!(e.truth.rtt() > 0.5, "satellite floor must dominate");
    }

    /// Regression (PR 4 note): an asymmetric step whose negative leg
    /// exceeds the backward minimum is *half-applied* — the PathDelay
    /// floor clamps the backward leg at zero and the "RTT-silent" fault
    /// leaks into the RTT. Pin the clamped floor value and the leak so a
    /// future preset cannot ship this silently.
    #[test]
    fn asymmetric_clamp_on_short_path_leaks_into_rtt_and_is_pinned() {
        // ServerLoc's backward minimum ≈ (0.38 ms − 12 µs − 50 µs)/2 =
        // 159 µs; delta/2 = 1 ms swamps it.
        let delta = 2e-3;
        let (_, back_min) = ServerKind::Loc.min_delays();
        assert!(back_min < delta / 2.0, "premise: the short path clamps");
        let sc = Scenario {
            loss_prob: 0.0,
            ..short_scenario(33)
        }
        .with_server(ServerKind::Loc)
        .with_shift(LevelShift::asymmetric(7200.0, None, delta));

        // the warning path fires, naming the clamped leg
        let warnings = sc.clamp_warnings();
        assert_eq!(warnings.len(), 1, "exactly the backward leg: {warnings:?}");
        assert!(warnings[0].contains("backward"), "{}", warnings[0]);

        // pin the clamped value: the backward minimum floors at exactly 0
        let mut back = crate::PathDelay::new(
            back_min,
            1e-6,
            crate::CongestionParams::light(),
            1,
        );
        back.set_shift(-delta / 2.0);
        assert_eq!(back.current_min(), 0.0, "floor pins at zero");
        assert!(
            (back.shift_clamped_by() - (delta / 2.0 - back_min)).abs() < 1e-15,
            "clamp deficit is the RTT leak: {}",
            back.shift_clamped_by()
        );

        // and the leak is visible in the simulated RTT: the minimum RTT
        // rises by delta/2 − back_min (fwd +1 ms, back −159 µs only)
        let ex = sc.run();
        let p = 1e-9;
        let min_rtt = |lo: f64, hi: f64| {
            ex.iter()
                .filter(|e| !e.lost && e.poll_time >= lo && e.poll_time < hi)
                .map(|e| (e.tf_tsc - e.ta_tsc) as f64 * p)
                .fold(f64::INFINITY, f64::min)
        };
        let leak = delta / 2.0 - back_min;
        let (before, after) = (min_rtt(0.0, 7200.0), min_rtt(7200.0, 14_400.0));
        assert!(
            (after - before - leak).abs() < 60e-6,
            "half-applied fault must leak {leak} into the RTT: before \
             {before}, after {after}"
        );

        // a path long enough for the negative leg stays warning-free and
        // RTT-silent — the clean preset contract
        let clean = Scenario {
            loss_prob: 0.0,
            ..short_scenario(34)
        }
        .with_server(ServerKind::Ext)
        .with_shift(LevelShift::asymmetric(7200.0, None, delta));
        assert!(clean.clamp_warnings().is_empty());
    }

    #[test]
    fn multi_server_clamp_warnings_flag_short_path_presets() {
        let delta = 2e-3;
        let mut sc = crate::MultiServerScenario::baseline(2, 40);
        sc.servers[1] = crate::ServerPath::new(ServerKind::Loc)
            .with_shift(LevelShift::asymmetric(7200.0, None, delta));
        let warnings = sc.clamp_warnings();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("server 1"), "{}", warnings[0]);
        // the paper testbed presets are clean
        assert!(crate::MultiServerScenario::paper_testbed(1)
            .clamp_warnings()
            .is_empty());
    }

    #[test]
    fn host_error_truth_is_recorded() {
        let ex = short_scenario(12).run();
        let last = ex.iter().rev().find(|e| !e.lost).unwrap();
        // machine-room skew 52.4 PPM over ~4 h ≈ 0.75 s of accumulated error
        let expect = 52.4e-6 * last.truth.tf;
        assert!(
            (last.truth.host_err_at_tf - expect).abs() < 0.05 * expect,
            "host error truth {} vs ~{expect}",
            last.truth.host_err_at_tf
        );
    }
}
