//! The simulated DAG capture card.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Wire time of a 90-byte Ethernet frame at 100 Mbps: the correction added
/// to a first-bit DAG timestamp so it refers to full arrival (§2.4).
pub const FIRST_BIT_CORRECTION: f64 = 90.0 * 8.0 / 100e6; // 7.2 µs

/// A GPS-synchronized passive capture card.
///
/// Produces timestamps `Tg = t_true + jitter` with Gaussian jitter of
/// configurable σ (100 ns for the DAG3.2e of the paper). The raw timestamp
/// refers to the first bit on the wire; [`DagCard::timestamp_corrected`]
/// applies [`FIRST_BIT_CORRECTION`] to refer to full frame arrival,
/// producing the `Tg,i` the paper compares `Tf,i` against.
#[derive(Debug)]
pub struct DagCard {
    sigma: f64,
    rng: ChaCha12Rng,
}

impl DagCard {
    /// DAG3.2e-grade card: 100 ns timestamping accuracy.
    pub fn dag32e(seed: u64) -> Self {
        Self::with_sigma(100e-9, seed)
    }

    /// Card with arbitrary timestamping jitter σ (seconds).
    pub fn with_sigma(sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "jitter must be non-negative");
        Self {
            sigma,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0xDA6_CA4D),
        }
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-300);
        let u2: f64 = self.rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Raw first-bit timestamp of an event whose first bit passed the tap at
    /// true time `t_first_bit`.
    pub fn timestamp_raw(&mut self, t_first_bit: f64) -> f64 {
        t_first_bit + self.gauss() * self.sigma
    }

    /// Corrected timestamp `Tg`: raw + 7.2 µs so it refers to full arrival,
    /// directly comparable to the host's `Tf` (§2.4).
    pub fn timestamp_corrected(&mut self, t_first_bit: f64) -> f64 {
        self.timestamp_raw(t_first_bit) + FIRST_BIT_CORRECTION
    }

    /// Timestamping jitter σ in seconds.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_constant_is_7_2_us() {
        assert!((FIRST_BIT_CORRECTION - 7.2e-6).abs() < 1e-15);
    }

    #[test]
    fn jitter_is_centered_and_small() {
        let mut card = DagCard::dag32e(1);
        let n = 10_000;
        let mut sum = 0.0;
        let mut max_abs: f64 = 0.0;
        for i in 0..n {
            let t = i as f64;
            let err = card.timestamp_raw(t) - t;
            sum += err;
            max_abs = max_abs.max(err.abs());
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 10e-9, "mean jitter {mean}");
        assert!(max_abs < 1e-6, "jitter tail too fat: {max_abs}");
        assert!(max_abs > 1e-8, "jitter suspiciously small: {max_abs}");
    }

    #[test]
    fn corrected_equals_raw_plus_constant() {
        let mut a = DagCard::dag32e(7);
        let mut b = DagCard::dag32e(7);
        let raw = a.timestamp_raw(123.456);
        let cor = b.timestamp_corrected(123.456);
        assert!((cor - raw - FIRST_BIT_CORRECTION).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = DagCard::dag32e(9);
        let mut b = DagCard::dag32e(9);
        for i in 0..100 {
            assert_eq!(a.timestamp_raw(i as f64), b.timestamp_raw(i as f64));
        }
    }

    #[test]
    fn zero_sigma_is_exact() {
        let mut c = DagCard::with_sigma(0.0, 3);
        assert_eq!(c.timestamp_raw(55.5), 55.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        DagCard::with_sigma(-1.0, 0);
    }
}
