//! Detection and correction of interrupt-latency side modes (§2.4).
//!
//! The histogram of `Tf,i − Tg,i` has a dominant mode centred at zero
//! (width ≈ 5 µs) plus "small but clearly defined side modes" at about
//! +10 µs and +31 µs caused by interrupt latencies, and rare large outliers
//! from scheduling errors. The paper corrects the side modes and excludes
//! the outliers before using `Tf` as "corrected" timestamps. This module
//! reproduces that procedure from the data itself (no hard-coded mode
//! positions): find the dominant mode, then find significant secondary
//! modes, then subtract each sample's mode centre.

/// Result of side-mode detection on a set of `Tf − Tg` differences.
#[derive(Debug, Clone, PartialEq)]
pub struct SideModeReport {
    /// Centre of the dominant mode (seconds).
    pub primary: f64,
    /// Centres of detected secondary modes, relative to zero (seconds),
    /// sorted ascending.
    pub side_modes: Vec<f64>,
    /// Number of samples classified as large outliers (scheduling errors).
    pub outliers: usize,
}

/// Bin width used for the mode histogram (1 µs: fine enough to separate the
/// 10 µs and 31 µs modes, coarse enough to keep modes as single peaks).
const BIN: f64 = 1e-6;

/// Samples farther than this from any detected mode are scheduling-error
/// outliers (the paper's "large departures due to rare scheduling errors").
const OUTLIER_CUTOFF: f64 = 100e-6;

/// A secondary peak must hold at least this fraction of the primary mode's
/// mass to count as a genuine side mode rather than noise.
const SIDE_MODE_MIN_FRACTION: f64 = 0.01;

/// Half-width when associating samples to a mode centre.
const MODE_HALF_WIDTH: f64 = 4e-6;

/// Detects the dominant mode and any significant side modes of `diffs`.
/// Returns `None` when `diffs` is empty or all-NaN.
pub fn detect_modes(diffs: &[f64]) -> Option<SideModeReport> {
    let finite: Vec<f64> = diffs.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    // Histogram over a window wide enough for the expected modes.
    let lo = -50e-6;
    let hi = 100e-6;
    let nbins = ((hi - lo) / BIN).round() as usize;
    let mut counts = vec![0u64; nbins];
    let mut outliers = 0usize;
    for &d in &finite {
        if d < lo || d >= hi {
            outliers += 1;
            continue;
        }
        counts[((d - lo) / BIN) as usize] += 1;
    }
    // Dominant mode: highest bin, refined by the centroid of its ±4 µs
    // neighbourhood.
    let (peak_idx, &peak_count) = counts.iter().enumerate().max_by_key(|&(_, &c)| c)?;
    if peak_count == 0 {
        return Some(SideModeReport {
            primary: 0.0,
            side_modes: vec![],
            outliers,
        });
    }
    let centroid = |idx: usize| -> f64 {
        let w = (MODE_HALF_WIDTH / BIN) as usize;
        let a = idx.saturating_sub(w);
        let b = (idx + w + 1).min(nbins);
        let mut mass = 0.0;
        let mut sum = 0.0;
        for (i, &c) in counts[a..b].iter().enumerate() {
            let centre = lo + (a + i) as f64 * BIN + BIN / 2.0;
            mass += c as f64;
            sum += centre * c as f64;
        }
        if mass > 0.0 {
            sum / mass
        } else {
            lo + idx as f64 * BIN + BIN / 2.0
        }
    };
    let primary = centroid(peak_idx);

    // Side modes: local maxima at least MODE_HALF_WIDTH*2 away from the
    // primary, holding enough relative mass.
    let mut side = Vec::new();
    let min_count = ((peak_count as f64) * SIDE_MODE_MIN_FRACTION).max(3.0) as u64;
    let sep_bins = (2.0 * MODE_HALF_WIDTH / BIN) as usize;
    for i in 1..nbins - 1 {
        if counts[i] >= min_count
            && counts[i] >= counts[i - 1]
            && counts[i] >= counts[i + 1]
            && i.abs_diff(peak_idx) > sep_bins
        {
            let c = centroid(i);
            // merge peaks that refine to nearly the same centre
            if side
                .iter()
                .all(|&s: &f64| (s - c).abs() > 2.0 * MODE_HALF_WIDTH)
                && (c - primary).abs() > 2.0 * MODE_HALF_WIDTH
            {
                side.push(c);
            }
        }
    }
    side.sort_by(|a, b| a.partial_cmp(b).expect("finite centres"));
    Some(SideModeReport {
        primary,
        side_modes: side,
        outliers,
    })
}

/// Corrects `diffs`-style errors out of host timestamps.
///
/// Given raw host timestamps `tf` and reference timestamps `tg` (already
/// first-bit corrected), returns corrected `tf` values: each sample is
/// associated to its nearest detected mode and that mode's offset removed;
/// samples beyond the 100 µs outlier cutoff of every mode are replaced by
/// `tg + primary` (i.e. excluded and reconstructed from the reference, as
/// the paper excludes scheduling errors).
pub fn correct_side_modes(tf: &[f64], tg: &[f64]) -> (Vec<f64>, SideModeReport) {
    assert_eq!(tf.len(), tg.len(), "timestamp series must align");
    let diffs: Vec<f64> = tf.iter().zip(tg).map(|(&f, &g)| f - g).collect();
    let report = detect_modes(&diffs).unwrap_or(SideModeReport {
        primary: 0.0,
        side_modes: vec![],
        outliers: 0,
    });
    let mut centres = vec![report.primary];
    centres.extend(&report.side_modes);
    let corrected = tf
        .iter()
        .zip(&diffs)
        .map(|(&f, &d)| {
            // nearest mode centre
            let nearest = centres
                .iter()
                .copied()
                .min_by(|a, b| {
                    (d - a)
                        .abs()
                        .partial_cmp(&(d - b).abs())
                        .expect("finite distances")
                })
                .unwrap_or(0.0);
            if (d - nearest).abs() > OUTLIER_CUTOFF {
                // scheduling error: reconstruct from reference + primary mode
                f - d + report.primary
            } else {
                f - (nearest - report.primary)
            }
        })
        .collect();
    (corrected, report)
}

/// Side-mode correction for series where `tf` is measured by a *drifting*
/// clock (the §3.1 use-case: months of trace where the host clock wanders by
/// far more than the latency modes).
///
/// §2.4 examines "the difference, **with respect to i**, of the measured
/// offset discrepancy `Tf,i − Tg,i`" — i.e. the clock wander is removed by
/// differencing before the modes are identified. Equivalently, we remove a
/// rolling-median baseline (the wander is negligible within a ~100-packet
/// window) and classify the residuals exactly as [`correct_side_modes`]
/// does.
pub fn correct_side_modes_drifting(
    tf: &[f64],
    tg: &[f64],
    window: usize,
) -> (Vec<f64>, SideModeReport) {
    assert_eq!(tf.len(), tg.len(), "timestamp series must align");
    let n = tf.len();
    let w = window.max(5) | 1; // odd window
    if n < w {
        return correct_side_modes(tf, tg);
    }
    let diffs: Vec<f64> = tf.iter().zip(tg).map(|(&f, &g)| f - g).collect();
    // rolling median baseline
    let half = w / 2;
    let mut baseline = Vec::with_capacity(n);
    let mut buf: Vec<f64> = Vec::with_capacity(w);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        buf.clear();
        buf.extend_from_slice(&diffs[lo..hi]);
        buf.sort_by(|a, b| a.partial_cmp(b).expect("finite diffs"));
        baseline.push(buf[buf.len() / 2]);
    }
    let residuals: Vec<f64> = diffs
        .iter()
        .zip(&baseline)
        .map(|(&d, &b)| d - b)
        .collect();
    let report = detect_modes(&residuals).unwrap_or(SideModeReport {
        primary: 0.0,
        side_modes: vec![],
        outliers: 0,
    });
    let mut centres = vec![report.primary];
    centres.extend(&report.side_modes);
    let corrected = tf
        .iter()
        .zip(&residuals)
        .zip(&baseline)
        .map(|((&f, &res), &base)| {
            let nearest = centres
                .iter()
                .copied()
                .min_by(|a, b| {
                    (res - a)
                        .abs()
                        .partial_cmp(&(res - b).abs())
                        .expect("finite distances")
                })
                .unwrap_or(0.0);
            let _ = base;
            if (res - nearest).abs() > OUTLIER_CUTOFF {
                // scheduling error: snap back to the local baseline level
                f - res + report.primary
            } else {
                f - (nearest - report.primary)
            }
        })
        .collect();
    (corrected, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic Tf−Tg population mimicking §2.4: a dominant mode
    /// at 0 of width 5 µs, side modes at 10 µs and 31 µs, plus outliers.
    fn synthetic(n: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            let u = (i as f64 * 0.754877666) % 1.0; // deterministic pseudo-uniform
            let jitter = ((i as f64 * 0.381966011).fract() - 0.5) * 4e-6;
            if u < 0.90 {
                v.push(jitter); // primary mode, width ~4µs
            } else if u < 0.95 {
                v.push(10e-6 + jitter * 0.4);
            } else if u < 0.99 {
                v.push(31e-6 + jitter * 0.4);
            } else {
                v.push(2e-3 + jitter); // scheduling outlier
            }
        }
        v
    }

    #[test]
    fn detects_primary_and_side_modes() {
        let diffs = synthetic(20_000);
        let r = detect_modes(&diffs).unwrap();
        assert!(r.primary.abs() < 2e-6, "primary at {}", r.primary);
        assert_eq!(r.side_modes.len(), 2, "found {:?}", r.side_modes);
        assert!((r.side_modes[0] - 10e-6).abs() < 3e-6);
        assert!((r.side_modes[1] - 31e-6).abs() < 3e-6);
        assert!(r.outliers > 0);
    }

    #[test]
    fn correction_collapses_modes() {
        let n = 20_000;
        let diffs = synthetic(n);
        let tg: Vec<f64> = (0..n).map(|i| i as f64 * 16.0).collect();
        let tf: Vec<f64> = tg.iter().zip(&diffs).map(|(&g, &d)| g + d).collect();
        let (corrected, _r) = correct_side_modes(&tf, &tg);
        // After correction, residuals should all be within the primary width.
        let mut max_abs: f64 = 0.0;
        for (c, g) in corrected.iter().zip(&tg) {
            max_abs = max_abs.max((c - g).abs());
        }
        assert!(
            max_abs < 6e-6,
            "post-correction residual too large: {max_abs}"
        );
    }

    #[test]
    fn no_side_modes_in_clean_data() {
        let diffs: Vec<f64> = (0..5000)
            .map(|i| ((i as f64 * 0.618).fract() - 0.5) * 3e-6)
            .collect();
        let r = detect_modes(&diffs).unwrap();
        assert!(r.primary.abs() < 2e-6);
        assert!(r.side_modes.is_empty(), "spurious modes: {:?}", r.side_modes);
        assert_eq!(r.outliers, 0);
    }

    #[test]
    fn empty_input() {
        assert!(detect_modes(&[]).is_none());
        assert!(detect_modes(&[f64::NAN]).is_none());
    }

    #[test]
    fn correction_of_identical_series_is_identity_like() {
        let tg: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (c, r) = correct_side_modes(&tg.clone(), &tg);
        for (a, b) in c.iter().zip(&tg) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(r.side_modes.is_empty());
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        correct_side_modes(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn drifting_clock_modes_are_corrected() {
        // clock wander of ±2 ms over the trace (≫ the 31 µs mode) plus the
        // three-mode latency structure
        let n = 20_000;
        let tg: Vec<f64> = (0..n).map(|i| i as f64 * 16.0).collect();
        let mut tf = Vec::with_capacity(n);
        for (i, &tg_i) in tg.iter().enumerate() {
            let wander = 2e-3 * (i as f64 / n as f64 * std::f64::consts::TAU).sin();
            let u = (i as f64 * 0.754877666) % 1.0;
            let jitter = ((i as f64 * 0.381966011).fract() - 0.5) * 3e-6;
            let mode = if u < 0.92 {
                0.0
            } else if u < 0.96 {
                10e-6
            } else {
                31e-6
            };
            tf.push(tg_i + wander + mode + jitter);
        }
        let (corr, report) = correct_side_modes_drifting(&tf, &tg, 101);
        assert_eq!(report.side_modes.len(), 2, "{:?}", report.side_modes);
        // after correction, residuals about the wander are within jitter
        for i in 200..n - 200 {
            let wander = 2e-3 * (i as f64 / n as f64 * std::f64::consts::TAU).sin();
            let res = corr[i] - tg[i] - wander;
            assert!(
                res.abs() < 8e-6,
                "uncorrected mode at {i}: {res}"
            );
        }
    }

    #[test]
    fn drifting_variant_falls_back_on_short_input() {
        let tg = vec![0.0, 1.0, 2.0];
        let (c, _) = correct_side_modes_drifting(&tg.clone(), &tg, 101);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn outliers_are_reconstructed() {
        let n = 1000;
        let tg: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut tf = tg.clone();
        tf[500] += 5e-3; // gross scheduling error
        let (c, r) = correct_side_modes(&tf, &tg);
        assert_eq!(r.outliers, 1);
        // reconstruction is exact up to the 1 µs histogram bin quantization
        // of the primary-mode centre
        assert!(
            (c[500] - tg[500]).abs() < 1e-6,
            "outlier not reconstructed: {}",
            c[500] - tg[500]
        );
    }
}
