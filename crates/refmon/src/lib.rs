//! Reference timing monitor — a simulated DAG capture card.
//!
//! §2.4: the paper validates everything against a DAG3.2e card synchronized
//! to GPS (~100 ns timestamping accuracy), tapping the Ethernet just before
//! the host NIC. Three systematic effects separate the DAG timestamp from
//! the host's `Tf`:
//!
//! 1. the DAG stamps the *first bit* of the frame while the host stamps
//!    after full arrival — corrected by adding the 90-byte wire time,
//!    `90·8/100 Mbps = 7.2 µs`;
//! 2. interrupt latency in the host produces small but well-defined *side
//!    modes* at +10 µs and +31 µs in the `Tf − Tg` histogram, which "can
//!    also be reliably detected and corrected for";
//! 3. rare scheduling errors produce large outliers, "easy to detect and
//!    exclude".
//!
//! [`DagCard`] produces reference timestamps with the 100 ns jitter; the
//! [`sidemode`] module implements the §2.4 detection/correction procedure so
//! the experiments can use *corrected* `Tf` timestamps exactly where the
//! paper does (Figures 3, 9, 10, 12).

pub mod dag;
pub mod sidemode;

pub use dag::{DagCard, FIRST_BIT_CORRECTION};
pub use sidemode::{correct_side_modes, detect_modes, SideModeReport};
