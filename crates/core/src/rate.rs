//! Global rate synchronization `p̂(t)` (§5.2).
//!
//! The base algorithm is deliberately simple: take the first two packets
//! with point error below `E*`, form the pair estimate (equation (17),
//! averaged over forward and backward paths), then keep `j` fixed and move
//! `i` to each newly accepted packet. The growing baseline `Δ(t)` damps
//! every residual error at rate `1/Δ(t)` — "error reduction is guaranteed
//! ... without any need for complex filtering. Even if connectivity to the
//! server were lost completely, the current value of p̂ remains valid."
//!
//! The warm-up phase (§6.1) bootstraps from the naive estimate `p̂₂,₁` and
//! then behaves like a local-rate algorithm: best-quality packets are
//! selected in growing near and far sub-windows (width `Δ(t)/4`), so early
//! congestion cannot poison the estimate.
//!
//! A consistency guard (the "high level sanity checking" philosophy of
//! §5.2/§6) rejects post-warmup updates that disagree with the current
//! estimate by far more than the combined quality bounds allow — the
//! defence that limits the damage of the Figure 11(b) server-fault event,
//! where `Tb`/`Te` were off by 150 ms while RTTs looked perfect.

use crate::fastmath::{apply_scalar, KernelOps, DIV_SLOTS};
use crate::history::{History, PacketRecord};
use crate::naive::{naive_rate, pair_estimate};

/// Kernel division slot assignments for the rate stage (round one of the
/// split pipeline): the quality reassessment ratio, the forward and
/// backward pair rates, and the pair error bound.
pub(crate) const SLOT_QUALITY: usize = 0;
pub(crate) const SLOT_RATE_FWD: usize = 1;
pub(crate) const SLOT_RATE_BWD: usize = 2;
pub(crate) const SLOT_RATE_BOUND: usize = 3;

/// Events the rate estimator can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateEvent {
    /// The estimate changed.
    Updated,
    /// A candidate update was rejected by the consistency guard.
    SanityRejected,
    /// Packet not used (point error above `E*`).
    RejectedQuality,
}

/// Pending state between [`GlobalRate::prepare`] and
/// [`GlobalRate::commit`] — the decision of *which* tail to run once the
/// staged division results arrive.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct RatePrep {
    /// A quality reassessment was staged into [`SLOT_QUALITY`].
    quality_pending: bool,
    plan: RatePlan,
}

#[derive(Debug, Clone, Copy)]
enum RatePlan {
    /// Warm-up / degenerate-restart path: commit runs the original scalar
    /// tail (no divisions staged).
    Scalar,
    /// Decision already final: the packet is quality-rejected.
    Rejected,
    /// Full pair update staged in slots 1–3; carries the
    /// `p̂`-independent pair-cache parts so acceptance needs no re-derivation.
    Pair { j_idx: u64, key_j: f64, dc: f64 },
}

/// The global rate estimator.
#[derive(Debug, Clone)]
pub struct GlobalRate {
    e_star: f64,
    warmup_packets: usize,
    /// Records seen during warm-up (bounded by `warmup_packets`).
    warmup: Vec<PacketRecord>,
    /// The fixed older packet of the estimating pair.
    j: Option<PacketRecord>,
    /// The newest accepted packet of the pair.
    i: Option<PacketRecord>,
    p_hat: Option<f64>,
    /// Error bound of the current estimate, `(Ei + Ej)/Δt`.
    quality: f64,
    n_seen: u64,
    /// Inputs of the last pair refresh: `(History::rebase_gen, p̂ bits,
    /// j idx, i idx)`. The refresh is a pure function of these (baseline
    /// resolution depends only on the re-basing generation; the quality
    /// reassessment only on the pair and `p̂`), so when the stamp matches,
    /// re-running it would reproduce the stored state bit-for-bit and it
    /// is skipped — the coarse-poll fast path, where congested (quality-
    /// rejected) packets leave the whole stamp untouched.
    refresh_stamp: (u64, u64, u64, u64),
    /// The `p̂`-independent parts of the pair quality (see [`PairCache`]).
    /// Refreshed whenever the full `pair_estimate` path runs — including
    /// [`GlobalRate::process_steady`] accepting a new `i` — so the
    /// per-packet quality reassessment is four flops, bit-identical to
    /// re-deriving the pair, instead of three divisions.
    pair_cache: PairCache,
}

/// `p̂`-independent pair-quality parts: `key = rtt − r̂base` resolved at
/// the cached re-basing generation, `dc` the counter baseline. The bound
/// `(key_i·p̂ + key_j·p̂)/(dc·p̂)` reproduces `pair_estimate`'s
/// `(ei + ej)/baseline` bit-for-bit for any `p̂ > 0`, and the estimate's
/// *validity* (degenerate pair, non-positive baseline) does not depend on
/// `p̂` at all.
#[derive(Debug, Clone, Copy)]
struct PairCache {
    valid: bool,
    j_idx: u64,
    i_idx: u64,
    dc: f64,
    key_j: f64,
    key_i: f64,
}

impl PairCache {
    const EMPTY: PairCache = PairCache {
        valid: false,
        j_idx: u64::MAX,
        i_idx: u64::MAX,
        dc: 0.0,
        key_j: 0.0,
        key_i: 0.0,
    };
}

impl GlobalRate {
    /// Creates the estimator with acceptance threshold `e_star` (seconds)
    /// and warm-up length in packets.
    pub fn new(e_star: f64, warmup_packets: usize) -> Self {
        assert!(e_star > 0.0, "E* must be positive");
        Self {
            e_star,
            warmup_packets: warmup_packets.max(2),
            warmup: Vec::new(),
            j: None,
            i: None,
            p_hat: None,
            quality: f64::INFINITY,
            n_seen: 0,
            refresh_stamp: (u64::MAX, u64::MAX, u64::MAX, u64::MAX),
            pair_cache: PairCache::EMPTY,
        }
    }

    /// Current estimate (seconds per count), if any.
    pub fn p_hat(&self) -> Option<f64> {
        self.p_hat
    }

    /// Error bound of the current estimate (`∞` before warm-up completes).
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// `true` while in the §6.1 warm-up phase.
    pub fn in_warmup(&self) -> bool {
        (self.n_seen as usize) < self.warmup_packets
    }

    /// Seeds the initial estimate (the naive `p̂₂,₁`) before any packet has
    /// been processed — used by the clock's bootstrap, which needs a period
    /// to compute point errors for the very first admissions.
    pub fn seed(&mut self, p0: f64) {
        if self.p_hat.is_none() && p0.is_finite() && p0 > 0.0 {
            self.p_hat = Some(p0);
        }
    }

    /// Processes an admitted packet. `history` is consulted to refresh the
    /// stored pair copies: §6.1 requires that whenever `r̂` is updated "the
    /// past point errors effectively change ... the quality of the rate
    /// estimate is reassessed and used as normal".
    ///
    /// Implemented as the split pair [`GlobalRate::prepare`] /
    /// [`GlobalRate::commit`] with the staged divisions applied scalar in
    /// between — the single code path the lane-batched fleet engine shares,
    /// which is what makes the two engines bit-identical by construction.
    pub fn process(&mut self, history: &History, record: &PacketRecord) -> RateEvent {
        let mut ops = KernelOps::idle();
        let prep = self.prepare(history, record, &mut ops);
        let vals = apply_scalar(&ops);
        self.commit(history, record, prep, &vals.div)
    }

    /// Phase one of the split step: counts the packet, refreshes the pair
    /// copies, and stages every division whose operands are already known
    /// into `ops` (see the `SLOT_*` constants). All state mutation that the
    /// original in-line path performed *before* its first division result
    /// was consumed happens here (the `n_seen` increment, baseline
    /// re-resolutions, `j` capture), so `prepare` followed by
    /// [`GlobalRate::commit`] with the slot results replays the in-line
    /// path exactly. A prepared packet **must** be committed before the
    /// next prepare.
    #[doc(hidden)]
    pub fn prepare(
        &mut self,
        history: &History,
        record: &PacketRecord,
        ops: &mut KernelOps,
    ) -> RatePrep {
        self.n_seen += 1;
        let quality_pending = self.refresh_prepare(history, ops);
        if (self.n_seen as usize) <= self.warmup_packets || self.p_hat.is_none() {
            // Warm-up (or degenerate post-warm-up restart): the sub-window
            // scans and their divisions run scalar in commit — the path is
            // bounded to the first `warmup_packets` packets of a clock.
            return RatePrep {
                quality_pending,
                plan: RatePlan::Scalar,
            };
        }
        let p_ref = self.p_hat.expect("checked above");
        let e_k = record.point_error(p_ref);
        if e_k >= self.e_star {
            return RatePrep {
                quality_pending,
                plan: RatePlan::Rejected,
            };
        }
        let j = match self.j {
            Some(j) => j,
            None => {
                self.j = Some(*record);
                return RatePrep {
                    quality_pending,
                    plan: RatePlan::Rejected,
                };
            }
        };
        // The `pair_estimate` early-outs that need no division result:
        // degenerate counter baselines and a non-positive time baseline.
        let dca = record.ex.ta_tsc.wrapping_sub(j.ex.ta_tsc) as i64 as f64;
        let dcf = record.ex.tf_tsc.wrapping_sub(j.ex.tf_tsc) as i64 as f64;
        let baseline = dcf * p_ref;
        if dca == 0.0 || dcf == 0.0 || baseline <= 0.0 {
            return RatePrep {
                quality_pending,
                plan: RatePlan::Rejected,
            };
        }
        let e_j = j.point_error(p_ref);
        ops.set_div(SLOT_RATE_FWD, record.ex.tb - j.ex.tb, dca);
        ops.set_div(SLOT_RATE_BWD, record.ex.te - j.ex.te, dcf);
        ops.set_div(SLOT_RATE_BOUND, e_k + e_j, baseline);
        RatePrep {
            quality_pending,
            plan: RatePlan::Pair {
                j_idx: j.idx,
                key_j: j.rtt_c - j.rbase_c,
                dc: dcf,
            },
        }
    }

    /// Phase two of the split step: consumes the division results staged by
    /// [`GlobalRate::prepare`] and finishes the update — quality write,
    /// consistency guard, acceptance.
    #[doc(hidden)]
    pub fn commit(
        &mut self,
        history: &History,
        record: &PacketRecord,
        prep: RatePrep,
        div: &[f64; DIV_SLOTS],
    ) -> RateEvent {
        if prep.quality_pending {
            self.quality = div[SLOT_QUALITY];
        }
        match prep.plan {
            RatePlan::Scalar => {
                if (self.n_seen as usize) <= self.warmup_packets {
                    self.process_warmup(history, record)
                } else {
                    // p̂ was None in prepare: restart warm-up entry.
                    self.process_steady(record)
                }
            }
            RatePlan::Rejected => RateEvent::RejectedQuality,
            RatePlan::Pair { j_idx, key_j, dc } => {
                let p_ref = self.p_hat.expect("pair plan implies an estimate");
                let p_new = 0.5 * (div[SLOT_RATE_FWD] + div[SLOT_RATE_BWD]);
                if !(p_new.is_finite() && p_new > 0.0) {
                    return RateEvent::RejectedQuality;
                }
                let bound = div[SLOT_RATE_BOUND];
                // Consistency guard: a legitimate new estimate differs from
                // the current one by at most the two quality bounds (plus
                // the 0.1 PPM hardware drift allowance). Server-timestamp
                // faults produce huge apparent rate steps with tiny RTT
                // error — exactly what this rejects.
                let rel_step = ((p_new - p_ref) / p_ref).abs();
                let allowance = 3.0 * (bound + self.quality.min(1.0)) + 1e-7;
                if rel_step > allowance {
                    return RateEvent::SanityRejected;
                }
                self.p_hat = Some(p_new);
                self.quality = bound;
                self.i = Some(*record);
                // Keep the pair cache current so the next refresh's quality
                // reassessment (with the just-updated p̂) is the four-flop
                // path.
                self.pair_cache = PairCache {
                    valid: true,
                    j_idx,
                    i_idx: record.idx,
                    dc,
                    key_j,
                    key_i: record.rtt_c - record.rbase_c,
                };
                RateEvent::Updated
            }
        }
    }

    /// Refreshes the stored pair copies (and warm-up records) against the
    /// live history, picking up any point-error re-evaluation, then
    /// reassesses the current estimate's quality. The cached-pair fast
    /// path's single division is *staged* into `ops` rather than computed
    /// (returns `true`; [`GlobalRate::commit`] writes the result into
    /// `quality`); nothing in between reads `quality`, so deferring the
    /// write preserves the in-line order of effects.
    fn refresh_prepare(&mut self, history: &History, ops: &mut KernelOps) -> bool {
        // Fast path: nothing the refresh reads has changed since it last
        // ran, so its outputs are already in place (see `refresh_stamp`).
        let stamp = (
            history.rebase_gen(),
            self.p_hat.map_or(u64::MAX, f64::to_bits),
            self.j.map_or(u64::MAX, |r| r.idx),
            self.i.map_or(u64::MAX, |r| r.idx),
        );
        if stamp == self.refresh_stamp {
            return false;
        }
        let gen_changed = stamp.0 != self.refresh_stamp.0;
        let pair_changed =
            gen_changed || stamp.2 != self.refresh_stamp.2 || stamp.3 != self.refresh_stamp.3;
        self.refresh_stamp = stamp;
        // Stored records only ever change through baseline re-evaluation
        // (§6.1), so refreshing a copy means re-resolving its baseline —
        // the rest of the record is immutable, and resolution is a pure
        // function of the re-basing generation: copies are touched only
        // when the generation moved (this includes the warm-up record
        // list, whose newest entries were admitted with the baseline in
        // force and so are current by construction).
        if gen_changed {
            for slot in [&mut self.j, &mut self.i].into_iter().flatten() {
                if let Some(fresh) = history.get_raw(slot.idx) {
                    slot.rbase_c = history.resolve_rbase(fresh);
                }
            }
            for rec in self.warmup.iter_mut() {
                if let Some(fresh) = history.get_raw(rec.idx) {
                    rec.rbase_c = history.resolve_rbase(fresh);
                }
            }
        }
        let cache_current = !gen_changed
            && self.pair_cache.valid
            && self.pair_cache.j_idx == stamp.2
            && self.pair_cache.i_idx == stamp.3;
        if cache_current {
            // The pair's point-error keys and counter baseline are cached
            // (from the last full derivation — here or in
            // `process_steady`), so the reassessed bound is exactly
            // `pair_estimate`'s `(ei + ej)/baseline` with the current p̂ —
            // four flops instead of three divisions and two resolutions.
            let p = self.p_hat.expect("cache implies estimate");
            let c = self.pair_cache;
            let ej = c.key_j * p;
            let ei = c.key_i * p;
            ops.set_div(SLOT_QUALITY, ei + ej, c.dc * p);
            return true;
        } else if pair_changed || gen_changed {
            self.pair_cache = PairCache::EMPTY;
            if let (Some(j), Some(i), Some(p)) = (self.j, self.i, self.p_hat) {
                if i.idx != j.idx {
                    if let Some(pe) =
                        pair_estimate(&j.ex, &i.ex, j.point_error(p), i.point_error(p), p)
                    {
                        self.quality = pe.error_bound;
                        self.pair_cache = PairCache {
                            valid: true,
                            j_idx: j.idx,
                            i_idx: i.idx,
                            dc: i.ex.tf_tsc.wrapping_sub(j.ex.tf_tsc) as i64 as f64,
                            key_j: j.rtt_c - j.rbase_c,
                            key_i: i.rtt_c - i.rbase_c,
                        };
                    }
                }
            }
        }
        false
    }

    fn process_warmup(&mut self, _history: &History, record: &PacketRecord) -> RateEvent {
        self.warmup.push(*record);
        let n = self.warmup.len();
        if n < 2 {
            return RateEvent::RejectedQuality;
        }
        // First estimate: the naive p̂₂,₁.
        if self.p_hat.is_none() {
            if let Some(p) = naive_rate(&self.warmup[0].ex, &self.warmup[1].ex) {
                if p.is_finite() && p > 0.0 {
                    self.p_hat = Some(p);
                    self.j = Some(self.warmup[0]);
                    self.i = Some(self.warmup[1]);
                }
            }
            return RateEvent::Updated;
        }
        let p_ref = self.p_hat.expect("set above");
        // Near/far sub-windows of width Δ(t)/4 (in packets), minimum 1.
        let w = (n / 4).max(1);
        let best = |slice: &[PacketRecord]| -> PacketRecord {
            *slice
                .iter()
                .min_by(|a, b| {
                    a.point_error(p_ref)
                        .partial_cmp(&b.point_error(p_ref))
                        .expect("finite point errors")
                })
                .expect("non-empty slice")
        };
        let j = best(&self.warmup[..w]);
        let i = best(&self.warmup[n - w..]);
        if i.idx == j.idx {
            return RateEvent::RejectedQuality;
        }
        if let Some(pe) = pair_estimate(
            &j.ex,
            &i.ex,
            j.point_error(p_ref),
            i.point_error(p_ref),
            p_ref,
        ) {
            self.p_hat = Some(pe.p_hat);
            self.quality = pe.error_bound;
            self.j = Some(j);
            self.i = Some(i);
            if self.warmup.len() >= self.warmup_packets {
                // leaving warm-up: §5.2 initialisation semantics now apply,
                // with (j, i) the best-quality pair found so far.
                tsc_telemetry::add(tsc_telemetry::Ctr::WarmupExits, 1);
                tsc_telemetry::event(
                    tsc_telemetry::EventKind::WarmupExit,
                    self.n_seen,
                    self.warmup.len() as u64,
                    0,
                );
                self.warmup.clear();
                self.warmup.shrink_to_fit();
            }
            RateEvent::Updated
        } else {
            RateEvent::RejectedQuality
        }
    }

    fn process_warmup_entry(&mut self, record: &PacketRecord) -> RateEvent {
        self.warmup.push(*record);
        let n = self.warmup.len();
        if n < 2 {
            return RateEvent::RejectedQuality;
        }
        if let Some(p) = naive_rate(&self.warmup[n - 2].ex, &self.warmup[n - 1].ex) {
            if p.is_finite() && p > 0.0 {
                self.p_hat = Some(p);
                self.j = Some(self.warmup[n - 2]);
                self.i = Some(self.warmup[n - 1]);
                return RateEvent::Updated;
            }
        }
        RateEvent::RejectedQuality
    }

    fn process_steady(&mut self, record: &PacketRecord) -> RateEvent {
        let p_ref = match self.p_hat {
            Some(p) => p,
            // Degenerate warm-up (e.g. every packet identical): restart it.
            None => {
                return self.process_warmup_entry(record);
            }
        };
        let e_k = record.point_error(p_ref);
        if e_k >= self.e_star {
            return RateEvent::RejectedQuality;
        }
        let j = match self.j {
            Some(j) => j,
            None => {
                self.j = Some(*record);
                return RateEvent::RejectedQuality;
            }
        };
        let e_j = j.point_error(p_ref);
        let Some(pe) = pair_estimate(&j.ex, &record.ex, e_j, e_k, p_ref) else {
            return RateEvent::RejectedQuality;
        };
        // Consistency guard: a legitimate new estimate differs from the
        // current one by at most the two quality bounds (plus the 0.1 PPM
        // hardware drift allowance). Server-timestamp faults produce huge
        // apparent rate steps with tiny RTT error — exactly what this
        // rejects.
        let rel_step = ((pe.p_hat - p_ref) / p_ref).abs();
        let allowance = 3.0 * (pe.error_bound + self.quality.min(1.0)) + 1e-7;
        if rel_step > allowance {
            return RateEvent::SanityRejected;
        }
        self.p_hat = Some(pe.p_hat);
        self.quality = pe.error_bound;
        self.i = Some(*record);
        // Keep the pair cache current so the next refresh's quality
        // reassessment (with the just-updated p̂) is the four-flop path.
        self.pair_cache = PairCache {
            valid: true,
            j_idx: j.idx,
            i_idx: record.idx,
            dc: record.ex.tf_tsc.wrapping_sub(j.ex.tf_tsc) as i64 as f64,
            key_j: j.rtt_c - j.rbase_c,
            key_i: record.rtt_c - record.rbase_c,
        };
        RateEvent::Updated
    }

    /// §6.1 "Windowing": when the top-level window slides, the pair's `j`
    /// may have been discarded. Replace it by `candidate` ("the first packet
    /// in the new window of similar or better point quality") when the
    /// current `j` predates `oldest_retained_idx`.
    pub fn replace_j_if_dropped(&mut self, oldest_retained_idx: u64, candidate: Option<PacketRecord>) {
        if let Some(j) = self.j {
            if j.idx < oldest_retained_idx {
                if let Some(c) = candidate {
                    self.j = Some(c);
                    // Re-derive the estimate quality from the new pair; keep
                    // the estimate itself if the new pair is degenerate.
                    if let (Some(i), Some(p_ref)) = (self.i, self.p_hat) {
                        if let Some(pe) = pair_estimate(
                            &c.ex,
                            &i.ex,
                            c.point_error(p_ref),
                            i.point_error(p_ref),
                            p_ref,
                        ) {
                            // §6.1: "pˆ(t) is updated if it exceeds the
                            // current quality"
                            if pe.error_bound <= self.quality {
                                self.p_hat = Some(pe.p_hat);
                                self.quality = pe.error_bound;
                            }
                        }
                    }
                }
                // with no candidate: keep the estimate, j stays (stale data
                // already copied out — only its timestamps matter).
            }
        }
    }

    /// Indices of the current estimating pair `(j, i)`, if established.
    pub fn pair_indices(&self) -> Option<(u64, u64)> {
        Some((self.j?.idx, self.i?.idx))
    }

    /// Serializes the estimator — warm-up records, the estimating pair,
    /// the refresh stamp and the pair cache — into a snapshot payload. The
    /// stamp and cache are memo state, but they must round-trip verbatim:
    /// a cleared stamp would force a refresh on the first post-restore
    /// packet that the uninterrupted run would have skipped, and the
    /// re-derived quality could differ in the last bit.
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_f64(self.e_star);
        w.put_usize(self.warmup_packets);
        w.put_usize(self.warmup.len());
        for rec in &self.warmup {
            rec.save_state(w);
        }
        PacketRecord::save_opt(&self.j, w);
        PacketRecord::save_opt(&self.i, w);
        w.put_opt_f64(self.p_hat);
        w.put_f64(self.quality);
        w.put_u64(self.n_seen);
        w.put_u64(self.refresh_stamp.0);
        w.put_u64(self.refresh_stamp.1);
        w.put_u64(self.refresh_stamp.2);
        w.put_u64(self.refresh_stamp.3);
        w.put_bool(self.pair_cache.valid);
        w.put_u64(self.pair_cache.j_idx);
        w.put_u64(self.pair_cache.i_idx);
        w.put_f64(self.pair_cache.dc);
        w.put_f64(self.pair_cache.key_j);
        w.put_f64(self.pair_cache.key_i);
    }

    /// Deserializes an estimator written by [`GlobalRate::save_state`].
    pub fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        use crate::SnapshotError as E;
        let e_star = r.get_f64()?;
        if e_star.is_nan() || e_star <= 0.0 {
            return Err(E::Invalid("E* must be positive"));
        }
        let warmup_packets = r.get_usize()?;
        if warmup_packets < 2 {
            return Err(E::Invalid("warm-up shorter than two packets"));
        }
        let n_warm = r.get_len(PacketRecord::WIRE_BYTES)?;
        if n_warm > warmup_packets {
            return Err(E::Invalid("warm-up list longer than the warm-up"));
        }
        let mut warmup = Vec::with_capacity(n_warm);
        for _ in 0..n_warm {
            warmup.push(PacketRecord::load_state(r)?);
        }
        Ok(Self {
            e_star,
            warmup_packets,
            warmup,
            j: PacketRecord::load_opt(r)?,
            i: PacketRecord::load_opt(r)?,
            p_hat: r.get_opt_f64()?,
            quality: r.get_f64()?,
            n_seen: r.get_u64()?,
            refresh_stamp: (r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?),
            pair_cache: PairCache {
                valid: r.get_bool()?,
                j_idx: r.get_u64()?,
                i_idx: r.get_u64()?,
                dc: r.get_f64()?,
                key_j: r.get_f64()?,
                key_i: r.get_f64()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::RawExchange;
    use crate::history::History;

    const P_TRUE: f64 = 1.0000524e-9; // 1 GHz +52.4 PPM

    /// Clean exchange at true time `t` with optional extra symmetric
    /// queueing `q` (seconds, applied to the response path).
    fn ex(t: f64, q: f64) -> RawExchange {
        let d = 450e-6;
        let s = 20e-6;
        RawExchange {
            ta_tsc: (t / P_TRUE).round() as u64,
            tb: t + d,
            te: t + d + s,
            tf_tsc: ((t + 2.0 * d + s + q) / P_TRUE).round() as u64,
        }
    }

    fn feed(rate: &mut GlobalRate, h: &mut History, e: RawExchange) -> RateEvent {
        h.push(e, 0.0);
        let r = h.last().unwrap();
        rate.process(h, &r)
    }

    #[test]
    fn converges_to_true_period_on_clean_data() {
        let mut rate = GlobalRate::new(300e-6, 8);
        let mut h = History::new(10_000);
        for k in 0..500 {
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, 0.0));
        }
        let p = rate.p_hat().unwrap();
        let rel = ((p - P_TRUE) / P_TRUE).abs();
        assert!(rel < 1e-7, "rel error {rel:.2e}");
        assert!(!rate.in_warmup());
    }

    #[test]
    fn error_falls_below_0_1_ppm_and_stays() {
        let mut rate = GlobalRate::new(300e-6, 8);
        let mut h = History::new(100_000);
        let mut rels = Vec::new();
        for k in 0..5400 {
            // occasional 5 ms congestion spikes
            let q = if k % 37 == 0 { 5e-3 } else { 30e-6 * ((k % 7) as f64) };
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, q));
            if let Some(p) = rate.p_hat() {
                rels.push(((p - P_TRUE) / P_TRUE).abs());
            }
        }
        // after a day of 16 s polls the error must be < 0.1 PPM (Figure 7)
        let tail = &rels[rels.len() - 100..];
        for (n, r) in tail.iter().enumerate() {
            assert!(*r < 1e-7, "tail error {r:.2e} at {n}");
        }
    }

    #[test]
    fn congested_packets_are_rejected() {
        let mut rate = GlobalRate::new(300e-6, 4);
        let mut h = History::new(1000);
        for k in 0..20 {
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, 0.0));
        }
        // heavy congestion: point error 10 ms >> E* = 0.3 ms
        let ev = feed(&mut rate, &mut h, ex(20.0 * 16.0, 10e-3));
        assert_eq!(ev, RateEvent::RejectedQuality);
    }

    #[test]
    fn warmup_survives_early_congestion() {
        let mut rate = GlobalRate::new(300e-6, 16);
        let mut h = History::new(1000);
        // the second packet is badly congested: naive p̂₂,₁ is poor, but the
        // best-in-subwindow selection must recover during warm-up
        feed(&mut rate, &mut h, ex(0.0, 0.0));
        feed(&mut rate, &mut h, ex(16.0, 20e-3));
        for k in 2..16 {
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, 0.0));
        }
        let p = rate.p_hat().unwrap();
        let rel = ((p - P_TRUE) / P_TRUE).abs();
        assert!(rel < 50e-6, "warmup rel error {rel:.2e}");
    }

    #[test]
    fn server_fault_is_sanity_rejected() {
        let mut rate = GlobalRate::new(300e-6, 8);
        let mut h = History::new(10_000);
        for k in 0..600 {
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, 0.0));
        }
        let p_before = rate.p_hat().unwrap();
        // server clock jumps 150 ms: Tb/Te wrong, RTT unaffected
        let mut bad = ex(600.0 * 16.0, 0.0);
        bad.tb += 0.150;
        bad.te += 0.150;
        h.push(bad, 0.0);
        let r = h.last().unwrap();
        let ev = rate.process(&h, &r);
        assert_eq!(ev, RateEvent::SanityRejected);
        assert_eq!(rate.p_hat().unwrap(), p_before);
    }

    #[test]
    fn quality_improves_with_baseline() {
        let mut rate = GlobalRate::new(300e-6, 8);
        let mut h = History::new(100_000);
        // clean start establishes the true minimum, then every packet
        // carries 10-30 µs of queueing so point errors are strictly positive
        for k in 0..8 {
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, 0.0));
        }
        let mut q_at_100 = 0.0;
        for k in 8..2000 {
            let q = 10e-6 + 20e-6 * ((k as f64 * 0.618).fract());
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, q));
            if k == 100 {
                q_at_100 = rate.quality();
            }
        }
        assert!(q_at_100 > 0.0, "quality must be positive with noise");
        assert!(
            rate.quality() < q_at_100 / 5.0,
            "quality must improve: {} vs {}",
            rate.quality(),
            q_at_100
        );
    }

    #[test]
    fn j_replacement_on_window_slide() {
        let mut rate = GlobalRate::new(300e-6, 4);
        let mut h = History::new(1000);
        for k in 0..50 {
            feed(&mut rate, &mut h, ex(k as f64 * 16.0, 0.0));
        }
        let (j_idx, _) = rate.pair_indices().unwrap();
        assert!(j_idx < 10);
        // pretend the window slid past packet 30
        let candidate = h.get(31).unwrap();
        rate.replace_j_if_dropped(30, Some(candidate));
        let (j_idx2, _) = rate.pair_indices().unwrap();
        assert_eq!(j_idx2, 31);
        // estimate still sane
        let rel = ((rate.p_hat().unwrap() - P_TRUE) / P_TRUE).abs();
        assert!(rel < 1e-6);
    }

    #[test]
    fn no_estimate_before_two_packets() {
        let mut rate = GlobalRate::new(300e-6, 8);
        let mut h = History::new(100);
        assert!(rate.p_hat().is_none());
        feed(&mut rate, &mut h, ex(0.0, 0.0));
        assert!(rate.p_hat().is_none());
        feed(&mut rate, &mut h, ex(16.0, 0.0));
        assert!(rate.p_hat().is_some());
    }
}
