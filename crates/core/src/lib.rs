//! # tscclock — the robust TSC-NTP software clock of Veitch–Babu–Pásztor
//!
//! A faithful implementation of *"Robust Synchronization of Software Clocks
//! Across the Internet"* (IMC 2004): a feed-forward clock built on the CPU
//! cycle counter (TSC), calibrated in **rate** and **offset** from ordinary
//! NTP exchanges, and engineered to stay accurate through congestion, loss,
//! outages, route changes, temperature swings and even faulty server
//! timestamps.
//!
//! ## The two clocks
//!
//! The central design statement of the paper is that a rate-centric clock
//! must come in two forms (§2.2):
//!
//! * [`TscNtpClock::difference_seconds`] — the **difference clock**
//!   `Cd(t) = TSC(t)·p̂(t)`: smooth, never stepped, accurate to ≲ 1 µs for
//!   intervals below the SKM scale τ* ≈ 1000 s;
//! * [`TscNtpClock::absolute_time`] — the **absolute clock**
//!   `Ca(t) = Cd(t) + C̄ − θ̂(t)`: absolute (Unix-like) time, corrected by
//!   the filtered offset estimate.
//!
//! ## Pipeline
//!
//! ```text
//!  RawExchange ──▶ History (r̂, point errors, top window T)   [history]
//!        │               │
//!        │               ├──▶ GlobalRate p̂   (E* gating, Δ(t) damping)
//!        │               ├──▶ LocalRate  p̂l  (τ̄ window, γ* gate, sanity)
//!        │               ├──▶ ShiftDetector  (r̂l vs r̂ + 4E)
//!        │               └──▶ OffsetEstimator θ̂ (weights, fallback, Es)
//!        ▼
//!  ProcessOutput { θ̂, p̂, p̂l, events }
//! ```
//!
//! ## Performance
//!
//! [`TscNtpClock::process`] is **O(1) amortized per packet and
//! allocation-free** in steady state, independent of the top-level history
//! size (one week ≈ 38k packets at 16 s polling):
//!
//! * the RTT minimum `r̂` is maintained with a monotonic min-deque, and
//!   §6.1 point-error re-evaluation is resolved lazily through an
//!   era/baseline table instead of sweeping the stored records — see the
//!   [`history`] module docs for the design;
//! * the §5.3 offset estimator is **fully incremental**: its weights are
//!   exponentials of the excess total error over the window's best
//!   packet, which factor into per-packet constants, so the weighted
//!   sums are rolling accumulators (one absorb + one expire + a
//!   monotonic min-deque per packet — a single exponential, ~50 ns,
//!   instead of an O(τ′/poll) window pass), exactness bounded by a
//!   periodic rebuild — see the [`offset`] module docs for the math and
//!   the drift-rebuild contract;
//! * the §5.2 local-rate sub-windows ride rolling argmin deques plus key
//!   sums (when the estimator is enabled at all — a disabled local rate
//!   costs nothing), the sub-window verdict is memoized on the selected
//!   pair, and per-packet events are reported as a copyable
//!   [`clock::EventSet`] bitflag word rather than a heap-allocated list.
//!
//! At **coarse polling** (≥ several minutes per exchange) every nominal
//! window collapses to a handful of packets and the *fixed* per-packet
//! costs dominate; those are cut by dedicated fast paths, all
//! bit-identical to the dense machinery they bypass:
//!
//! * the global-rate pair refresh is stamped with its inputs (re-basing
//!   generation, `p̂` bits, pair indices) and skipped when nothing changed
//!   ([`rate`]);
//! * the §6.2 upward-shift detector parks itself for a full window
//!   whenever a sample at or below the detection level arrives, reducing
//!   the common case to a ring store plus two compares ([`shift`]) — and
//!   the window length itself is floored at
//!   [`config::MIN_TS_PACKETS`] packets so the packet-count conversion
//!   cannot degrade the deliberately-conservative detector into one that
//!   confirms a false shift on any two congested exchanges;
//! * τ′ windows of at most 4 packets and tiny local-rate sub-windows are
//!   resolved straight off the history tail into stack buffers instead of
//!   maintaining the rolling caches/deques.
//!
//! Together these put end-to-end ingest at ≈100 ns/packet at 16 s polling
//! on a 2.1 GHz core (≈3.5× over the fused-SIMD window-pass pipeline it
//! replaces; committed rows in `BENCH_ingest.json`). [`TscNtpClock::process_batch`] is the batched ingest form
//! (one output buffer reused across a shard) used by the `tsc-fleet`
//! replay engine; it is bit-identical to calling
//! [`TscNtpClock::process`] in a loop.
//!
//! Memory is O(window). The pre-optimization pipeline is preserved under
//! the `reference` feature (module [`reference`]) for differential tests
//! and before/after benchmarks; a property test drives both over random
//! scenarios and asserts estimate parity.
//!
//! ## Quick example
//!
//! ```
//! use tscclock::{ClockConfig, RawExchange, TscNtpClock};
//!
//! let mut clock = TscNtpClock::new(ClockConfig::paper_defaults(16.0));
//! // Feed exchanges (here: two synthetic ones from a perfect 1 GHz host).
//! let mk = |t: f64| RawExchange {
//!     ta_tsc: (t * 1e9) as u64,
//!     tb: t + 450e-6,
//!     te: t + 470e-6,
//!     tf_tsc: ((t + 940e-6) * 1e9) as u64,
//! };
//! clock.process(mk(0.0));
//! clock.process(mk(16.0));
//! assert!(clock.status().p_hat.is_some());
//! ```

pub mod asym;
pub mod clock;
pub mod config;
pub mod exchange;
pub mod fastmath;
pub mod history;
pub mod local_rate;
pub mod naive;
pub mod offset;
pub mod rate;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
pub mod shift;
pub mod snapshot;
pub mod units;

pub use asym::{estimate_asymmetry, RefExchange};
pub use clock::{
    ClockEvent, ClockStatus, EventSet, ProcessOutput, StepMid, StepPhase, StepPrep, TscNtpClock,
};
pub use config::ClockConfig;
pub use exchange::RawExchange;
pub use fastmath::{
    apply_scalar, div_slices, exp_clamped_slice, kernel_round1, kernel_round2, KernelOps,
    KernelVals, DIV_SLOTS,
};
pub use history::{History, PacketRecord};
pub use local_rate::{LocalRate, LocalRateEvent};
pub use naive::{naive_offset, naive_rate, naive_rate_backward, naive_rate_forward};
pub use offset::{OffsetEstimator, OffsetEvent};
pub use rate::{GlobalRate, RateEvent};
pub use shift::{ShiftDetector, UpwardShift};
pub use snapshot::SnapshotError;
