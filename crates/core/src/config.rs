//! Algorithm parameters (§5–§6 defaults).
//!
//! Every tunable of the paper's algorithms lives here, under the symbol
//! names the paper uses. The defaults are the values the paper recommends
//! and uses for its headline results; the sensitivity analyses of Figure 9
//! sweep `tau_prime`, `quality_scale` (E) and the polling period.

use serde::{Deserialize, Serialize};

/// Minimum upward-shift detection window in packets (see
/// [`ClockConfig::ts_packets`]).
pub const MIN_TS_PACKETS: usize = 16;

/// Full parameter set of the TSC-NTP clock.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct ClockConfig {
    /// δ — the unit of host timestamping error (15 µs, §5.1: "Error will be
    /// calibrated in units of the maximum timestamping error at the host").
    pub delta: f64,
    /// τ* — the SKM validity scale (≈1000 s, §3.1).
    pub tau_star: f64,
    /// τ′ — the offset-weighting window (§5.3; Figure 9(a) shows a broad
    /// optimum around τ*/2 … 2τ*; the robustness experiments use 2τ*).
    pub tau_prime: f64,
    /// τ̄ — the local-rate window (5τ*, §5.2).
    pub tau_bar: f64,
    /// W — the local-rate near/central/far split factor (30, §5.2).
    pub w_split: usize,
    /// E* — rate-estimation point-error acceptance threshold
    /// (20δ = 0.3 ms; Figure 7 also shows 5δ).
    pub e_star: f64,
    /// E — the offset quality-assessment scale (4δ, §5.3(ii)).
    pub quality_scale: f64,
    /// E**/E — the poor-quality fallback multiplier (6, §5.3(iii): "about 3
    /// 'standard deviations' away in the Gaussian-like weight function").
    pub fallback_mult: f64,
    /// ε — the total-error aging rate (0.02 PPM, §5.3(i)): point errors grow
    /// by ε per second of packet age.
    pub aging_rate: f64,
    /// γ* — local-rate target quality (0.05 PPM, §5.2).
    pub gamma_star: f64,
    /// Rate sanity bound: maximum relative step between successive local
    /// rate estimates (3·10⁻⁷, §5.2).
    pub rate_sanity: f64,
    /// Es — offset sanity threshold (1 ms, §5.3(iv); "orders of magnitude
    /// beyond the expected offset increment between neighboring packets").
    pub offset_sanity: f64,
    /// Upward-shift detection threshold multiplier: shift declared when
    /// `r̂l − r̂ > shift_mult · E` (4, §6.2).
    pub shift_mult: f64,
    /// Ts — upward-shift detection window (τ̄/2, §6.2).
    pub ts_window: f64,
    /// T — the top-level sliding history window (1 week, §6.1), slid by T/2.
    pub top_window: f64,
    /// Nominal polling period in seconds; §6.1 converts every nominal time
    /// window into a fixed packet count by dividing by this.
    pub poll_period: f64,
    /// Warm-up length Tw in RTT samples (§6.1).
    pub warmup_packets: usize,
    /// Whether the offset estimator uses the local-rate refinement
    /// (equation (21) instead of (20)).
    pub use_local_rate: bool,
}

impl ClockConfig {
    /// Paper defaults for a given polling period.
    pub fn paper_defaults(poll_period: f64) -> Self {
        let delta = 15e-6;
        let tau_star = 1000.0;
        let tau_bar = 5.0 * tau_star;
        Self {
            delta,
            tau_star,
            tau_prime: tau_star,
            tau_bar,
            w_split: 30,
            e_star: 20.0 * delta,
            quality_scale: 4.0 * delta,
            fallback_mult: 6.0,
            aging_rate: 0.02e-6,
            gamma_star: 0.05e-6,
            rate_sanity: 3e-7,
            offset_sanity: 1e-3,
            shift_mult: 4.0,
            ts_window: tau_bar / 2.0,
            top_window: 7.0 * 86_400.0,
            poll_period,
            warmup_packets: 64,
            use_local_rate: false,
        }
    }

    /// E** — the absolute poor-quality fallback threshold.
    pub fn e_fallback(&self) -> f64 {
        self.fallback_mult * self.quality_scale
    }

    /// Converts a nominal time window to its packet count (≥ 1), per the
    /// §6.1 "Lost Packets" rule.
    pub fn window_packets(&self, window_seconds: f64) -> usize {
        ((window_seconds / self.poll_period).round() as usize).max(1)
    }

    /// Packet count of the offset window τ′.
    pub fn tau_prime_packets(&self) -> usize {
        self.window_packets(self.tau_prime)
    }

    /// Packet count of the local-rate window τ̄ (including the extra far
    /// sub-window, the total span is τ̄(W+1)/W; we size sub-windows from τ̄).
    pub fn tau_bar_packets(&self) -> usize {
        self.window_packets(self.tau_bar)
    }

    /// Packet count of the upward-shift window Ts.
    ///
    /// §6.2 requires detection to be "deliberately slow and conservative":
    /// a window of `Ts = τ̄/2` holds 156 packets at the paper's 16 s
    /// polling. The §6.1 packet-count conversion must not be allowed to
    /// collapse that to a couple of packets at coarse polling periods —
    /// with a 2-packet window *any* two consecutive congested exchanges
    /// (point errors above 4E, a few percent of traffic) confirm a false
    /// upward shift, exactly the misdetection the paper calls "critical"
    /// ("falsely interpreting congestion as an upward shift immediately
    /// corrupts estimates"). At 1024 s polling this fired hundreds of
    /// times per simulated month and the re-basing churn dominated the
    /// replay cost. The floor keeps the false-confirmation probability
    /// negligible (≈ q¹⁶ for per-packet congestion probability q) while
    /// still detecting any shift sustained for 16 polls.
    pub fn ts_packets(&self) -> usize {
        self.window_packets(self.ts_window).max(MIN_TS_PACKETS)
    }

    /// Packet count of the top-level window T.
    pub fn top_packets(&self) -> usize {
        self.window_packets(self.top_window)
    }

    /// Validates parameter consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        // explicit comparisons so NaN parameters fail validation too
        if self.delta.is_nan() || self.delta <= 0.0 {
            return Err("delta must be positive".into());
        }
        if self.poll_period.is_nan() || self.poll_period <= 0.0 {
            return Err("poll_period must be positive".into());
        }
        if [self.tau_star, self.tau_prime, self.tau_bar]
            .iter()
            .any(|w| w.is_nan() || *w <= 0.0)
        {
            return Err("time windows must be positive".into());
        }
        if self.w_split < 3 {
            return Err("w_split must be at least 3".into());
        }
        if [self.e_star, self.quality_scale]
            .iter()
            .any(|e| e.is_nan() || *e <= 0.0)
        {
            return Err("error thresholds must be positive".into());
        }
        if self.fallback_mult <= 1.0 {
            return Err("fallback_mult must exceed 1".into());
        }
        if self.top_window < self.tau_bar {
            return Err("top window must contain the local-rate window".into());
        }
        Ok(())
    }
}

impl ClockConfig {
    /// Serializes every parameter into a snapshot payload (18 fields,
    /// field order is the struct order and is part of snapshot format v1).
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_f64(self.delta);
        w.put_f64(self.tau_star);
        w.put_f64(self.tau_prime);
        w.put_f64(self.tau_bar);
        w.put_usize(self.w_split);
        w.put_f64(self.e_star);
        w.put_f64(self.quality_scale);
        w.put_f64(self.fallback_mult);
        w.put_f64(self.aging_rate);
        w.put_f64(self.gamma_star);
        w.put_f64(self.rate_sanity);
        w.put_f64(self.offset_sanity);
        w.put_f64(self.shift_mult);
        w.put_f64(self.ts_window);
        w.put_f64(self.top_window);
        w.put_f64(self.poll_period);
        w.put_usize(self.warmup_packets);
        w.put_bool(self.use_local_rate);
    }

    /// Deserializes and **re-validates** a config from a snapshot payload:
    /// corrupt parameters that still checksum (e.g. a pre-checksum bug)
    /// surface as [`crate::SnapshotError::Invalid`], never as a clock
    /// silently running with nonsense windows.
    pub fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        let cfg = Self {
            delta: r.get_f64()?,
            tau_star: r.get_f64()?,
            tau_prime: r.get_f64()?,
            tau_bar: r.get_f64()?,
            w_split: r.get_usize()?,
            e_star: r.get_f64()?,
            quality_scale: r.get_f64()?,
            fallback_mult: r.get_f64()?,
            aging_rate: r.get_f64()?,
            gamma_star: r.get_f64()?,
            rate_sanity: r.get_f64()?,
            offset_sanity: r.get_f64()?,
            shift_mult: r.get_f64()?,
            ts_window: r.get_f64()?,
            top_window: r.get_f64()?,
            poll_period: r.get_f64()?,
            warmup_packets: r.get_usize()?,
            use_local_rate: r.get_bool()?,
        };
        cfg.validate()
            .map_err(|_| crate::SnapshotError::Invalid("clock config fails validation"))?;
        Ok(cfg)
    }
}

impl Default for ClockConfig {
    fn default() -> Self {
        Self::paper_defaults(16.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ClockConfig::paper_defaults(16.0);
        assert_eq!(c.delta, 15e-6);
        assert_eq!(c.tau_star, 1000.0);
        assert_eq!(c.tau_bar, 5000.0);
        assert_eq!(c.w_split, 30);
        assert!((c.e_star - 300e-6).abs() < 1e-15);
        assert!((c.quality_scale - 60e-6).abs() < 1e-15);
        assert!((c.e_fallback() - 360e-6).abs() < 1e-15);
        assert_eq!(c.aging_rate, 0.02e-6);
        assert_eq!(c.gamma_star, 0.05e-6);
        assert_eq!(c.rate_sanity, 3e-7);
        assert_eq!(c.offset_sanity, 1e-3);
        assert_eq!(c.ts_window, 2500.0);
        assert_eq!(c.top_window, 604_800.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn window_packet_counts() {
        let c = ClockConfig::paper_defaults(16.0);
        assert_eq!(c.tau_prime_packets(), 63); // 1000/16 ≈ 62.5 → 63
        assert_eq!(c.tau_bar_packets(), 313);
        assert_eq!(c.ts_packets(), 156);
        assert_eq!(c.top_packets(), 37_800);
        // windows never collapse to zero packets
        let coarse = ClockConfig::paper_defaults(4096.0);
        assert!(coarse.tau_prime_packets() >= 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = ClockConfig { delta: 0.0, ..ClockConfig::default() };
        assert!(c.validate().is_err());
        let c = ClockConfig { w_split: 2, ..ClockConfig::default() };
        assert!(c.validate().is_err());
        let c = ClockConfig { top_window: 10.0, ..ClockConfig::default() };
        assert!(c.validate().is_err());
        let c = ClockConfig { fallback_mult: 0.5, ..ClockConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn poll_period_scales_counts() {
        let fine = ClockConfig::paper_defaults(16.0);
        let coarse = ClockConfig::paper_defaults(256.0);
        assert!(fine.tau_prime_packets() > coarse.tau_prime_packets());
        assert_eq!(coarse.tau_prime_packets(), 4);
    }
}
