//! The raw input record: one completed NTP exchange.

use serde::{Deserialize, Serialize};

/// The raw data of the i-th exchange (Figure 1): two host TSC readings and
/// two server timestamps. This is *everything* the synchronization
/// algorithms are allowed to see.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawExchange {
    /// Host TSC reading just before the request departs (`Ta`, counts).
    pub ta_tsc: u64,
    /// Server receive timestamp (`Tb`, server clock seconds).
    pub tb: f64,
    /// Server transmit timestamp (`Te`, server clock seconds).
    pub te: f64,
    /// Host TSC reading just after the response arrives (`Tf`, counts).
    pub tf_tsc: u64,
}

impl RawExchange {
    /// Round-trip time in TSC counts: `Tf − Ta`. Because both readings come
    /// from the same counter, this is meaningful without any period estimate
    /// — the key decoupling property of §5.1.
    pub fn rtt_counts(&self) -> u64 {
        self.tf_tsc.wrapping_sub(self.ta_tsc)
    }

    /// Server residence time `Te − Tb` in seconds, as reported by the
    /// server's own clock.
    pub fn server_residence(&self) -> f64 {
        self.te - self.tb
    }

    /// Midpoint of the server timestamps, `(Tb + Te)/2`.
    pub fn server_midpoint(&self) -> f64 {
        0.5 * (self.tb + self.te)
    }

    /// Midpoint of the host counter readings, `(Ta + Tf)/2`, in counts.
    /// Uses 128-bit arithmetic to avoid overflow on large counters.
    pub fn host_midpoint_counts(&self) -> f64 {
        (self.ta_tsc as u128 + self.tf_tsc as u128) as f64 * 0.5
    }

    /// Basic structural sanity: the response cannot precede the request and
    /// the server cannot transmit before it receives. Packets failing this
    /// are corrupt and must be discarded before they reach the estimators.
    pub fn is_causal(&self) -> bool {
        self.tf_tsc > self.ta_tsc && self.te >= self.tb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex() -> RawExchange {
        RawExchange {
            ta_tsc: 1_000_000_000,
            tb: 100.0004,
            te: 100.00045,
            tf_tsc: 1_000_890_000,
        }
    }

    #[test]
    fn rtt_counts_is_difference() {
        assert_eq!(ex().rtt_counts(), 890_000);
    }

    #[test]
    fn rtt_counts_survives_wrap() {
        let e = RawExchange {
            ta_tsc: u64::MAX - 10,
            tf_tsc: 100,
            ..ex()
        };
        assert_eq!(e.rtt_counts(), 111);
    }

    #[test]
    fn server_residence() {
        assert!((ex().server_residence() - 5e-5).abs() < 1e-12);
    }

    #[test]
    fn midpoints() {
        let e = ex();
        assert!((e.server_midpoint() - 100.000425).abs() < 1e-9);
        assert_eq!(e.host_midpoint_counts(), 1_000_445_000.0);
    }

    #[test]
    fn host_midpoint_no_overflow_at_extremes() {
        let e = RawExchange {
            ta_tsc: u64::MAX - 1,
            tf_tsc: u64::MAX,
            ..ex()
        };
        let expect = (u64::MAX - 1) as f64 + 0.5;
        assert!((e.host_midpoint_counts() - expect).abs() < 2.0);
    }

    #[test]
    fn causality_check() {
        assert!(ex().is_causal());
        let bad_host = RawExchange {
            tf_tsc: 0,
            ..ex()
        };
        assert!(!bad_host.is_causal());
        let bad_server = RawExchange {
            te: 99.0,
            ..ex()
        };
        assert!(!bad_server.is_causal());
    }
}
