//! Upward level-shift detection (§6.2).
//!
//! Downward shifts need no detector: "congestion cannot result in a
//! downward movement", so the running minimum `r̂` absorbs them
//! automatically and immediately. Upward shifts are "indistinguishable from
//! congestion at small scales" and misdetection is *critical* ("falsely
//! interpreting congestion as an upward shift immediately corrupts
//! estimates"), so detection is deliberately slow and conservative: a local
//! minimum `r̂l` over a large sliding window `Ts = τ̄/2` must exceed `r̂` by
//! more than `4E` before a shift is declared — at which point it is dated
//! back to the start of the window.

use tsc_stats::SlidingMin;

/// A confirmed upward shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpwardShift {
    /// The new minimum RTT level, in counts.
    pub new_min_c: f64,
    /// Global index of the first packet after the shift point
    /// (`t = C(Tf,i) − Ts`: the window start).
    pub start_idx: u64,
}

/// Sliding-window upward-shift detector.
#[derive(Debug, Clone)]
pub struct ShiftDetector {
    window: SlidingMin,
    threshold: f64,
    ts_packets: usize,
}

impl ShiftDetector {
    /// `ts_packets` — window length `Ts` in packets; `threshold` — the
    /// detection level `4E` in seconds.
    pub fn new(ts_packets: usize, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            window: SlidingMin::new(ts_packets.max(2)),
            threshold,
            ts_packets: ts_packets.max(2),
        }
    }

    /// Observes packet `idx` with round-trip `rtt_c` counts, against the
    /// global minimum `rtt_min_c`, using `p_hat` to convert to seconds.
    ///
    /// Returns a confirmed shift when the *entire* window sits above
    /// `r̂ + 4E`. The caller must then re-base the history and call
    /// [`ShiftDetector::reset`].
    pub fn observe(
        &mut self,
        idx: u64,
        rtt_c: f64,
        rtt_min_c: f64,
        p_hat: f64,
    ) -> Option<UpwardShift> {
        self.window.push(rtt_c);
        if !self.window.full() {
            return None;
        }
        let local_min_c = self.window.get()?;
        let excess = (local_min_c - rtt_min_c) * p_hat;
        if excess > self.threshold {
            Some(UpwardShift {
                new_min_c: local_min_c,
                start_idx: idx.saturating_sub(self.ts_packets as u64 - 1),
            })
        } else {
            None
        }
    }

    /// Clears the window after a confirmed shift has been applied, so the
    /// same evidence is not reused.
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Window length in packets.
    pub fn ts_packets(&self) -> usize {
        self.ts_packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: f64 = 1e-9;

    #[test]
    fn no_detection_before_window_full() {
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..9 {
            assert!(d.observe(i, 2_000_000.0, 1_000_000.0, P).is_none());
        }
    }

    #[test]
    fn congestion_spikes_do_not_trigger() {
        // spikes raise individual RTTs but the window minimum stays at the
        // true level, so no shift is declared
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..100u64 {
            let rtt = if i % 3 == 0 { 1_000_000.0 } else { 9_000_000.0 };
            assert!(
                d.observe(i, rtt, 1_000_000.0, P).is_none(),
                "false positive at {i}"
            );
        }
    }

    #[test]
    fn sustained_upward_shift_is_detected_and_dated() {
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..20u64 {
            assert!(d.observe(i, 1_000_000.0, 1_000_000.0, P).is_none());
        }
        // +0.9 ms shift from packet 20 on
        let mut detected = None;
        for i in 20..40u64 {
            if let Some(s) = d.observe(i, 1_900_000.0, 1_000_000.0, P) {
                detected = Some((i, s));
                break;
            }
        }
        let (at, shift) = detected.expect("shift must be detected");
        // detection exactly when the window has been fully post-shift
        assert_eq!(at, 29);
        assert_eq!(shift.start_idx, 20);
        assert_eq!(shift.new_min_c, 1_900_000.0);
    }

    #[test]
    fn shift_below_threshold_is_ignored() {
        // +0.1 ms < 4E = 0.24 ms: absorbed as congestion, never declared
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..100u64 {
            assert!(d.observe(i, 1_100_000.0, 1_000_000.0, P).is_none());
        }
    }

    #[test]
    fn temporary_shift_shorter_than_window_is_missed() {
        // the Figure 11(c) temporary shift: duration < Ts → never detected
        // (and the paper shows it "makes little impact on the estimates")
        let mut d = ShiftDetector::new(20, 240e-6);
        for i in 0..30u64 {
            assert!(d.observe(i, 1_000_000.0, 1_000_000.0, P).is_none());
        }
        for i in 30..40u64 {
            assert!(d.observe(i, 1_900_000.0, 1_000_000.0, P).is_none());
        }
        for i in 40..80u64 {
            assert!(
                d.observe(i, 1_000_000.0, 1_000_000.0, P).is_none(),
                "returning to baseline must clear the evidence"
            );
        }
    }

    #[test]
    fn reset_clears_evidence() {
        let mut d = ShiftDetector::new(5, 240e-6);
        for i in 0..10u64 {
            d.observe(i, 1_900_000.0, 1_000_000.0, P);
        }
        d.reset();
        // after reset the window must refill before another detection
        assert!(d.observe(10, 1_900_000.0, 1_900_000.0, P).is_none());
    }
}
