//! Upward level-shift detection (§6.2).
//!
//! Downward shifts need no detector: "congestion cannot result in a
//! downward movement", so the running minimum `r̂` absorbs them
//! automatically and immediately. Upward shifts are "indistinguishable from
//! congestion at small scales" and misdetection is *critical* ("falsely
//! interpreting congestion as an upward shift immediately corrupts
//! estimates"), so detection is deliberately slow and conservative: a local
//! minimum `r̂l` over a large sliding window `Ts = τ̄/2` must exceed `r̂` by
//! more than `4E` before a shift is declared — at which point it is dated
//! back to the start of the window.
//!
//! # The quiescent fast path
//!
//! The dense implementation (a monotonic-deque sliding minimum, still
//! available as [`tsc_stats::SlidingMin`]) pays deque maintenance on every
//! packet even though detection is impossible for almost all of them. This
//! detector instead exploits the structure of the decision rule: a shift
//! can only be declared when *every* sample in the window exceeds the
//! detection level `r̂ + 4E`, so a single sample at or below the level
//! **parks** the detector for a full window length — while that sample is
//! retained, the window minimum cannot exceed the level. Per packet the
//! fast path is one ring-buffer store and two compares; the O(Ts) window
//! minimum is evaluated only while every retained sample individually
//! exceeded the level at admission (a genuine shift candidate, or sustained
//! heavy congestion — both rare by construction).
//!
//! The park decision classifies each sample against the detection level
//! *at admission*, whereas the dense detector re-evaluates the window
//! minimum against the current `(r̂, p̂)` every packet. The two agree
//! exactly whenever `(r̂, p̂)` are constant across the window: `r̂` provably
//! is (it can only decrease via a sample that itself re-parks the
//! detector), and `p̂` drifts by at most ~1e-7 relative per window after
//! warm-up, so a disagreement needs a sample within ~1e-7·4E ≈ 10 ps of
//! the threshold — far below the 15 µs timestamping granularity the
//! threshold is calibrated in units of.

/// A confirmed upward shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpwardShift {
    /// The new minimum RTT level, in counts.
    pub new_min_c: f64,
    /// Global index of the first packet after the shift point
    /// (`t = C(Tf,i) − Ts`: the window start).
    pub start_idx: u64,
}

/// Sliding-window upward-shift detector with a quiescent fast path.
#[derive(Debug, Clone)]
pub struct ShiftDetector {
    threshold: f64,
    ts_packets: usize,
    /// Ring of the last `ts_packets` RTT samples (counts).
    ring: Vec<f64>,
    /// Next ring slot to write (wrapping cursor — cheaper than indexing by
    /// `seq % ts`, which costs a hardware division per packet).
    cursor: usize,
    /// Samples observed since the last [`ShiftDetector::reset`].
    seq: u64,
    /// No detection is possible before this sequence number: the horizon
    /// until which the most recent at-or-below-level sample stays in the
    /// window.
    parked_until: u64,
}

impl ShiftDetector {
    /// `ts_packets` — window length `Ts` in packets; `threshold` — the
    /// detection level `4E` in seconds.
    pub fn new(ts_packets: usize, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        let ts = ts_packets.max(2);
        Self {
            threshold,
            ts_packets: ts,
            ring: vec![f64::INFINITY; ts],
            cursor: 0,
            seq: 0,
            parked_until: 0,
        }
    }

    /// Observes packet `idx` with round-trip `rtt_c` counts, against the
    /// global minimum `rtt_min_c`, using `p_hat` to convert to seconds.
    ///
    /// Returns a confirmed shift when the *entire* window sits above
    /// `r̂ + 4E`. The caller must then re-base the history and call
    /// [`ShiftDetector::reset`].
    pub fn observe(
        &mut self,
        idx: u64,
        rtt_c: f64,
        rtt_min_c: f64,
        p_hat: f64,
    ) -> Option<UpwardShift> {
        if rtt_c.is_nan() {
            // Missing data does not consume a window slot.
            return None;
        }
        let ts = self.ts_packets as u64;
        self.ring[self.cursor] = rtt_c;
        self.cursor += 1;
        if self.cursor == self.ts_packets {
            self.cursor = 0;
        }
        self.seq += 1;
        // Fast path: a sample at or below the detection level caps the
        // window minimum for as long as it is retained.
        if (rtt_c - rtt_min_c) * p_hat <= self.threshold {
            self.parked_until = self.seq + ts;
            return None;
        }
        if self.seq < ts || self.seq < self.parked_until {
            return None;
        }
        // Every retained sample exceeded the level at admission: evaluate
        // the exact decision rule on the window minimum.
        let local_min_c = self.ring.iter().copied().fold(f64::INFINITY, f64::min);
        let excess = (local_min_c - rtt_min_c) * p_hat;
        if excess > self.threshold {
            Some(UpwardShift {
                new_min_c: local_min_c,
                start_idx: idx.saturating_sub(ts - 1),
            })
        } else {
            // The full window was evaluated and the §6.2 decision rule
            // said no: every retained sample exceeded the level but the
            // window minimum's excess did not clear the threshold.
            tsc_telemetry::add(tsc_telemetry::Ctr::ShiftWindowsRejected, 1);
            tsc_telemetry::event(tsc_telemetry::EventKind::ShiftWindowRejected, idx, ts, 0);
            None
        }
    }

    /// Clears the window after a confirmed shift has been applied, so the
    /// same evidence is not reused.
    pub fn reset(&mut self) {
        self.seq = 0;
        self.cursor = 0;
        self.parked_until = 0;
        // Ring contents are stale but unreachable: no detection can happen
        // until `ts_packets` fresh samples have overwritten every slot.
    }

    /// Window length in packets.
    pub fn ts_packets(&self) -> usize {
        self.ts_packets
    }

    /// Serializes the detector — the full sample ring (stale slots
    /// included: they become unreachable only through `seq`, which is also
    /// restored), cursor, sequence and park horizon.
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_f64(self.threshold);
        w.put_usize(self.ts_packets);
        for &v in &self.ring {
            w.put_f64(v);
        }
        w.put_usize(self.cursor);
        w.put_u64(self.seq);
        w.put_u64(self.parked_until);
    }

    /// Deserializes a detector written by [`ShiftDetector::save_state`].
    pub fn load_state(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::SnapshotError> {
        use crate::SnapshotError as E;
        let threshold = r.get_f64()?;
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(E::Invalid("shift threshold must be positive"));
        }
        let ts_packets = r.get_usize()?;
        if ts_packets < 2 {
            return Err(E::Invalid("shift window shorter than two packets"));
        }
        if ts_packets.checked_mul(8).is_none_or(|b| b > r.remaining()) {
            return Err(E::Truncated);
        }
        let mut ring = Vec::with_capacity(ts_packets);
        for _ in 0..ts_packets {
            ring.push(r.get_f64()?);
        }
        let cursor = r.get_usize()?;
        if cursor >= ts_packets {
            return Err(E::Invalid("shift ring cursor out of range"));
        }
        Ok(Self {
            threshold,
            ts_packets,
            ring,
            cursor,
            seq: r.get_u64()?,
            parked_until: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: f64 = 1e-9;

    #[test]
    fn no_detection_before_window_full() {
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..9 {
            assert!(d.observe(i, 2_000_000.0, 1_000_000.0, P).is_none());
        }
    }

    #[test]
    fn congestion_spikes_do_not_trigger() {
        // spikes raise individual RTTs but the window minimum stays at the
        // true level, so no shift is declared
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..100u64 {
            let rtt = if i % 3 == 0 { 1_000_000.0 } else { 9_000_000.0 };
            assert!(
                d.observe(i, rtt, 1_000_000.0, P).is_none(),
                "false positive at {i}"
            );
        }
    }

    #[test]
    fn sustained_upward_shift_is_detected_and_dated() {
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..20u64 {
            assert!(d.observe(i, 1_000_000.0, 1_000_000.0, P).is_none());
        }
        // +0.9 ms shift from packet 20 on
        let mut detected = None;
        for i in 20..40u64 {
            if let Some(s) = d.observe(i, 1_900_000.0, 1_000_000.0, P) {
                detected = Some((i, s));
                break;
            }
        }
        let (at, shift) = detected.expect("shift must be detected");
        // detection exactly when the window has been fully post-shift
        assert_eq!(at, 29);
        assert_eq!(shift.start_idx, 20);
        assert_eq!(shift.new_min_c, 1_900_000.0);
    }

    #[test]
    fn shift_below_threshold_is_ignored() {
        // +0.1 ms < 4E = 0.24 ms: absorbed as congestion, never declared
        let mut d = ShiftDetector::new(10, 240e-6);
        for i in 0..100u64 {
            assert!(d.observe(i, 1_100_000.0, 1_000_000.0, P).is_none());
        }
    }

    #[test]
    fn temporary_shift_shorter_than_window_is_missed() {
        // the Figure 11(c) temporary shift: duration < Ts → never detected
        // (and the paper shows it "makes little impact on the estimates")
        let mut d = ShiftDetector::new(20, 240e-6);
        for i in 0..30u64 {
            assert!(d.observe(i, 1_000_000.0, 1_000_000.0, P).is_none());
        }
        for i in 30..40u64 {
            assert!(d.observe(i, 1_900_000.0, 1_000_000.0, P).is_none());
        }
        for i in 40..80u64 {
            assert!(
                d.observe(i, 1_000_000.0, 1_000_000.0, P).is_none(),
                "returning to baseline must clear the evidence"
            );
        }
    }

    #[test]
    fn reset_clears_evidence() {
        let mut d = ShiftDetector::new(5, 240e-6);
        for i in 0..10u64 {
            d.observe(i, 1_900_000.0, 1_000_000.0, P);
        }
        d.reset();
        // after reset the window must refill before another detection
        assert!(d.observe(10, 1_900_000.0, 1_900_000.0, P).is_none());
    }

    #[test]
    fn detection_value_is_window_minimum_not_level() {
        // the confirmed shift carries the *minimum* of the suspicious
        // window, not the first or last sample
        let mut d = ShiftDetector::new(4, 240e-6);
        let samples = [1_950_000.0, 1_900_000.0, 1_920_000.0, 1_980_000.0];
        let mut fired = None;
        for (i, &r) in samples.iter().enumerate() {
            fired = d.observe(i as u64, r, 1_000_000.0, P);
        }
        let s = fired.expect("all-high window must fire");
        assert_eq!(s.new_min_c, 1_900_000.0);
        assert_eq!(s.start_idx, 0);
    }

    #[test]
    fn park_expires_after_exactly_one_window() {
        // a single low sample parks the detector for ts packets; the shift
        // is declared on the first check after it leaves the window
        let ts = 6;
        let mut d = ShiftDetector::new(ts, 240e-6);
        for i in 0..10u64 {
            assert!(d.observe(i, 1_900_000.0, 1_000_000.0, P).is_none() || i >= 5);
        }
        d.reset();
        // refill, then one low sample mid-run
        let mut fire_at = None;
        for i in 0..30u64 {
            let rtt = if i == 3 { 1_000_000.0 } else { 1_900_000.0 };
            if d.observe(i, rtt, 1_000_000.0, P).is_some() {
                fire_at = Some(i);
                break;
            }
        }
        // low sample at seq 3 is retained for checks through seq 3+ts;
        // first possible fire is the packet after it expires
        assert_eq!(fire_at, Some(3 + ts as u64));
    }

    #[test]
    fn matches_dense_sliding_min_detector() {
        // Differential check against the dense SlidingMin formulation on a
        // noisy series with a genuine shift (fixed p̂/r̂, where the two are
        // exactly equivalent).
        let ts = 8;
        let thresh = 240e-6;
        let mut fast = ShiftDetector::new(ts, thresh);
        let mut dense = tsc_stats::SlidingMin::new(ts);
        let min_c = 1_000_000.0;
        let mut state = 0x9E37_79B9_u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1_000_000) as f64
        };
        for i in 0..5_000u64 {
            let shift = if i >= 3_000 { 600_000.0 } else { 0.0 };
            let rtt = min_c + shift + noise();
            let got = fast.observe(i, rtt, min_c, P);
            dense.push(rtt);
            let want = if dense.full() {
                let lm = dense.get().unwrap();
                ((lm - min_c) * P > thresh).then_some(lm)
            } else {
                None
            };
            assert_eq!(got.map(|s| s.new_min_c), want, "divergence at {i}");
            if let Some(s) = got {
                assert_eq!(s.start_idx, i - (ts as u64 - 1));
                fast.reset();
                dense.clear();
            }
        }
    }

    #[test]
    fn matches_dense_detector_under_drifting_p_hat_and_r_hat() {
        // The parked detector classifies samples at admission while the
        // dense one re-evaluates the window minimum against the *current*
        // (r̂, p̂) every packet. The module docs argue the two can only
        // disagree on a sample within ~p̂-drift of the detection level
        // (picoseconds); this test drives both through the regimes the
        // fixed-parameter test above excludes — p̂ wandering ±0.1 PPM per
        // packet and r̂ stepping downward mid-stream — on integer-count
        // samples that keep every window minimum well clear of that
        // hairline, where they must still agree packet for packet.
        let ts = 6;
        let thresh = 240e-6;
        let mut fast = ShiftDetector::new(ts, thresh);
        let mut dense = tsc_stats::SlidingMin::new(ts);
        let mut state = 0xC0FF_EE00_u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            state >> 33
        };
        let mut min_c = 1_000_000.0f64;
        for i in 0..20_000u64 {
            // p̂ wanders within ±0.1 PPM of nominal, changing every packet.
            let p = P * (1.0 + ((rand() % 2001) as f64 - 1000.0) * 1e-10);
            // Occasional new minima drag r̂ down; a long all-high episode
            // after packet 12k exercises detection with a drifted p̂.
            let r = rand() % 1000;
            let rtt = if (12_000..12_600).contains(&i) {
                min_c + 400_000.0 + r as f64 // sustained +0.4 ms excess
            } else if r < 10 {
                min_c - 1.0 // new minimum
            } else {
                min_c + (r * 500) as f64 // noise up to ~0.5 ms over r̂
            };
            if rtt < min_c {
                min_c = rtt;
            }
            let got = fast.observe(i, rtt, min_c, p);
            dense.push(rtt);
            let want = if dense.full() {
                let lm = dense.get().unwrap();
                ((lm - min_c) * p > thresh).then_some(lm)
            } else {
                None
            };
            assert_eq!(got.map(|s| s.new_min_c), want, "divergence at {i}");
            if got.is_some() {
                fast.reset();
                dense.clear();
                min_c += 400_000.0; // the caller would re-base r̂ upward
            }
        }
    }
}
