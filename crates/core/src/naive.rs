//! The naive (unfiltered) estimators of §4 — the baselines the robust
//! algorithms are measured against in Figures 5 and 6, and the building
//! blocks (per-packet `θ̂ᵢ`) the weighted offset algorithm filters.

use crate::exchange::RawExchange;

/// Naive per-packet-pair rate estimate from the forward path
/// (equation (17)): `p̂→ = (Tb,i − Tb,j) / (Ta,i − Ta,j)`.
///
/// Returns `None` when the counter baseline is zero (same packet).
pub fn naive_rate_forward(j: &RawExchange, i: &RawExchange) -> Option<f64> {
    let dc = i.ta_tsc.wrapping_sub(j.ta_tsc) as i64 as f64;
    if dc == 0.0 {
        return None;
    }
    Some((i.tb - j.tb) / dc)
}

/// Naive backward-path rate estimate: `p̂← = (Te,i − Te,j) / (Tf,i − Tf,j)`.
pub fn naive_rate_backward(j: &RawExchange, i: &RawExchange) -> Option<f64> {
    let dc = i.tf_tsc.wrapping_sub(j.tf_tsc) as i64 as f64;
    if dc == 0.0 {
        return None;
    }
    Some((i.te - j.te) / dc)
}

/// The combined naive rate estimate of §4.1: the average of the forward and
/// backward estimates, `p̂ = (p̂→ + p̂←)/2`.
pub fn naive_rate(j: &RawExchange, i: &RawExchange) -> Option<f64> {
    match (naive_rate_forward(j, i), naive_rate_backward(j, i)) {
        (Some(f), Some(b)) => Some(0.5 * (f + b)),
        _ => None,
    }
}

/// Naive per-packet offset estimate (equation (19)):
/// `θ̂ᵢ = ½(C(Ta,i) + C(Tf,i)) − ½(Tb,i + Te,i)`
/// where `C(T) = T·p̂ + C̄` is the uncorrected TSC clock. Implicitly assumes
/// path asymmetry Δ = 0 (midpoint alignment).
pub fn naive_offset(e: &RawExchange, p_hat: f64, c_bar: f64) -> f64 {
    naive_offset_parts(e.host_midpoint_counts(), e.server_midpoint(), p_hat, c_bar)
}

/// Equation (19) from precomputed midpoints — the single source of the
/// expression, shared with the clock's hot path (which already has the
/// midpoints at hand for the history record). Must stay bit-identical to
/// [`naive_offset`]: the differential property suite compares `θ̂ᵢ` across
/// pipelines exactly.
#[inline]
pub fn naive_offset_parts(hm_c: f64, sm: f64, p_hat: f64, c_bar: f64) -> f64 {
    hm_c * p_hat + c_bar - sm
}

/// The quality-pair rate estimate used by both the global and local rate
/// algorithms (§5.2): identical to [`naive_rate`] but packaged with its
/// error bound `(Ei + Ej) / Δt` given the two packets' point errors and the
/// elapsed host time `Δt = (Tf,i − Tf,j)·p̄` (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairEstimate {
    /// The rate estimate (seconds per count).
    pub p_hat: f64,
    /// Upper bound on its relative error: `(Ei + Ej)/Δt`.
    pub error_bound: f64,
    /// The baseline `Δt` in seconds.
    pub baseline: f64,
}

/// Computes a [`PairEstimate`] from packets `j` (older) and `i` (newer) with
/// point errors `ej`, `ei` (seconds), using `p_ref` to convert the counter
/// baseline to seconds. Returns `None` on a degenerate pair.
pub fn pair_estimate(
    j: &RawExchange,
    i: &RawExchange,
    ej: f64,
    ei: f64,
    p_ref: f64,
) -> Option<PairEstimate> {
    let p_hat = naive_rate(j, i)?;
    if !(p_hat.is_finite() && p_hat > 0.0) {
        return None;
    }
    let baseline = i.tf_tsc.wrapping_sub(j.tf_tsc) as i64 as f64 * p_ref;
    if baseline <= 0.0 {
        return None;
    }
    Some(PairEstimate {
        p_hat,
        error_bound: (ei + ej) / baseline,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an exchange for a host with true period `p` (s/count), skewed
    /// counter, symmetric path of one-way delay `d`, server residence `s`,
    /// polled at true time `t`.
    fn ideal_exchange(t: f64, p: f64, d: f64, s: f64) -> RawExchange {
        let count = |tt: f64| (tt / p).round() as u64;
        RawExchange {
            ta_tsc: count(t),
            tb: t + d,
            te: t + d + s,
            tf_tsc: count(t + 2.0 * d + s),
        }
    }

    const P: f64 = 1.0000501e-9; // ~1 GHz with +50.1 PPM skew

    #[test]
    fn naive_rate_recovers_true_period() {
        let j = ideal_exchange(0.0, P, 500e-6, 20e-6);
        let i = ideal_exchange(1000.0, P, 500e-6, 20e-6);
        let p = naive_rate(&j, &i).unwrap();
        assert!(
            ((p - P) / P).abs() < 1e-9,
            "rate rel error {:.2e}",
            (p - P) / P
        );
    }

    #[test]
    fn queueing_noise_biases_naive_rate_at_small_baseline() {
        // packet i suffers 5 ms of forward queueing: the estimate over a
        // 16 s baseline is off by ~5ms/16s ≈ 300 PPM, as Figure 5 shows.
        let j = ideal_exchange(0.0, P, 500e-6, 20e-6);
        let mut i = ideal_exchange(16.0, P, 500e-6, 20e-6);
        i.tb += 5e-3;
        i.te += 5e-3;
        let pf = naive_rate_forward(&j, &i).unwrap();
        let rel = (pf - P) / P;
        assert!(rel > 100e-6, "expected large positive bias, got {rel:.2e}");
        // over a day the same noise is damped to ~0.06 PPM
        let mut i2 = ideal_exchange(86_400.0, P, 500e-6, 20e-6);
        i2.tb += 5e-3;
        let rel2 = (naive_rate_forward(&j, &i2).unwrap() - P) / P;
        assert!(rel2.abs() < 0.1e-6, "damped error {rel2:.2e}");
    }

    #[test]
    fn degenerate_pairs_are_rejected() {
        let e = ideal_exchange(0.0, P, 1e-3, 1e-5);
        assert!(naive_rate(&e, &e).is_none());
        assert!(pair_estimate(&e, &e, 0.0, 0.0, 1e-9).is_none());
    }

    #[test]
    fn naive_offset_zero_for_aligned_clock() {
        let e = ideal_exchange(100.0, P, 500e-6, 20e-6);
        // choose C̄ so the clock is perfectly aligned at this packet
        let c_bar = e.server_midpoint() - e.host_midpoint_counts() * P;
        let th = naive_offset(&e, P, c_bar);
        assert!(th.abs() < 1e-12);
    }

    #[test]
    fn naive_offset_sees_asymmetric_queueing() {
        let e0 = ideal_exchange(100.0, P, 500e-6, 20e-6);
        let c_bar = e0.server_midpoint() - e0.host_midpoint_counts() * P;
        // 2 ms of *forward* queueing delays tb/te by 2 ms → server midpoint
        // moves late → θ̂ decreases by ~1 ms (the negative bias of Figure 6)
        let mut e1 = ideal_exchange(200.0, P, 500e-6, 20e-6);
        e1.tb += 2e-3;
        e1.te += 2e-3;
        // tf also late by 2ms of wait: rebuild with total path 2d+s+2ms
        e1.tf_tsc = ((200.0 + 2.0 * 500e-6 + 20e-6 + 2e-3) / P).round() as u64;
        let th = naive_offset(&e1, P, c_bar);
        assert!(
            (th + 1e-3).abs() < 30e-6,
            "expected ≈ −1 ms bias, got {th}"
        );
    }

    #[test]
    fn pair_estimate_error_bound_scales_inversely_with_baseline() {
        let j = ideal_exchange(0.0, P, 500e-6, 20e-6);
        let i_near = ideal_exchange(100.0, P, 500e-6, 20e-6);
        let i_far = ideal_exchange(10_000.0, P, 500e-6, 20e-6);
        let near = pair_estimate(&j, &i_near, 1e-4, 1e-4, P).unwrap();
        let far = pair_estimate(&j, &i_far, 1e-4, 1e-4, P).unwrap();
        assert!(near.error_bound > far.error_bound * 50.0);
        assert!((far.baseline - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn backward_and_forward_agree_on_clean_data() {
        let j = ideal_exchange(0.0, P, 500e-6, 20e-6);
        let i = ideal_exchange(5000.0, P, 500e-6, 20e-6);
        let f = naive_rate_forward(&j, &i).unwrap();
        let b = naive_rate_backward(&j, &i).unwrap();
        assert!(((f - b) / P).abs() < 1e-9);
    }
}
